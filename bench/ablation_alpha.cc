// Ablation bench: the soft occlusion penalty weight alpha (Definition 7).
//
// DESIGN.md lists "soft occlusion penalty vs hard constraint" as the core
// design decision separating POSHGNN from COMURNet. This bench sweeps
// alpha and reports the utility/occlusion trade-off: small alpha ignores
// occlusion (wasted renders), large alpha over-constrains (forfeits
// preferred users), and the paper's alpha = 0.01-scale soft penalty sits
// between the extremes.

#include <cstdio>
#include <vector>

#include "core/evaluator.h"
#include "core/poshgnn.h"
#include "data/dataset.h"
#include "eval/table_printer.h"

int main() {
  using namespace after;

  DatasetConfig config;
  config.num_users = 200;
  config.num_steps = 101;
  config.room_side = 10.0;
  config.num_sessions = 2;
  config.seed = 2201;
  const Dataset dataset = GenerateTimikLike(config);

  const std::vector<double> alphas = {0.0, 0.01, 0.05, 0.15, 0.5};

  std::vector<std::string> columns;
  std::vector<double> utilities, preferences, presences, occlusion;
  for (double alpha : alphas) {
    PoshgnnConfig model_config;
    model_config.alpha = alpha;
    model_config.seed = 90;
    Poshgnn model(model_config);

    TrainOptions train;
    train.epochs = 16;
    train.targets_per_epoch = 5;
    train.seed = 91;
    std::printf("[ablation] training POSHGNN with alpha = %.3f...\n", alpha);
    model.Train(dataset, train);

    EvalOptions eval;
    eval.num_targets = 16;
    eval.target_seed = 92;
    const EvalResult result = EvaluateRecommender(model, dataset, eval);

    char label[32];
    std::snprintf(label, sizeof(label), "a=%.2f", alpha);
    columns.push_back(label);
    utilities.push_back(result.after_utility);
    preferences.push_back(result.preference_utility);
    presences.push_back(result.social_presence_utility);
    occlusion.push_back(result.view_occlusion_rate * 100.0);
  }

  std::fputs(
      RenderGenericTable(
          "Ablation: occlusion penalty weight alpha (Timik-like, N=200)",
          {"AFTER Utility (up)", "Preference (up)", "Social Presence (up)",
           "View Occlusion % (down)"},
          columns, {utilities, preferences, presences, occlusion})
          .c_str(),
      stdout);
  return 0;
}
