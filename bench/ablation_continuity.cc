// Ablation bench: recommendation continuity (challenge C3).
//
// The paper motivates LWP by the "flicker" problem: per-step re-solving
// makes surrounding friends blink in and out of the viewport, destroying
// social presence. This bench measures, with and without the
// preservation gate, (i) the average number of recommendation-set
// changes per step (flicker), (ii) the average consecutive-visibility
// streak length of rendered users, and (iii) the resulting social
// presence utility.
//
// Expected shape: Full POSHGNN flickers less, holds users on screen for
// longer streaks, and converts that into higher social presence than the
// gate-less variant.

#include <cstdio>

#include "core/evaluator.h"
#include "core/poshgnn.h"
#include "core/session.h"
#include "data/dataset.h"
#include "eval/table_printer.h"
#include "graph/occlusion_converter.h"

namespace {

using namespace after;

struct ContinuityStats {
  double flicker_per_step = 0.0;
  double mean_streak_length = 0.0;
  double social_presence = 0.0;
};

ContinuityStats MeasureContinuity(Poshgnn& model, const Dataset& dataset,
                                  const std::vector<int>& targets) {
  ContinuityStats stats;
  const int n = dataset.num_users();
  double flicker = 0.0, steps = 0.0;
  double streak_total = 0.0, streak_count = 0.0;

  for (int target : targets) {
    model.BeginSession(n, target);
    std::vector<bool> prev(n, false), prev_visible(n, false);
    std::vector<int> streak(n, 0);
    const XrWorld& world = dataset.sessions.back();
    const bool target_mr = world.interface_of(target) == Interface::kMR;

    ForEachSessionStep(
        dataset, static_cast<int>(dataset.sessions.size()) - 1, target, 0.5,
        [&](const StepContext& context) {
          const std::vector<bool> rec = model.Recommend(context);
          std::vector<bool> rendered = rec;
          if (target_mr) {
            for (int w = 0; w < n; ++w)
              if (w != target && world.interface_of(w) == Interface::kMR)
                rendered[w] = true;
          }
          const std::vector<bool> visible = ComputeVisibility(
              *context.positions, target, context.body_radius, rendered);

          int changes = 0;
          for (int w = 0; w < n; ++w) {
            if (context.t > 0 && rec[w] != prev[w]) ++changes;
            if (rec[w] && visible[w]) {
              if (prev[w] && prev_visible[w]) {
                stats.social_presence +=
                    0.5 * dataset.social_presence.At(target, w);
              }
              ++streak[w];
            } else if (streak[w] > 0) {
              streak_total += streak[w];
              streak_count += 1.0;
              streak[w] = 0;
            }
          }
          if (context.t > 0) {
            flicker += changes;
            steps += 1.0;
          }
          prev = rec;
          prev_visible = visible;
        });
    for (int w = 0; w < n; ++w) {
      if (streak[w] > 0) {
        streak_total += streak[w];
        streak_count += 1.0;
      }
    }
  }
  stats.flicker_per_step = steps > 0 ? flicker / steps : 0.0;
  stats.mean_streak_length =
      streak_count > 0 ? streak_total / streak_count : 0.0;
  stats.social_presence /= targets.size();
  return stats;
}

}  // namespace

int main() {
  using namespace after;

  DatasetConfig config;
  config.num_users = 150;
  config.num_steps = 81;
  config.room_side = 10.0;
  config.num_sessions = 2;
  config.seed = 1201;
  const Dataset dataset = GenerateTimikLike(config);

  TrainOptions train;
  train.epochs = 14;
  train.targets_per_epoch = 5;
  train.seed = 12;

  const std::vector<int> targets = DefaultEvalTargets(
      dataset.num_users(), 10, 13);

  std::vector<std::string> columns;
  std::vector<double> flicker, streaks, presence;
  for (bool use_lwp : {true, false}) {
    PoshgnnConfig model_config;
    model_config.use_lwp = use_lwp;
    model_config.seed = 14;
    Poshgnn model(model_config);
    std::printf("[continuity] training %s...\n", model.name().c_str());
    model.Train(dataset, train);
    const ContinuityStats stats =
        MeasureContinuity(model, dataset, targets);
    columns.push_back(model.name());
    flicker.push_back(stats.flicker_per_step);
    streaks.push_back(stats.mean_streak_length);
    presence.push_back(stats.social_presence);
  }

  std::fputs(RenderGenericTable(
                 "Ablation: continuity with vs without the LWP gate",
                 {"Set changes / step (down)",
                  "Mean visible streak, steps (up)",
                  "Social presence utility (up)"},
                 columns, {flicker, streaks, presence}, 2)
                 .c_str(),
             stdout);
  return 0;
}
