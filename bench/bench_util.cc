#include "bench/bench_util.h"

#include <algorithm>
#include <cstdio>
#include <memory>

#include "baselines/comurnet.h"
#include "common/rng.h"
#include "testing/fault_injection.h"
#include "baselines/dcrnn_recommender.h"
#include "baselines/grafrank.h"
#include "baselines/mvagc.h"
#include "baselines/nearest_recommender.h"
#include "baselines/random_recommender.h"
#include "baselines/tgcn_recommender.h"
#include "core/poshgnn.h"
#include "eval/stats.h"
#include "eval/table_printer.h"

namespace after {
namespace bench {
namespace {

/// One "[degraded] ..." line per non-clean result (empty when all runs
/// were clean), so numbers produced under faults are never silently
/// taken at face value.
std::string DegradedLines(const std::vector<EvalResult>& results) {
  std::string out;
  for (const auto& r : results) {
    const EvalDiagnostics& d = r.diagnostics;
    if (d.clean()) continue;
    char diag[320];
    std::snprintf(diag, sizeof(diag),
                  "  [degraded] %s: %d poisoned steps skipped, %d fallback "
                  "steps, %d failed steps, %d targets skipped, %d non-finite "
                  "utilities zeroed, %d deadline misses\n",
                  r.method.c_str(), d.poisoned_steps_skipped, d.fallback_steps,
                  d.failed_steps_skipped, d.skipped_targets,
                  d.non_finite_utilities_zeroed, d.deadline_missed_steps);
    out += diag;
  }
  return out;
}

}  // namespace

std::vector<EvalResult> EvaluateAll(
    const std::vector<Recommender*>& methods, const Dataset& dataset,
    const EvalOptions& eval) {
  std::vector<EvalResult> results;
  results.reserve(methods.size());
  for (Recommender* method : methods)
    results.push_back(EvaluateRecommender(*method, dataset, eval));
  return results;
}

std::string RunComparisonBench(const Dataset& dataset,
                               const ComparisonOptions& options,
                               const std::string& title) {
  // A degenerate dataset (no sessions, no users, or fewer than two
  // sessions' worth of data) would previously abort deep inside the
  // trainers; fail the bench gracefully instead.
  if (dataset.num_users() <= 0 || dataset.sessions.empty()) {
    const std::string message =
        "[bench] " + title + ": dataset has no users or sessions; skipped\n";
    std::fputs(message.c_str(), stderr);
    return message;
  }

  TrainOptions train;
  train.epochs = options.train_epochs;
  train.targets_per_epoch = options.train_targets_per_epoch;
  train.seed = options.seed;
  train.verbose = options.verbose_training;

  // --- Methods -------------------------------------------------------
  PoshgnnConfig poshgnn_config;
  poshgnn_config.beta = options.beta;
  poshgnn_config.alpha = options.alpha;
  poshgnn_config.seed = options.seed;
  Poshgnn poshgnn(poshgnn_config);
  std::printf("[bench] training POSHGNN...\n");
  poshgnn.Train(dataset, train);

  RandomRecommender random_baseline(options.k, options.seed + 1);
  NearestRecommender nearest_baseline(options.k);

  MvAgc::Options mvagc_options;
  mvagc_options.num_groups = std::max(2, dataset.num_users() / 20);
  mvagc_options.seed = options.seed + 2;
  MvAgc mvagc(mvagc_options);
  mvagc.Train(dataset, train);

  GraFrank::Options grafrank_options;
  grafrank_options.k = options.k;
  grafrank_options.seed = options.seed + 3;
  GraFrank grafrank(grafrank_options);
  grafrank.Train(dataset, train);

  DcrnnRecommender dcrnn(options.alpha, options.beta, /*hidden_dim=*/8,
                         /*threshold=*/0.5, /*max_hops=*/2,
                         options.seed + 4);
  std::printf("[bench] training DCRNN...\n");
  dcrnn.Train(dataset, train);

  TgcnRecommender tgcn(options.alpha, options.beta, /*hidden_dim=*/8,
                       /*threshold=*/0.5, options.seed + 5);
  std::printf("[bench] training TGCN...\n");
  tgcn.Train(dataset, train);

  Comurnet::Options comurnet_options;
  comurnet_options.iterations = options.comurnet_iterations;
  comurnet_options.delay_steps = options.comurnet_delay_steps;
  comurnet_options.max_recommendations = options.k;
  comurnet_options.seed = options.seed + 6;
  Comurnet comurnet(comurnet_options);

  // --- Evaluation ----------------------------------------------------
  EvalOptions eval;
  eval.beta = options.beta;
  eval.num_targets = options.num_eval_targets;
  eval.target_seed = options.seed + 7;
  // Degrade to the spatial heuristic if a learned method misbehaves
  // mid-evaluation rather than dropping its steps.
  eval.fallback = &nearest_baseline;

  std::vector<Recommender*> fast_methods = {
      &poshgnn, &random_baseline, &nearest_baseline,
      &mvagc,   &grafrank,        &dcrnn,
      &tgcn};
  std::printf("[bench] evaluating on held-out session...\n");
  std::vector<EvalResult> results = EvaluateAll(fast_methods, dataset, eval);

  // COMURNet on a subset of the shared targets (it is ~100-1000x slower;
  // the paper's 22 s/step would make full evaluation intractable here).
  EvalOptions comurnet_eval = eval;
  const std::vector<int> shared_targets = DefaultEvalTargets(
      dataset.num_users(), eval.num_targets, eval.target_seed);
  comurnet_eval.targets.assign(
      shared_targets.begin(),
      shared_targets.begin() +
          std::min<size_t>(shared_targets.size(),
                           static_cast<size_t>(options.comurnet_targets)));
  std::printf("[bench] evaluating COMURNet (%zu targets)...\n",
              comurnet_eval.targets.size());
  results.push_back(EvaluateRecommender(comurnet, dataset, comurnet_eval));

  TablePrinter table(title);
  for (const auto& r : results) table.AddResult(r);
  std::string rendered = table.Render();

  // Surface any graceful degradation the evaluations needed.
  rendered += DegradedLines(results);

  // Significance of POSHGNN against each paired baseline.
  double max_p = 0.0;
  for (size_t i = 1; i < fast_methods.size(); ++i) {
    const TTestResult t =
        PairedTTest(results[0].per_target_after, results[i].per_target_after);
    max_p = std::max(max_p, t.p_value);
  }
  char note[256];
  std::snprintf(note, sizeof(note),
                "  POSHGNN vs paired baselines: max p-value = %.4g "
                "(paper reports p <= 0.0003)\n",
                max_p);
  rendered += note;
  std::fputs(rendered.c_str(), stdout);

  // --- Chaos sweep (--chaos) -----------------------------------------
  // The already-trained methods are re-evaluated once per fault class;
  // each block prints the same table plus the [degraded] counters that
  // quantify how much graceful degradation the faults forced.
  if (options.chaos) {
    const int eval_session = static_cast<int>(dataset.sessions.size()) - 1;
    const XrWorld& session = dataset.sessions[eval_session];
    Rng chaos_rng(options.seed ^ 0xC0FFEEULL);
    EvalOptions chaos_eval = eval;
    chaos_eval.num_targets = options.chaos_eval_targets;

    auto run_variant = [&](const std::string& label,
                           const Dataset& faulted,
                           const std::vector<Recommender*>& methods,
                           const EvalOptions& variant_eval) {
      std::printf("[bench] chaos variant: %s...\n", label.c_str());
      const std::vector<EvalResult> variant_results =
          EvaluateAll(methods, faulted, variant_eval);
      TablePrinter chaos_table(title + " [chaos: " + label + "]");
      for (const auto& r : variant_results) chaos_table.AddResult(r);
      std::string block = chaos_table.Render();
      const std::string degraded = DegradedLines(variant_results);
      block += degraded.empty()
                   ? "  [degraded] (none: every run stayed clean)\n"
                   : degraded;
      std::fputs(block.c_str(), stdout);
      rendered += block;
    };

    // Trajectory faults: corrupted tracking samples, a mid-session
    // disconnect, and a glitching/teleporting user.
    {
      Dataset faulted = dataset;
      faulted.sessions[eval_session] =
          testing::WithNanPositions(session, /*num_poisoned_steps=*/10,
                                    chaos_rng);
      run_variant("nan-positions", faulted, fast_methods, chaos_eval);
    }
    {
      Dataset faulted = dataset;
      faulted.sessions[eval_session] = testing::WithUserDroppedMidSession(
          session, chaos_rng.UniformInt(dataset.num_users()),
          session.num_steps() / 2);
      run_variant("user-drop", faulted, fast_methods, chaos_eval);
    }
    {
      Dataset faulted = dataset;
      faulted.sessions[eval_session] = testing::WithTeleportingUser(
          session, chaos_rng.UniformInt(dataset.num_users()), /*period=*/7,
          /*room_side=*/10.0, chaos_rng);
      run_variant("teleport", faulted, fast_methods, chaos_eval);
    }
    // Numeric fault: poisoned utility store.
    {
      Dataset faulted = dataset;
      testing::PoisonUtilities(&faulted, /*num_entries=*/25, chaos_rng);
      run_variant("poisoned-utilities", faulted, fast_methods, chaos_eval);
    }
    // Model fault: the primary crashes mid-session and the evaluator
    // must ride the NearestRecommender fallback.
    {
      testing::FaultyRecommender crashing(&poshgnn, /*healthy_steps=*/20);
      run_variant("model-crash", dataset, {&crashing, &nearest_baseline},
                  chaos_eval);
    }
    // Latency fault: a per-step deadline squeeze (kTimeout-style
    // coverage — COMURNet-scale methods blow any real-time budget).
    {
      EvalOptions deadline_eval = chaos_eval;
      deadline_eval.recommend_deadline_ms = options.chaos_deadline_ms;
      run_variant("deadline", dataset, fast_methods, deadline_eval);
    }
  }
  return rendered;
}

}  // namespace bench
}  // namespace after
