#include "bench/bench_util.h"

#include <algorithm>
#include <cstdio>
#include <memory>

#include "baselines/comurnet.h"
#include "baselines/dcrnn_recommender.h"
#include "baselines/grafrank.h"
#include "baselines/mvagc.h"
#include "baselines/nearest_recommender.h"
#include "baselines/random_recommender.h"
#include "baselines/tgcn_recommender.h"
#include "core/poshgnn.h"
#include "eval/stats.h"
#include "eval/table_printer.h"

namespace after {
namespace bench {

std::vector<EvalResult> EvaluateAll(
    const std::vector<Recommender*>& methods, const Dataset& dataset,
    const EvalOptions& eval) {
  std::vector<EvalResult> results;
  results.reserve(methods.size());
  for (Recommender* method : methods)
    results.push_back(EvaluateRecommender(*method, dataset, eval));
  return results;
}

std::string RunComparisonBench(const Dataset& dataset,
                               const ComparisonOptions& options,
                               const std::string& title) {
  // A degenerate dataset (no sessions, no users, or fewer than two
  // sessions' worth of data) would previously abort deep inside the
  // trainers; fail the bench gracefully instead.
  if (dataset.num_users() <= 0 || dataset.sessions.empty()) {
    const std::string message =
        "[bench] " + title + ": dataset has no users or sessions; skipped\n";
    std::fputs(message.c_str(), stderr);
    return message;
  }

  TrainOptions train;
  train.epochs = options.train_epochs;
  train.targets_per_epoch = options.train_targets_per_epoch;
  train.seed = options.seed;
  train.verbose = options.verbose_training;

  // --- Methods -------------------------------------------------------
  PoshgnnConfig poshgnn_config;
  poshgnn_config.beta = options.beta;
  poshgnn_config.alpha = options.alpha;
  poshgnn_config.seed = options.seed;
  Poshgnn poshgnn(poshgnn_config);
  std::printf("[bench] training POSHGNN...\n");
  poshgnn.Train(dataset, train);

  RandomRecommender random_baseline(options.k, options.seed + 1);
  NearestRecommender nearest_baseline(options.k);

  MvAgc::Options mvagc_options;
  mvagc_options.num_groups = std::max(2, dataset.num_users() / 20);
  mvagc_options.seed = options.seed + 2;
  MvAgc mvagc(mvagc_options);
  mvagc.Train(dataset, train);

  GraFrank::Options grafrank_options;
  grafrank_options.k = options.k;
  grafrank_options.seed = options.seed + 3;
  GraFrank grafrank(grafrank_options);
  grafrank.Train(dataset, train);

  DcrnnRecommender dcrnn(options.alpha, options.beta, /*hidden_dim=*/8,
                         /*threshold=*/0.5, /*max_hops=*/2,
                         options.seed + 4);
  std::printf("[bench] training DCRNN...\n");
  dcrnn.Train(dataset, train);

  TgcnRecommender tgcn(options.alpha, options.beta, /*hidden_dim=*/8,
                       /*threshold=*/0.5, options.seed + 5);
  std::printf("[bench] training TGCN...\n");
  tgcn.Train(dataset, train);

  Comurnet::Options comurnet_options;
  comurnet_options.iterations = options.comurnet_iterations;
  comurnet_options.delay_steps = options.comurnet_delay_steps;
  comurnet_options.max_recommendations = options.k;
  comurnet_options.seed = options.seed + 6;
  Comurnet comurnet(comurnet_options);

  // --- Evaluation ----------------------------------------------------
  EvalOptions eval;
  eval.beta = options.beta;
  eval.num_targets = options.num_eval_targets;
  eval.target_seed = options.seed + 7;
  // Degrade to the spatial heuristic if a learned method misbehaves
  // mid-evaluation rather than dropping its steps.
  eval.fallback = &nearest_baseline;

  std::vector<Recommender*> fast_methods = {
      &poshgnn, &random_baseline, &nearest_baseline,
      &mvagc,   &grafrank,        &dcrnn,
      &tgcn};
  std::printf("[bench] evaluating on held-out session...\n");
  std::vector<EvalResult> results = EvaluateAll(fast_methods, dataset, eval);

  // COMURNet on a subset of the shared targets (it is ~100-1000x slower;
  // the paper's 22 s/step would make full evaluation intractable here).
  EvalOptions comurnet_eval = eval;
  const std::vector<int> shared_targets = DefaultEvalTargets(
      dataset.num_users(), eval.num_targets, eval.target_seed);
  comurnet_eval.targets.assign(
      shared_targets.begin(),
      shared_targets.begin() +
          std::min<size_t>(shared_targets.size(),
                           static_cast<size_t>(options.comurnet_targets)));
  std::printf("[bench] evaluating COMURNet (%zu targets)...\n",
              comurnet_eval.targets.size());
  results.push_back(EvaluateRecommender(comurnet, dataset, comurnet_eval));

  TablePrinter table(title);
  for (const auto& r : results) table.AddResult(r);
  std::string rendered = table.Render();

  // Surface any graceful degradation the evaluations needed so table
  // numbers produced under faults are never silently taken at face value.
  for (const auto& r : results) {
    const EvalDiagnostics& d = r.diagnostics;
    if (d.clean()) continue;
    char diag[256];
    std::snprintf(diag, sizeof(diag),
                  "  [degraded] %s: %d poisoned steps skipped, %d fallback "
                  "steps, %d failed steps, %d targets skipped, %d non-finite "
                  "utilities zeroed\n",
                  r.method.c_str(), d.poisoned_steps_skipped, d.fallback_steps,
                  d.failed_steps_skipped, d.skipped_targets,
                  d.non_finite_utilities_zeroed);
    rendered += diag;
  }

  // Significance of POSHGNN against each paired baseline.
  double max_p = 0.0;
  for (size_t i = 1; i < fast_methods.size(); ++i) {
    const TTestResult t =
        PairedTTest(results[0].per_target_after, results[i].per_target_after);
    max_p = std::max(max_p, t.p_value);
  }
  char note[256];
  std::snprintf(note, sizeof(note),
                "  POSHGNN vs paired baselines: max p-value = %.4g "
                "(paper reports p <= 0.0003)\n",
                max_p);
  rendered += note;
  std::fputs(rendered.c_str(), stdout);
  return rendered;
}

}  // namespace bench
}  // namespace after
