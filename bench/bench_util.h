#ifndef AFTER_BENCH_BENCH_UTIL_H_
#define AFTER_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/evaluator.h"
#include "core/recommender.h"
#include "data/dataset.h"

namespace after {
namespace bench {

/// Shared harness for the Table II/III/IV comparison benches: builds all
/// eight methods (POSHGNN + 7 baselines), trains the learned ones on the
/// leading sessions, evaluates everything on the held-out session, prints
/// the paper-style table plus significance notes.
struct ComparisonOptions {
  /// Display budget for the fixed-size baselines (Random, Nearest,
  /// GraFrank).
  int k = 10;
  /// POSHGNN / recurrent-baseline training budget.
  int train_epochs = 16;
  int train_targets_per_epoch = 5;
  /// Evaluation targets (shared across methods for paired comparisons).
  int num_eval_targets = 16;
  /// COMURNet is orders of magnitude slower; it is evaluated on this many
  /// of the shared targets (>= 2) and its utilities reported over those.
  int comurnet_targets = 2;
  int comurnet_iterations = 10000;
  /// Staleness of COMURNet's pipeline in steps (see Comurnet::Options).
  int comurnet_delay_steps = 44;
  double beta = 0.5;
  double alpha = 0.01;
  uint64_t seed = 17;
  bool verbose_training = false;
  /// --chaos: after the clean table, re-run the evaluation once per
  /// in-memory fault class from testing/fault_injection (NaN positions,
  /// mid-session drop, teleporting user, poisoned utilities, a crashing
  /// primary, and a per-step deadline squeeze) and report each run's
  /// [degraded] EvalDiagnostics counters alongside the clean numbers.
  /// Methods are trained once and reused; COMURNet is excluded (its
  /// per-step cost would dominate the sweep).
  bool chaos = false;
  /// Eval targets per chaos variant (kept below num_eval_targets: the
  /// sweep multiplies method count by fault classes).
  int chaos_eval_targets = 6;
  /// Per-step Recommend() budget (ms) for the "deadline" chaos variant.
  double chaos_deadline_ms = 0.05;
};

/// Runs the comparison and prints the table; returns the rendered text.
std::string RunComparisonBench(const Dataset& dataset,
                               const ComparisonOptions& options,
                               const std::string& title);

/// Evaluates a pre-built recommender set on a dataset (used by the
/// sensitivity benches). Returns results in method order.
std::vector<EvalResult> EvaluateAll(
    const std::vector<Recommender*>& methods, const Dataset& dataset,
    const EvalOptions& eval);

}  // namespace bench
}  // namespace after

#endif  // AFTER_BENCH_BENCH_UTIL_H_
