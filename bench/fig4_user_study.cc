// Reproduces Fig. 4 and Table VIII: the 48-participant user study.
//
// Fig. 4 (three panels): per-method average utility per time step paired
// with average Likert feedback for overall satisfaction (AFTER utility),
// display customization (preference utility) and the feeling of being
// with friends (social presence utility).
//
// Table VIII: Pearson / Spearman correlations between each utility and
// the corresponding feedback across all (participant, method) pairs.
//
// Expected shape: POSHGNN leads both utility and feedback on all three
// panels; COMURNet scores well on customization but poorly on social
// presence; correlations are strongly positive (paper: Pearson ~0.9).

#include <cstdio>

#include "eval/table_printer.h"
#include "userstudy/user_study.h"

int main() {
  using namespace after;

  UserStudyConfig config;
  config.num_participants = 48;
  config.seed = 2024;
  std::printf("[fig4] running the simulated 48-participant study...\n");
  const UserStudyResult study = RunUserStudy(config);

  std::vector<std::string> columns;
  std::vector<double> after_utility, satisfaction;
  std::vector<double> preference, customization;
  std::vector<double> presence, togetherness;
  for (const auto& m : study.methods) {
    columns.push_back(m.method);
    after_utility.push_back(m.avg_after_per_step);
    satisfaction.push_back(m.satisfaction_likert);
    preference.push_back(m.avg_preference_per_step);
    customization.push_back(m.customization_likert);
    presence.push_back(m.avg_presence_per_step);
    togetherness.push_back(m.togetherness_likert);
  }

  std::fputs(RenderGenericTable(
                 "Fig. 4 (top): overall utility & satisfaction feedback",
                 {"AFTER utility / render", "Satisfaction (Likert 1-5)"},
                 columns, {after_utility, satisfaction}, 3)
                 .c_str(),
             stdout);
  std::fputs(RenderGenericTable(
                 "Fig. 4 (middle): preference utility & customization",
                 {"Preference / render", "Customization (Likert 1-5)"},
                 columns, {preference, customization}, 3)
                 .c_str(),
             stdout);
  std::fputs(RenderGenericTable(
                 "Fig. 4 (bottom): social presence & togetherness",
                 {"Social presence / render", "Togetherness (Likert 1-5)"},
                 columns, {presence, togetherness}, 3)
                 .c_str(),
             stdout);

  std::fputs(RenderGenericTable(
                 "Table VIII: correlation of utilities vs feedback",
                 {"Pearson", "Spearman"},
                 {"Preference", "Social Presence", "AFTER (satisf.)"},
                 {{study.pearson_preference, study.pearson_presence,
                   study.pearson_after},
                  {study.spearman_preference, study.spearman_presence,
                   study.spearman_after}},
                 3)
                 .c_str(),
             stdout);

  std::printf(
      "  POSHGNN vs baselines, paired t-test on satisfaction: max "
      "p-value = %.4g (paper reports p <= 0.004)\n",
      study.max_p_value_vs_poshgnn);
  return 0;
}
