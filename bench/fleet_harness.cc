#include "bench/fleet_harness.h"

#include <cstdio>
#include <filesystem>
#include <system_error>
#include <utility>

#include "core/poshgnn.h"
#include "serve/server_types.h"

namespace after {
namespace bench {

LocalFleet::~LocalFleet() {
  stop.store(true);
  if (ticker.joinable()) ticker.join();
  if (router_net) router_net->Shutdown();
  if (router_pool) router_pool->Shutdown();
  if (router) router->Shutdown();
  for (auto& net : shard_nets) net->Shutdown();
  for (auto& shard : shards) shard->Shutdown();
}

bool AddShard(LocalFleet* fleet, int rooms, int threads, bool partitioned,
              const std::string& durable_dir,
              serve::BackendAddress* address) {
  const FleetRoomFactory& make_room = fleet->room_factory;
  std::vector<std::unique_ptr<serve::Room>> room_list;
  if (!partitioned) {
    for (int r = 0; r < rooms; ++r) {
      auto created = make_room(r);
      if (!created.ok()) {
        std::fprintf(stderr, "shard room %d: %s\n", r,
                     created.status().ToString().c_str());
        return false;
      }
      room_list.push_back(std::move(created).value());
    }
  }
  serve::ServerOptions server_options;
  server_options.num_threads = threads;
  server_options.default_deadline_ms = 1000.0;
  PoshgnnConfig model_config;
  model_config.seed = 42;
  serve::RecommenderFactory factory;
  if (fleet->engine_set) {
    auto source = std::make_shared<Poshgnn>(model_config);
    const InferEngine engine = fleet->engine;
    factory = [source, engine] {
      return std::make_unique<FrozenPoshgnn>(*source, engine);
    };
  } else {
    factory = [model_config] {
      return std::make_unique<Poshgnn>(model_config);
    };
  }
  auto server = std::make_unique<serve::RecommendationServer>(
      std::move(room_list), std::move(factory), server_options);
  auto control = std::make_unique<serve::ShardControl>(
      server.get(),
      [make_room](int r) { return make_room(r); });
  std::unique_ptr<serve::DurabilityManager> durability;
  if (!durable_dir.empty()) {
    std::error_code ignored;
    std::filesystem::create_directories(durable_dir, ignored);
    serve::DurabilityManager::Options durable_options;
    durable_options.dir = durable_dir;
    durable_options.checkpoint_every_ticks = 64;
    auto opened = serve::DurabilityManager::Open(durable_options);
    if (!opened.ok()) {
      std::fprintf(stderr, "durability %s: %s\n", durable_dir.c_str(),
                   opened.status().ToString().c_str());
      return false;
    }
    durability = std::move(opened).value();
    durability->Attach(server.get());
    server->set_durability(durability.get());
    control->set_durability(durability.get());
    // Replay before serving: a restarted shard must never answer for a
    // room it has not finished rebuilding.
    auto recovered = control->RecoverFromDurable();
    if (!recovered.ok()) {
      std::fprintf(stderr, "RecoverFromDurable %s: %s\n", durable_dir.c_str(),
                   recovered.status().ToString().c_str());
      return false;
    }
  }
  auto net = std::make_unique<serve::NetServer>(
      serve::NetServer::HandlerFor(server.get()), serve::NetServerOptions{});
  if (partitioned)
    net->set_room_control(serve::NetServer::ControlFor(control.get()));
  const Status started = net->Start();
  if (!started.ok()) {
    std::fprintf(stderr, "shard start: %s\n", started.ToString().c_str());
    return false;
  }
  *address = {net->host(), net->port()};
  std::lock_guard<std::mutex> lock(fleet->mutex);
  if (durability != nullptr) {
    fleet->durabilities.push_back(std::move(durability));
    fleet->durable_dirs.push_back(durable_dir);
  }
  fleet->shards.push_back(std::move(server));
  fleet->controls.push_back(std::move(control));
  fleet->shard_nets.push_back(std::move(net));
  return true;
}

serve::RouterOptions FleetRouterOptions(int replication) {
  serve::RouterOptions router_options;
  router_options.ejection_ms = 200.0;
  router_options.health_check_interval_ms = 100.0;
  router_options.replication_factor = replication;
  return router_options;
}

bool StartRouterFront(LocalFleet* fleet, int threads, int port,
                      int max_connections) {
  fleet->router_pool = std::make_unique<serve::ThreadPool>(threads, 1024);
  serve::ShardRouter* router = fleet->router.get();
  serve::ThreadPool* pool = fleet->router_pool.get();
  serve::NetServerOptions net_options;
  net_options.port = port;
  net_options.max_connections = max_connections;
  // Long enough that a swarm connection pinged every few seconds never
  // looks idle; short enough that leaked connections do get reaped.
  net_options.idle_timeout_ms = 30000.0;
  fleet->router_net = std::make_unique<serve::NetServer>(
      [router, pool](const serve::FriendRequest& request,
                     std::function<void(const serve::FriendResponse&)> done) {
        auto done_ptr = std::make_shared<
            std::function<void(const serve::FriendResponse&)>>(
            std::move(done));
        if (!pool->TrySubmit([router, request, done_ptr] {
              (*done_ptr)(router->Route(request));
            })) {
          serve::FriendResponse response;
          response.status =
              ResourceExhaustedError("router queue full; load shed");
          (*done_ptr)(response);
        }
      },
      net_options);
  const Status started = fleet->router_net->Start();
  if (!started.ok()) {
    std::fprintf(stderr, "router: %s\n", started.ToString().c_str());
    return false;
  }
  return true;
}

void StartTicker(LocalFleet* fleet) {
  fleet->ticker = std::thread([fleet] {
    while (!fleet->stop.load(std::memory_order_relaxed)) {
      {
        std::lock_guard<std::mutex> lock(fleet->mutex);
        for (auto& shard : fleet->shards) shard->TickAll();
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });
}

std::string ShardDurableDir(const std::string& base, int shard) {
  return base.empty() ? std::string()
                      : base + "/shard-" + std::to_string(shard);
}

std::unique_ptr<LocalFleet> StartLocalFleet(const FleetConfig& config,
                                            FleetRoomFactory room_factory) {
  auto fleet = std::make_unique<LocalFleet>();
  fleet->room_factory = std::move(room_factory);
  fleet->engine_set = config.engine_set;
  fleet->engine = config.engine;

  std::vector<serve::BackendAddress> backends;
  for (int s = 0; s < config.shards; ++s) {
    serve::BackendAddress address;
    if (!AddShard(fleet.get(), config.rooms, config.threads,
                  config.partitioned,
                  ShardDurableDir(config.durable_base, s), &address))
      return nullptr;
    backends.push_back(address);
  }

  fleet->router = std::make_unique<serve::ShardRouter>(
      backends, FleetRouterOptions(config.replication));
  if (config.partitioned) {
    const Status enabled = fleet->router->EnablePartition(config.rooms);
    if (!enabled.ok()) {
      std::fprintf(stderr, "EnablePartition(%d): %s\n", config.rooms,
                   enabled.ToString().c_str());
      return nullptr;
    }
  }
  if (!StartRouterFront(fleet.get(), config.threads, /*port=*/0,
                        config.front_max_connections))
    return nullptr;
  StartTicker(fleet.get());
  return fleet;
}

}  // namespace bench
}  // namespace after
