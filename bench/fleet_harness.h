#ifndef AFTER_BENCH_FLEET_HARNESS_H_
#define AFTER_BENCH_FLEET_HARNESS_H_

// Self-contained serving fleet for the macro benchmarks: N shard
// servers plus a consistent-hash router front, all over real loopback
// sockets in one process. Extracted from bench/net_throughput.cc so the
// world-scale scenario driver (bench/world_sim.cc) shares one battle-
// tested harness instead of growing a second, subtly different fleet.
//
// The harness is deliberately policy-free about room contents: callers
// supply a FleetRoomFactory, so net_throughput builds uniform rooms
// from one dataset while world_sim builds Zipf-skewed room sizes from a
// per-size dataset pool. Everything else — partitioned ownership,
// replication standbys, durability replay, mid-run shard adds, and the
// cold-restart drill's rebuild path — is common machinery.

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "core/poshgnn.h"
#include "serve/checkpoint.h"
#include "serve/net_server.h"
#include "serve/room.h"
#include "serve/router.h"
#include "serve/server.h"
#include "serve/shard_control.h"
#include "serve/thread_pool.h"

namespace after {
namespace bench {

/// Builds one room for the self-contained fleet. Called for every room
/// id a shard pre-builds (full replication) or is granted / rebuilds
/// (partitioned serving, cold restart). Must be deterministic per room
/// id: a standby or recovered copy has to be built from the same recipe
/// as the primary it replaces. Whatever the factory captures (datasets,
/// options) must outlive the fleet, including mid-run AddShard calls.
using FleetRoomFactory =
    std::function<Result<std::unique_ptr<serve::Room>>(int room)>;

/// Self-contained fleet: N shard servers plus a router front.
struct LocalFleet {
  /// Room recipe shared by every shard (see FleetRoomFactory).
  FleetRoomFactory room_factory;
  /// Engine override: every shard (including ones added mid-run or
  /// rebuilt by the cold-restart drill) freezes its primary on this
  /// inference engine instead of serving the mutable model.
  bool engine_set = false;
  InferEngine engine = InferEngine::kFusedF32;
  /// Guards the three shard vectors: AddShard (mid-run fleet growth)
  /// races the ticker thread otherwise.
  std::mutex mutex;
  /// Declared before the servers that borrow them, so destruction
  /// (reverse order) tears the servers down first.
  std::vector<std::unique_ptr<serve::DurabilityManager>> durabilities;
  /// One durable dir per durable shard, in shard order — the restart
  /// half of the cold-restart drill reopens exactly these.
  std::vector<std::string> durable_dirs;
  std::vector<std::unique_ptr<serve::RecommendationServer>> shards;
  std::vector<std::unique_ptr<serve::ShardControl>> controls;
  std::vector<std::unique_ptr<serve::NetServer>> shard_nets;
  std::unique_ptr<serve::ShardRouter> router;
  std::unique_ptr<serve::ThreadPool> router_pool;
  std::unique_ptr<serve::NetServer> router_net;
  std::atomic<bool> stop{false};
  std::thread ticker;

  ~LocalFleet();
};

/// Starts one shard worker and appends it to the fleet. Partitioned
/// shards start empty and host whatever the router grants them (same
/// room recipe via fleet->room_factory); full-replication shards
/// pre-build rooms 0..rooms-1. A non-empty `durable_dir` attaches a
/// journal + checkpoint subsystem there and replays whatever durable
/// state the dir already holds before the shard starts serving.
/// Returns false (with a message on stderr) on failure.
bool AddShard(LocalFleet* fleet, int rooms, int threads, bool partitioned,
              const std::string& durable_dir, serve::BackendAddress* address);

serve::RouterOptions FleetRouterOptions(int replication);

/// Builds the router's thread pool + TCP front over fleet->router.
/// `port` 0 picks an ephemeral port; the cold-restart drill passes the
/// pre-crash port so closed-loop clients reconnect transparently.
/// `max_connections` sizes the front for idle swarms / reconnect storms
/// on top of the closed-loop clients.
bool StartRouterFront(LocalFleet* fleet, int threads, int port,
                      int max_connections);

/// Ticker thread: advances every shard's rooms every ~10 ms until
/// fleet->stop. Restartable (the cold-restart drill stops and restarts
/// it around the rebuild).
void StartTicker(LocalFleet* fleet);

/// Durable-dir layout helper: "" stays "", otherwise base + "/shard-N".
std::string ShardDurableDir(const std::string& base, int shard);

struct FleetConfig {
  int shards = 2;
  /// Partitioned: rooms 0..rooms-1 are granted across the shards.
  /// Full replication: every shard pre-builds all of them.
  int rooms = 2;
  /// Worker threads per shard and for the router front pool.
  int threads = 2;
  bool partitioned = false;
  /// Warm standbys per room (partitioned only).
  int replication = 0;
  /// Non-empty: every shard gets a durability subsystem under
  /// base + "/shard-N".
  std::string durable_base;
  bool engine_set = false;
  InferEngine engine = InferEngine::kFusedF32;
  /// Connection cap for the router front.
  int front_max_connections = 256;
};

/// Builds and starts the whole fleet (shards, router, front, ticker).
/// Null on failure (details on stderr).
std::unique_ptr<LocalFleet> StartLocalFleet(const FleetConfig& config,
                                            FleetRoomFactory room_factory);

}  // namespace bench
}  // namespace after

#endif  // AFTER_BENCH_FLEET_HARNESS_H_
