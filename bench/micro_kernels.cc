// Micro-benchmarks (google-benchmark) for the kernels behind the paper's
// "Running Time" rows: dense matmul, occlusion-graph conversion, MWIS
// heuristics, MIA aggregation and a full POSHGNN inference step. These
// explain where the ~5-8 ms per-step budget of Tables II-IV goes.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/poshgnn.h"
#include "data/dataset.h"
#include "graph/mwis.h"
#include "graph/occlusion_converter.h"
#include "infer/dispatch.h"
#include "infer/kernels.h"
#include "infer/tensor.h"
#include "tensor/matrix.h"

namespace after {
namespace {

void BM_MatMul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  const Matrix a = Matrix::Randn(n, n, 1.0, rng);
  const Matrix b = Matrix::Randn(n, 8, 1.0, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.MatMul(b));
  }
}
BENCHMARK(BM_MatMul)->Arg(50)->Arg(200)->Arg(500);

/// f32 counterpart of BM_MatMul on the inference kernels (same n x n by
/// n x 8 shape) — the f64-vs-f32 raw-kernel speedup the inference
/// engine banks on. Labeled with the SIMD tier that actually ran.
void BM_MatMulF32(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  const infer::TensorF32 a =
      infer::TensorF32::FromMatrix(Matrix::Randn(n, n, 1.0, rng));
  const infer::TensorF32 b =
      infer::TensorF32::FromMatrix(Matrix::Randn(n, 8, 1.0, rng));
  infer::TensorF32 c(n, 8);
  const infer::KernelOps& ops = infer::OpsFor(infer::ActiveSimdLevel());
  for (auto _ : state) {
    ops.matmul(n, n, 8, a.data(), b.data(), c.data());
    benchmark::DoNotOptimize(c.data());
    benchmark::ClobberMemory();
  }
  state.SetLabel(infer::SimdLevelName(infer::ActiveSimdLevel()));
}
BENCHMARK(BM_MatMulF32)->Arg(50)->Arg(200)->Arg(500);

void BM_OcclusionGraphBuild(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(2);
  std::vector<Vec2> positions;
  for (int i = 0; i < n; ++i)
    positions.emplace_back(rng.Uniform(0, 10), rng.Uniform(0, 10));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildOcclusionGraph(positions, 0, 0.25));
  }
}
BENCHMARK(BM_OcclusionGraphBuild)->Arg(50)->Arg(200)->Arg(500);

void BM_GreedyMwis(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(3);
  std::vector<Vec2> positions;
  for (int i = 0; i < n; ++i)
    positions.emplace_back(rng.Uniform(0, 10), rng.Uniform(0, 10));
  const OcclusionGraph graph = BuildOcclusionGraph(positions, 0, 0.25);
  std::vector<double> weights(n);
  for (auto& w : weights) w = rng.Uniform();
  for (auto _ : state) {
    benchmark::DoNotOptimize(GreedyMwis(graph, weights));
  }
}
BENCHMARK(BM_GreedyMwis)->Arg(50)->Arg(200);

void BM_LocalSearchMwis(benchmark::State& state) {
  const int n = 200;
  const int iterations = static_cast<int>(state.range(0));
  Rng rng(4);
  std::vector<Vec2> positions;
  for (int i = 0; i < n; ++i)
    positions.emplace_back(rng.Uniform(0, 10), rng.Uniform(0, 10));
  const OcclusionGraph graph = BuildOcclusionGraph(positions, 0, 0.25);
  std::vector<double> weights(n);
  for (auto& w : weights) w = rng.Uniform();
  Rng search_rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        LocalSearchMwis(graph, weights, iterations, search_rng));
  }
}
BENCHMARK(BM_LocalSearchMwis)->Arg(100)->Arg(1000)->Arg(10000);

/// Shared fixture state for POSHGNN inference benchmarks.
struct PoshgnnBench {
  Dataset dataset;
  Poshgnn model;

  explicit PoshgnnBench(int n)
      : dataset([n] {
          DatasetConfig config;
          config.num_users = n;
          config.num_steps = 5;
          config.num_sessions = 1;
          config.seed = 6;
          return GenerateTimikLike(config);
        }()),
        model(PoshgnnConfig()) {}
};

void BM_PoshgnnInferenceStep(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  PoshgnnBench bench(n);
  const XrWorld& world = bench.dataset.sessions[0];
  const OcclusionGraph occlusion =
      BuildOcclusionGraph(world.PositionsAt(0), 0, world.body_radius());
  StepContext context;
  context.target = 0;
  context.positions = &world.PositionsAt(0);
  context.occlusion = &occlusion;
  context.interfaces = &world.interfaces();
  context.preference = &bench.dataset.preference;
  context.social_presence = &bench.dataset.social_presence;
  context.body_radius = world.body_radius();

  bench.model.BeginSession(n, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench.model.Recommend(context));
  }
}
BENCHMARK(BM_PoshgnnInferenceStep)->Arg(30)->Arg(200)->Arg(500);

/// One frozen (serving-path) inference step per engine. The pair is the
/// f64-vs-f32 comparison the inference engine is gated on: same inputs,
/// same selections, the fused f32 path must be at least ~2x faster
/// (scripts/check.sh bench lane; docs/inference.md).
void FrozenStepBench(benchmark::State& state, InferEngine engine) {
  const int n = static_cast<int>(state.range(0));
  PoshgnnBench bench(n);
  const XrWorld& world = bench.dataset.sessions[0];
  const OcclusionGraph occlusion =
      BuildOcclusionGraph(world.PositionsAt(0), 0, world.body_radius());
  StepContext context;
  context.target = 0;
  context.positions = &world.PositionsAt(0);
  context.occlusion = &occlusion;
  context.interfaces = &world.interfaces();
  context.preference = &bench.dataset.preference;
  context.social_presence = &bench.dataset.social_presence;
  context.body_radius = world.body_radius();

  FrozenPoshgnn frozen(bench.model, engine);
  for (auto _ : state) {
    benchmark::DoNotOptimize(frozen.Recommend(context));
  }
  state.SetLabel(engine == InferEngine::kFusedF32
                     ? infer::SimdLevelName(infer::ActiveSimdLevel())
                     : "reference");
}

void BM_FrozenPoshgnnStepF64(benchmark::State& state) {
  FrozenStepBench(state, InferEngine::kReferenceF64);
}
BENCHMARK(BM_FrozenPoshgnnStepF64)->Arg(30)->Arg(200)->Arg(500);

void BM_FrozenPoshgnnStepF32(benchmark::State& state) {
  FrozenStepBench(state, InferEngine::kFusedF32);
}
BENCHMARK(BM_FrozenPoshgnnStepF32)->Arg(30)->Arg(200)->Arg(500);

void BM_MiaAggregation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  PoshgnnBench bench(n);
  const XrWorld& world = bench.dataset.sessions[0];
  const OcclusionGraph occlusion =
      BuildOcclusionGraph(world.PositionsAt(0), 0, world.body_radius());
  StepContext context;
  context.target = 0;
  context.positions = &world.PositionsAt(0);
  context.occlusion = &occlusion;
  context.interfaces = &world.interfaces();
  context.preference = &bench.dataset.preference;
  context.social_presence = &bench.dataset.social_presence;
  context.body_radius = world.body_radius();

  Mia mia;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mia.Process(context));
  }
}
BENCHMARK(BM_MiaAggregation)->Arg(200)->Arg(500);

}  // namespace
}  // namespace after

BENCHMARK_MAIN();
