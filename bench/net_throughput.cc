// Closed-loop load generator for the networked serving runtime: the TCP
// counterpart of serve_throughput. Each client owns one NetClient
// connection and issues its next FriendRequest as soon as the previous
// answer lands, so the client count is the offered-load knob and every
// request is accounted for — a request either gets a wire response (OK,
// shed, timeout, unavailable, ...) or a client-side transport error;
// nothing is silently lost.
//
// Two targets:
//   --port=N [--host=H]   drive an already-running fleet front
//                         (tools/shard_router or a single serve_shard)
//   --shards=N            self-contained: spin N in-process shard
//                         servers + a router front over real sockets,
//                         drive it, tear it down (the CI bench smoke)
// In self-contained mode, --kill_shard_ms=T kills shard 0 after T ms to
// demonstrate retry-next-shard failover under fire, and
// --add_shard_ms=T starts an extra shard mid-run and folds it into the
// live fleet (AddBackendLive).
//
// --partitioned switches the self-contained fleet to room-partitioned
// serving: shards start empty, the router grants each room to
// 1 + --replication owners (kRoomAssign), and a kill exercises
// standby promotion + RepairPartition while an add exercises live
// migration with state handoff. The run fails (exit 2) if any request
// is lost, any unexpected error class appears, or the final primary
// spread across healthy shards exceeds 1 + replication.
//
// --durable_dir=PATH gives every partitioned shard a durability
// subsystem (journal + checkpoints under PATH/shard-<i>), and
// --cold_restart_ms=T runs the crash drill: after T ms the ENTIRE
// fleet — every shard and the router — is torn down mid-run, rebuilt
// from the durable directories alone, and reconciled via the router's
// recovery phase (kRoomRecover). The run fails (exit 2) unless every
// room comes back bit-exact with zero lost rooms; clients meanwhile
// see a reconnect window (kUnavailable), never a protocol error.
//
// The connection-count axis (--connections=N) adds an idle swarm on
// top of the closed-loop load: N extra connections that sit mostly
// idle, with a rotating slice of them pinged in bursts every ~250 ms —
// the C10k shape (many connections, few active at any instant). Every
// ping must come back as a pong (correlated by request id); a missing
// pong fails the run, so the epoll front is gated on never dropping a
// mostly-idle connection even while the closed-loop clients saturate
// it. The process raises RLIMIT_NOFILE to fit the swarm (self-
// contained mode holds both ends of every socket, ~2 fds each).
//
// --pipeline=D switches the closed-loop clients to pipelined bursts:
// each client keeps D requests in flight on its one connection
// (NetClient::CallPipelined), exercising the server's request-ID
// correlation path; the recorded latency is the burst round trip.
//
// Flags: --clients=N --requests=N --rooms=N --users=N --deadline_ms=F
//        --connections=N (idle-swarm size, default 0)
//        --pipeline=D (requests in flight per client, default 1)
//        --threads=N (self-contained: worker threads per shard)
//        --partitioned --replication=N (default 1, partitioned only)
//        --kill_shard_ms=F --add_shard_ms=F
//        --durable_dir=PATH --cold_restart_ms=F (partitioned only)
//        --engine=f32|f64 (self-contained: every shard serves a frozen
//                          untrained POSHGNN on the chosen inference
//                          engine instead of the default mutable
//                          per-stream primary; docs/inference.md)
//        --json=PATH (write a BENCH_serve.json-style summary)

#include <fcntl.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench/fleet_harness.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/poshgnn.h"
#include "data/dataset.h"
#include "serve/metrics.h"
#include "serve/net_client.h"
#include "serve/net_server.h"
#include "serve/router.h"
#include "serve/server.h"
#include "serve/thread_pool.h"

namespace after {
namespace {

struct Tally {
  std::atomic<long long> ok{0};
  /// OK answers served by the degradation fallback (nearest-neighbor
  /// instead of the full POSHGNN pass). Counted separately so "all
  /// served" and "all served well" are distinguishable downstream.
  std::atomic<long long> degraded{0};
  std::atomic<long long> shed{0};
  std::atomic<long long> timeouts{0};
  std::atomic<long long> unavailable{0};
  std::atomic<long long> not_owner{0};  // kNotOwner that outlived retries
  std::atomic<long long> errors{0};  // any other status / protocol error
  std::atomic<long long> reconnects{0};
  serve::LatencyHistogram latency;

  long long accounted() const {
    return ok.load() + shed.load() + timeouts.load() + unavailable.load() +
           not_owner.load() + errors.load();
  }
};

void Record(Tally* tally, const Status& status, bool used_fallback,
            double rtt_ms) {
  tally->latency.RecordMs(rtt_ms);
  switch (status.code()) {
    case StatusCode::kOk:
      tally->ok.fetch_add(1, std::memory_order_relaxed);
      if (used_fallback)
        tally->degraded.fetch_add(1, std::memory_order_relaxed);
      break;
    case StatusCode::kResourceExhausted:
      tally->shed.fetch_add(1, std::memory_order_relaxed);
      break;
    case StatusCode::kTimeout:
      tally->timeouts.fetch_add(1, std::memory_order_relaxed);
      break;
    case StatusCode::kUnavailable:
      tally->unavailable.fetch_add(1, std::memory_order_relaxed);
      break;
    case StatusCode::kNotOwner:
      // The router retries these internally; one surfacing here means a
      // migration outlived the retry budget. Accounted but non-fatal,
      // like kUnavailable.
      tally->not_owner.fetch_add(1, std::memory_order_relaxed);
      break;
    default:
      tally->errors.fetch_add(1, std::memory_order_relaxed);
      break;
  }
}

/// One closed-loop client: reconnects on transport failure (counting
/// it) so a mid-run backend death shows up as kUnavailable answers, not
/// as a wedged benchmark.
void ClientLoop(const std::string& host, int port, int requests, int rooms,
                int users, double deadline_ms, uint64_t seed, Tally* tally) {
  Rng rng(seed);
  std::unique_ptr<serve::NetClient> client;
  for (int i = 0; i < requests; ++i) {
    if (client == nullptr || client->broken()) {
      auto connected = serve::NetClient::Connect(host, port);
      if (!connected.ok()) {
        Record(tally, connected.status(), false, 0.0);
        client.reset();
        // Brief backoff so a restarting front (cold-restart drill) sees
        // reconnect attempts, not a request budget burned in a tight
        // refused-connection loop.
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        continue;
      }
      client = std::move(connected).value();
      if (i > 0) tally->reconnects.fetch_add(1, std::memory_order_relaxed);
    }
    serve::FriendRequest request;
    request.room = rng.UniformInt(rooms);
    request.user = rng.UniformInt(users);
    request.deadline_ms = deadline_ms;
    WallTimer rtt;
    auto result = client->Call(request);
    if (result.ok())
      Record(tally, result.value().status, result.value().used_fallback,
             rtt.ElapsedMs());
    else
      Record(tally, result.status(), false, rtt.ElapsedMs());
  }
}

/// Closed-loop pipelined client: keeps `pipeline` requests in flight on
/// one connection via CallPipelined, reconnecting on transport failure
/// like ClientLoop. Each answer in a burst is tallied individually; the
/// recorded latency is the burst's round trip.
void PipelinedClientLoop(const std::string& host, int port, int requests,
                         int pipeline, int rooms, int users,
                         double deadline_ms, uint64_t seed, Tally* tally) {
  Rng rng(seed);
  std::unique_ptr<serve::NetClient> client;
  int remaining = requests;
  bool ever_connected = false;
  while (remaining > 0) {
    if (client == nullptr || client->broken()) {
      auto connected = serve::NetClient::Connect(host, port);
      if (!connected.ok()) {
        // One unavailable per failed attempt, consuming one request of
        // budget — same accounting contract as ClientLoop.
        Record(tally, connected.status(), false, 0.0);
        --remaining;
        client.reset();
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        continue;
      }
      client = std::move(connected).value();
      if (ever_connected)
        tally->reconnects.fetch_add(1, std::memory_order_relaxed);
      ever_connected = true;
    }
    const int burst = std::min(pipeline, remaining);
    std::vector<serve::FriendRequest> batch(
        static_cast<size_t>(burst));
    for (auto& request : batch) {
      request.room = rng.UniformInt(rooms);
      request.user = rng.UniformInt(users);
      request.deadline_ms = deadline_ms;
    }
    WallTimer rtt;
    const auto results = client->CallPipelined(batch);
    const double burst_ms = rtt.ElapsedMs();
    for (const auto& result : results) {
      if (result.ok())
        Record(tally, result.value().status, result.value().used_fallback,
               burst_ms);
      else
        Record(tally, result.status(), false, burst_ms);
    }
    remaining -= burst;
  }
}

/// The connection-count axis: a swarm of mostly-idle connections held
/// open against the front while the closed-loop clients run. Every
/// ~250 ms a rotating slice (at most 1024) of them gets a ping burst —
/// bursty wakeups over a large idle set, the C10k traffic shape. Pongs
/// are collected off a private epoll set; the run gates on every ping
/// answered (zero lost wakeups) unless a drill restarts the front.
///
/// The swarm runs in a FORKED CHILD process: RLIMIT_NOFILE is a
/// per-process cap, and self-contained mode holds both ends of every
/// socket — 10k connections would be 20k+ descriptors in one fd table,
/// over the hard limit on locked-down containers (no
/// CAP_SYS_RESOURCE). Split across two processes, each side holds ~10k
/// and fits. The child closes every inherited descriptor first, so the
/// kill/cold-restart drills keep their EOF semantics (a socket the
/// parent closes must actually close).
struct SwarmStats {
  long long connected = 0;
  long long pings = 0;
  long long pongs = 0;
  long long swarm_errors = 0;  // dials or sends that failed
};

/// Child-side body. Dials, reports "up <connected>" on stats_fd, runs
/// ping bursts until stop_fd signals (the parent closes its write
/// end), then drains and reports
/// "done <connected> <pings> <pongs> <errors>".
void SwarmChildLoop(const std::string& host, int port, int connections,
                    int stop_fd, int stats_fd) {
  SwarmStats stats;
  struct SwarmConn {
    int fd = -1;
    std::string inbuf;
  };
  const int epoll_fd = ::epoll_create1(0);
  if (epoll_fd < 0) return;
  std::vector<SwarmConn> conns(static_cast<size_t>(connections));
  for (int i = 0; i < connections; ++i) {
    auto dialed = serve::net_detail::DialBlocking(host, port, 5000.0);
    if (!dialed.ok()) {
      ++stats.swarm_errors;
      continue;
    }
    const int fd = dialed.value();
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    struct epoll_event event = {};
    event.events = EPOLLIN;
    event.data.u64 = static_cast<uint64_t>(i);
    if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &event) != 0) {
      ::close(fd);
      ++stats.swarm_errors;
      continue;
    }
    conns[static_cast<size_t>(i)].fd = fd;
    ++stats.connected;
  }
  {
    char line[64];
    const int len =
        std::snprintf(line, sizeof(line), "up %lld\n", stats.connected);
    (void)!::write(stats_fd, line, static_cast<size_t>(len));
  }

  uint64_t next_id = 1;
  size_t cursor = 0;
  const auto drain = [&](int wait_ms) {
    struct epoll_event events[256];
    const int n = ::epoll_wait(epoll_fd, events, 256, wait_ms);
    for (int e = 0; e < n; ++e) {
      SwarmConn& conn = conns[static_cast<size_t>(events[e].data.u64)];
      if (conn.fd < 0) continue;
      char chunk[4096];
      while (true) {
        const ssize_t got = ::recv(conn.fd, chunk, sizeof(chunk), 0);
        if (got > 0) {
          conn.inbuf.append(chunk, static_cast<size_t>(got));
          continue;
        }
        if (got < 0 && errno == EINTR) continue;
        if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        // EOF or hard error: the front dropped us.
        ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, conn.fd, nullptr);
        ::close(conn.fd);
        conn.fd = -1;
        ++stats.swarm_errors;
        break;
      }
      while (conn.fd >= 0) {
        serve::wire::Frame frame;
        size_t consumed = 0;
        if (!serve::wire::ExtractFrame(conn.inbuf, &frame, &consumed).ok() ||
            consumed == 0)
          break;
        conn.inbuf.erase(0, consumed);
        if (frame.type == serve::wire::MessageType::kPong) ++stats.pongs;
      }
    }
  };
  const auto stop_requested = [stop_fd] {
    struct pollfd probe = {stop_fd, POLLIN, 0};
    return ::poll(&probe, 1, 0) > 0;  // data or HUP: parent said stop
  };

  // First burst fires immediately, so even a short run exercises the
  // wakeup path over the idle set.
  auto last_burst =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(250);
  while (!stop_requested()) {
    drain(/*wait_ms=*/50);
    const auto now = std::chrono::steady_clock::now();
    if (now - last_burst < std::chrono::milliseconds(250)) continue;
    last_burst = now;
    const size_t slice =
        std::min<size_t>(1024, static_cast<size_t>(connections));
    for (size_t k = 0; k < slice && !conns.empty(); ++k) {
      SwarmConn& conn = conns[cursor++ % conns.size()];
      if (conn.fd < 0) continue;
      std::string ping;
      serve::wire::AppendPingFrame(next_id++, &ping);
      if (serve::net_detail::SendAllFd(conn.fd, ping).ok()) {
        ++stats.pings;
      } else {
        ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, conn.fd, nullptr);
        ::close(conn.fd);
        conn.fd = -1;
        ++stats.swarm_errors;
      }
    }
  }
  // Final drain: give in-flight pongs a bounded window to land.
  WallTimer drain_timer;
  while (drain_timer.ElapsedMs() < 2000.0 && stats.pongs < stats.pings)
    drain(/*wait_ms=*/50);
  for (SwarmConn& conn : conns)
    if (conn.fd >= 0) ::close(conn.fd);
  ::close(epoll_fd);
  char line[128];
  const int len =
      std::snprintf(line, sizeof(line), "done %lld %lld %lld %lld\n",
                    stats.connected, stats.pings, stats.pongs,
                    stats.swarm_errors);
  (void)!::write(stats_fd, line, static_cast<size_t>(len));
}

/// Parent-side handle for the forked swarm.
struct SwarmHandle {
  pid_t pid = -1;
  int stop_fd = -1;       // closing it tells the child to wrap up
  FILE* stats = nullptr;  // child's "up"/"done" reports
  SwarmStats final_stats;

  bool running() const { return pid > 0; }

  /// Blocks until the child reports its dial phase finished; returns
  /// the number of connections that made it.
  long long WaitUp() {
    char line[128];
    long long connected = 0;
    if (stats != nullptr && std::fgets(line, sizeof(line), stats) != nullptr)
      std::sscanf(line, "up %lld", &connected);
    final_stats.connected = connected;
    return connected;
  }

  /// Signals stop, collects the final stats line, reaps the child.
  void Finish() {
    if (!running()) return;
    ::close(stop_fd);
    stop_fd = -1;
    char line[128];
    if (stats != nullptr && std::fgets(line, sizeof(line), stats) != nullptr)
      std::sscanf(line, "done %lld %lld %lld %lld", &final_stats.connected,
                  &final_stats.pings, &final_stats.pongs,
                  &final_stats.swarm_errors);
    if (stats != nullptr) std::fclose(stats);
    stats = nullptr;
    int wstatus = 0;
    ::waitpid(pid, &wstatus, 0);
    pid = -1;
  }
};

/// Forks the swarm child. In the child every inherited descriptor is
/// closed (so a parent-side Shutdown() still severs its sockets for
/// the drills), then SwarmChildLoop runs and the child exits without
/// ever touching the fleet. Returns a non-running handle on failure.
SwarmHandle StartSwarm(const std::string& host, int port, int connections) {
  SwarmHandle handle;
  int stop_pipe[2] = {-1, -1}, stats_pipe[2] = {-1, -1};
  if (::pipe(stop_pipe) != 0) return handle;
  if (::pipe(stats_pipe) != 0) {
    ::close(stop_pipe[0]);
    ::close(stop_pipe[1]);
    return handle;
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    for (int fd : {stop_pipe[0], stop_pipe[1], stats_pipe[0], stats_pipe[1]})
      ::close(fd);
    return handle;
  }
  if (pid == 0) {
    // Child: drop every inherited fd except stdio and our two pipe ends.
    struct rlimit limit = {};
    ::getrlimit(RLIMIT_NOFILE, &limit);
    for (int fd = 3; fd < static_cast<int>(limit.rlim_cur); ++fd)
      if (fd != stop_pipe[0] && fd != stats_pipe[1]) ::close(fd);
    SwarmChildLoop(host, port, connections, stop_pipe[0], stats_pipe[1]);
    ::_exit(0);
  }
  ::close(stop_pipe[0]);
  ::close(stats_pipe[1]);
  handle.pid = pid;
  handle.stop_fd = stop_pipe[1];
  handle.stats = ::fdopen(stats_pipe[0], "r");
  return handle;
}

/// Raises the soft RLIMIT_NOFILE toward `needed` descriptors, pushing
/// the hard limit too when the container allows it. Returns the
/// resulting soft limit, logging loudly if it is still short — never a
/// silent cap.
rlim_t EnsureFdLimit(rlim_t needed) {
  struct rlimit limit = {};
  if (::getrlimit(RLIMIT_NOFILE, &limit) != 0) return 0;
  if (limit.rlim_cur >= needed) return limit.rlim_cur;
  struct rlimit want = limit;
  want.rlim_cur = needed;
  if (want.rlim_max < needed) want.rlim_max = needed;  // root may raise it
  if (::setrlimit(RLIMIT_NOFILE, &want) != 0) {
    // No CAP_SYS_RESOURCE: the hard limit is the ceiling.
    want.rlim_cur = limit.rlim_max;
    want.rlim_max = limit.rlim_max;
    if (::setrlimit(RLIMIT_NOFILE, &want) != 0) return limit.rlim_cur;
  }
  if (want.rlim_cur < needed)
    std::fprintf(stderr,
                 "[net_throughput] WARNING: RLIMIT_NOFILE %llu < %llu "
                 "needed; the swarm may exhaust descriptors\n",
                 static_cast<unsigned long long>(want.rlim_cur),
                 static_cast<unsigned long long>(needed));
  return want.rlim_cur;
}

/// Self-contained fleet: see bench/fleet_harness.h (shared with
/// bench/world_sim). This driver keeps only the room recipe: uniform
/// rooms, all built from one generated dataset.
int Main(int argc, char** argv) {
  std::string host = "127.0.0.1", json_path, durable_dir;
  int port = 0, shards = 0, clients = 4, requests = 2000;
  int connections = 0, pipeline = 1;
  int rooms = 2, users = 60, threads = 2, replication = 1;
  bool partitioned = false, rooms_given = false, engine_set = false;
  InferEngine engine = InferEngine::kFusedF32;
  double deadline_ms = 1000.0, kill_shard_ms = 0.0, add_shard_ms = 0.0;
  double cold_restart_ms = 0.0;
  for (int i = 1; i < argc; ++i) {
    int value = 0;
    double fvalue = 0.0;
    char buffer[256] = {};
    if (std::sscanf(argv[i], "--port=%d", &value) == 1) port = value;
    else if (std::sscanf(argv[i], "--shards=%d", &value) == 1)
      shards = value;
    else if (std::sscanf(argv[i], "--clients=%d", &value) == 1)
      clients = value;
    else if (std::sscanf(argv[i], "--requests=%d", &value) == 1)
      requests = value;
    else if (std::sscanf(argv[i], "--connections=%d", &value) == 1)
      connections = value;
    else if (std::sscanf(argv[i], "--pipeline=%d", &value) == 1)
      pipeline = value;
    else if (std::sscanf(argv[i], "--rooms=%d", &value) == 1) {
      rooms = value;
      rooms_given = true;
    }
    else if (std::sscanf(argv[i], "--users=%d", &value) == 1) users = value;
    else if (std::sscanf(argv[i], "--replication=%d", &value) == 1)
      replication = value;
    else if (std::sscanf(argv[i], "--threads=%d", &value) == 1)
      threads = value;
    else if (std::sscanf(argv[i], "--deadline_ms=%lf", &fvalue) == 1)
      deadline_ms = fvalue;
    else if (std::sscanf(argv[i], "--kill_shard_ms=%lf", &fvalue) == 1)
      kill_shard_ms = fvalue;
    else if (std::sscanf(argv[i], "--add_shard_ms=%lf", &fvalue) == 1)
      add_shard_ms = fvalue;
    else if (std::sscanf(argv[i], "--cold_restart_ms=%lf", &fvalue) == 1)
      cold_restart_ms = fvalue;
    else if (std::sscanf(argv[i], "--durable_dir=%255s", buffer) == 1)
      durable_dir = buffer;
    else if (std::strcmp(argv[i], "--partitioned") == 0) partitioned = true;
    else if (std::sscanf(argv[i], "--engine=%255s", buffer) == 1) {
      if (!ParseInferEngine(buffer, &engine)) {
        std::fprintf(stderr, "--engine=%s: want f32 or f64\n", buffer);
        return 1;
      }
      engine_set = true;
    }
    else if (std::sscanf(argv[i], "--host=%255s", buffer) == 1)
      host = buffer;
    else if (std::sscanf(argv[i], "--json=%255s", buffer) == 1)
      json_path = buffer;
    else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 1;
    }
  }
  if (port == 0 && shards == 0) shards = 2;
  if (port != 0 && shards != 0) {
    std::fprintf(stderr, "--port and --shards are mutually exclusive\n");
    return 1;
  }
  if (partitioned && shards == 0) {
    std::fprintf(stderr,
                 "--partitioned needs the self-contained fleet (--shards)\n");
    return 1;
  }
  // Partitioned balance is only interesting with more rooms than
  // shards; give the default enough rooms for ~4 primaries per shard.
  if (partitioned && !rooms_given) rooms = 4 * std::max(1, shards);
  if (!durable_dir.empty() && (shards == 0 || !partitioned)) {
    std::fprintf(stderr,
                 "--durable_dir needs the partitioned self-contained fleet "
                 "(--shards + --partitioned)\n");
    return 1;
  }
  if (cold_restart_ms > 0.0 && durable_dir.empty()) {
    std::fprintf(stderr, "--cold_restart_ms needs --durable_dir\n");
    return 1;
  }
  if (engine_set && shards == 0) {
    std::fprintf(stderr,
                 "--engine needs the self-contained fleet (--shards); a "
                 "remote front (--port) picks its own engine\n");
    return 1;
  }
  if (cold_restart_ms > 0.0 &&
      (kill_shard_ms > 0.0 || add_shard_ms > 0.0)) {
    std::fprintf(stderr,
                 "--cold_restart_ms cannot be combined with "
                 "--kill_shard_ms or --add_shard_ms\n");
    return 1;
  }
  if (pipeline < 1) {
    std::fprintf(stderr, "--pipeline must be >= 1\n");
    return 1;
  }
  if (connections < 0) {
    std::fprintf(stderr, "--connections must be >= 0\n");
    return 1;
  }

  // The swarm's dial side lives in a forked child with its own fd
  // table; this process still holds the accept side of every swarm
  // socket plus client sockets, shard links, and durability files.
  // Raise the limit before anything dials.
  const int front_max_connections = connections + clients * 2 + 64;
  if (connections > 0)
    EnsureFdLimit(static_cast<rlim_t>(connections + 8 * clients +
                                      64 * std::max(1, shards) + 512));

  // The dataset outlives the fleet (declared first): mid-run AddShard
  // and cold-restart rebuilds call the room factory long after startup.
  Dataset dataset;
  std::unique_ptr<bench::LocalFleet> fleet;
  if (shards > 0) {
    std::printf("[net_throughput] starting local fleet: %d shard(s) x "
                "%d rooms x %d users + router%s, primary engine=%s...\n",
                shards, rooms, users,
                partitioned ? " (partitioned)" : "",
                engine_set ? InferEngineName(engine) : "mutable");
    DatasetConfig config;
    config.num_users = users;
    config.num_steps = 2;
    config.num_sessions = 1;
    config.seed = 4242;
    dataset = GenerateTimikLike(config);
    bench::FleetConfig fleet_config;
    fleet_config.shards = shards;
    fleet_config.rooms = rooms;
    fleet_config.threads = threads;
    fleet_config.partitioned = partitioned;
    fleet_config.replication = partitioned ? replication : 0;
    fleet_config.durable_base = durable_dir;
    fleet_config.engine_set = engine_set;
    fleet_config.engine = engine;
    fleet_config.front_max_connections = front_max_connections;
    fleet = bench::StartLocalFleet(
        fleet_config,
        [&dataset](int r) -> Result<std::unique_ptr<serve::Room>> {
          serve::Room::Options room_options;
          room_options.id = r;
          room_options.mode = serve::Room::Mode::kLive;
          room_options.seed = 900 + r;
          return serve::Room::Create(room_options, &dataset);
        });
    if (fleet == nullptr) return 1;
    host = fleet->router_net->host();
    port = fleet->router_net->port();
  }
  std::printf("[net_throughput] driving %s:%d with %d closed-loop "
              "client(s), %d requests total\n",
              host.c_str(), port, clients, requests);

  Tally tally;
  const int per_client = std::max(1, requests / std::max(1, clients));
  const int total = per_client * clients;
  // The idle swarm dials before anything else — the drills and the
  // closed-loop clients then run against a front already holding
  // `connections` sockets, and qps measures the load phase, not the
  // one-time dial.
  SwarmHandle swarm;
  if (connections > 0) {
    std::printf("[net_throughput] dialing idle swarm: %d connection(s) "
                "(forked load process)\n",
                connections);
    swarm = StartSwarm(host, port, connections);
    if (!swarm.running()) {
      std::fprintf(stderr, "FAIL: could not fork the swarm process\n");
      return 2;
    }
    std::printf("[net_throughput] idle swarm up: %lld/%d connected\n",
                swarm.WaitUp(), connections);
  }
  WallTimer timer;
  std::thread killer;
  if (fleet != nullptr && kill_shard_ms > 0.0) {
    bench::LocalFleet* fleet_ptr = fleet.get();
    killer = std::thread([fleet_ptr, kill_shard_ms] {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(kill_shard_ms));
      std::printf("[net_throughput] killing shard 0 mid-run\n");
      fleet_ptr->shard_nets[0]->Shutdown();
    });
  }
  std::thread adder;
  if (fleet != nullptr && add_shard_ms > 0.0) {
    bench::LocalFleet* fleet_ptr = fleet.get();
    adder = std::thread([fleet_ptr, add_shard_ms, rooms, threads,
                         partitioned] {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(add_shard_ms));
      std::printf("[net_throughput] adding a shard mid-run\n");
      serve::BackendAddress address;
      if (!bench::AddShard(fleet_ptr, rooms, threads, partitioned,
                    /*durable_dir=*/"", &address))
        return;
      auto added = fleet_ptr->router->AddBackendLive(address);
      if (!added.ok())
        std::fprintf(stderr, "AddBackendLive: %s\n",
                     added.status().ToString().c_str());
      else
        std::printf("[net_throughput] shard %d joined at %s (migrations "
                    "so far: %lld)\n",
                    added.value(), address.ToString().c_str(),
                    static_cast<long long>(
                        fleet_ptr->router->metrics().migrations.load()));
    });
  }
  // Cold-restart drill: tear down the WHOLE in-process fleet mid-run
  // and rebuild it from the durable directories. The pre-crash truth is
  // captured from each room's primary with the ticker stopped (so the
  // capture and the journal frontier agree), then the recovered world
  // is checked bit-exact BEFORE ticking resumes.
  std::atomic<long long> drill_recovered{0}, drill_discarded{0};
  std::atomic<long long> drill_mismatches{0}, drill_lost{0};
  std::atomic<bool> drill_failed{false};
  const bool drill_armed = fleet != nullptr && cold_restart_ms > 0.0;
  std::thread restarter;
  if (drill_armed) {
    bench::LocalFleet* fleet_ptr = fleet.get();
    restarter = std::thread([fleet_ptr, cold_restart_ms, rooms, threads,
                             replication, front_max_connections,
                             &drill_recovered, &drill_discarded,
                             &drill_mismatches, &drill_lost, &drill_failed] {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(cold_restart_ms));
      std::printf("[net_throughput] cold restart: killing the entire "
                  "fleet mid-run\n");
      fleet_ptr->stop.store(true);
      if (fleet_ptr->ticker.joinable()) fleet_ptr->ticker.join();
      std::unordered_map<int, std::string> expected;
      for (const auto& entry : fleet_ptr->router->AssignmentSnapshot()) {
        if (entry.second.copies.empty()) continue;
        const int primary = entry.second.copies[0];
        if (primary < 0 ||
            primary >= static_cast<int>(fleet_ptr->shards.size()))
          continue;
        if (auto room = fleet_ptr->shards[primary]->FindRoom(entry.first))
          expected[entry.first] = room->ExportState();
      }
      const int router_port = fleet_ptr->router_net->port();
      // The "crash": everything dies; only the durable dirs survive.
      fleet_ptr->router_net->Shutdown();
      fleet_ptr->router_net.reset();
      fleet_ptr->router_pool->Shutdown();
      fleet_ptr->router_pool.reset();
      fleet_ptr->router->Shutdown();
      fleet_ptr->router.reset();
      for (auto& net : fleet_ptr->shard_nets) net->Shutdown();
      fleet_ptr->shard_nets.clear();
      for (auto& shard : fleet_ptr->shards) shard->Shutdown();
      fleet_ptr->controls.clear();
      fleet_ptr->shards.clear();
      fleet_ptr->durabilities.clear();
      // Cold boot: same dirs, fresh shards (each replays its own
      // journal + checkpoints in AddShard), then a fresh router
      // reconciles the replicas' reports.
      const std::vector<std::string> dirs = fleet_ptr->durable_dirs;
      fleet_ptr->durable_dirs.clear();
      std::vector<serve::BackendAddress> backends;
      for (const std::string& dir : dirs) {
        serve::BackendAddress address;
        if (!bench::AddShard(fleet_ptr, rooms, threads, /*partitioned=*/true, dir,
                      &address)) {
          drill_failed.store(true);
          return;
        }
        backends.push_back(address);
      }
      fleet_ptr->router = std::make_unique<serve::ShardRouter>(
          backends, bench::FleetRouterOptions(replication));
      const Status recovered = fleet_ptr->router->RecoverPartition(rooms);
      if (!recovered.ok()) {
        std::fprintf(stderr, "RecoverPartition(%d): %s\n", rooms,
                     recovered.ToString().c_str());
        drill_failed.store(true);
        return;
      }
      drill_recovered.store(
          fleet_ptr->router->metrics().recovered_rooms.load());
      drill_discarded.store(
          fleet_ptr->router->metrics().discarded_replicas.load());
      const auto snapshot = fleet_ptr->router->AssignmentSnapshot();
      for (const auto& entry : expected) {
        std::shared_ptr<serve::Room> room;
        const auto it = snapshot.find(entry.first);
        if (it != snapshot.end() && !it->second.copies.empty()) {
          const int primary = it->second.copies[0];
          if (primary >= 0 &&
              primary < static_cast<int>(fleet_ptr->shards.size()))
            room = fleet_ptr->shards[primary]->FindRoom(entry.first);
        }
        if (room == nullptr)
          drill_lost.fetch_add(1, std::memory_order_relaxed);
        else if (room->ExportState() != entry.second)
          drill_mismatches.fetch_add(1, std::memory_order_relaxed);
      }
      std::printf("[net_throughput] cold restart: %lld room(s) recovered "
                  "(%zu expected), %lld stale replica(s) discarded, "
                  "%lld lost, %lld mismatched\n",
                  drill_recovered.load(), expected.size(),
                  drill_discarded.load(), drill_lost.load(),
                  drill_mismatches.load());
      // Same port, so the clients' reconnect loops find the new front;
      // only then may ticking advance the recovered rooms.
      if (!bench::StartRouterFront(fleet_ptr, threads, router_port,
                            front_max_connections)) {
        drill_failed.store(true);
        return;
      }
      fleet_ptr->stop.store(false);
      bench::StartTicker(fleet_ptr);
    });
  }
  std::vector<std::thread> client_threads;
  client_threads.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    const uint64_t seed = static_cast<uint64_t>(77 + 13 * c);
    if (pipeline > 1)
      client_threads.emplace_back(PipelinedClientLoop, host, port, per_client,
                                  pipeline, rooms, users, deadline_ms, seed,
                                  &tally);
    else
      client_threads.emplace_back(ClientLoop, host, port, per_client, rooms,
                                  users, deadline_ms, seed, &tally);
  }
  for (auto& thread : client_threads) thread.join();
  const double elapsed_s = timer.ElapsedSeconds();
  if (killer.joinable()) killer.join();
  if (adder.joinable()) adder.join();
  if (restarter.joinable()) restarter.join();
  swarm.Finish();
  const SwarmStats& swarm_stats = swarm.final_stats;

  const long long accounted = tally.accounted();
  const long long lost = total - accounted;
  const double qps = elapsed_s > 0.0 ? tally.ok.load() / elapsed_s : 0.0;
  const double p50 = tally.latency.PercentileMs(0.50);
  const double p95 = tally.latency.PercentileMs(0.95);
  const double p99 = tally.latency.PercentileMs(0.99);

  std::printf(
      "requests clients    ok   dgr  shed   t/o unavail notown  errs  lost"
      "   p50ms   p95ms   p99ms    req/s\n"
      "%8d %7d %5lld %5lld %5lld %5lld %7lld %6lld %5lld %5lld %7.2f "
      "%7.2f %7.2f %8.1f\n",
      total, clients, tally.ok.load(), tally.degraded.load(),
      tally.shed.load(), tally.timeouts.load(), tally.unavailable.load(),
      tally.not_owner.load(), tally.errors.load(), lost, p50, p95, p99,
      qps);
  if (tally.reconnects.load() > 0)
    std::printf("reconnects: %lld (transport failures retried by "
                "clients)\n", tally.reconnects.load());
  if (connections > 0)
    std::printf("idle swarm: %lld/%d connected, pings=%lld pongs=%lld "
                "errors=%lld\n",
                swarm_stats.connected, connections, swarm_stats.pings,
                swarm_stats.pongs, swarm_stats.swarm_errors);

  // Partitioned post-mortem: the final ownership table must still be
  // balanced across the healthy shards (acceptance gate for live
  // migration + repair).
  bool balanced = true;
  long long migrations = 0, repairs = 0, rerouted = 0;
  if (fleet != nullptr && partitioned) {
    const auto snapshot = fleet->router->AssignmentSnapshot();
    const int num_backends = fleet->router->num_backends();
    std::vector<int> primaries(num_backends, 0), copies(num_backends, 0);
    for (const auto& entry : snapshot) {
      const auto& owners = entry.second.copies;
      if (owners.empty()) continue;
      if (owners[0] >= 0 && owners[0] < num_backends) ++primaries[owners[0]];
      for (int b : owners)
        if (b >= 0 && b < num_backends) ++copies[b];
    }
    migrations = fleet->router->metrics().migrations.load();
    repairs = fleet->router->metrics().repairs.load();
    rerouted = fleet->router->metrics().not_owner.load();
    std::printf("partition: %zu rooms, migrations=%lld repairs=%lld "
                "not_owner_reroutes=%lld\n",
                snapshot.size(), migrations, repairs, rerouted);
    int min_primary = rooms, max_primary = 0, healthy = 0;
    for (int b = 0; b < num_backends; ++b) {
      const bool alive = fleet->router->backend_healthy(b);
      std::printf("  shard %d: %d primaries + %d standby%s\n", b,
                  primaries[b], copies[b] - primaries[b],
                  alive ? "" : "  [dead]");
      if (!alive) continue;
      ++healthy;
      min_primary = std::min(min_primary, primaries[b]);
      max_primary = std::max(max_primary, primaries[b]);
    }
    if (healthy > 0 && max_primary - min_primary > 1 + replication) {
      std::fprintf(stderr,
                   "FAIL: primary spread %d..%d across %d healthy "
                   "shard(s) exceeds 1 + replication (%d)\n",
                   min_primary, max_primary, healthy, 1 + replication);
      balanced = false;
    }
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    out << "{\n"
        << "  \"bench\": \"net_throughput\",\n"
        << "  \"engine\": \""
        << (engine_set ? InferEngineName(engine) : "mutable") << "\",\n"
        << "  \"requests\": " << total << ",\n"
        << "  \"clients\": " << clients << ",\n"
        << "  \"connections\": " << connections << ",\n"
        << "  \"pipeline\": " << pipeline << ",\n"
        << "  \"swarm_pings\": " << swarm_stats.pings << ",\n"
        << "  \"swarm_pongs\": " << swarm_stats.pongs << ",\n"
        << "  \"partitioned\": " << (partitioned ? "true" : "false") << ",\n"
        << "  \"ok\": " << tally.ok.load() << ",\n"
        << "  \"degraded\": " << tally.degraded.load() << ",\n"
        << "  \"shed\": " << tally.shed.load() << ",\n"
        << "  \"timeouts\": " << tally.timeouts.load() << ",\n"
        << "  \"unavailable\": " << tally.unavailable.load() << ",\n"
        << "  \"not_owner\": " << tally.not_owner.load() << ",\n"
        << "  \"errors\": " << tally.errors.load() << ",\n"
        << "  \"lost\": " << lost << ",\n"
        << "  \"recovered_rooms\": " << drill_recovered.load() << ",\n"
        << "  \"recovery_mismatches\": " << drill_mismatches.load() << ",\n"
        << "  \"migrations\": " << migrations << ",\n"
        << "  \"repairs\": " << repairs << ",\n"
        << "  \"elapsed_s\": " << elapsed_s << ",\n"
        << "  \"qps\": " << qps << ",\n"
        << "  \"p50_ms\": " << p50 << ",\n"
        << "  \"p95_ms\": " << p95 << ",\n"
        << "  \"p99_ms\": " << p99 << "\n"
        << "}\n";
    std::printf("[net_throughput] wrote %s\n", json_path.c_str());
  }

  // Contract for CI: every request must be accounted for, and nothing
  // may fail with an unexpected error class. kUnavailable / kNotOwner
  // answers are legitimate (a killed shard's retries can exhaust; a
  // migration can outlive the retry budget), so they do not fail the
  // run — they are reported above and in the JSON, where degraded vs
  // full answers stay distinguishable for the regression gate.
  if (lost != 0) {
    std::fprintf(stderr, "FAIL: %lld request(s) unaccounted\n", lost);
    return 2;
  }
  if (tally.errors.load() != 0) {
    std::fprintf(stderr, "FAIL: %lld unexpected error status(es)\n",
                 tally.errors.load());
    return 2;
  }
  if (!balanced) return 2;
  // Idle-swarm contract: every connection dialed, every ping answered.
  // The cold-restart drill is exempt — tearing down the front severs
  // the swarm by design.
  if (connections > 0 && cold_restart_ms <= 0.0) {
    if (swarm_stats.connected != connections) {
      std::fprintf(stderr, "FAIL: idle swarm connected %lld/%d\n",
                   swarm_stats.connected, connections);
      return 2;
    }
    if (swarm_stats.pongs != swarm_stats.pings) {
      std::fprintf(stderr,
                   "FAIL: idle swarm lost %lld ping(s) (%lld sent, "
                   "%lld answered)\n",
                   swarm_stats.pings - swarm_stats.pongs, swarm_stats.pings,
                   swarm_stats.pongs);
      return 2;
    }
  }
  // Cold-restart contract: the drill must complete, every room must
  // come back (from disk, not fresh), and every recovered room must be
  // bit-exact against its pre-crash primary.
  if (drill_armed) {
    if (drill_failed.load()) {
      std::fprintf(stderr, "FAIL: cold-restart drill did not complete\n");
      return 2;
    }
    if (drill_recovered.load() < rooms || drill_lost.load() != 0 ||
        drill_mismatches.load() != 0) {
      std::fprintf(stderr,
                   "FAIL: cold restart recovered %lld/%d room(s) with "
                   "%lld lost and %lld mismatched\n",
                   drill_recovered.load(), rooms, drill_lost.load(),
                   drill_mismatches.load());
      return 2;
    }
  }
  return 0;
}

}  // namespace
}  // namespace after

int main(int argc, char** argv) { return after::Main(argc, argv); }
