// Extension bench: the efficiency/effectiveness dilemma (challenge C2).
//
// The static occlusion graph is a circular-arc graph, so the *per-step*
// AFTER optimum is computable exactly in polynomial time (CircularArcMwis).
// This bench measures how much of that per-step-oracle utility each
// practical strategy recovers, and at what latency:
//
//   Oracle        exact per-step solve (what COMURNet approximates)
//   COMURNet-0    idealized COMURNet: fresh expensive search, no delay
//   COMURNet      the published behavior: same search, 44-step staleness
//   POSHGNN       real-time learned recommendation
//
// Expected shape: Oracle >= COMURNet-0 > POSHGNN >> stale COMURNet on
// utility. A notable nuance this bench surfaces: in the *flat* world of
// Sec. III-B the per-step optimum is polynomial and very fast -- the
// NP-hardness of Theorem 1 stems from richer view geometry (general
// geometric intersection graphs), and POSHGNN's advantage lies in
// temporal coupling (social presence continuity) and in generalizing
// beyond circular-arc scenes, not in beating this flat-world oracle.

#include <cstdio>

#include "baselines/comurnet.h"
#include "baselines/oracle_recommender.h"
#include "core/evaluator.h"
#include "core/poshgnn.h"
#include "data/dataset.h"
#include "eval/table_printer.h"

int main() {
  using namespace after;

  DatasetConfig config;
  config.num_users = 150;
  config.num_steps = 81;
  config.room_side = 10.0;
  config.num_sessions = 2;
  config.seed = 9901;
  const Dataset dataset = GenerateTimikLike(config);

  const int k = 10;

  PoshgnnConfig poshgnn_config;
  poshgnn_config.max_recommendations = k;
  poshgnn_config.seed = 99;
  Poshgnn poshgnn(poshgnn_config);
  TrainOptions train;
  train.epochs = 14;
  train.targets_per_epoch = 5;
  train.seed = 98;
  std::printf("[oracle_gap] training POSHGNN...\n");
  poshgnn.Train(dataset, train);

  OracleRecommender oracle(k);

  Comurnet::Options fresh_options;
  fresh_options.iterations = 3000;
  fresh_options.max_recommendations = k;
  fresh_options.delay_steps = 0;
  fresh_options.label = "COMURNet-0";
  fresh_options.seed = 97;
  Comurnet comurnet_fresh(fresh_options);

  Comurnet::Options stale_options = fresh_options;
  stale_options.delay_steps = 44;
  stale_options.label = "COMURNet";
  Comurnet comurnet_stale(stale_options);

  EvalOptions eval;
  eval.num_targets = 8;
  eval.target_seed = 96;

  TablePrinter table("Oracle gap: per-step optimum vs practical methods");
  table.AddResult(EvaluateRecommender(oracle, dataset, eval));
  table.AddResult(EvaluateRecommender(comurnet_fresh, dataset, eval));
  table.AddResult(EvaluateRecommender(comurnet_stale, dataset, eval));
  table.AddResult(EvaluateRecommender(poshgnn, dataset, eval));
  table.Print();

  const auto& results = table.results();
  std::printf(
      "\n  POSHGNN recovers %.1f%% of the flat-world per-step oracle's "
      "AFTER utility at %.2fx its latency; the stale published COMURNet "
      "recovers %.1f%%.\n",
      100.0 * results[3].after_utility / results[0].after_utility,
      results[3].running_time_ms / results[0].running_time_ms,
      100.0 * results[2].after_utility / results[0].after_utility);
  return 0;
}
