#include "bench/scenario.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace after {
namespace bench {
namespace {

constexpr double kPi = 3.14159265358979323846;

/// SplitMix64 finaliser — the per-decision hash behind the
/// deterministic accept model and BiasUser probes.
uint64_t MixBits(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

double HashToUnit(uint64_t x) {
  // 53 mantissa bits -> [0, 1).
  return static_cast<double>(MixBits(x) >> 11) * 0x1.0p-53;
}

}  // namespace

void Fnv1a::Mix(uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    hash_ ^= (value >> (8 * byte)) & 0xFFu;
    hash_ *= 1099511628211ULL;  // FNV prime
  }
}

void Fnv1a::MixDouble(double value) {
  Mix(static_cast<uint64_t>(
      static_cast<int64_t>(std::llround(value * 1e9))));
}

std::vector<int> ZipfRoomSizes(int rooms, int max_users, int min_users,
                               double exponent) {
  std::vector<int> sizes;
  sizes.reserve(static_cast<size_t>(std::max(0, rooms)));
  for (int r = 0; r < rooms; ++r) {
    const double raw =
        static_cast<double>(max_users) * std::pow(r + 1.0, -exponent);
    const int size = static_cast<int>(std::lround(raw));
    sizes.push_back(std::clamp(size, min_users, max_users));
  }
  return sizes;
}

std::vector<double> DiurnalWeights(int slices, double ratio) {
  std::vector<double> weights;
  weights.reserve(static_cast<size_t>(std::max(0, slices)));
  for (int t = 0; t < slices; ++t) {
    // Raised cosine with the trough at the window edges and the peak
    // mid-window; w in [1, ratio] so the off-peak load never vanishes.
    const double phase = (t + 0.5) / static_cast<double>(slices);
    weights.push_back(1.0 +
                      (ratio - 1.0) * 0.5 * (1.0 - std::cos(2.0 * kPi * phase)));
  }
  return weights;
}

std::vector<int> ApportionRequests(const std::vector<double>& weights,
                                   int total) {
  const size_t n = weights.size();
  std::vector<int> counts(n, 0);
  if (n == 0 || total <= 0) return counts;
  const double sum = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (sum <= 0.0) {
    counts[0] = total;
    return counts;
  }
  std::vector<double> remainders(n, 0.0);
  int assigned = 0;
  for (size_t i = 0; i < n; ++i) {
    const double share = total * weights[i] / sum;
    counts[i] = static_cast<int>(share);  // floor (shares are >= 0)
    remainders[i] = share - counts[i];
    assigned += counts[i];
  }
  // Largest remainder first; ties broken toward the earlier slice so
  // the apportionment is a pure function of the weights.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return remainders[a] > remainders[b];
  });
  for (size_t k = 0; assigned < total; ++k, ++assigned)
    ++counts[order[k % n]];
  return counts;
}

std::vector<int> ReconnectStormWaves(int total_connections,
                                     int max_concurrent) {
  std::vector<int> waves;
  if (max_concurrent <= 0) return waves;
  int remaining = std::max(0, total_connections);
  while (remaining > 0) {
    const int wave = std::min(remaining, max_concurrent);
    waves.push_back(wave);
    remaining -= wave;
  }
  return waves;
}

WorldPlan BuildWorldPlan(const WorldConfig& config) {
  WorldPlan plan;
  plan.room_sizes = ZipfRoomSizes(config.rooms, config.max_room_users,
                                  config.min_room_users,
                                  config.zipf_exponent);
  plan.diurnal_weights = DiurnalWeights(config.slices, config.diurnal_ratio);
  plan.slice_totals =
      ApportionRequests(plan.diurnal_weights, config.total_requests);
  plan.peak_slice = static_cast<int>(
      std::max_element(plan.diurnal_weights.begin(),
                       plan.diurnal_weights.end()) -
      plan.diurnal_weights.begin());
  int flash_start = config.flash_start;
  int flash_end = config.flash_end;
  if (flash_start < 0 || flash_end < 0) {
    flash_start = plan.peak_slice;
    flash_end = plan.peak_slice + 1;
  }
  // The flash crowd hits the SMALLEST rooms: sort rank descending.
  std::vector<int> by_size(plan.room_sizes.size());
  std::iota(by_size.begin(), by_size.end(), 0);
  std::stable_sort(by_size.begin(), by_size.end(), [&](int a, int b) {
    return plan.room_sizes[a] < plan.room_sizes[b];
  });
  std::vector<bool> flash_room(plan.room_sizes.size(), false);
  for (int k = 0; k < config.flash_rooms &&
                  k < static_cast<int>(by_size.size());
       ++k)
    flash_room[static_cast<size_t>(by_size[static_cast<size_t>(k)])] = true;

  Rng rng(config.seed);
  std::vector<int> population(plan.room_sizes);
  for (int t = 0; t < config.slices; ++t) {
    if (t > 0 && config.churn_fraction > 0.0 && population.size() > 1) {
      // Churn: a fraction of each room's population walks out, then
      // re-enters rooms weighted by where everyone else already is
      // (rich-get-richer, matching the Zipf shape).
      std::vector<int> leaving(population.size(), 0);
      for (size_t r = 0; r < population.size(); ++r)
        leaving[r] = static_cast<int>(config.churn_fraction *
                                      static_cast<double>(population[r]));
      std::vector<double> attract(population.begin(), population.end());
      for (size_t r = 0; r < population.size(); ++r) {
        population[r] -= leaving[r];
        for (int m = 0; m < leaving[r]; ++m)
          ++population[static_cast<size_t>(rng.SampleWeighted(attract))];
      }
    }
    plan.populations.push_back(population);

    std::vector<double> room_weights(population.begin(), population.end());
    const bool flash_now = t >= flash_start && t < flash_end;
    if (flash_now)
      for (size_t r = 0; r < room_weights.size(); ++r)
        if (flash_room[r]) room_weights[r] *= config.flash_boost;

    std::vector<SliceRequest> requests;
    requests.reserve(static_cast<size_t>(plan.slice_totals[
        static_cast<size_t>(t)]));
    for (int i = 0; i < plan.slice_totals[static_cast<size_t>(t)]; ++i) {
      SliceRequest request;
      request.room = rng.SampleWeighted(room_weights);
      // User ids stay within the room's NATIVE dataset range: churn
      // moves load between rooms, not rows between datasets.
      request.user =
          rng.UniformInt(plan.room_sizes[static_cast<size_t>(request.room)]);
      requests.push_back(request);
    }
    plan.schedule.push_back(std::move(requests));
  }

  Fnv1a hasher;
  hasher.Mix(config.seed);
  for (int size : plan.room_sizes) hasher.Mix(size);
  for (double weight : plan.diurnal_weights) hasher.MixDouble(weight);
  for (int count : plan.slice_totals) hasher.Mix(count);
  for (const auto& pops : plan.populations)
    for (int p : pops) hasher.Mix(p);
  for (const auto& slice : plan.schedule) {
    for (const SliceRequest& request : slice) {
      hasher.Mix(request.room);
      hasher.Mix(request.user);
    }
  }
  plan.fingerprint = hasher.digest();
  return plan;
}

SocialGraphEvolution::SocialGraphEvolution(int num_users, uint64_t seed,
                                           double accept_prob,
                                           double edge_add,
                                           double ignore_decay)
    : num_users_(num_users),
      seed_(seed),
      accept_prob_(accept_prob),
      edge_add_(edge_add),
      ignore_decay_(ignore_decay),
      weights_(static_cast<size_t>(num_users) * static_cast<size_t>(num_users),
               0.0),
      exposures_(weights_.size(), 0),
      degree_(static_cast<size_t>(num_users), 0.0) {}

double& SocialGraphEvolution::weight(int a, int b) {
  return weights_[static_cast<size_t>(a) * static_cast<size_t>(num_users_) +
                  static_cast<size_t>(b)];
}

double SocialGraphEvolution::weight_at(int a, int b) const {
  return weights_[static_cast<size_t>(a) * static_cast<size_t>(num_users_) +
                  static_cast<size_t>(b)];
}

bool SocialGraphEvolution::Observe(int user, int candidate) {
  if (user < 0 || user >= num_users_ || candidate < 0 ||
      candidate >= num_users_ || user == candidate)
    return false;
  const size_t pair = static_cast<size_t>(user) *
                          static_cast<size_t>(num_users_) +
                      static_cast<size_t>(candidate);
  const uint32_t exposure = exposures_[pair]++;
  // Per-(pair, exposure) hash: reproducible no matter how observations
  // of OTHER pairs interleave with this one.
  const uint64_t key = seed_ ^ (static_cast<uint64_t>(user) << 40) ^
                       (static_cast<uint64_t>(candidate) << 16) ^ exposure;
  const bool accepted = HashToUnit(key) < accept_prob_;
  double& forward = weight(user, candidate);
  double& backward = weight(candidate, user);
  if (accepted) {
    degree_[static_cast<size_t>(user)] += edge_add_;
    degree_[static_cast<size_t>(candidate)] += edge_add_;
    forward += edge_add_;
    backward += edge_add_;
    ++accepts_;
  } else {
    degree_[static_cast<size_t>(user)] -= forward * (1.0 - ignore_decay_);
    degree_[static_cast<size_t>(candidate)] -=
        backward * (1.0 - ignore_decay_);
    forward *= ignore_decay_;
    backward *= ignore_decay_;
    ++ignores_;
  }
  return accepted;
}

int SocialGraphEvolution::BiasUser(int user) const {
  if (num_users_ <= 1 || user < 0 || user >= num_users_) return user;
  // Probe set: the scheduled user plus two hashed alternates. The
  // highest evolved degree wins (ties keep the original), so traffic
  // drifts toward accepted-edge hubs as the graph rewires.
  int best = user;
  double best_degree = degree_[static_cast<size_t>(user)];
  for (uint64_t probe = 0; probe < 2; ++probe) {
    const int alt = static_cast<int>(
        MixBits(seed_ ^ (static_cast<uint64_t>(user) << 8) ^ probe) %
        static_cast<uint64_t>(num_users_));
    if (degree_[static_cast<size_t>(alt)] > best_degree) {
      best = alt;
      best_degree = degree_[static_cast<size_t>(alt)];
    }
  }
  return best;
}

double SocialGraphEvolution::DriftL1() const {
  double total = 0.0;
  for (double w : weights_) total += std::abs(w);
  return total;
}

uint64_t SocialGraphEvolution::Fingerprint() const {
  Fnv1a hasher;
  hasher.Mix(static_cast<uint64_t>(accepts_));
  hasher.Mix(static_cast<uint64_t>(ignores_));
  for (double w : weights_)
    if (w != 0.0) hasher.MixDouble(w);
  return hasher.digest();
}

}  // namespace bench
}  // namespace after
