#ifndef AFTER_BENCH_SCENARIO_H_
#define AFTER_BENCH_SCENARIO_H_

// Scenario generators for the world-scale macro-driver
// (bench/world_sim.cc): everything here is pure computation — no
// sockets, no clocks, no threads — so tests/bench/scenario_test.cc can
// pin the distributions and the determinism contract directly.
//
// The generated artifact is a WorldPlan: Zipf-skewed room sizes, a
// diurnal request curve over discrete time slices, flash-crowd weight
// boosts, cross-room population churn, and the full base request
// schedule (room, user) per slice. The plan depends only on
// WorldConfig, and its FNV-1a fingerprint is the bit-reproducibility
// gate: same config => same fingerprint, byte for byte.
//
// Co-evolution (SocialGraphEvolution) deliberately lives OUTSIDE the
// fingerprint: it reacts to live server responses (which recommendation
// was shown), so it rewires the request stream on top of the base
// schedule without perturbing the reproducible plan underneath.
// Its own determinism contract — same observation sequence => same
// graph, bit for bit — is what the unit tests pin.

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace after {
namespace bench {

struct WorldConfig {
  int rooms = 12;
  /// Rank-size law: room at popularity rank r holds
  /// clamp(round(max_room_users * (r+1)^-zipf_exponent),
  ///       min_room_users, max_room_users) users.
  int max_room_users = 48;
  int min_room_users = 6;
  double zipf_exponent = 1.0;
  /// Diurnal curve: `slices` discrete time slices whose request weights
  /// follow a raised cosine with peak/trough ratio `diurnal_ratio`.
  int slices = 8;
  double diurnal_ratio = 4.0;
  /// Total closed-loop requests, apportioned across the slices by the
  /// diurnal weights (largest-remainder, so the sum is exact).
  int total_requests = 2000;
  /// Flash crowd: during [flash_start, flash_end) the `flash_rooms`
  /// SMALLEST rooms get their sampling weight multiplied by
  /// flash_boost — the "suddenly hot back-room" shape. Negative
  /// start/end default to just the peak slice.
  int flash_rooms = 2;
  double flash_boost = 8.0;
  int flash_start = -1;
  int flash_end = -1;
  /// Cross-room churn: each slice, this fraction of every room's
  /// current population relocates to other rooms (weighted by their
  /// populations), shifting future load. Room user-id ranges are
  /// unaffected — churn moves load, not dataset rows.
  double churn_fraction = 0.05;
  uint64_t seed = 1;
};

/// One scheduled request: room id plus a user index valid for that
/// room's native user range [0, room_size).
struct SliceRequest {
  int room = 0;
  int user = 0;
};

struct WorldPlan {
  /// Per-room user counts (rank-size Zipf; room id == popularity rank).
  std::vector<int> room_sizes;
  /// Per-slice diurnal weights (unnormalised) and exact request counts.
  std::vector<double> diurnal_weights;
  std::vector<int> slice_totals;
  int peak_slice = 0;
  /// Room populations entering each slice (after churn), per slice —
  /// kept for inspection/tests; the schedule below already folds them
  /// in.
  std::vector<std::vector<int>> populations;
  /// The full base request schedule, slice-major.
  std::vector<std::vector<SliceRequest>> schedule;
  /// FNV-1a 64 over sizes, weights (quantised), totals, populations and
  /// every scheduled (room, user) pair. The reproducibility gate.
  uint64_t fingerprint = 0;
};

/// Rank-size Zipf room sizes (deterministic, no sampling).
std::vector<int> ZipfRoomSizes(int rooms, int max_users, int min_users,
                               double exponent);

/// Raised-cosine diurnal weights: w_t in [1, ratio], peak mid-window.
std::vector<double> DiurnalWeights(int slices, double ratio);

/// Largest-remainder apportionment of `total` across `weights`;
/// the returned counts sum to exactly `total`.
std::vector<int> ApportionRequests(const std::vector<double>& weights,
                                   int total);

/// Splits `total_connections` into consecutive reconnect-storm waves,
/// each of size <= max_concurrent (> 0). The sum is exactly
/// `total_connections` — no wave ever exceeds the front's budget.
std::vector<int> ReconnectStormWaves(int total_connections,
                                     int max_concurrent);

/// Builds the whole plan (sizes, curve, churned populations, schedule,
/// fingerprint) from the config alone.
WorldPlan BuildWorldPlan(const WorldConfig& config);

/// FNV-1a 64 streaming hasher — the fingerprint primitive.
class Fnv1a {
 public:
  void Mix(uint64_t value);
  void Mix(int value) { Mix(static_cast<uint64_t>(static_cast<int64_t>(value))); }
  /// Doubles are quantised (round(value * 1e9)) so the fingerprint is a
  /// stable function of the math, not of a printf format.
  void MixDouble(double value);
  uint64_t digest() const { return hash_; }

 private:
  uint64_t hash_ = 1469598103934665603ULL;  // FNV offset basis
};

/// Recommendation–network co-evolution for one room (PAPERS.md: the
/// co-evolution framework; GASim's accept/ignore feedback). The served
/// recommendation stream drives edge dynamics: an accepted suggestion
/// adds/strengthens the (user, candidate) edge, an ignored one decays
/// it. Acceptance is a deterministic hash of (seed, user, candidate,
/// per-pair exposure count) against accept_prob — no global RNG state,
/// so the evolution is bit-reproducible for a fixed observation
/// sequence regardless of how calls interleave with other rooms.
class SocialGraphEvolution {
 public:
  SocialGraphEvolution(int num_users, uint64_t seed,
                       double accept_prob = 0.35, double edge_add = 1.0,
                       double ignore_decay = 0.9);

  /// Feeds one served recommendation (`candidate` was shown to `user`).
  /// Returns true if the deterministic accept model accepted it.
  bool Observe(int user, int candidate);

  /// Feedback into the request stream: remaps `user` to the
  /// highest-degree user among a small deterministic probe set
  /// containing `user` itself — evolved hubs attract traffic, the
  /// preferential-attachment half of co-evolution.
  int BiasUser(int user) const;

  /// L1 mass of the evolved graph (it starts empty, so this is the
  /// drift from the initial state).
  double DriftL1() const;
  long long accepts() const { return accepts_; }
  long long ignores() const { return ignores_; }
  int num_users() const { return num_users_; }
  /// Fingerprint of the evolved weights (quantised), for the
  /// bit-reproducibility test and the JSON drift report.
  uint64_t Fingerprint() const;

 private:
  double& weight(int a, int b);
  double weight_at(int a, int b) const;

  int num_users_;
  uint64_t seed_;
  double accept_prob_;
  double edge_add_;
  double ignore_decay_;
  std::vector<double> weights_;      // n x n, row-major
  std::vector<uint32_t> exposures_;  // per-pair counter feeding the hash
  std::vector<double> degree_;       // per-user weighted degree cache
  long long accepts_ = 0;
  long long ignores_ = 0;
};

}  // namespace bench
}  // namespace after

#endif  // AFTER_BENCH_SCENARIO_H_
