// Closed-loop load generator for the online serving runtime
// (src/serve/): shards N live rooms across a worker pool and drives
// them with concurrent closed-loop clients (each client issues its next
// FriendRequest as soon as the previous one completes, so the client
// count is the offered-load knob). Prints a throughput/latency table —
// the repo's first serving benchmark.
//
// Usage:
//   serve_throughput                       # sweep rooms x threads
//   serve_throughput --rooms=8 --threads=8 # one config + a 1-thread
//                                          # capacity baseline
//   serve_throughput --weights=w.after --batch   # trained + in-tick
//                                          # batching (defaults 1x1)
// Flags: --rooms=N --threads=N --clients=N (default 2x threads)
//        --users=N (room population, default 60)
//        --requests=N (total per config, default 600)
//        --deadline_ms=F (default 1000; <0 disables)
//        --weights=PATH (serve a trained, frozen POSHGNN loaded from a
//                        model artifact — see tools/train_poshgnn and
//                        docs/model_artifacts.md — shared lock-free by
//                        all workers instead of the untrained
//                        per-stream primary)
//        --batch        (in-tick request batching: coalesce each room's
//                        queued requests into one inference job per
//                        snapshot; see docs/serving.md)
//        --engine=f32|f64 (serve a *frozen* POSHGNN on the chosen
//                        inference engine — the fused f32 kernel path or
//                        the f64 reference; see docs/inference.md. With
//                        --weights it selects the frozen engine; without
//                        it freezes an untrained model instead of the
//                        default mutable per-stream primary, so the two
//                        engines are comparable on the same serving path)
//        --json=PATH    (single-config mode only: write the target
//                        config's stats as a BENCH_serve.json-style
//                        summary for scripts/bench_compare.py)

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/timer.h"
#include "core/poshgnn.h"
#include "data/dataset.h"
#include "nn/artifact.h"
#include "serve/server.h"

namespace after {
namespace {

struct RunStats {
  double throughput = 0.0;  // OK responses per second
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
  long long ok = 0, shed = 0, timeouts = 0, fallbacks = 0;
  long long batches = 0, coalesced = 0;
  int max_depth = 0;
};

struct PrimarySpec {
  /// Non-null when serving trained weights: every factory call builds a
  /// fresh frozen model from this artifact (the server probes one and
  /// shares it lock-free since FrozenPoshgnn::thread_safe() is true).
  const ModelArtifact* artifact = nullptr;
  bool batch = false;
  /// --engine given: pin the frozen inference engine (and freeze even
  /// the untrained primary so both engines run the same serving path).
  bool engine_set = false;
  InferEngine engine = InferEngine::kFusedF32;
};

/// What the --json summary (and the banner) calls the primary's engine:
/// the frozen engine name, or "mutable" for the default untrained
/// per-stream trainable model, which has no frozen engine at all.
const char* EngineLabel(const PrimarySpec& primary) {
  if (primary.engine_set) return InferEngineName(primary.engine);
  return primary.artifact != nullptr ? InferEngineName(DefaultInferEngine())
                                     : "mutable";
}

RunStats RunConfig(const Dataset& dataset, const PrimarySpec& primary,
                   int num_rooms, int threads, int clients,
                   int total_requests, double deadline_ms) {
  std::vector<std::unique_ptr<serve::Room>> rooms;
  for (int r = 0; r < num_rooms; ++r) {
    serve::Room::Options room_options;
    room_options.id = r;
    room_options.mode = serve::Room::Mode::kLive;
    room_options.seed = 900 + r;
    auto created = serve::Room::Create(room_options, &dataset);
    if (!created.ok()) {
      std::fprintf(stderr, "room %d: %s\n", r,
                   created.status().ToString().c_str());
      return RunStats{};
    }
    rooms.push_back(std::move(created).value());
  }
  const int n = rooms.front()->num_users();

  serve::ServerOptions server_options;
  server_options.num_threads = threads;
  // Closed-loop: in-flight requests never exceed the client count, so
  // this capacity guarantees the generator itself never sheds.
  server_options.queue_capacity = std::max(1024, clients * 4);
  server_options.default_deadline_ms = deadline_ms;
  server_options.batch_requests = primary.batch;
  serve::RecommenderFactory factory;
  if (primary.artifact != nullptr) {
    const ModelArtifact* artifact = primary.artifact;
    const InferEngine engine =
        primary.engine_set ? primary.engine : DefaultInferEngine();
    factory = [artifact, engine]() -> std::unique_ptr<Recommender> {
      auto frozen = FrozenPoshgnn::FromArtifact(*artifact, engine);
      if (!frozen.ok()) {
        std::fprintf(stderr, "frozen model: %s\n",
                     frozen.status().ToString().c_str());
        return nullptr;
      }
      return std::move(frozen).value();
    };
  } else if (primary.engine_set) {
    // Freeze an untrained model on the requested engine so --engine=f32
    // vs --engine=f64 compares the two kernel paths on the identical
    // serving surface (shared lock-free, like the trained case).
    PoshgnnConfig model_config;
    model_config.seed = 42;
    auto source = std::make_shared<Poshgnn>(model_config);
    const InferEngine engine = primary.engine;
    factory = [source, engine] {
      return std::make_unique<FrozenPoshgnn>(*source, engine);
    };
  } else {
    PoshgnnConfig model_config;
    model_config.seed = 42;
    factory = [model_config] {
      return std::make_unique<Poshgnn>(model_config);
    };
  }
  serve::RecommendationServer server(std::move(rooms), std::move(factory),
                                     server_options);

  // Background ticker: advances every room's crowd simulation while the
  // clients hammer the request path.
  std::atomic<bool> stop{false};
  std::thread ticker([&server, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      server.TickAll();
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });

  const int per_client = std::max(1, total_requests / std::max(1, clients));
  WallTimer timer;
  std::vector<std::thread> client_threads;
  client_threads.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    client_threads.emplace_back([&server, c, per_client, num_rooms, n] {
      Rng rng(77 + 13 * c);
      for (int i = 0; i < per_client; ++i) {
        serve::FriendRequest request;
        request.room = rng.UniformInt(num_rooms);
        request.user = rng.UniformInt(n);
        server.Handle(request);
      }
    });
  }
  for (auto& thread : client_threads) thread.join();
  const double elapsed_s = timer.ElapsedSeconds();
  stop.store(true);
  ticker.join();
  server.Shutdown();

  const serve::ServerMetrics& m = server.metrics();
  RunStats stats;
  stats.ok = m.responses_ok.load();
  stats.shed = m.shed.load();
  stats.timeouts = m.timeouts.load();
  stats.fallbacks = m.total_fallbacks();
  stats.p50 = m.latency.PercentileMs(0.50);
  stats.p95 = m.latency.PercentileMs(0.95);
  stats.p99 = m.latency.PercentileMs(0.99);
  stats.batches = m.batches.load();
  stats.coalesced = m.coalesced.load();
  stats.max_depth = m.max_queue_depth.load();
  stats.throughput = elapsed_s > 0.0 ? stats.ok / elapsed_s : 0.0;
  return stats;
}

void PrintHeader() {
  std::printf(
      "rooms threads clients    ok  shed  t/o    fb   p50ms   p95ms   p99ms"
      "  maxQ    req/s\n");
}

void PrintRow(int rooms, int threads, int clients, const RunStats& s) {
  std::printf(
      "%5d %7d %7d %5lld %5lld %4lld %5lld %7.2f %7.2f %7.2f %5d %8.1f\n",
      rooms, threads, clients, s.ok, s.shed, s.timeouts, s.fallbacks, s.p50,
      s.p95, s.p99, s.max_depth, s.throughput);
}

int Main(int argc, char** argv) {
  int rooms = -1, threads = -1, clients = -1;
  int users = 60, requests = 600;
  double deadline_ms = 1000.0;
  std::string weights, json_path;
  bool batch = false, engine_set = false;
  InferEngine engine = InferEngine::kFusedF32;
  for (int i = 1; i < argc; ++i) {
    int value = 0;
    double fvalue = 0.0;
    char buffer[256] = {};
    if (std::sscanf(argv[i], "--rooms=%d", &value) == 1) rooms = value;
    else if (std::sscanf(argv[i], "--threads=%d", &value) == 1)
      threads = value;
    else if (std::sscanf(argv[i], "--clients=%d", &value) == 1)
      clients = value;
    else if (std::sscanf(argv[i], "--users=%d", &value) == 1) users = value;
    else if (std::sscanf(argv[i], "--requests=%d", &value) == 1)
      requests = value;
    else if (std::sscanf(argv[i], "--deadline_ms=%lf", &fvalue) == 1)
      deadline_ms = fvalue;
    else if (std::sscanf(argv[i], "--weights=%255s", buffer) == 1)
      weights = buffer;
    else if (std::sscanf(argv[i], "--json=%255s", buffer) == 1)
      json_path = buffer;
    else if (std::sscanf(argv[i], "--engine=%255s", buffer) == 1) {
      if (!ParseInferEngine(buffer, &engine)) {
        std::fprintf(stderr, "--engine=%s: want f32 or f64\n", buffer);
        return 1;
      }
      engine_set = true;
    }
    else if (std::strcmp(argv[i], "--batch") == 0)
      batch = true;
    else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 1;
    }
  }

  PrimarySpec primary;
  primary.batch = batch;
  primary.engine_set = engine_set;
  primary.engine = engine;
  ModelArtifact artifact;
  if (!weights.empty()) {
    auto loaded = ModelArtifact::Load(weights);
    if (!loaded.ok()) {
      std::fprintf(stderr, "--weights: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    artifact = std::move(loaded).value();
    primary.artifact = &artifact;
  }
  // The trained/batched modes exist to measure the serving acceptance
  // config, so default them to one room at the 1-thread capacity
  // baseline rather than the full sweep.
  if ((primary.artifact != nullptr || batch) && rooms <= 0 && threads <= 0)
    rooms = threads = 1;

  DatasetConfig config;
  config.num_users = users;
  config.num_steps = 2;  // live rooms only consume the first frame
  config.num_sessions = 1;
  config.seed = 4242;
  std::printf("[serve_throughput] generating %d-user dataset...\n", users);
  const Dataset dataset = GenerateTimikLike(config);
  std::printf(
      "[serve_throughput] primary=%s, engine=%s, batching=%s, "
      "fallback=Nearest, deadline=%.0f ms, hw threads=%u\n",
      primary.artifact != nullptr
          ? "POSHGNN(frozen trained artifact, shared lock-free)"
          : (engine_set
                 ? "POSHGNN(frozen untrained, shared lock-free)"
                 : "POSHGNN(untrained, per room+user stream)"),
      EngineLabel(primary), batch ? "in-tick" : "off", deadline_ms,
      std::thread::hardware_concurrency());

  if (rooms > 0 || threads > 0) {
    if (rooms <= 0) rooms = 1;
    if (threads <= 0) threads = 1;
    if (clients <= 0) clients = 2 * threads;
    // Baseline: what one worker thread sustains on the same shards.
    std::printf("[serve_throughput] measuring 1-thread capacity...\n");
    const RunStats baseline =
        RunConfig(dataset, primary, rooms, 1, 1, requests / 2, deadline_ms);
    std::printf("[serve_throughput] running target config...\n");
    const RunStats target = RunConfig(dataset, primary, rooms, threads,
                                      clients, requests, deadline_ms);
    PrintHeader();
    PrintRow(rooms, 1, 1, baseline);
    PrintRow(rooms, threads, clients, target);
    if (batch)
      std::printf("batching: %lld jobs, %lld coalesced requests in the "
                  "target config\n",
                  target.batches, target.coalesced);
    std::printf(
        "verdict: %lld shed, %lld timeouts at %.1f req/s "
        "(1-thread capacity %.1f req/s, speedup %.2fx)\n",
        target.shed, target.timeouts, target.throughput,
        baseline.throughput,
        baseline.throughput > 0.0 ? target.throughput / baseline.throughput
                                  : 0.0);
    if (!json_path.empty()) {
      std::ofstream out(json_path);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
        return 1;
      }
      out << "{\n"
          << "  \"bench\": \"serve_throughput\",\n"
          << "  \"engine\": \"" << EngineLabel(primary) << "\",\n"
          << "  \"rooms\": " << rooms << ",\n"
          << "  \"threads\": " << threads << ",\n"
          << "  \"clients\": " << clients << ",\n"
          << "  \"ok\": " << target.ok << ",\n"
          << "  \"shed\": " << target.shed << ",\n"
          << "  \"timeouts\": " << target.timeouts << ",\n"
          << "  \"fallbacks\": " << target.fallbacks << ",\n"
          << "  \"batches\": " << target.batches << ",\n"
          << "  \"coalesced\": " << target.coalesced << ",\n"
          << "  \"qps\": " << target.throughput << ",\n"
          << "  \"p50_ms\": " << target.p50 << ",\n"
          << "  \"p95_ms\": " << target.p95 << ",\n"
          << "  \"p99_ms\": " << target.p99 << "\n"
          << "}\n";
      std::printf("[serve_throughput] wrote %s\n", json_path.c_str());
    }
    return (target.shed == 0 && target.timeouts == 0) ? 0 : 2;
  }

  if (!json_path.empty()) {
    std::fprintf(stderr,
                 "--json needs a single config (--rooms/--threads)\n");
    return 1;
  }

  // Default sweep.
  PrintHeader();
  for (int r : {1, 4, 8}) {
    for (int t : {1, 2, 4, 8}) {
      const int c = 2 * t;
      const RunStats stats =
          RunConfig(dataset, primary, r, t, c, requests, deadline_ms);
      PrintRow(r, t, c, stats);
    }
  }
  return 0;
}

}  // namespace
}  // namespace after

int main(int argc, char** argv) { return after::Main(argc, argv); }
