// Reproduces Table II: POSHGNN vs baselines on the Timik(-like) dataset.
// Paper parameters: N = 200 users, T = 100 steps, beta = 0.5,
// alpha = 0.01, 50% VR users, 10 m virtual conferencing room.
//
// Expected shape (see EXPERIMENTS.md): POSHGNN attains the best AFTER
// utility; Nearest and DCRNN are the strongest baselines; the static
// recommenders (MvAGC, GraFrank) and Random trail; COMURNet has 0% view
// occlusion but low utility and a per-step runtime orders of magnitude
// above every other method.

// Usage: table2_timik [--chaos]
//   --chaos  After the clean table, re-run the evaluation under each
//            fault class from testing/fault_injection and report the
//            [degraded] diagnostics counters alongside the clean run.

#include <cstring>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace after;

  DatasetConfig config;
  config.num_users = 200;
  config.vr_fraction = 0.5;
  config.num_steps = 101;  // t = 0..100
  config.room_side = 10.0;
  config.num_sessions = 2;
  config.seed = 2201;
  const Dataset dataset = GenerateTimikLike(config);

  bench::ComparisonOptions options;
  options.seed = 22;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--chaos") == 0) options.chaos = true;
  bench::RunComparisonBench(dataset, options,
                            "Table II: Timik dataset (N=200, T=100)");
  return 0;
}
