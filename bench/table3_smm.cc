// Reproduces Table III: POSHGNN vs baselines on the SMM(-like) dataset.
// Same protocol as Table II (N = 200, T = 100, beta = 0.5, alpha = 0.01,
// 50% VR) on the community-structured SMM social network.

#include "bench/bench_util.h"

int main() {
  using namespace after;

  DatasetConfig config;
  config.num_users = 200;
  config.vr_fraction = 0.5;
  config.num_steps = 101;
  config.room_side = 10.0;
  config.num_sessions = 2;
  config.seed = 3302;
  const Dataset dataset = GenerateSmmLike(config);

  bench::ComparisonOptions options;
  options.seed = 33;
  bench::RunComparisonBench(dataset, options,
                            "Table III: SMM dataset (N=200, T=100)");
  return 0;
}
