// Reproduces Table IV: POSHGNN vs baselines on the Hub(s)(-like) dataset:
// a small VR-workshop room with only dozens of candidates, where the
// paper observes the margins shrink (POSHGNN only slightly ahead) while
// its view-occlusion rate stays very low.

#include "bench/bench_util.h"

int main() {
  using namespace after;

  DatasetConfig config = HubsDefaultConfig();
  config.vr_fraction = 0.5;
  config.num_steps = 101;
  config.num_sessions = 2;
  config.seed = 4403;
  const Dataset dataset = GenerateHubsLike(config);

  bench::ComparisonOptions options;
  options.seed = 44;
  options.k = 6;  // a 30-person room displays fewer users
  options.comurnet_iterations = 2000;  // paper: Hub solve is ~50x faster
  options.comurnet_delay_steps = 1;    // 0.4 s solve vs 0.5 s steps
  bench::RunComparisonBench(dataset, options,
                            "Table IV: Hub dataset (N=30, T=100)");
  return 0;
}
