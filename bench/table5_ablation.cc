// Reproduces Table V: ablation study of POSHGNN's modules on the Hub
// dataset — Full (MIA + PDR + LWP), "PDR w/ MIA" (no preservation gate),
// and "Only PDR" (raw features, no structural deltas, no HP mask).
//
// Expected shape: Full >= PDR w/ MIA >= Only PDR on AFTER utility, with
// the preservation gate (LWP) also improving the view-occlusion rate,
// and runtime growing with the module count.

#include <cstdio>

#include "core/evaluator.h"
#include "core/poshgnn.h"
#include "data/dataset.h"
#include "eval/table_printer.h"

int main() {
  using namespace after;

  DatasetConfig config = HubsDefaultConfig();
  config.vr_fraction = 0.5;
  config.num_steps = 101;
  config.num_sessions = 2;
  config.seed = 4403;
  const Dataset dataset = GenerateHubsLike(config);

  TrainOptions train;
  train.epochs = 16;
  train.targets_per_epoch = 5;
  train.seed = 55;

  EvalOptions eval;
  eval.num_targets = 16;
  eval.target_seed = 56;

  TablePrinter table("Table V: POSHGNN ablation on Hub");
  struct VariantSpec {
    bool use_mia;
    bool use_lwp;
  };
  const VariantSpec variants[] = {
      {true, true},    // Full
      {true, false},   // PDR w/ MIA
      {false, false},  // Only PDR
  };
  for (const auto& variant : variants) {
    PoshgnnConfig model_config;
    model_config.use_mia = variant.use_mia;
    model_config.use_lwp = variant.use_lwp;
    model_config.max_recommendations = 6;
    model_config.seed = 57;
    Poshgnn model(model_config);
    std::printf("[ablation] training %s...\n", model.name().c_str());
    model.Train(dataset, train);
    table.AddResult(EvaluateRecommender(model, dataset, eval));
  }
  table.Print();
  return 0;
}
