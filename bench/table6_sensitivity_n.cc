// Reproduces Table VI: sensitivity of POSHGNN to the user number N on
// the SMM dataset (half of the participants MR / in-person).
//
// Expected shape: total AFTER utility peaks at a moderate N (~20 in the
// paper: enough candidates to discover, not enough bodies to occlude
// everything), deteriorates for very small N (scarcity) and decays as N
// grows large (physical crowding); per-step runtime grows with N.

#include <cstdio>
#include <string>
#include <vector>

#include "core/evaluator.h"
#include "core/poshgnn.h"
#include "data/dataset.h"
#include "eval/table_printer.h"

int main() {
  using namespace after;

  const std::vector<int> user_counts = {10, 20, 50, 100, 200, 500};

  std::vector<std::string> columns;
  std::vector<double> utilities, preferences, presences, occlusion, runtime;

  for (int n : user_counts) {
    DatasetConfig config;
    config.num_users = n;
    config.vr_fraction = 0.5;  // half MR in-person participants
    config.num_steps = 101;
    config.room_side = 10.0;
    config.num_sessions = 2;
    config.seed = 6600 + n;
    const Dataset dataset = GenerateSmmLike(config);

    PoshgnnConfig model_config;
    model_config.seed = 66;
    Poshgnn model(model_config);

    TrainOptions train;
    // The N=500 room is ~6x the FLOPs of N=200; a slightly smaller
    // budget keeps the sweep tractable without changing the trend.
    train.epochs = n > 200 ? 8 : 12;
    train.targets_per_epoch = 4;
    train.seed = 67;
    std::printf("[table6] training POSHGNN at N = %d...\n", n);
    model.Train(dataset, train);

    EvalOptions eval;
    eval.num_targets = 12;
    eval.target_seed = 68;
    const EvalResult result = EvaluateRecommender(model, dataset, eval);

    columns.push_back("N=" + std::to_string(n));
    utilities.push_back(result.after_utility);
    preferences.push_back(result.preference_utility);
    presences.push_back(result.social_presence_utility);
    occlusion.push_back(result.view_occlusion_rate * 100.0);
    runtime.push_back(result.running_time_ms);
  }

  std::fputs(RenderGenericTable(
                 "Table VI: sensitivity on user number N (SMM, half MR)",
                 {"AFTER Utility (up)", "Preference (up)",
                  "Social Presence (up)", "View Occlusion % (down)",
                  "Running Time ms (down)"},
                 columns,
                 {utilities, preferences, presences, occlusion, runtime})
                 .c_str(),
             stdout);
  return 0;
}
