// Reproduces Table VII: sensitivity of POSHGNN to the proportion of
// remote (VR) users on the SMM dataset at N = 200.
//
// Expected shape: more VR users -> fewer physical (MR) bodies forcing
// themselves into viewports -> more recommendation freedom -> higher
// AFTER utility (paper: 250.2 / 229.8 / 214.9 for 75% / 50% / 25%).

#include <cstdio>
#include <string>
#include <vector>

#include "core/evaluator.h"
#include "core/poshgnn.h"
#include "data/dataset.h"
#include "eval/table_printer.h"

int main() {
  using namespace after;

  const std::vector<double> vr_fractions = {0.75, 0.5, 0.25};

  std::vector<std::string> columns;
  std::vector<double> utilities, preferences, presences;

  for (double vr : vr_fractions) {
    DatasetConfig config;
    config.num_users = 200;
    config.vr_fraction = vr;
    config.num_steps = 101;
    config.room_side = 10.0;
    config.num_sessions = 2;
    config.seed = 7700;  // same population, interfaces resampled below
    const Dataset dataset = GenerateSmmLike(config);

    PoshgnnConfig model_config;
    model_config.seed = 77;
    Poshgnn model(model_config);

    TrainOptions train;
    train.epochs = 12;
    train.targets_per_epoch = 4;
    train.seed = 78;
    std::printf("[table7] training POSHGNN at VR = %.0f%%...\n", vr * 100);
    model.Train(dataset, train);

    EvalOptions eval;
    eval.num_targets = 12;
    eval.target_seed = 79;
    const EvalResult result = EvaluateRecommender(model, dataset, eval);

    char label[32];
    std::snprintf(label, sizeof(label), "VR=%.0f%%", vr * 100);
    columns.push_back(label);
    utilities.push_back(result.after_utility);
    preferences.push_back(result.preference_utility);
    presences.push_back(result.social_presence_utility);
  }

  std::fputs(
      RenderGenericTable(
          "Table VII: sensitivity on the proportion of VR users (SMM, N=200)",
          {"AFTER Utility (up)", "Preference (up)", "Social Presence (up)"},
          columns, {utilities, preferences, presences})
          .c_str(),
      stdout);
  return 0;
}
