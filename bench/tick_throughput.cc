// Tick-throughput benchmark for the delta-snapshot tick path
// (docs/ticking.md): measures how many Room::Tick() + hot-target
// occlusion rounds per second a live room sustains with delta
// snapshots on vs the from-scratch baseline, at a configurable room
// size and moved-fraction. Each measured tick advances the partial-
// motion crowd one step and then touches `--hot` target occlusion
// graphs, modeling the request traffic that keeps a hot set of targets
// materialized every tick. The delta/scratch speedup at 512 users with
// ~10% movers is the headline number the bench-regression CI lane
// gates (bench/baselines/BENCH_tick.json).
//
// Usage:
//   tick_throughput                               # default config
//   tick_throughput --sweep                       # users x moved table
//   tick_throughput --users=512 --hot=64 --move_fraction=0.1
//       --min_speedup=3 --json=build/BENCH_tick.json
//   tick_throughput --stale_cache_drill --users=96
//
// Flags: --users=N          room population (default 512)
//        --hot=N            targets touched per tick (default 64)
//        --move_fraction=F  walking share of the room (default 0.1)
//        --ticks=N          measured ticks per variant (default 40)
//        --warmup=N         untimed leading ticks (default 8)
//        --max_candidates=N also maintain the temporal index and spot-
//                           check its prune masks (0 = off)
//        --min_speedup=F    exit 2 unless delta/scratch >= F
//        --json=PATH        write a BENCH_tick.json-style summary for
//                           scripts/bench_compare.py
//        --sweep            ticks/sec table over room size x moved
//        --stale_cache_drill  kill-and-recover drill: verify recovered
//                           rooms REBUILD occlusion caches (scratch
//                           snapshot, bit-exact) instead of reusing
//                           pre-crash delta state, then resume deltas
//        --durable_dir=PATH drill scratch directory
//                           (default /tmp/tick_stale_cache_drill)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "graph/occlusion_converter.h"
#include "serve/checkpoint.h"
#include "serve/room.h"

namespace after {
namespace {

struct BenchConfig {
  int users = 512;
  int hot = 64;
  double move_fraction = 0.1;
  int ticks = 40;
  int warmup = 8;
  int max_candidates = 0;
};

struct TickStats {
  double ticks_per_sec = 0.0;
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;
  long long delta_ticks = 0, scratch_ticks = 0;
  double avg_moved = 0.0;
  /// Bit-exactness violations found by the post-run verification pass
  /// (delta-built occlusion graph != from-scratch rebuild) plus any
  /// prune-mask size violations. Must be 0.
  long long errors = 0;
};

serve::Room::Options MakeRoomOptions(const BenchConfig& config, bool delta) {
  serve::Room::Options options;
  options.id = 0;
  options.mode = serve::Room::Mode::kLive;
  options.seed = 1234;
  options.move_fraction = config.move_fraction;
  options.delta_snapshots = delta;
  options.temporal_index = config.max_candidates > 0;
  return options;
}

/// Spread the hot targets across the index range so delta updates see
/// representative geometry rather than one corner of the room.
std::vector<int> HotTargets(int users, int hot) {
  std::vector<int> targets;
  const int count = std::min(users, std::max(1, hot));
  targets.reserve(count);
  for (int i = 0; i < count; ++i)
    targets.push_back(static_cast<int>(
        (static_cast<long long>(i) * users) / count));
  return targets;
}

TickStats RunVariant(const Dataset& dataset, const BenchConfig& config,
                     bool delta) {
  auto created = serve::Room::Create(MakeRoomOptions(config, delta), &dataset);
  if (!created.ok()) {
    std::fprintf(stderr, "room: %s\n", created.status().ToString().c_str());
    TickStats bad;
    bad.errors = 1;
    return bad;
  }
  std::unique_ptr<serve::Room> room = std::move(created).value();
  const std::vector<int> hot = HotTargets(config.users, config.hot);

  const auto run_tick = [&room, &hot] {
    (void)room->Tick();
    const std::shared_ptr<const serve::RoomSnapshot> snapshot =
        room->snapshot();
    for (int target : hot) (void)snapshot->OcclusionFor(target);
    return snapshot;
  };

  for (int i = 0; i < config.warmup; ++i) (void)run_tick();

  TickStats stats;
  std::vector<double> tick_ms;
  tick_ms.reserve(config.ticks);
  long long moved_total = 0;
  const auto begin = std::chrono::steady_clock::now();
  for (int i = 0; i < config.ticks; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    const std::shared_ptr<const serve::RoomSnapshot> snapshot = run_tick();
    const auto t1 = std::chrono::steady_clock::now();
    tick_ms.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
    if (snapshot->num_moved() >= 0) moved_total += snapshot->num_moved();
  }
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();

  stats.ticks_per_sec = elapsed_s > 0.0 ? config.ticks / elapsed_s : 0.0;
  std::sort(tick_ms.begin(), tick_ms.end());
  if (!tick_ms.empty()) {
    stats.p50_ms = tick_ms[tick_ms.size() / 2];
    stats.p95_ms = tick_ms[static_cast<size_t>(
        std::min<double>(tick_ms.size() - 1.0, tick_ms.size() * 0.95))];
    stats.p99_ms = tick_ms[static_cast<size_t>(
        std::min<double>(tick_ms.size() - 1.0, tick_ms.size() * 0.99))];
  }
  stats.delta_ticks = static_cast<long long>(room->delta_ticks());
  stats.scratch_ticks = static_cast<long long>(room->scratch_ticks());
  stats.avg_moved =
      stats.delta_ticks > 0
          ? static_cast<double>(moved_total) / stats.delta_ticks
          : 0.0;

  // Verification pass (untimed): every hot target's published graph
  // must be bitwise identical to a from-scratch rebuild, delta path or
  // not. A silent divergence here would make the speedup meaningless.
  const std::shared_ptr<const serve::RoomSnapshot> snapshot = room->snapshot();
  for (int target : hot) {
    const OcclusionGraph rebuilt = BuildOcclusionGraph(
        snapshot->positions(), target, snapshot->body_radius());
    if (snapshot->OcclusionFor(target) != rebuilt) ++stats.errors;
    if (config.max_candidates > 0) {
      std::vector<bool> mask;
      if (snapshot->PruneCandidates(target, config.max_candidates, &mask)) {
        long long kept = 0;
        for (int u = 0; u < static_cast<int>(mask.size()); ++u)
          if (u != target && !mask[u]) ++kept;
        if (kept != config.max_candidates) ++stats.errors;
      }
    }
  }
  return stats;
}

/// Stale-cache drill (the nightly chaos matrix entry): tick a durable
/// delta-snapshot room, "kill the shard" by dropping room + durability
/// manager with no graceful shutdown, recover from journal +
/// checkpoint, and verify the recovered room REBUILDS its occlusion
/// caches — scratch snapshot, bit-exact against a from-scratch build —
/// instead of reusing any pre-crash delta state, then resumes delta
/// ticking on its next own tick.
int RunStaleCacheDrill(const Dataset& dataset, const BenchConfig& config,
                       const std::string& dir) {
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);

  BenchConfig drill = config;
  serve::Room::Options room_options = MakeRoomOptions(drill, /*delta=*/true);
  serve::Room::TickFrame donor_frame;
  long long donor_delta_ticks = 0;
  {
    auto created = serve::Room::Create(room_options, &dataset);
    if (!created.ok()) {
      std::fprintf(stderr, "drill room: %s\n",
                   created.status().ToString().c_str());
      return 1;
    }
    std::unique_ptr<serve::Room> room = std::move(created).value();
    serve::DurabilityManager::Options dopt;
    dopt.dir = dir;
    auto opened = serve::DurabilityManager::Open(dopt);
    if (!opened.ok()) {
      std::fprintf(stderr, "drill durability: %s\n",
                   opened.status().ToString().c_str());
      return 1;
    }
    std::unique_ptr<serve::DurabilityManager> durability =
        std::move(opened).value();
    Status status =
        durability->RecordAssign(room->id(), /*epoch=*/1, /*primary=*/true,
                                 /*reset=*/true);
    if (status.ok()) status = durability->CheckpointNow(*room);
    for (int i = 0; status.ok() && i < 12; ++i) {
      status = room->Tick();
      if (status.ok()) status = durability->RecordTick(*room);
    }
    if (!status.ok()) {
      std::fprintf(stderr, "drill ticking: %s\n", status.ToString().c_str());
      return 1;
    }
    donor_frame = room->CurrentTickFrame();
    donor_delta_ticks = static_cast<long long>(room->delta_ticks());
    // Scope exit = the kill: no checkpoint, no graceful release; the
    // journal tail is all the recovery gets past the initial snapshot.
  }
  if (donor_delta_ticks <= 0) {
    std::fprintf(stderr,
                 "drill: donor never delta-ticked; nothing to go stale\n");
    return 1;
  }

  serve::DurabilityManager::Options dopt;
  dopt.dir = dir;
  auto reopened = serve::DurabilityManager::Open(dopt);
  if (!reopened.ok()) {
    std::fprintf(stderr, "drill reopen: %s\n",
                 reopened.status().ToString().c_str());
    return 1;
  }
  auto plan = std::move(reopened).value()->LoadRecoveryPlan();
  if (!plan.ok()) {
    std::fprintf(stderr, "drill plan: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }
  const serve::DurabilityManager::RecoveryEntry* entry = nullptr;
  for (const auto& candidate : plan.value().entries)
    if (candidate.room == room_options.id) entry = &candidate;
  if (entry == nullptr || entry->checkpoint_state.empty()) {
    std::fprintf(stderr, "drill: no recovery entry for the room\n");
    return 1;
  }

  auto recreated = serve::Room::Create(room_options, &dataset);
  if (!recreated.ok()) {
    std::fprintf(stderr, "drill recovery room: %s\n",
                 recreated.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<serve::Room> recovered = std::move(recreated).value();
  Status status = recovered->ApplyState(entry->checkpoint_state);
  for (const auto& record : entry->ticks) {
    if (!status.ok()) break;
    serve::Room::TickFrame frame;
    frame.tick = record.tick;
    frame.positions = record.positions;
    frame.goals = record.goals;
    status = recovered->ApplyTickFrame(frame);
  }
  if (!status.ok()) {
    std::fprintf(stderr, "drill replay: %s\n", status.ToString().c_str());
    return 1;
  }

  int failures = 0;
  const auto check = [&failures](bool ok, const char* what) {
    std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what);
    if (!ok) ++failures;
  };
  const std::shared_ptr<const serve::RoomSnapshot> snapshot =
      recovered->snapshot();
  check(recovered->tick() == donor_frame.tick,
        "recovered room reaches the donor's last journaled tick");
  bool positions_exact =
      snapshot->positions().size() == donor_frame.positions.size();
  for (size_t u = 0; positions_exact && u < donor_frame.positions.size(); ++u)
    positions_exact = snapshot->positions()[u].x == donor_frame.positions[u].x
                      && snapshot->positions()[u].y ==
                             donor_frame.positions[u].y;
  check(positions_exact, "recovered positions are bit-exact");
  check(!snapshot->built_by_delta(),
        "recovered snapshot is a from-scratch rebuild (no stale cache "
        "reuse)");
  bool occlusion_exact = true;
  for (int target : HotTargets(recovered->num_users(), 16)) {
    const OcclusionGraph rebuilt = BuildOcclusionGraph(
        snapshot->positions(), target, snapshot->body_radius());
    if (snapshot->OcclusionFor(target) != rebuilt) occlusion_exact = false;
  }
  check(occlusion_exact,
        "recovered occlusion graphs match from-scratch rebuilds");
  status = recovered->Tick();
  check(status.ok() && recovered->snapshot()->built_by_delta(),
        "delta ticking resumes on the first post-recovery tick");

  std::printf("[tick_throughput] stale-cache drill: %s (%d failures)\n",
              failures == 0 ? "PASS" : "FAIL", failures);
  return failures == 0 ? 0 : 2;
}

void PrintRow(const char* label, const BenchConfig& config,
              const TickStats& stats) {
  std::printf(
      "%-8s %5d %4d %6.2f %9.1f %8.3f %8.3f %6lld %7lld %9.1f %6lld\n",
      label, config.users, config.hot, config.move_fraction,
      stats.ticks_per_sec, stats.p50_ms, stats.p99_ms, stats.delta_ticks,
      stats.scratch_ticks, stats.avg_moved, stats.errors);
}

void PrintHeader() {
  std::printf(
      "variant  users  hot  moved   ticks/s   p50 ms   p99 ms  delta "
      "scratch  avg_mvd errors\n");
}

int Main(int argc, char** argv) {
  BenchConfig config;
  double min_speedup = 0.0;
  std::string json_path;
  std::string durable_dir = "/tmp/tick_stale_cache_drill";
  bool sweep = false, stale_cache_drill = false;
  for (int i = 1; i < argc; ++i) {
    int value = 0;
    double fvalue = 0.0;
    char buffer[256] = {};
    if (std::sscanf(argv[i], "--users=%d", &value) == 1) config.users = value;
    else if (std::sscanf(argv[i], "--hot=%d", &value) == 1) config.hot = value;
    else if (std::sscanf(argv[i], "--move_fraction=%lf", &fvalue) == 1)
      config.move_fraction = fvalue;
    else if (std::sscanf(argv[i], "--ticks=%d", &value) == 1)
      config.ticks = value;
    else if (std::sscanf(argv[i], "--warmup=%d", &value) == 1)
      config.warmup = value;
    else if (std::sscanf(argv[i], "--max_candidates=%d", &value) == 1)
      config.max_candidates = value;
    else if (std::sscanf(argv[i], "--min_speedup=%lf", &fvalue) == 1)
      min_speedup = fvalue;
    else if (std::sscanf(argv[i], "--json=%255s", buffer) == 1)
      json_path = buffer;
    else if (std::sscanf(argv[i], "--durable_dir=%255s", buffer) == 1)
      durable_dir = buffer;
    else if (std::strcmp(argv[i], "--sweep") == 0)
      sweep = true;
    else if (std::strcmp(argv[i], "--stale_cache_drill") == 0)
      stale_cache_drill = true;
    else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 1;
    }
  }

  DatasetConfig dataset_config;
  dataset_config.num_users = config.users;
  dataset_config.num_steps = 2;  // live rooms only consume the first frame
  dataset_config.num_sessions = 1;
  dataset_config.seed = 4242;
  std::printf("[tick_throughput] generating %d-user dataset...\n",
              config.users);
  const Dataset dataset = GenerateTimikLike(dataset_config);

  if (stale_cache_drill)
    return RunStaleCacheDrill(dataset, config, durable_dir);

  if (sweep) {
    PrintHeader();
    for (int users : {128, 256, 512}) {
      for (double moved : {0.05, 0.2, 0.5}) {
        BenchConfig point = config;
        point.users = users;
        point.move_fraction = moved;
        DatasetConfig dc = dataset_config;
        dc.num_users = users;
        const Dataset swept = GenerateTimikLike(dc);
        PrintRow("scratch", point, RunVariant(swept, point, /*delta=*/false));
        PrintRow("delta", point, RunVariant(swept, point, /*delta=*/true));
      }
    }
    return 0;
  }

  std::printf("[tick_throughput] measuring from-scratch baseline...\n");
  const TickStats scratch = RunVariant(dataset, config, /*delta=*/false);
  std::printf("[tick_throughput] measuring delta ticks...\n");
  const TickStats delta = RunVariant(dataset, config, /*delta=*/true);
  PrintHeader();
  PrintRow("scratch", config, scratch);
  PrintRow("delta", config, delta);

  const double speedup = scratch.ticks_per_sec > 0.0
                             ? delta.ticks_per_sec / scratch.ticks_per_sec
                             : 0.0;
  const long long errors = scratch.errors + delta.errors;
  std::printf(
      "verdict: %.1f -> %.1f ticks/s (speedup %.2fx) at %d users, "
      "%.0f%% moving, %d hot targets, %lld errors\n",
      scratch.ticks_per_sec, delta.ticks_per_sec, speedup, config.users,
      100.0 * config.move_fraction, config.hot, errors);

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    out << "{\n"
        << "  \"bench\": \"tick_throughput\",\n"
        << "  \"users\": " << config.users << ",\n"
        << "  \"hot\": " << config.hot << ",\n"
        << "  \"move_fraction\": " << config.move_fraction << ",\n"
        << "  \"ticks\": " << config.ticks << ",\n"
        << "  \"ok\": " << config.ticks << ",\n"
        << "  \"qps\": " << delta.ticks_per_sec << ",\n"
        << "  \"scratch_ticks_per_sec\": " << scratch.ticks_per_sec << ",\n"
        << "  \"speedup\": " << speedup << ",\n"
        << "  \"p50_ms\": " << delta.p50_ms << ",\n"
        << "  \"p95_ms\": " << delta.p95_ms << ",\n"
        << "  \"p99_ms\": " << delta.p99_ms << ",\n"
        << "  \"avg_moved\": " << delta.avg_moved << ",\n"
        << "  \"delta_ticks\": " << delta.delta_ticks << ",\n"
        << "  \"lost\": 0,\n"
        << "  \"errors\": " << errors << "\n"
        << "}\n";
    std::printf("[tick_throughput] wrote %s\n", json_path.c_str());
  }

  if (errors > 0) return 2;
  if (min_speedup > 0.0 && speedup < min_speedup) {
    std::fprintf(stderr,
                 "FAIL: speedup %.2fx below the --min_speedup=%.2f gate\n",
                 speedup, min_speedup);
    return 2;
  }
  return 0;
}

}  // namespace
}  // namespace after

int main(int argc, char** argv) { return after::Main(argc, argv); }
