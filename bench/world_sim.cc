// World-scale scenario driver: macro-load against the partitioned fleet
// with the traffic shapes the paper's XR setting actually has — a
// Zipf-skewed room-size distribution, a diurnal load curve over
// discrete time slices, a flash crowd that makes the smallest rooms
// suddenly hot, cross-room population churn, and (optionally) a
// kill-a-shard outage at the diurnal peak followed by a reconnect
// storm. Layered on the same in-process fleet as bench/net_throughput
// (bench/fleet_harness.h): real loopback sockets, partitioned
// ownership, replication standbys, optional durability.
//
// The whole request schedule is generated up front by the scenario
// library (bench/scenario.h) from --seed alone; its FNV-1a fingerprint
// is printed and written to the JSON, so two runs with the same flags
// are bit-identical at the plan level — that is the reproducibility
// gate CI enforces by running the smoke twice.
//
// --coevolve adds the recommendation–network co-evolution loop
// (PAPERS.md): every served recommendation is deterministically
// accepted or ignored; accepts add social edges, ignores decay them,
// and the evolved per-room graph biases which user each scheduled
// request is issued for (hubs attract traffic). Drift statistics are
// reported but deliberately kept OUT of the scenario fingerprint —
// they depend on live responses.
//
// Exit contract (CI gate): exit 2 if any request is lost, any
// unexpected error class appears, the room-size-weighted primary
// balance across healthy shards exceeds --balance_cap, or an armed
// reconnect storm never sees a fully clean wave. Exit 1 on setup
// errors.
//
// Flags: --shards=N --rooms=N --threads=N --clients=N --requests=N
//        --slices=N --zipf=F --diurnal_ratio=F
//        --max_room_users=N --min_room_users=N
//        --churn=F --flash_rooms=N --flash_boost=F
//        --replication=N (default 1) --durable_dir=PATH
//        --kill_at_peak (shutdown shard 0 entering the peak slice)
//        --storm_connections=N --storm_wave=N (reconnect storm after
//                                              the peak slice)
//        --coevolve --seed=N --deadline_ms=F --balance_cap=F
//        --port=N [--host=H] (drive an external front instead; balance
//                             gates are skipped — no router to inspect)
//        --json=PATH (BENCH_world.json-style summary)

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench/fleet_harness.h"
#include "bench/scenario.h"
#include "common/timer.h"
#include "data/dataset.h"
#include "serve/metrics.h"
#include "serve/net_client.h"
#include "serve/net_server.h"
#include "serve/router.h"
#include "serve/server.h"

namespace after {
namespace {

/// Same accounting contract as bench/net_throughput: every scheduled
/// request ends up in exactly one bucket (a failed connect consumes the
/// request as kUnavailable), so `lost` is computable and gated at zero.
struct WorldTally {
  std::atomic<long long> ok{0};
  std::atomic<long long> degraded{0};
  std::atomic<long long> shed{0};
  std::atomic<long long> timeouts{0};
  std::atomic<long long> unavailable{0};
  std::atomic<long long> not_owner{0};
  std::atomic<long long> errors{0};
  std::atomic<long long> reconnects{0};
  serve::LatencyHistogram latency;

  long long accounted() const {
    return ok.load() + shed.load() + timeouts.load() + unavailable.load() +
           not_owner.load() + errors.load();
  }
};

void Record(WorldTally* tally, const Status& status, bool used_fallback,
            double rtt_ms, serve::LatencyHistogram* slice_latency) {
  tally->latency.RecordMs(rtt_ms);
  if (slice_latency != nullptr) slice_latency->RecordMs(rtt_ms);
  switch (status.code()) {
    case StatusCode::kOk:
      tally->ok.fetch_add(1, std::memory_order_relaxed);
      if (used_fallback)
        tally->degraded.fetch_add(1, std::memory_order_relaxed);
      break;
    case StatusCode::kResourceExhausted:
      tally->shed.fetch_add(1, std::memory_order_relaxed);
      break;
    case StatusCode::kTimeout:
      tally->timeouts.fetch_add(1, std::memory_order_relaxed);
      break;
    case StatusCode::kUnavailable:
      tally->unavailable.fetch_add(1, std::memory_order_relaxed);
      break;
    case StatusCode::kNotOwner:
      tally->not_owner.fetch_add(1, std::memory_order_relaxed);
      break;
    default:
      tally->errors.fetch_add(1, std::memory_order_relaxed);
      break;
  }
}

/// Per-room co-evolution state shared by the worker threads. Each room
/// has its own evolution + mutex, so rooms evolve independently and a
/// hot room never serialises traffic to the others.
struct CoevolveState {
  std::vector<std::unique_ptr<bench::SocialGraphEvolution>> rooms;
  std::vector<std::unique_ptr<std::mutex>> locks;
};

/// Issues one contiguous chunk of a slice's scheduled requests through
/// a persistent (reconnecting) client. Co-evolution, when enabled,
/// rewires the user on the way out and observes the recommendation on
/// the way back.
void WorkerChunk(const std::string& host, int port,
                 const bench::SliceRequest* requests, int count,
                 double deadline_ms,
                 std::unique_ptr<serve::NetClient>* client_slot,
                 CoevolveState* coevolve, WorldTally* tally,
                 serve::LatencyHistogram* slice_latency) {
  std::unique_ptr<serve::NetClient>& client = *client_slot;
  for (int i = 0; i < count; ++i) {
    if (client == nullptr || client->broken()) {
      auto connected = serve::NetClient::Connect(host, port);
      if (!connected.ok()) {
        Record(tally, connected.status(), false, 0.0, slice_latency);
        client.reset();
        // Backoff so an outage window sees reconnect attempts, not a
        // request budget burned in a refused-connection loop.
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        continue;
      }
      client = std::move(connected).value();
      tally->reconnects.fetch_add(1, std::memory_order_relaxed);
    }
    serve::FriendRequest request;
    request.room = requests[i].room;
    request.user = requests[i].user;
    request.deadline_ms = deadline_ms;
    if (coevolve != nullptr) {
      std::lock_guard<std::mutex> lock(
          *coevolve->locks[static_cast<size_t>(request.room)]);
      request.user = coevolve->rooms[static_cast<size_t>(request.room)]
                         ->BiasUser(request.user);
    }
    WallTimer rtt;
    auto result = client->Call(request);
    if (result.ok()) {
      const serve::FriendResponse& response = result.value();
      Record(tally, response.status, response.used_fallback,
             rtt.ElapsedMs(), slice_latency);
      if (coevolve != nullptr && response.status.ok()) {
        int candidate = -1;
        for (size_t w = 0; w < response.recommended.size(); ++w) {
          if (response.recommended[w]) {
            candidate = static_cast<int>(w);
            break;
          }
        }
        if (candidate >= 0) {
          std::lock_guard<std::mutex> lock(
              *coevolve->locks[static_cast<size_t>(request.room)]);
          coevolve->rooms[static_cast<size_t>(request.room)]
              ->Observe(request.user, candidate);
        }
      }
    } else {
      Record(tally, result.status(), false, rtt.ElapsedMs(), slice_latency);
    }
  }
}

/// One reconnect-storm wave: `size` fresh connections held open
/// together (so the front really sees a wave-sized burst), each issuing
/// one request. Returns true when every connect succeeded and every
/// answer was OK — the fleet has fully absorbed the outage.
bool StormWave(const std::string& host, int port, int size,
               const std::vector<int>& room_sizes, size_t* cursor,
               double deadline_ms, WorldTally* storm) {
  std::vector<std::unique_ptr<serve::NetClient>> wave;
  wave.reserve(static_cast<size_t>(size));
  bool clean = true;
  for (int k = 0; k < size; ++k) {
    auto connected = serve::NetClient::Connect(host, port);
    if (!connected.ok()) {
      Record(storm, connected.status(), false, 0.0, nullptr);
      clean = false;
      continue;
    }
    wave.push_back(std::move(connected).value());
  }
  for (auto& client : wave) {
    const int room = static_cast<int>((*cursor)++ % room_sizes.size());
    serve::FriendRequest request;
    request.room = room;
    request.user = static_cast<int>(*cursor %
                                    static_cast<size_t>(
                                        room_sizes[static_cast<size_t>(room)]));
    request.deadline_ms = deadline_ms;
    WallTimer rtt;
    auto result = client->Call(request);
    if (result.ok()) {
      Record(storm, result.value().status, result.value().used_fallback,
             rtt.ElapsedMs(), nullptr);
      if (!result.value().status.ok()) clean = false;
    } else {
      Record(storm, result.status(), false, rtt.ElapsedMs(), nullptr);
      clean = false;
    }
  }
  return clean;
}

int Main(int argc, char** argv) {
  bench::WorldConfig world;
  std::string host = "127.0.0.1", json_path, durable_dir;
  int port = 0, shards = 3, threads = 2, clients = 4, replication = 1;
  int storm_connections = 0, storm_wave = 8;
  bool kill_at_peak = false, coevolve = false, shards_given = false;
  double deadline_ms = 1000.0, balance_cap = 2.5;
  for (int i = 1; i < argc; ++i) {
    int value = 0;
    double fvalue = 0.0;
    char buffer[256] = {};
    if (std::sscanf(argv[i], "--port=%d", &value) == 1) port = value;
    else if (std::sscanf(argv[i], "--shards=%d", &value) == 1) {
      shards = value;
      shards_given = true;
    }
    else if (std::sscanf(argv[i], "--rooms=%d", &value) == 1)
      world.rooms = value;
    else if (std::sscanf(argv[i], "--threads=%d", &value) == 1)
      threads = value;
    else if (std::sscanf(argv[i], "--clients=%d", &value) == 1)
      clients = value;
    else if (std::sscanf(argv[i], "--requests=%d", &value) == 1)
      world.total_requests = value;
    else if (std::sscanf(argv[i], "--slices=%d", &value) == 1)
      world.slices = value;
    else if (std::sscanf(argv[i], "--max_room_users=%d", &value) == 1)
      world.max_room_users = value;
    else if (std::sscanf(argv[i], "--min_room_users=%d", &value) == 1)
      world.min_room_users = value;
    else if (std::sscanf(argv[i], "--flash_rooms=%d", &value) == 1)
      world.flash_rooms = value;
    else if (std::sscanf(argv[i], "--replication=%d", &value) == 1)
      replication = value;
    else if (std::sscanf(argv[i], "--storm_connections=%d", &value) == 1)
      storm_connections = value;
    else if (std::sscanf(argv[i], "--storm_wave=%d", &value) == 1)
      storm_wave = value;
    else if (std::sscanf(argv[i], "--zipf=%lf", &fvalue) == 1)
      world.zipf_exponent = fvalue;
    else if (std::sscanf(argv[i], "--diurnal_ratio=%lf", &fvalue) == 1)
      world.diurnal_ratio = fvalue;
    else if (std::sscanf(argv[i], "--churn=%lf", &fvalue) == 1)
      world.churn_fraction = fvalue;
    else if (std::sscanf(argv[i], "--flash_boost=%lf", &fvalue) == 1)
      world.flash_boost = fvalue;
    else if (std::sscanf(argv[i], "--deadline_ms=%lf", &fvalue) == 1)
      deadline_ms = fvalue;
    else if (std::sscanf(argv[i], "--balance_cap=%lf", &fvalue) == 1)
      balance_cap = fvalue;
    else if (std::sscanf(argv[i], "--seed=%" SCNu64,
                         &world.seed) == 1) {}
    else if (std::strcmp(argv[i], "--kill_at_peak") == 0)
      kill_at_peak = true;
    else if (std::strcmp(argv[i], "--coevolve") == 0) coevolve = true;
    else if (std::sscanf(argv[i], "--durable_dir=%255s", buffer) == 1)
      durable_dir = buffer;
    else if (std::sscanf(argv[i], "--host=%255s", buffer) == 1)
      host = buffer;
    else if (std::sscanf(argv[i], "--json=%255s", buffer) == 1)
      json_path = buffer;
    else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 1;
    }
  }
  if (port != 0 && shards_given) {
    std::fprintf(stderr, "--port and --shards are mutually exclusive\n");
    return 1;
  }
  const bool self_contained = port == 0;
  if (!self_contained && kill_at_peak) {
    std::fprintf(stderr, "--kill_at_peak needs the self-contained fleet\n");
    return 1;
  }
  if (world.rooms < 1 || world.slices < 1 || world.total_requests < 1 ||
      clients < 1 || storm_wave < 1) {
    std::fprintf(stderr, "rooms/slices/requests/clients/storm_wave must "
                         "be >= 1\n");
    return 1;
  }
  if (kill_at_peak && storm_connections == 0)
    storm_connections = 4 * storm_wave;

  const bench::WorldPlan plan = bench::BuildWorldPlan(world);
  std::printf("[world_sim] plan: %d rooms (sizes %d..%d, zipf %.2f), "
              "%d slices (peak %d, ratio %.1f), %d requests, "
              "fingerprint %016" PRIx64 "\n",
              world.rooms, plan.room_sizes.back(), plan.room_sizes.front(),
              world.zipf_exponent, world.slices, plan.peak_slice,
              world.diurnal_ratio, world.total_requests, plan.fingerprint);

  // One dataset per distinct room size, generated once and owned here
  // so mid-run room rebuilds (standby promotion, storms) can re-create
  // any room. std::map keeps node addresses stable across inserts.
  std::map<int, Dataset> datasets;
  std::unique_ptr<bench::LocalFleet> fleet;
  if (self_contained) {
    for (int size : plan.room_sizes) {
      if (datasets.count(size) != 0) continue;
      DatasetConfig config;
      config.num_users = size;
      config.num_steps = 2;
      config.num_sessions = 1;
      config.seed = 4242;
      datasets.emplace(size, GenerateTimikLike(config));
    }
    std::printf("[world_sim] starting fleet: %d shard(s), %d rooms, "
                "replication %d%s%s\n",
                shards, world.rooms, replication,
                durable_dir.empty() ? "" : ", durable",
                coevolve ? ", co-evolution on" : "");
    bench::FleetConfig fleet_config;
    fleet_config.shards = shards;
    fleet_config.rooms = world.rooms;
    fleet_config.threads = threads;
    fleet_config.partitioned = true;
    fleet_config.replication = replication;
    fleet_config.durable_base = durable_dir;
    fleet_config.front_max_connections = clients * 2 + storm_wave + 64;
    const std::vector<int>* sizes = &plan.room_sizes;
    fleet = bench::StartLocalFleet(
        fleet_config,
        [&datasets, sizes](int r) -> Result<std::unique_ptr<serve::Room>> {
          if (r < 0 || r >= static_cast<int>(sizes->size()))
            return InvalidArgumentError("room id out of plan range");
          serve::Room::Options room_options;
          room_options.id = r;
          room_options.mode = serve::Room::Mode::kLive;
          room_options.seed = 900 + r;
          return serve::Room::Create(
              room_options,
              &datasets.at((*sizes)[static_cast<size_t>(r)]));
        });
    if (fleet == nullptr) return 1;
    host = fleet->router_net->host();
    port = fleet->router_net->port();
  }

  CoevolveState coevolve_state;
  if (coevolve) {
    for (size_t r = 0; r < plan.room_sizes.size(); ++r) {
      coevolve_state.rooms.push_back(
          std::make_unique<bench::SocialGraphEvolution>(
              plan.room_sizes[r], world.seed ^ (0xC0EFULL + r)));
      coevolve_state.locks.push_back(std::make_unique<std::mutex>());
    }
  }

  WorldTally tally;
  WorldTally storm_tally;
  serve::LatencyHistogram peak_latency;
  std::vector<std::unique_ptr<serve::NetClient>> client_pool(
      static_cast<size_t>(clients));
  WallTimer run_timer;
  double kill_elapsed_ms = -1.0;
  double storm_recovery_ms = -1.0;
  long long storm_waves_needed = 0;

  for (int t = 0; t < world.slices; ++t) {
    if (kill_at_peak && t == plan.peak_slice && fleet != nullptr) {
      std::printf("[world_sim] diurnal peak: killing shard 0\n");
      fleet->shard_nets[0]->Shutdown();
      kill_elapsed_ms = run_timer.ElapsedMs();
    }
    const std::vector<bench::SliceRequest>& slice =
        plan.schedule[static_cast<size_t>(t)];
    serve::LatencyHistogram* slice_latency =
        t == plan.peak_slice ? &peak_latency : nullptr;
    std::vector<std::thread> workers;
    const int chunk =
        (static_cast<int>(slice.size()) + clients - 1) / clients;
    for (int c = 0; c < clients; ++c) {
      const int begin = c * chunk;
      const int count = std::min<int>(chunk,
                                      static_cast<int>(slice.size()) - begin);
      if (count <= 0) break;
      workers.emplace_back(WorkerChunk, host, port, slice.data() + begin,
                           count, deadline_ms,
                           &client_pool[static_cast<size_t>(c)],
                           coevolve ? &coevolve_state : nullptr, &tally,
                           slice_latency);
    }
    for (auto& worker : workers) worker.join();

    // Reconnect storm right after the outage's peak slice: waves of
    // fresh connections (each wave <= --storm_wave, so the front's
    // connection budget is never exceeded) until one wave is fully
    // clean — that marks recovery.
    if (t == plan.peak_slice && storm_connections > 0) {
      std::printf("[world_sim] reconnect storm: %d connection(s) in waves "
                  "of <= %d\n", storm_connections, storm_wave);
      size_t cursor = 0;
      const std::vector<int> waves =
          bench::ReconnectStormWaves(storm_connections, storm_wave);
      bool recovered = false;
      for (int wave : waves) {
        ++storm_waves_needed;
        const bool clean = StormWave(host, port, wave, plan.room_sizes,
                                     &cursor, deadline_ms, &storm_tally);
        if (clean && !recovered) {
          recovered = true;
          storm_recovery_ms =
              run_timer.ElapsedMs() -
              (kill_elapsed_ms >= 0.0 ? kill_elapsed_ms
                                      : run_timer.ElapsedMs());
          if (kill_elapsed_ms < 0.0) storm_recovery_ms = 0.0;
        }
      }
      // The budgeted waves all ran while the fleet was still repairing:
      // keep probing with extra waves (bounded) until one is clean, so
      // recovery time measures the fleet, not the storm budget.
      WallTimer extra;
      while (!recovered && extra.ElapsedMs() < 15000.0) {
        ++storm_waves_needed;
        if (StormWave(host, port, storm_wave, plan.room_sizes, &cursor,
                      deadline_ms, &storm_tally)) {
          recovered = true;
          storm_recovery_ms = run_timer.ElapsedMs() - kill_elapsed_ms;
        }
      }
      if (recovered && storm_recovery_ms < 0.0)
        storm_recovery_ms = 0.0;
      if (!recovered)
        std::fprintf(stderr, "[world_sim] storm never saw a clean wave\n");
    }
  }
  const double elapsed_s = run_timer.ElapsedSeconds();

  const long long total = world.total_requests;
  const long long accounted = tally.accounted();
  const long long lost = total - accounted;
  const double qps = elapsed_s > 0.0 ? tally.ok.load() / elapsed_s : 0.0;
  const double p50 = tally.latency.PercentileMs(0.50);
  const double p95 = tally.latency.PercentileMs(0.95);
  const double p99 = tally.latency.PercentileMs(0.99);
  const double peak_p99 = peak_latency.PercentileMs(0.99);
  const double degraded_share =
      tally.ok.load() > 0
          ? static_cast<double>(tally.degraded.load()) / tally.ok.load()
          : 0.0;

  std::printf(
      "requests clients    ok   dgr  shed   t/o unavail notown  errs  lost"
      "   p50ms   p95ms   p99ms  pk99ms    req/s\n"
      "%8lld %7d %5lld %5lld %5lld %5lld %7lld %6lld %5lld %5lld %7.2f "
      "%7.2f %7.2f %7.2f %8.1f\n",
      total, clients, tally.ok.load(), tally.degraded.load(),
      tally.shed.load(), tally.timeouts.load(), tally.unavailable.load(),
      tally.not_owner.load(), tally.errors.load(), lost, p50, p95, p99,
      peak_p99, qps);
  if (storm_connections > 0)
    std::printf("storm: %lld request(s) over %lld wave(s), ok=%lld "
                "unavail=%lld errs=%lld, recovery %.1f ms\n",
                storm_tally.accounted(), storm_waves_needed,
                storm_tally.ok.load(), storm_tally.unavailable.load(),
                storm_tally.errors.load(), storm_recovery_ms);

  // Skew post-mortem: weighted primary balance (deterministic given the
  // seed: Zipf sizes + hash assignment + repair promotion) is the gate;
  // the measured per-room histogram is observability.
  double primary_balance = 0.0;
  double request_balance = 0.0;
  if (fleet != nullptr) {
    const auto snapshot = fleet->router->AssignmentSnapshot();
    const int num_backends = fleet->router->num_backends();
    std::vector<double> weighted(static_cast<size_t>(num_backends), 0.0);
    std::vector<int> primaries(static_cast<size_t>(num_backends), 0);
    for (const auto& entry : snapshot) {
      if (entry.second.copies.empty()) continue;
      const int primary = entry.second.copies[0];
      if (primary < 0 || primary >= num_backends) continue;
      ++primaries[static_cast<size_t>(primary)];
      if (entry.first >= 0 &&
          entry.first < static_cast<int>(plan.room_sizes.size()))
        weighted[static_cast<size_t>(primary)] +=
            plan.room_sizes[static_cast<size_t>(entry.first)];
    }
    double weighted_sum = 0.0, weighted_max = 0.0;
    double requests_sum = 0.0, requests_max = 0.0;
    int healthy = 0;
    for (int b = 0; b < num_backends; ++b) {
      const bool alive = fleet->router->backend_healthy(b);
      const double shard_requests = static_cast<double>(
          fleet->shards[static_cast<size_t>(b)]
              ->metrics().room_requests.Total());
      std::printf("  shard %d: %d primaries, weighted load %.0f, "
                  "%.0f request(s)%s\n",
                  b, primaries[static_cast<size_t>(b)],
                  weighted[static_cast<size_t>(b)], shard_requests,
                  alive ? "" : "  [dead]");
      if (!alive) continue;
      ++healthy;
      weighted_sum += weighted[static_cast<size_t>(b)];
      weighted_max =
          std::max(weighted_max, weighted[static_cast<size_t>(b)]);
      requests_sum += shard_requests;
      requests_max = std::max(requests_max, shard_requests);
    }
    if (healthy > 0 && weighted_sum > 0.0)
      primary_balance = weighted_max / (weighted_sum / healthy);
    if (healthy > 0 && requests_sum > 0.0)
      request_balance = requests_max / (requests_sum / healthy);
    std::printf("balance: weighted primary %.2f (cap %.2f), measured "
                "request %.2f over %d healthy shard(s)\n",
                primary_balance, balance_cap, request_balance, healthy);

    // Per-room histogram from the new serve-side counters: did the
    // offered Zipf skew actually reach the rooms?
    std::unordered_map<int, long long> per_room;
    for (const auto& shard : fleet->shards)
      for (const auto& entry : shard->metrics().room_requests.Snapshot())
        per_room[entry.first] += entry.second;
    std::vector<std::pair<int, long long>> hot(per_room.begin(),
                                               per_room.end());
    std::stable_sort(hot.begin(), hot.end(), [](const auto& a,
                                                const auto& b) {
      return a.second > b.second;
    });
    std::printf("hottest rooms:");
    for (size_t k = 0; k < hot.size() && k < 5; ++k)
      std::printf(" r%d=%lld(sz %d)", hot[k].first, hot[k].second,
                  plan.room_sizes[static_cast<size_t>(hot[k].first)]);
    std::printf("\n");
  }

  double drift_l1 = 0.0;
  long long accepts = 0, ignores = 0;
  uint64_t graph_fingerprint = 0;
  if (coevolve) {
    bench::Fnv1a hasher;
    for (const auto& evolution : coevolve_state.rooms) {
      drift_l1 += evolution->DriftL1();
      accepts += evolution->accepts();
      ignores += evolution->ignores();
      hasher.Mix(evolution->Fingerprint());
    }
    graph_fingerprint = hasher.digest();
    std::printf("co-evolution: %lld accept(s), %lld ignore(s), drift L1 "
                "%.1f, graph fingerprint %016" PRIx64 "\n",
                accepts, ignores, drift_l1, graph_fingerprint);
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    char fingerprint_hex[32], graph_hex[32];
    std::snprintf(fingerprint_hex, sizeof(fingerprint_hex), "%016" PRIx64,
                  plan.fingerprint);
    std::snprintf(graph_hex, sizeof(graph_hex), "%016" PRIx64,
                  graph_fingerprint);
    out << "{\n"
        << "  \"bench\": \"world_sim\",\n"
        << "  \"seed\": " << world.seed << ",\n"
        << "  \"rooms\": " << world.rooms << ",\n"
        << "  \"shards\": " << (self_contained ? shards : 0) << ",\n"
        << "  \"slices\": " << world.slices << ",\n"
        << "  \"zipf_exponent\": " << world.zipf_exponent << ",\n"
        << "  \"diurnal_ratio\": " << world.diurnal_ratio << ",\n"
        << "  \"coevolve\": " << (coevolve ? "true" : "false") << ",\n"
        << "  \"kill_at_peak\": " << (kill_at_peak ? "true" : "false")
        << ",\n"
        << "  \"scenario_fingerprint\": \"" << fingerprint_hex << "\",\n"
        << "  \"requests\": " << total << ",\n"
        << "  \"ok\": " << tally.ok.load() << ",\n"
        << "  \"degraded\": " << tally.degraded.load() << ",\n"
        << "  \"shed\": " << tally.shed.load() << ",\n"
        << "  \"timeouts\": " << tally.timeouts.load() << ",\n"
        << "  \"unavailable\": " << tally.unavailable.load() << ",\n"
        << "  \"not_owner\": " << tally.not_owner.load() << ",\n"
        << "  \"errors\": " << tally.errors.load() << ",\n"
        << "  \"lost\": " << lost << ",\n"
        << "  \"qps\": " << qps << ",\n"
        << "  \"p50_ms\": " << p50 << ",\n"
        << "  \"p95_ms\": " << p95 << ",\n"
        << "  \"p99_ms\": " << p99 << ",\n"
        << "  \"peak_p99_ms\": " << peak_p99 << ",\n"
        << "  \"degraded_share\": " << degraded_share << ",\n"
        << "  \"primary_balance\": " << primary_balance << ",\n"
        << "  \"request_balance\": " << request_balance << ",\n"
        << "  \"storm_connections\": " << storm_connections << ",\n"
        << "  \"storm_ok\": " << storm_tally.ok.load() << ",\n"
        << "  \"storm_errors\": " << storm_tally.errors.load() << ",\n"
        << "  \"storm_recovery_ms\": " << storm_recovery_ms << ",\n"
        << "  \"coevolve_accepts\": " << accepts << ",\n"
        << "  \"coevolve_ignores\": " << ignores << ",\n"
        << "  \"coevolve_drift_l1\": " << drift_l1 << ",\n"
        << "  \"graph_fingerprint\": \"" << graph_hex << "\",\n"
        << "  \"elapsed_s\": " << elapsed_s << "\n"
        << "}\n";
    std::printf("[world_sim] wrote %s\n", json_path.c_str());
  }

  // CI contract (docs/world_sim.md): full accounting, no unexpected
  // error classes, skew-weighted balance within the cap, and an armed
  // storm must have recovered.
  if (lost != 0) {
    std::fprintf(stderr, "FAIL: %lld request(s) unaccounted\n", lost);
    return 2;
  }
  if (tally.errors.load() != 0 || storm_tally.errors.load() != 0) {
    std::fprintf(stderr, "FAIL: %lld unexpected error status(es)\n",
                 tally.errors.load() + storm_tally.errors.load());
    return 2;
  }
  if (fleet != nullptr && primary_balance > balance_cap) {
    std::fprintf(stderr,
                 "FAIL: weighted primary balance %.2f exceeds cap %.2f\n",
                 primary_balance, balance_cap);
    return 2;
  }
  if (storm_connections > 0 && storm_recovery_ms < 0.0) {
    std::fprintf(stderr, "FAIL: reconnect storm never recovered\n");
    return 2;
  }
  return 0;
}

}  // namespace
}  // namespace after

int main(int argc, char** argv) { return after::Main(argc, argv); }
