file(REMOVE_RECURSE
  "CMakeFiles/ablation_continuity.dir/ablation_continuity.cc.o"
  "CMakeFiles/ablation_continuity.dir/ablation_continuity.cc.o.d"
  "ablation_continuity"
  "ablation_continuity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_continuity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
