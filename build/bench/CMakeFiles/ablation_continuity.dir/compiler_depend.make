# Empty compiler generated dependencies file for ablation_continuity.
# This may be replaced when dependencies are built.
