file(REMOVE_RECURSE
  "CMakeFiles/after_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/after_bench_util.dir/bench_util.cc.o.d"
  "libafter_bench_util.a"
  "libafter_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/after_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
