file(REMOVE_RECURSE
  "libafter_bench_util.a"
)
