# Empty compiler generated dependencies file for after_bench_util.
# This may be replaced when dependencies are built.
