
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig4_user_study.cc" "bench/CMakeFiles/fig4_user_study.dir/fig4_user_study.cc.o" "gcc" "bench/CMakeFiles/fig4_user_study.dir/fig4_user_study.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/after_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/userstudy/CMakeFiles/after_userstudy.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/after_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/after_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/after_core.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/after_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/after_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/after_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/after_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/after_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/after_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
