file(REMOVE_RECURSE
  "CMakeFiles/fig4_user_study.dir/fig4_user_study.cc.o"
  "CMakeFiles/fig4_user_study.dir/fig4_user_study.cc.o.d"
  "fig4_user_study"
  "fig4_user_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_user_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
