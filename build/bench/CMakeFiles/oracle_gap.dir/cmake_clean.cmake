file(REMOVE_RECURSE
  "CMakeFiles/oracle_gap.dir/oracle_gap.cc.o"
  "CMakeFiles/oracle_gap.dir/oracle_gap.cc.o.d"
  "oracle_gap"
  "oracle_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oracle_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
