file(REMOVE_RECURSE
  "CMakeFiles/table2_timik.dir/table2_timik.cc.o"
  "CMakeFiles/table2_timik.dir/table2_timik.cc.o.d"
  "table2_timik"
  "table2_timik.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_timik.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
