# Empty dependencies file for table2_timik.
# This may be replaced when dependencies are built.
