file(REMOVE_RECURSE
  "CMakeFiles/table3_smm.dir/table3_smm.cc.o"
  "CMakeFiles/table3_smm.dir/table3_smm.cc.o.d"
  "table3_smm"
  "table3_smm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_smm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
