# Empty dependencies file for table3_smm.
# This may be replaced when dependencies are built.
