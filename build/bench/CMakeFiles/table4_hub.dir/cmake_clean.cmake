file(REMOVE_RECURSE
  "CMakeFiles/table4_hub.dir/table4_hub.cc.o"
  "CMakeFiles/table4_hub.dir/table4_hub.cc.o.d"
  "table4_hub"
  "table4_hub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_hub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
