# Empty compiler generated dependencies file for table4_hub.
# This may be replaced when dependencies are built.
