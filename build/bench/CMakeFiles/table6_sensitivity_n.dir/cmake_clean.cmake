file(REMOVE_RECURSE
  "CMakeFiles/table6_sensitivity_n.dir/table6_sensitivity_n.cc.o"
  "CMakeFiles/table6_sensitivity_n.dir/table6_sensitivity_n.cc.o.d"
  "table6_sensitivity_n"
  "table6_sensitivity_n.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_sensitivity_n.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
