# Empty dependencies file for table6_sensitivity_n.
# This may be replaced when dependencies are built.
