file(REMOVE_RECURSE
  "CMakeFiles/table7_sensitivity_vr.dir/table7_sensitivity_vr.cc.o"
  "CMakeFiles/table7_sensitivity_vr.dir/table7_sensitivity_vr.cc.o.d"
  "table7_sensitivity_vr"
  "table7_sensitivity_vr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_sensitivity_vr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
