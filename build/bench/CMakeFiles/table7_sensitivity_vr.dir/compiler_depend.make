# Empty compiler generated dependencies file for table7_sensitivity_vr.
# This may be replaced when dependencies are built.
