file(REMOVE_RECURSE
  "CMakeFiles/adaptive_display.dir/adaptive_display.cpp.o"
  "CMakeFiles/adaptive_display.dir/adaptive_display.cpp.o.d"
  "adaptive_display"
  "adaptive_display.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_display.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
