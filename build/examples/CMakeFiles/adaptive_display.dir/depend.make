# Empty dependencies file for adaptive_display.
# This may be replaced when dependencies are built.
