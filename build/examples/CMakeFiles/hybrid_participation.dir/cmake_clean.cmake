file(REMOVE_RECURSE
  "CMakeFiles/hybrid_participation.dir/hybrid_participation.cpp.o"
  "CMakeFiles/hybrid_participation.dir/hybrid_participation.cpp.o.d"
  "hybrid_participation"
  "hybrid_participation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_participation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
