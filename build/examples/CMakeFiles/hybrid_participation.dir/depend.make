# Empty dependencies file for hybrid_participation.
# This may be replaced when dependencies are built.
