file(REMOVE_RECURSE
  "CMakeFiles/xr_conference.dir/xr_conference.cpp.o"
  "CMakeFiles/xr_conference.dir/xr_conference.cpp.o.d"
  "xr_conference"
  "xr_conference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xr_conference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
