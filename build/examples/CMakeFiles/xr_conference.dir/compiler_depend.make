# Empty compiler generated dependencies file for xr_conference.
# This may be replaced when dependencies are built.
