
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/comurnet.cc" "src/baselines/CMakeFiles/after_baselines.dir/comurnet.cc.o" "gcc" "src/baselines/CMakeFiles/after_baselines.dir/comurnet.cc.o.d"
  "/root/repo/src/baselines/dcrnn_recommender.cc" "src/baselines/CMakeFiles/after_baselines.dir/dcrnn_recommender.cc.o" "gcc" "src/baselines/CMakeFiles/after_baselines.dir/dcrnn_recommender.cc.o.d"
  "/root/repo/src/baselines/grafrank.cc" "src/baselines/CMakeFiles/after_baselines.dir/grafrank.cc.o" "gcc" "src/baselines/CMakeFiles/after_baselines.dir/grafrank.cc.o.d"
  "/root/repo/src/baselines/mvagc.cc" "src/baselines/CMakeFiles/after_baselines.dir/mvagc.cc.o" "gcc" "src/baselines/CMakeFiles/after_baselines.dir/mvagc.cc.o.d"
  "/root/repo/src/baselines/nearest_recommender.cc" "src/baselines/CMakeFiles/after_baselines.dir/nearest_recommender.cc.o" "gcc" "src/baselines/CMakeFiles/after_baselines.dir/nearest_recommender.cc.o.d"
  "/root/repo/src/baselines/oracle_recommender.cc" "src/baselines/CMakeFiles/after_baselines.dir/oracle_recommender.cc.o" "gcc" "src/baselines/CMakeFiles/after_baselines.dir/oracle_recommender.cc.o.d"
  "/root/repo/src/baselines/random_recommender.cc" "src/baselines/CMakeFiles/after_baselines.dir/random_recommender.cc.o" "gcc" "src/baselines/CMakeFiles/after_baselines.dir/random_recommender.cc.o.d"
  "/root/repo/src/baselines/recurrent_base.cc" "src/baselines/CMakeFiles/after_baselines.dir/recurrent_base.cc.o" "gcc" "src/baselines/CMakeFiles/after_baselines.dir/recurrent_base.cc.o.d"
  "/root/repo/src/baselines/tgcn_recommender.cc" "src/baselines/CMakeFiles/after_baselines.dir/tgcn_recommender.cc.o" "gcc" "src/baselines/CMakeFiles/after_baselines.dir/tgcn_recommender.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/after_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/after_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/after_data.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/after_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/after_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/after_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/after_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
