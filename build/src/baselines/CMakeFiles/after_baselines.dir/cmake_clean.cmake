file(REMOVE_RECURSE
  "CMakeFiles/after_baselines.dir/comurnet.cc.o"
  "CMakeFiles/after_baselines.dir/comurnet.cc.o.d"
  "CMakeFiles/after_baselines.dir/dcrnn_recommender.cc.o"
  "CMakeFiles/after_baselines.dir/dcrnn_recommender.cc.o.d"
  "CMakeFiles/after_baselines.dir/grafrank.cc.o"
  "CMakeFiles/after_baselines.dir/grafrank.cc.o.d"
  "CMakeFiles/after_baselines.dir/mvagc.cc.o"
  "CMakeFiles/after_baselines.dir/mvagc.cc.o.d"
  "CMakeFiles/after_baselines.dir/nearest_recommender.cc.o"
  "CMakeFiles/after_baselines.dir/nearest_recommender.cc.o.d"
  "CMakeFiles/after_baselines.dir/oracle_recommender.cc.o"
  "CMakeFiles/after_baselines.dir/oracle_recommender.cc.o.d"
  "CMakeFiles/after_baselines.dir/random_recommender.cc.o"
  "CMakeFiles/after_baselines.dir/random_recommender.cc.o.d"
  "CMakeFiles/after_baselines.dir/recurrent_base.cc.o"
  "CMakeFiles/after_baselines.dir/recurrent_base.cc.o.d"
  "CMakeFiles/after_baselines.dir/tgcn_recommender.cc.o"
  "CMakeFiles/after_baselines.dir/tgcn_recommender.cc.o.d"
  "libafter_baselines.a"
  "libafter_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/after_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
