file(REMOVE_RECURSE
  "libafter_baselines.a"
)
