# Empty compiler generated dependencies file for after_baselines.
# This may be replaced when dependencies are built.
