file(REMOVE_RECURSE
  "CMakeFiles/after_common.dir/rng.cc.o"
  "CMakeFiles/after_common.dir/rng.cc.o.d"
  "libafter_common.a"
  "libafter_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/after_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
