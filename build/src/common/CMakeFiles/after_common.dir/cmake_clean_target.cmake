file(REMOVE_RECURSE
  "libafter_common.a"
)
