# Empty compiler generated dependencies file for after_common.
# This may be replaced when dependencies are built.
