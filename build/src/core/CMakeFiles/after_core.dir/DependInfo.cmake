
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/evaluator.cc" "src/core/CMakeFiles/after_core.dir/evaluator.cc.o" "gcc" "src/core/CMakeFiles/after_core.dir/evaluator.cc.o.d"
  "/root/repo/src/core/loss.cc" "src/core/CMakeFiles/after_core.dir/loss.cc.o" "gcc" "src/core/CMakeFiles/after_core.dir/loss.cc.o.d"
  "/root/repo/src/core/lwp.cc" "src/core/CMakeFiles/after_core.dir/lwp.cc.o" "gcc" "src/core/CMakeFiles/after_core.dir/lwp.cc.o.d"
  "/root/repo/src/core/mia.cc" "src/core/CMakeFiles/after_core.dir/mia.cc.o" "gcc" "src/core/CMakeFiles/after_core.dir/mia.cc.o.d"
  "/root/repo/src/core/pdr.cc" "src/core/CMakeFiles/after_core.dir/pdr.cc.o" "gcc" "src/core/CMakeFiles/after_core.dir/pdr.cc.o.d"
  "/root/repo/src/core/poshgnn.cc" "src/core/CMakeFiles/after_core.dir/poshgnn.cc.o" "gcc" "src/core/CMakeFiles/after_core.dir/poshgnn.cc.o.d"
  "/root/repo/src/core/session.cc" "src/core/CMakeFiles/after_core.dir/session.cc.o" "gcc" "src/core/CMakeFiles/after_core.dir/session.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/after_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/after_data.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/after_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/after_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/after_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/after_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
