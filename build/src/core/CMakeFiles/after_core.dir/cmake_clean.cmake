file(REMOVE_RECURSE
  "CMakeFiles/after_core.dir/evaluator.cc.o"
  "CMakeFiles/after_core.dir/evaluator.cc.o.d"
  "CMakeFiles/after_core.dir/loss.cc.o"
  "CMakeFiles/after_core.dir/loss.cc.o.d"
  "CMakeFiles/after_core.dir/lwp.cc.o"
  "CMakeFiles/after_core.dir/lwp.cc.o.d"
  "CMakeFiles/after_core.dir/mia.cc.o"
  "CMakeFiles/after_core.dir/mia.cc.o.d"
  "CMakeFiles/after_core.dir/pdr.cc.o"
  "CMakeFiles/after_core.dir/pdr.cc.o.d"
  "CMakeFiles/after_core.dir/poshgnn.cc.o"
  "CMakeFiles/after_core.dir/poshgnn.cc.o.d"
  "CMakeFiles/after_core.dir/session.cc.o"
  "CMakeFiles/after_core.dir/session.cc.o.d"
  "libafter_core.a"
  "libafter_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/after_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
