file(REMOVE_RECURSE
  "libafter_core.a"
)
