# Empty dependencies file for after_core.
# This may be replaced when dependencies are built.
