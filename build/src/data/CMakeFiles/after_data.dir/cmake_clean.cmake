file(REMOVE_RECURSE
  "CMakeFiles/after_data.dir/dataset.cc.o"
  "CMakeFiles/after_data.dir/dataset.cc.o.d"
  "CMakeFiles/after_data.dir/dataset_io.cc.o"
  "CMakeFiles/after_data.dir/dataset_io.cc.o.d"
  "CMakeFiles/after_data.dir/preference_model.cc.o"
  "CMakeFiles/after_data.dir/preference_model.cc.o.d"
  "libafter_data.a"
  "libafter_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/after_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
