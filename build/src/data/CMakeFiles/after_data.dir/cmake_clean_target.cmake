file(REMOVE_RECURSE
  "libafter_data.a"
)
