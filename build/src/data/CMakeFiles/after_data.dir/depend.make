# Empty dependencies file for after_data.
# This may be replaced when dependencies are built.
