file(REMOVE_RECURSE
  "CMakeFiles/after_eval.dir/ascii_view.cc.o"
  "CMakeFiles/after_eval.dir/ascii_view.cc.o.d"
  "CMakeFiles/after_eval.dir/stats.cc.o"
  "CMakeFiles/after_eval.dir/stats.cc.o.d"
  "CMakeFiles/after_eval.dir/table_printer.cc.o"
  "CMakeFiles/after_eval.dir/table_printer.cc.o.d"
  "libafter_eval.a"
  "libafter_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/after_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
