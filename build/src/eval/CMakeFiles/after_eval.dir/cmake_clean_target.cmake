file(REMOVE_RECURSE
  "libafter_eval.a"
)
