# Empty dependencies file for after_eval.
# This may be replaced when dependencies are built.
