
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/arc_mwis.cc" "src/graph/CMakeFiles/after_graph.dir/arc_mwis.cc.o" "gcc" "src/graph/CMakeFiles/after_graph.dir/arc_mwis.cc.o.d"
  "/root/repo/src/graph/generators.cc" "src/graph/CMakeFiles/after_graph.dir/generators.cc.o" "gcc" "src/graph/CMakeFiles/after_graph.dir/generators.cc.o.d"
  "/root/repo/src/graph/gig.cc" "src/graph/CMakeFiles/after_graph.dir/gig.cc.o" "gcc" "src/graph/CMakeFiles/after_graph.dir/gig.cc.o.d"
  "/root/repo/src/graph/mwis.cc" "src/graph/CMakeFiles/after_graph.dir/mwis.cc.o" "gcc" "src/graph/CMakeFiles/after_graph.dir/mwis.cc.o.d"
  "/root/repo/src/graph/occlusion_converter.cc" "src/graph/CMakeFiles/after_graph.dir/occlusion_converter.cc.o" "gcc" "src/graph/CMakeFiles/after_graph.dir/occlusion_converter.cc.o.d"
  "/root/repo/src/graph/occlusion_converter_3d.cc" "src/graph/CMakeFiles/after_graph.dir/occlusion_converter_3d.cc.o" "gcc" "src/graph/CMakeFiles/after_graph.dir/occlusion_converter_3d.cc.o.d"
  "/root/repo/src/graph/occlusion_graph.cc" "src/graph/CMakeFiles/after_graph.dir/occlusion_graph.cc.o" "gcc" "src/graph/CMakeFiles/after_graph.dir/occlusion_graph.cc.o.d"
  "/root/repo/src/graph/social_graph.cc" "src/graph/CMakeFiles/after_graph.dir/social_graph.cc.o" "gcc" "src/graph/CMakeFiles/after_graph.dir/social_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/after_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/after_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
