file(REMOVE_RECURSE
  "CMakeFiles/after_graph.dir/arc_mwis.cc.o"
  "CMakeFiles/after_graph.dir/arc_mwis.cc.o.d"
  "CMakeFiles/after_graph.dir/generators.cc.o"
  "CMakeFiles/after_graph.dir/generators.cc.o.d"
  "CMakeFiles/after_graph.dir/gig.cc.o"
  "CMakeFiles/after_graph.dir/gig.cc.o.d"
  "CMakeFiles/after_graph.dir/mwis.cc.o"
  "CMakeFiles/after_graph.dir/mwis.cc.o.d"
  "CMakeFiles/after_graph.dir/occlusion_converter.cc.o"
  "CMakeFiles/after_graph.dir/occlusion_converter.cc.o.d"
  "CMakeFiles/after_graph.dir/occlusion_converter_3d.cc.o"
  "CMakeFiles/after_graph.dir/occlusion_converter_3d.cc.o.d"
  "CMakeFiles/after_graph.dir/occlusion_graph.cc.o"
  "CMakeFiles/after_graph.dir/occlusion_graph.cc.o.d"
  "CMakeFiles/after_graph.dir/social_graph.cc.o"
  "CMakeFiles/after_graph.dir/social_graph.cc.o.d"
  "libafter_graph.a"
  "libafter_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/after_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
