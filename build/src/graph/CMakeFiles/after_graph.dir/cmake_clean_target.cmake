file(REMOVE_RECURSE
  "libafter_graph.a"
)
