# Empty dependencies file for after_graph.
# This may be replaced when dependencies are built.
