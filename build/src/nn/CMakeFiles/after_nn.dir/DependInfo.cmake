
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/adam.cc" "src/nn/CMakeFiles/after_nn.dir/adam.cc.o" "gcc" "src/nn/CMakeFiles/after_nn.dir/adam.cc.o.d"
  "/root/repo/src/nn/diffusion_conv.cc" "src/nn/CMakeFiles/after_nn.dir/diffusion_conv.cc.o" "gcc" "src/nn/CMakeFiles/after_nn.dir/diffusion_conv.cc.o.d"
  "/root/repo/src/nn/gcn_layer.cc" "src/nn/CMakeFiles/after_nn.dir/gcn_layer.cc.o" "gcc" "src/nn/CMakeFiles/after_nn.dir/gcn_layer.cc.o.d"
  "/root/repo/src/nn/gru_cell.cc" "src/nn/CMakeFiles/after_nn.dir/gru_cell.cc.o" "gcc" "src/nn/CMakeFiles/after_nn.dir/gru_cell.cc.o.d"
  "/root/repo/src/nn/linear.cc" "src/nn/CMakeFiles/after_nn.dir/linear.cc.o" "gcc" "src/nn/CMakeFiles/after_nn.dir/linear.cc.o.d"
  "/root/repo/src/nn/serialize.cc" "src/nn/CMakeFiles/after_nn.dir/serialize.cc.o" "gcc" "src/nn/CMakeFiles/after_nn.dir/serialize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/after_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/after_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
