file(REMOVE_RECURSE
  "CMakeFiles/after_nn.dir/adam.cc.o"
  "CMakeFiles/after_nn.dir/adam.cc.o.d"
  "CMakeFiles/after_nn.dir/diffusion_conv.cc.o"
  "CMakeFiles/after_nn.dir/diffusion_conv.cc.o.d"
  "CMakeFiles/after_nn.dir/gcn_layer.cc.o"
  "CMakeFiles/after_nn.dir/gcn_layer.cc.o.d"
  "CMakeFiles/after_nn.dir/gru_cell.cc.o"
  "CMakeFiles/after_nn.dir/gru_cell.cc.o.d"
  "CMakeFiles/after_nn.dir/linear.cc.o"
  "CMakeFiles/after_nn.dir/linear.cc.o.d"
  "CMakeFiles/after_nn.dir/serialize.cc.o"
  "CMakeFiles/after_nn.dir/serialize.cc.o.d"
  "libafter_nn.a"
  "libafter_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/after_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
