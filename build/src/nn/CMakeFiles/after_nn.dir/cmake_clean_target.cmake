file(REMOVE_RECURSE
  "libafter_nn.a"
)
