# Empty compiler generated dependencies file for after_nn.
# This may be replaced when dependencies are built.
