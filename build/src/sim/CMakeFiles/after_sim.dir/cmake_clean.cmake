file(REMOVE_RECURSE
  "CMakeFiles/after_sim.dir/crowd_simulator.cc.o"
  "CMakeFiles/after_sim.dir/crowd_simulator.cc.o.d"
  "CMakeFiles/after_sim.dir/xr_world.cc.o"
  "CMakeFiles/after_sim.dir/xr_world.cc.o.d"
  "libafter_sim.a"
  "libafter_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/after_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
