file(REMOVE_RECURSE
  "libafter_sim.a"
)
