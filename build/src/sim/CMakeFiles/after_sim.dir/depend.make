# Empty dependencies file for after_sim.
# This may be replaced when dependencies are built.
