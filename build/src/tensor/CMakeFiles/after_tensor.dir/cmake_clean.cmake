file(REMOVE_RECURSE
  "CMakeFiles/after_tensor.dir/autograd.cc.o"
  "CMakeFiles/after_tensor.dir/autograd.cc.o.d"
  "CMakeFiles/after_tensor.dir/matrix.cc.o"
  "CMakeFiles/after_tensor.dir/matrix.cc.o.d"
  "libafter_tensor.a"
  "libafter_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/after_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
