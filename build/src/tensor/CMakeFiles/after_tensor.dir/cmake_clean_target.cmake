file(REMOVE_RECURSE
  "libafter_tensor.a"
)
