# Empty compiler generated dependencies file for after_tensor.
# This may be replaced when dependencies are built.
