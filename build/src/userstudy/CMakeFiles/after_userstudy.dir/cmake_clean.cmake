file(REMOVE_RECURSE
  "CMakeFiles/after_userstudy.dir/user_study.cc.o"
  "CMakeFiles/after_userstudy.dir/user_study.cc.o.d"
  "libafter_userstudy.a"
  "libafter_userstudy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/after_userstudy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
