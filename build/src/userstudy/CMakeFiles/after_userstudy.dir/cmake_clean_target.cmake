file(REMOVE_RECURSE
  "libafter_userstudy.a"
)
