# Empty compiler generated dependencies file for after_userstudy.
# This may be replaced when dependencies are built.
