# Empty dependencies file for after_userstudy.
# This may be replaced when dependencies are built.
