file(REMOVE_RECURSE
  "CMakeFiles/arc_mwis_test.dir/graph/arc_mwis_test.cc.o"
  "CMakeFiles/arc_mwis_test.dir/graph/arc_mwis_test.cc.o.d"
  "arc_mwis_test"
  "arc_mwis_test.pdb"
  "arc_mwis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arc_mwis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
