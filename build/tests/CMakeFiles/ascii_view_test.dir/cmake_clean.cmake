file(REMOVE_RECURSE
  "CMakeFiles/ascii_view_test.dir/eval/ascii_view_test.cc.o"
  "CMakeFiles/ascii_view_test.dir/eval/ascii_view_test.cc.o.d"
  "ascii_view_test"
  "ascii_view_test.pdb"
  "ascii_view_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ascii_view_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
