# Empty compiler generated dependencies file for ascii_view_test.
# This may be replaced when dependencies are built.
