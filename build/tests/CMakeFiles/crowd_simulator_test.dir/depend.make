# Empty dependencies file for crowd_simulator_test.
# This may be replaced when dependencies are built.
