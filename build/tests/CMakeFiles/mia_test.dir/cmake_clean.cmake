file(REMOVE_RECURSE
  "CMakeFiles/mia_test.dir/core/mia_test.cc.o"
  "CMakeFiles/mia_test.dir/core/mia_test.cc.o.d"
  "mia_test"
  "mia_test.pdb"
  "mia_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mia_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
