file(REMOVE_RECURSE
  "CMakeFiles/mwis_test.dir/graph/mwis_test.cc.o"
  "CMakeFiles/mwis_test.dir/graph/mwis_test.cc.o.d"
  "mwis_test"
  "mwis_test.pdb"
  "mwis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
