file(REMOVE_RECURSE
  "CMakeFiles/occlusion_converter_3d_test.dir/graph/occlusion_converter_3d_test.cc.o"
  "CMakeFiles/occlusion_converter_3d_test.dir/graph/occlusion_converter_3d_test.cc.o.d"
  "occlusion_converter_3d_test"
  "occlusion_converter_3d_test.pdb"
  "occlusion_converter_3d_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/occlusion_converter_3d_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
