# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for occlusion_converter_3d_test.
