# Empty dependencies file for occlusion_converter_3d_test.
# This may be replaced when dependencies are built.
