# Empty compiler generated dependencies file for occlusion_converter_test.
# This may be replaced when dependencies are built.
