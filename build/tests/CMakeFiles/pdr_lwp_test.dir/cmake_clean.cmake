file(REMOVE_RECURSE
  "CMakeFiles/pdr_lwp_test.dir/core/pdr_lwp_test.cc.o"
  "CMakeFiles/pdr_lwp_test.dir/core/pdr_lwp_test.cc.o.d"
  "pdr_lwp_test"
  "pdr_lwp_test.pdb"
  "pdr_lwp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdr_lwp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
