# Empty compiler generated dependencies file for pdr_lwp_test.
# This may be replaced when dependencies are built.
