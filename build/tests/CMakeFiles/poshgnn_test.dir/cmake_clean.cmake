file(REMOVE_RECURSE
  "CMakeFiles/poshgnn_test.dir/core/poshgnn_test.cc.o"
  "CMakeFiles/poshgnn_test.dir/core/poshgnn_test.cc.o.d"
  "poshgnn_test"
  "poshgnn_test.pdb"
  "poshgnn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poshgnn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
