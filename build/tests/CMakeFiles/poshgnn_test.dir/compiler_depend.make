# Empty compiler generated dependencies file for poshgnn_test.
# This may be replaced when dependencies are built.
