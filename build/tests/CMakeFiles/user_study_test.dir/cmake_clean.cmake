file(REMOVE_RECURSE
  "CMakeFiles/user_study_test.dir/userstudy/user_study_test.cc.o"
  "CMakeFiles/user_study_test.dir/userstudy/user_study_test.cc.o.d"
  "user_study_test"
  "user_study_test.pdb"
  "user_study_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/user_study_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
