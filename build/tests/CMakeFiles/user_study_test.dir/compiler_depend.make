# Empty compiler generated dependencies file for user_study_test.
# This may be replaced when dependencies are built.
