file(REMOVE_RECURSE
  "CMakeFiles/xr_world_test.dir/sim/xr_world_test.cc.o"
  "CMakeFiles/xr_world_test.dir/sim/xr_world_test.cc.o.d"
  "xr_world_test"
  "xr_world_test.pdb"
  "xr_world_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xr_world_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
