// Adaptive-display example (the paper's F2/P2 opportunity and Fig. 2).
//
// Recreates the paper's illustrative comparison: for one target user we
// replay the same scene under four strategies -- render-all ("Original"),
// a static personalized top-k, an occlusion-free MWIS solve, and POSHGNN
// -- and print, step by step, the "flicker" (set churn) and the wasted
// renders (recommended-but-occluded users) each strategy produces.
//
// Run:  ./build/examples/adaptive_display

#include <cstdio>
#include <memory>
#include <numeric>

#include "baselines/comurnet.h"
#include "baselines/grafrank.h"
#include "baselines/original_recommender.h"
#include "core/evaluator.h"
#include "core/poshgnn.h"
#include "data/dataset.h"
#include "graph/occlusion_converter.h"

namespace {

struct Churn {
  double flicker = 0.0;   // avg set changes per step
  double wasted = 0.0;    // avg recommended-but-occluded per step
  double utility = 0.0;   // total AFTER utility
};

Churn Replay(after::Recommender& rec, const after::Dataset& dataset,
             int target) {
  using namespace after;
  const XrWorld& world = dataset.sessions[1];
  const int n = dataset.num_users();
  rec.BeginSession(n, target);
  Churn churn;
  std::vector<bool> prev_rec(n, false), prev_visible(n, false);
  const bool target_mr = world.interface_of(target) == Interface::kMR;

  for (int t = 0; t < world.num_steps(); ++t) {
    const auto& positions = world.PositionsAt(t);
    const OcclusionGraph occlusion =
        BuildOcclusionGraph(positions, target, world.body_radius());
    StepContext context;
    context.t = t;
    context.target = target;
    context.positions = &positions;
    context.occlusion = &occlusion;
    context.interfaces = &world.interfaces();
    context.preference = &dataset.preference;
    context.social_presence = &dataset.social_presence;
    context.body_radius = world.body_radius();

    const auto recommended = rec.Recommend(context);
    std::vector<bool> rendered = recommended;
    if (target_mr) {
      for (int w = 0; w < n; ++w)
        if (w != target && world.interface_of(w) == Interface::kMR)
          rendered[w] = true;
    }
    const auto visible =
        ComputeVisibility(positions, target, world.body_radius(), rendered);

    int changes = 0, wasted = 0;
    for (int w = 0; w < n; ++w) {
      if (t > 0 && recommended[w] != prev_rec[w]) ++changes;
      if (recommended[w] && !visible[w]) ++wasted;
      if (recommended[w] && visible[w]) {
        churn.utility += 0.5 * dataset.preference.At(target, w);
        if (prev_rec[w] && prev_visible[w])
          churn.utility += 0.5 * dataset.social_presence.At(target, w);
      }
    }
    churn.flicker += changes;
    churn.wasted += wasted;
    prev_rec = recommended;
    prev_visible = visible;
  }
  churn.flicker /= world.num_steps();
  churn.wasted /= world.num_steps();
  return churn;
}

}  // namespace

int main() {
  using namespace after;

  DatasetConfig data_config;
  data_config.num_users = 60;
  data_config.vr_fraction = 0.5;
  data_config.num_steps = 41;
  data_config.room_side = 8.0;
  data_config.num_sessions = 2;
  data_config.seed = 21;
  const Dataset dataset = GenerateTimikLike(data_config);
  const std::vector<int> targets = {3, 5, 12, 20, 33, 47};

  TrainOptions train;
  train.epochs = 14;
  train.targets_per_epoch = 4;

  PoshgnnConfig poshgnn_config;
  poshgnn_config.max_recommendations = 8;
  Poshgnn poshgnn(poshgnn_config);
  poshgnn.Train(dataset, train);

  GraFrank::Options gf_options;
  gf_options.k = 8;
  GraFrank grafrank(gf_options);
  grafrank.Train(dataset, train);

  Comurnet::Options cm_options;
  cm_options.iterations = 500;
  cm_options.max_recommendations = 8;
  cm_options.delay_steps = 3;  // small-room solve latency
  Comurnet comurnet(cm_options);

  OriginalRecommender original;

  auto report = [&](const char* label, Recommender& rec) {
    Churn total;
    for (int target : targets) {
      const Churn churn = Replay(rec, dataset, target);
      total.flicker += churn.flicker;
      total.wasted += churn.wasted;
      total.utility += churn.utility;
    }
    const double count = static_cast<double>(targets.size());
    std::printf("%-18s %8.2f %16.2f %14.1f\n", label, total.flicker / count,
                total.wasted / count, total.utility / count);
  };

  std::printf(
      "strategy         flicker/step  wasted renders/step  AFTER utility\n");
  report("Original", original);
  report("GraFrank", grafrank);
  report("COMURNet", comurnet);
  report("POSHGNN", poshgnn);

  std::printf(
      "\nEach strategy fails differently (cf. Fig. 2 in the paper): "
      "Original wastes most of its renders on occluded users, the static "
      "ranker never adapts, and the per-step re-solver flickers -- its "
      "sets churn several users every step, which is what destroys "
      "social presence at scale. POSHGNN balances all three via the "
      "preservation gate and the soft occlusion penalty.\n");
  return 0;
}
