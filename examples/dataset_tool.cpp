// Dataset utility: generates the synthetic Timik/SMM/Hubs stand-ins,
// prints their statistics, and archives them to disk so experiments can
// be replayed bit-exactly (see data/dataset_io.h).
//
// Usage:
//   dataset_tool                      # print stats for all three
//   dataset_tool <timik|smm|hub>      # one dataset
//   dataset_tool <name> <directory>   # ...and save it there

#include <cstdio>
#include <cstring>
#include <string>

#include "data/dataset.h"
#include "data/dataset_io.h"
#include "eval/stats.h"

namespace {

using namespace after;

Dataset Generate(const std::string& name) {
  DatasetConfig config;
  config.num_users = 200;
  config.num_steps = 101;
  config.num_sessions = 2;
  config.seed = 1;
  if (name == "smm") return GenerateSmmLike(config);
  if (name == "hub") {
    DatasetConfig hub = HubsDefaultConfig();
    hub.num_steps = 101;
    hub.num_sessions = 2;
    hub.seed = 1;
    return GenerateHubsLike(hub);
  }
  return GenerateTimikLike(config);
}

void PrintStats(const Dataset& dataset) {
  const int n = dataset.num_users();
  int max_degree = 0;
  double total_degree = 0.0;
  for (int u = 0; u < n; ++u) {
    max_degree = std::max(max_degree, dataset.social.Degree(u));
    total_degree += dataset.social.Degree(u);
  }

  std::vector<double> preferences;
  preferences.reserve(static_cast<size_t>(n) * (n - 1));
  for (int v = 0; v < n; ++v)
    for (int w = 0; w < n; ++w)
      if (v != w) preferences.push_back(dataset.preference.At(v, w));

  int vr = 0;
  for (int u = 0; u < n; ++u)
    if (dataset.sessions[0].interface_of(u) == Interface::kVR) ++vr;

  double avg_step = 0.0;
  const XrWorld& world = dataset.sessions[0];
  for (int t = 1; t < world.num_steps(); ++t)
    for (int u = 0; u < n; ++u)
      avg_step += Distance(world.PositionsAt(t)[u],
                           world.PositionsAt(t - 1)[u]);
  avg_step /= (world.num_steps() - 1) * n;

  std::printf("dataset '%s'\n", dataset.name.c_str());
  std::printf("  users: %d (%d VR / %d MR)\n", n, vr, n - vr);
  std::printf("  social edges: %d (avg degree %.2f, max %d)\n",
              dataset.social.num_edges(), total_degree / n, max_degree);
  std::printf("  preference: mean %.3f, sd %.3f\n", Mean(preferences),
              std::sqrt(Variance(preferences)));
  std::printf("  sessions: %zu x %d steps; avg per-step movement %.3f m\n",
              dataset.sessions.size(), world.num_steps(), avg_step);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace after;

  if (argc <= 1) {
    for (const char* name : {"timik", "smm", "hub"})
      PrintStats(Generate(name));
    return 0;
  }

  const std::string name = argv[1];
  const Dataset dataset = Generate(name);
  PrintStats(dataset);

  if (argc >= 3) {
    const std::string directory = argv[2];
    if (!SaveDataset(dataset, directory)) {
      std::fprintf(stderr, "failed to save to %s\n", directory.c_str());
      return 1;
    }
    std::printf("saved to %s\n", directory.c_str());

    Dataset reloaded;
    if (!LoadDataset(directory, &reloaded) ||
        !reloaded.preference.AllClose(dataset.preference)) {
      std::fprintf(stderr, "round-trip verification failed\n");
      return 1;
    }
    std::printf("round-trip verified\n");
  }
  return 0;
}
