// Hybrid-participation example (the paper's P4/HP opportunity).
//
// Demonstrates how the composition of a room (remote VR avatars vs
// physically present MR participants) changes what a recommender can do:
// MR bodies force themselves into co-located users' viewports, blocking
// candidates, while attractive VR avatars can be placed to occlude
// irrelevant co-located users. We sweep the VR proportion and report the
// per-step utility an MR attendee obtains, plus how many candidates MIA
// prunes as physically blocked.
//
// Run:  ./build/examples/hybrid_participation

#include <cstdio>

#include "core/evaluator.h"
#include "core/mia.h"
#include "core/poshgnn.h"
#include "data/dataset.h"
#include "graph/occlusion_converter.h"

int main() {
  using namespace after;

  for (double vr_fraction : {0.25, 0.5, 0.75}) {
    DatasetConfig data_config;
    data_config.num_users = 80;
    data_config.vr_fraction = vr_fraction;
    data_config.num_steps = 41;
    data_config.room_side = 8.0;
    data_config.num_sessions = 2;
    data_config.seed = 12;
    const Dataset dataset = GenerateTimikLike(data_config);

    PoshgnnConfig model_config;
    model_config.max_recommendations = 8;
    Poshgnn poshgnn(model_config);
    TrainOptions train;
    train.epochs = 6;
    train.targets_per_epoch = 3;
    poshgnn.Train(dataset, train);

    // Pick an MR attendee to study.
    const XrWorld& world = dataset.sessions[1];
    int target = -1;
    for (int u = 0; u < dataset.num_users(); ++u) {
      if (world.interface_of(u) == Interface::kMR) {
        target = u;
        break;
      }
    }
    if (target < 0) {
      std::printf("VR=%.0f%%: no MR participant to study\n",
                  vr_fraction * 100);
      continue;
    }

    // Count how many candidates are physically blocked on average.
    double blocked_avg = 0.0;
    for (int t = 0; t < world.num_steps(); ++t) {
      const OcclusionGraph occlusion = BuildOcclusionGraph(
          world.PositionsAt(t), target, world.body_radius());
      StepContext context;
      context.t = t;
      context.target = target;
      context.positions = &world.PositionsAt(t);
      context.occlusion = &occlusion;
      context.interfaces = &world.interfaces();
      context.preference = &dataset.preference;
      context.social_presence = &dataset.social_presence;
      context.body_radius = world.body_radius();
      const auto blocked = Mia::PhysicallyBlocked(context);
      int count = 0;
      for (bool b : blocked) count += b ? 1 : 0;
      blocked_avg += count;
    }
    blocked_avg /= world.num_steps();

    EvalOptions eval;
    eval.session = 1;
    eval.targets = {target};
    const EvalResult result = EvaluateRecommender(poshgnn, dataset, eval);

    std::printf(
        "VR=%.0f%%: MR attendee %d sees %.1f candidates physically blocked "
        "per step; AFTER utility %.1f (pref %.1f, presence %.1f, "
        "occlusion %.1f%%)\n",
        vr_fraction * 100, target, blocked_avg, result.after_utility,
        result.preference_utility, result.social_presence_utility,
        result.view_occlusion_rate * 100);
  }
  std::printf(
      "\nAs the share of remote users grows, fewer physical bodies "
      "obstruct the MR viewport and the recommender gains freedom "
      "(cf. Table VII).\n");
  return 0;
}
