// Quickstart for the AFTER/POSHGNN library.
//
// Builds a small synthetic social-XR conferencing room, trains POSHGNN,
// and compares it against the Random and Nearest baselines on the
// held-out session — a miniature version of the paper's Table II.
//
// Run:  ./build/examples/quickstart

#include <cstdio>

#include "baselines/nearest_recommender.h"
#include "baselines/random_recommender.h"
#include "core/evaluator.h"
#include "core/poshgnn.h"
#include "data/dataset.h"
#include "eval/table_printer.h"

int main() {
  using namespace after;

  // 1. Generate a Timik-like dataset: 60 users, two sessions of 41 steps
  //    in an 8m x 8m room, half of them remote (VR).
  DatasetConfig data_config;
  data_config.num_users = 60;
  data_config.num_steps = 41;
  data_config.room_side = 8.0;
  data_config.num_sessions = 2;
  data_config.seed = 1;
  const Dataset dataset = GenerateTimikLike(data_config);
  std::printf("dataset '%s': %d users, %d social edges, %zu sessions\n",
              dataset.name.c_str(), dataset.num_users(),
              dataset.social.num_edges(), dataset.sessions.size());

  // 2. Train POSHGNN on the first session.
  PoshgnnConfig model_config;
  model_config.beta = 0.5;
  model_config.alpha = 0.01;
  Poshgnn poshgnn(model_config);

  TrainOptions train;
  train.epochs = 10;
  train.targets_per_epoch = 3;
  train.verbose = true;
  poshgnn.Train(dataset, train);

  // 3. Evaluate on the held-out session against simple baselines.
  RandomRecommender random_baseline(/*k=*/8, /*seed=*/99);
  NearestRecommender nearest_baseline(/*k=*/8);

  EvalOptions eval;
  eval.num_targets = 6;

  TablePrinter table("Quickstart: Timik-like (held-out session)");
  table.AddResult(EvaluateRecommender(poshgnn, dataset, eval));
  table.AddResult(EvaluateRecommender(random_baseline, dataset, eval));
  table.AddResult(EvaluateRecommender(nearest_baseline, dataset, eval));
  table.Print();
  return 0;
}
