// Full-pipeline example: a large XR-based videoconference.
//
// Simulates the paper's motivating scenario end-to-end: an SMM-like
// community crowd in a 10 m virtual conferencing room, an ORCA crowd
// simulation producing trajectories, POSHGNN trained on one session, and
// a step-by-step replay for a chosen attendee showing who gets rendered,
// who is occluded, and how the AFTER utility accumulates.
//
// Run:  ./build/examples/xr_conference

#include <cstdio>

#include "core/evaluator.h"
#include "core/poshgnn.h"
#include "data/dataset.h"
#include "eval/ascii_view.h"
#include "graph/occlusion_converter.h"

int main() {
  using namespace after;

  DatasetConfig data_config;
  data_config.num_users = 120;
  data_config.vr_fraction = 0.5;
  data_config.num_steps = 61;
  data_config.room_side = 10.0;
  data_config.num_sessions = 2;
  data_config.seed = 7;
  const Dataset dataset = GenerateSmmLike(data_config);
  std::printf(
      "conference: %d attendees, %d social ties, %d recorded steps\n",
      dataset.num_users(), dataset.social.num_edges(),
      dataset.sessions[0].num_steps());

  PoshgnnConfig model_config;
  model_config.max_recommendations = 8;
  Poshgnn poshgnn(model_config);
  TrainOptions train;
  train.epochs = 8;
  train.targets_per_epoch = 4;
  poshgnn.Train(dataset, train);
  std::printf("trained POSHGNN (final avg loss %.4f)\n\n",
              poshgnn.last_training_loss());

  // Replay the held-out session for one attendee and narrate a few steps.
  const XrWorld& world = dataset.sessions[1];
  const int target = 11;
  const bool target_mr = world.interface_of(target) == Interface::kMR;
  std::printf("attendee %d joins via %s\n", target,
              target_mr ? "MR headset (in-person)" : "VR headset (remote)");

  poshgnn.BeginSession(dataset.num_users(), target);
  double utility = 0.0;
  std::vector<bool> prev_visible(dataset.num_users(), false);
  std::vector<bool> prev_recommended(dataset.num_users(), false);

  for (int t = 0; t < world.num_steps(); ++t) {
    const auto& positions = world.PositionsAt(t);
    const OcclusionGraph occlusion =
        BuildOcclusionGraph(positions, target, world.body_radius());

    StepContext context;
    context.t = t;
    context.target = target;
    context.positions = &positions;
    context.occlusion = &occlusion;
    context.interfaces = &world.interfaces();
    context.preference = &dataset.preference;
    context.social_presence = &dataset.social_presence;
    context.body_radius = world.body_radius();

    const std::vector<bool> recommended = poshgnn.Recommend(context);
    std::vector<bool> rendered = recommended;
    if (target_mr) {
      for (int w = 0; w < dataset.num_users(); ++w)
        if (w != target && world.interface_of(w) == Interface::kMR)
          rendered[w] = true;
    }
    const std::vector<bool> visible =
        ComputeVisibility(positions, target, world.body_radius(), rendered);

    int shown = 0, clear = 0, friends_seen = 0;
    for (int w = 0; w < dataset.num_users(); ++w) {
      if (!recommended[w]) continue;
      ++shown;
      if (!visible[w]) continue;
      ++clear;
      utility += 0.5 * dataset.preference.At(target, w);
      if (prev_recommended[w] && prev_visible[w])
        utility += 0.5 * dataset.social_presence.At(target, w);
      if (dataset.social.HasEdge(target, w)) ++friends_seen;
    }
    if (t % 15 == 0) {
      std::printf(
          "  t=%3d: %d rendered, %d clearly visible, %d friends in view, "
          "cumulative AFTER utility %.2f\n",
          t, shown, clear, friends_seen, utility);
      // Draw the attendee's 360-degree viewport (uppercase = clearly
      // visible, lowercase = hidden behind someone nearer).
      AsciiViewOptions view_options;
      view_options.body_radius = world.body_radius();
      std::printf("        %s\n",
                  RenderViewportStrip(positions, target, rendered,
                                      view_options)
                      .c_str());
    }
    prev_visible = visible;
    prev_recommended = recommended;
  }
  std::printf("\nsession total AFTER utility for attendee %d: %.2f\n",
              target, utility);
  return 0;
}
