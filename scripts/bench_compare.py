#!/usr/bin/env python3
"""Compare a benchmark run against its committed baseline.

Usage:
    scripts/bench_compare.py BASELINE.json CURRENT.json [BASELINE CURRENT ...]
    scripts/bench_compare.py --self_check

Every failure mode is a one-line diagnosis, never a stack trace: a
missing or unreadable file, a benchmark summary missing a metric key,
or a metric that is not a number all name the offending file and key.
--self_check exercises the gate logic itself against synthetic
baseline/current pairs and then validates every committed baseline
(bench/baselines/BENCH_*.json must exist and pass a self-comparison),
so a malformed new baseline cannot land unvalidated (the
bench-regression lane runs it before trusting the real comparison).

Each pair is a baseline JSON (committed under bench/baselines/) and a
fresh run of the same benchmark (serve_throughput --json / net_throughput
--json). The gate fails when:

  - a correctness key regresses: current lost != 0 or errors != 0;
  - p99 latency regresses by more than 25% over baseline AND by more
    than the absolute floor (5 ms) — the floor keeps sub-millisecond
    jitter on shared runners from tripping the relative check;
  - throughput (qps) drops by more than 25%;
  - the degraded share (fallback-served answers / requests) grows by
    more than 25 percentage points over baseline — "all served" must
    not silently decay into "all served by the fallback".

Baselines are intentionally loose (worst-observed, not best-observed):
refresh them only when a deliberate change moves the numbers, with

    ./build/bench/serve_throughput --rooms=2 --threads=2 --clients=4 \
        --requests=4000 --users=24 --json=bench/baselines/BENCH_serve.json
    ./build/bench/net_throughput --partitioned --shards=3 --rooms=12 \
        --users=24 --clients=4 --requests=8000 --kill_shard_ms=300 \
        --json=bench/baselines/BENCH_net.json

and commit the result together with the change that justified it.
"""

import glob
import json
import os
import sys
import tempfile

MAX_REGRESSION = 0.25      # relative ceiling for p99 / floor for qps
P99_FLOOR_MS = 5.0         # absolute slack before p99 ratio applies
MAX_DEGRADED_GROWTH = 0.25 # degraded-share growth ceiling (fraction)


def load(path):
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise SystemExit(f"bench_compare: cannot read {path}: {error}")


def degraded_share(data):
    requests = data.get("requests", 0)
    if not requests:
        return 0.0
    return data.get("degraded", data.get("fallbacks", 0)) / requests


def compare(baseline_path, current_path):
    baseline = load(baseline_path)
    current = load(current_path)
    name = current.get("bench", current_path)
    failures = []

    for key in ("qps", "p99_ms"):
        for which, data, path in (("baseline", baseline, baseline_path),
                                  ("current", current, current_path)):
            if key not in data:
                failures.append(f"{which} ({path}) is missing key {key!r}")
            elif not isinstance(data[key], (int, float)) \
                    or isinstance(data[key], bool):
                failures.append(
                    f"{which} ({path}) key {key!r} is not a number "
                    f"(got {data[key]!r})")
    if failures:
        return name, failures

    for key in ("lost", "errors"):
        if current.get(key, 0) != 0:
            failures.append(f"correctness: {key}={current[key]} (must be 0)")

    base_p99, cur_p99 = baseline["p99_ms"], current["p99_ms"]
    if (cur_p99 > base_p99 * (1.0 + MAX_REGRESSION)
            and cur_p99 - base_p99 > P99_FLOOR_MS):
        failures.append(
            f"p99 regressed: {base_p99:.2f} ms -> {cur_p99:.2f} ms "
            f"(> +{MAX_REGRESSION:.0%} and > +{P99_FLOOR_MS} ms)")

    base_qps, cur_qps = baseline["qps"], current["qps"]
    if base_qps > 0 and cur_qps < base_qps * (1.0 - MAX_REGRESSION):
        failures.append(
            f"throughput dropped: {base_qps:.1f} -> {cur_qps:.1f} req/s "
            f"(> -{MAX_REGRESSION:.0%})")

    base_degraded, cur_degraded = degraded_share(baseline), degraded_share(current)
    if cur_degraded > base_degraded + MAX_DEGRADED_GROWTH:
        failures.append(
            f"degraded share grew: {base_degraded:.1%} -> {cur_degraded:.1%} "
            f"(> +{MAX_DEGRADED_GROWTH:.0%} over baseline)")

    return name, failures


def self_check():
    """Runs the gate logic against synthetic pairs; exits 1 on surprise.

    This is the bench-regression lane's pre-flight: if the comparator
    itself is broken (a failure mode turned into a stack trace, or a
    regression no longer detected), the lane must fail before any real
    benchmark numbers are trusted.
    """
    clean = {"bench": "synthetic", "requests": 1000, "qps": 100.0,
             "p50_ms": 1.0, "p99_ms": 10.0, "lost": 0, "errors": 0,
             "degraded": 0}

    def run_pair(baseline_patch, current_patch):
        baseline = dict(clean, **baseline_patch)
        current = dict(clean, **current_patch)
        for patch, data in ((baseline_patch, baseline),
                            (current_patch, current)):
            for key, value in patch.items():
                if value is None:
                    del data[key]
        with tempfile.TemporaryDirectory() as tmp:
            baseline_path = os.path.join(tmp, "baseline.json")
            current_path = os.path.join(tmp, "current.json")
            with open(baseline_path, "w") as handle:
                json.dump(baseline, handle)
            with open(current_path, "w") as handle:
                json.dump(current, handle)
            return compare(baseline_path, current_path)[1]

    scenarios = [
        ("clean pair passes", {}, {}, None),
        ("p99 regression detected", {}, {"p99_ms": 20.0}, "p99 regressed"),
        ("sub-floor p99 jitter tolerated",
         {"p99_ms": 0.5}, {"p99_ms": 0.9}, None),
        ("throughput drop detected", {}, {"qps": 50.0},
         "throughput dropped"),
        ("lost requests detected", {}, {"lost": 3}, "lost=3"),
        ("degraded-share growth detected", {}, {"degraded": 500},
         "degraded share grew"),
        ("missing metric key diagnosed", {"qps": None}, {},
         "missing key 'qps'"),
        ("non-numeric metric diagnosed", {}, {"p99_ms": "fast"},
         "is not a number"),
    ]
    for label, baseline_patch, current_patch, want in scenarios:
        failures = run_pair(baseline_patch, current_patch)
        if want is None:
            if failures:
                raise SystemExit(
                    f"self-check: {label}: expected no failures, "
                    f"got {failures}")
        elif not any(want in failure for failure in failures):
            raise SystemExit(
                f"self-check: {label}: expected a failure containing "
                f"{want!r}, got {failures}")

    # A missing file must exit with a one-line message, not a traceback.
    try:
        load(os.path.join(tempfile.gettempdir(),
                          "bench_compare_no_such_file.json"))
    except SystemExit as error:
        if "cannot read" not in str(error):
            raise SystemExit(
                f"self-check: missing file: unexpected message {error}")
    else:
        raise SystemExit("self-check: missing file did not fail")

    # Every committed baseline must itself pass the gate against itself:
    # a baseline missing qps/p99_ms, carrying non-zero lost/errors, or
    # unparseable would otherwise sit dormant until the first real
    # comparison against it — i.e. a new baseline could land in
    # bench/baselines/ without ever having been validated.
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    baselines = sorted(
        glob.glob(os.path.join(repo_root, "bench", "baselines",
                               "BENCH_*.json")))
    if not baselines:
        raise SystemExit(
            "self-check: no committed baselines match "
            "bench/baselines/BENCH_*.json")
    for path in baselines:
        name, failures = compare(path, path)
        if failures:
            raise SystemExit(
                f"self-check: committed baseline {path} ({name}) does not "
                f"pass the gate against itself: {failures}")

    print(f"self-check OK: {len(scenarios) + 1} scenarios, "
          f"{len(baselines)} committed baselines validated")
    return 0


def main(argv):
    if len(argv) == 2 and argv[1] == "--self_check":
        return self_check()
    if len(argv) < 3 or len(argv) % 2 != 1:
        raise SystemExit(__doc__)
    failed = False
    for i in range(1, len(argv), 2):
        baseline_path, current_path = argv[i], argv[i + 1]
        name, failures = compare(baseline_path, current_path)
        if failures:
            failed = True
            print(f"FAIL {name} ({current_path} vs {baseline_path}):")
            for failure in failures:
                print(f"  - {failure}")
        else:
            current = load(current_path)
            summary = {k: current[k] for k in ("qps", "p50_ms", "p99_ms")
                       if k in current}
            print(f"OK   {name}: {summary}")
    if failed:
        print()
        print("If a deliberate change moved the numbers, refresh the")
        print("baselines (commands in scripts/bench_compare.py's header)")
        print("and commit them alongside the change that justified it.")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
