#!/usr/bin/env python3
"""Compare a benchmark run against its committed baseline.

Usage:
    scripts/bench_compare.py BASELINE.json CURRENT.json [BASELINE CURRENT ...]
    scripts/bench_compare.py --profile world BASELINE.json CURRENT.json [...]
    scripts/bench_compare.py --self_check

Every failure mode is a one-line diagnosis, never a stack trace: a
missing or unreadable file, a benchmark summary missing a metric key,
or a metric that is not a number all name the offending file and key.
--self_check exercises the gate logic itself against synthetic
baseline/current pairs and then validates every committed baseline
(bench/baselines/BENCH_*.json must exist and pass a self-comparison),
so a malformed new baseline cannot land unvalidated (the
bench-regression lane runs it before trusting the real comparison).

Each pair is a baseline JSON (committed under bench/baselines/) and a
fresh run of the same benchmark (serve_throughput --json / net_throughput
--json). The gate fails when:

  - a correctness key regresses: current lost != 0 or errors != 0;
  - p99 latency regresses by more than 25% over baseline AND by more
    than the absolute floor (5 ms) — the floor keeps sub-millisecond
    jitter on shared runners from tripping the relative check;
  - throughput (qps) drops by more than 25%;
  - the degraded share (fallback-served answers / requests) grows by
    more than 25 percentage points over baseline — "all served" must
    not silently decay into "all served by the fallback".

The world profile (--profile world, auto-selected when the current
summary's "bench" is "world_sim") layers per-key DIRECTIONAL gates for
the macro scenario driver on top of the defaults:

  - peak_p99_ms (p99 under the diurnal peak): lower is better, same
    relative ceiling + absolute floor as p99_ms;
  - degraded_share: lower is better, capped at baseline + 25 points;
  - primary_balance (room-size-weighted max/mean primary load across
    healthy shards): lower is better, capped at baseline +25% with an
    absolute 0.25 slack floor;
  - storm_recovery_ms (outage -> first fully clean reconnect wave):
    a ceiling — baseline +25% with a 500 ms floor; a negative value
    means the storm never recovered and always fails;
  - storm_errors: must be 0.

A world summary missing one of those keys is diagnosed by name (the
keys come from world_sim --json; see docs/world_sim.md).

Baselines are intentionally loose (worst-observed, not best-observed):
refresh them only when a deliberate change moves the numbers, with

    ./build/bench/serve_throughput --rooms=2 --threads=2 --clients=4 \
        --requests=4000 --users=24 --json=bench/baselines/BENCH_serve.json
    ./build/bench/net_throughput --partitioned --shards=3 --rooms=12 \
        --users=24 --clients=4 --requests=8000 --kill_shard_ms=300 \
        --json=bench/baselines/BENCH_net.json
    ./build/bench/world_sim --shards=3 --rooms=12 --clients=4 \
        --requests=4000 --slices=6 --kill_at_peak --coevolve --seed=1 \
        --json=bench/baselines/BENCH_world.json

and commit the result together with the change that justified it.
"""

import glob
import json
import os
import sys
import tempfile

MAX_REGRESSION = 0.25      # relative ceiling for p99 / floor for qps
P99_FLOOR_MS = 5.0         # absolute slack before p99 ratio applies
MAX_DEGRADED_GROWTH = 0.25 # degraded-share growth ceiling (fraction)
WORLD_BALANCE_FLOOR = 0.25       # absolute slack on primary_balance
WORLD_RECOVERY_FLOOR_MS = 500.0  # absolute slack on storm recovery
PROFILES = ("auto", "default", "world")


def load(path):
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise SystemExit(f"bench_compare: cannot read {path}: {error}")


def degraded_share(data):
    requests = data.get("requests", 0)
    if not requests:
        return 0.0
    return data.get("degraded", data.get("fallbacks", 0)) / requests


def check_numeric_keys(keys, baseline, current, baseline_path, current_path,
                       what="key"):
    failures = []
    for key in keys:
        for which, data, path in (("baseline", baseline, baseline_path),
                                  ("current", current, current_path)):
            if key not in data:
                failures.append(f"{which} ({path}) is missing {what} {key!r}")
            elif not isinstance(data[key], (int, float)) \
                    or isinstance(data[key], bool):
                failures.append(
                    f"{which} ({path}) {what} {key!r} is not a number "
                    f"(got {data[key]!r})")
    return failures


def world_checks(baseline, current, baseline_path, current_path):
    """Directional gates for world_sim summaries (--profile world)."""
    failures = check_numeric_keys(
        ("peak_p99_ms", "degraded_share", "primary_balance",
         "storm_recovery_ms"),
        baseline, current, baseline_path, current_path,
        what="world-profile key")
    if failures:
        failures.append(
            "world-profile keys are emitted by world_sim --json "
            "(see docs/world_sim.md)")
        return failures

    base_peak, cur_peak = baseline["peak_p99_ms"], current["peak_p99_ms"]
    if (cur_peak > base_peak * (1.0 + MAX_REGRESSION)
            and cur_peak - base_peak > P99_FLOOR_MS):
        failures.append(
            f"peak p99 regressed: {base_peak:.2f} ms -> {cur_peak:.2f} ms "
            f"(> +{MAX_REGRESSION:.0%} and > +{P99_FLOOR_MS} ms)")

    base_share, cur_share = (baseline["degraded_share"],
                             current["degraded_share"])
    if cur_share > base_share + MAX_DEGRADED_GROWTH:
        failures.append(
            f"degraded share grew: {base_share:.1%} -> {cur_share:.1%} "
            f"(> +{MAX_DEGRADED_GROWTH:.0%} over baseline; lower is better)")

    base_balance, cur_balance = (baseline["primary_balance"],
                                 current["primary_balance"])
    if (cur_balance > base_balance * (1.0 + MAX_REGRESSION)
            and cur_balance - base_balance > WORLD_BALANCE_FLOOR):
        failures.append(
            f"primary balance worsened: {base_balance:.2f} -> "
            f"{cur_balance:.2f} (> +{MAX_REGRESSION:.0%} and > "
            f"+{WORLD_BALANCE_FLOOR}; lower is better)")

    base_rec, cur_rec = (baseline["storm_recovery_ms"],
                         current["storm_recovery_ms"])
    if cur_rec < 0:
        failures.append(
            "storm never recovered (storm_recovery_ms < 0): no reconnect "
            "wave came back fully clean after the outage")
    elif (base_rec >= 0
            and cur_rec > base_rec * (1.0 + MAX_REGRESSION)
            and cur_rec - base_rec > WORLD_RECOVERY_FLOOR_MS):
        failures.append(
            f"storm recovery slowed: {base_rec:.0f} ms -> {cur_rec:.0f} ms "
            f"(> +{MAX_REGRESSION:.0%} and > +{WORLD_RECOVERY_FLOOR_MS:.0f} "
            f"ms ceiling)")

    if current.get("storm_errors", 0) != 0:
        failures.append(
            f"correctness: storm_errors={current['storm_errors']} "
            f"(must be 0)")
    return failures


def compare(baseline_path, current_path, profile="auto"):
    baseline = load(baseline_path)
    current = load(current_path)
    name = current.get("bench", current_path)
    world = profile == "world" or (profile == "auto"
                                   and current.get("bench") == "world_sim")
    failures = check_numeric_keys(("qps", "p99_ms"), baseline, current,
                                  baseline_path, current_path)
    if failures:
        return name, failures

    for key in ("lost", "errors"):
        if current.get(key, 0) != 0:
            failures.append(f"correctness: {key}={current[key]} (must be 0)")

    base_p99, cur_p99 = baseline["p99_ms"], current["p99_ms"]
    if (cur_p99 > base_p99 * (1.0 + MAX_REGRESSION)
            and cur_p99 - base_p99 > P99_FLOOR_MS):
        failures.append(
            f"p99 regressed: {base_p99:.2f} ms -> {cur_p99:.2f} ms "
            f"(> +{MAX_REGRESSION:.0%} and > +{P99_FLOOR_MS} ms)")

    base_qps, cur_qps = baseline["qps"], current["qps"]
    if base_qps > 0 and cur_qps < base_qps * (1.0 - MAX_REGRESSION):
        failures.append(
            f"throughput dropped: {base_qps:.1f} -> {cur_qps:.1f} req/s "
            f"(> -{MAX_REGRESSION:.0%})")

    if world:
        failures.extend(
            world_checks(baseline, current, baseline_path, current_path))
    else:
        base_degraded, cur_degraded = (degraded_share(baseline),
                                       degraded_share(current))
        if cur_degraded > base_degraded + MAX_DEGRADED_GROWTH:
            failures.append(
                f"degraded share grew: {base_degraded:.1%} -> "
                f"{cur_degraded:.1%} "
                f"(> +{MAX_DEGRADED_GROWTH:.0%} over baseline)")

    return name, failures


def self_check():
    """Runs the gate logic against synthetic pairs; exits 1 on surprise.

    This is the bench-regression lane's pre-flight: if the comparator
    itself is broken (a failure mode turned into a stack trace, or a
    regression no longer detected), the lane must fail before any real
    benchmark numbers are trusted.
    """
    clean = {"bench": "synthetic", "requests": 1000, "qps": 100.0,
             "p50_ms": 1.0, "p99_ms": 10.0, "lost": 0, "errors": 0,
             "degraded": 0}
    clean_world = {"bench": "world_sim", "requests": 1000, "qps": 100.0,
                   "p50_ms": 1.0, "p99_ms": 10.0, "peak_p99_ms": 15.0,
                   "lost": 0, "errors": 0, "degraded": 0,
                   "degraded_share": 0.0, "primary_balance": 1.2,
                   "storm_recovery_ms": 100.0, "storm_errors": 0}

    def run_pair(baseline_patch, current_patch, base=clean):
        baseline = dict(base, **baseline_patch)
        current = dict(base, **current_patch)
        for patch, data in ((baseline_patch, baseline),
                            (current_patch, current)):
            for key, value in patch.items():
                if value is None:
                    del data[key]
        with tempfile.TemporaryDirectory() as tmp:
            baseline_path = os.path.join(tmp, "baseline.json")
            current_path = os.path.join(tmp, "current.json")
            with open(baseline_path, "w") as handle:
                json.dump(baseline, handle)
            with open(current_path, "w") as handle:
                json.dump(current, handle)
            return compare(baseline_path, current_path)[1]

    scenarios = [
        ("clean pair passes", {}, {}, None),
        ("p99 regression detected", {}, {"p99_ms": 20.0}, "p99 regressed"),
        ("sub-floor p99 jitter tolerated",
         {"p99_ms": 0.5}, {"p99_ms": 0.9}, None),
        ("throughput drop detected", {}, {"qps": 50.0},
         "throughput dropped"),
        ("lost requests detected", {}, {"lost": 3}, "lost=3"),
        ("degraded-share growth detected", {}, {"degraded": 500},
         "degraded share grew"),
        ("missing metric key diagnosed", {"qps": None}, {},
         "missing key 'qps'"),
        ("non-numeric metric diagnosed", {}, {"p99_ms": "fast"},
         "is not a number"),
    ]
    # World-profile scenarios (auto-selected via bench == "world_sim"):
    # one per directional gate, plus the missing-key diagnostic.
    world_scenarios = [
        ("clean world pair passes", {}, {}, None),
        ("peak p99 regression detected", {}, {"peak_p99_ms": 40.0},
         "peak p99 regressed"),
        ("world degraded-share cap detected", {},
         {"degraded_share": 0.5}, "degraded share grew"),
        ("primary-balance growth detected", {},
         {"primary_balance": 2.4}, "primary balance worsened"),
        ("small balance jitter tolerated", {},
         {"primary_balance": 1.4}, None),
        ("storm recovery ceiling detected", {"storm_recovery_ms": 1000.0},
         {"storm_recovery_ms": 5000.0}, "storm recovery slowed"),
        ("unrecovered storm detected", {},
         {"storm_recovery_ms": -1.0}, "storm never recovered"),
        ("storm errors detected", {}, {"storm_errors": 2},
         "storm_errors=2"),
        ("missing world key diagnosed by name",
         {}, {"primary_balance": None},
         "missing world-profile key 'primary_balance'"),
    ]
    all_scenarios = ([(label, base_patch, cur_patch, want, clean)
                      for label, base_patch, cur_patch, want in scenarios] +
                     [(label, base_patch, cur_patch, want, clean_world)
                      for label, base_patch, cur_patch, want
                      in world_scenarios])
    for label, baseline_patch, current_patch, want, base in all_scenarios:
        failures = run_pair(baseline_patch, current_patch, base)
        if want is None:
            if failures:
                raise SystemExit(
                    f"self-check: {label}: expected no failures, "
                    f"got {failures}")
        elif not any(want in failure for failure in failures):
            raise SystemExit(
                f"self-check: {label}: expected a failure containing "
                f"{want!r}, got {failures}")

    # A missing file must exit with a one-line message, not a traceback.
    try:
        load(os.path.join(tempfile.gettempdir(),
                          "bench_compare_no_such_file.json"))
    except SystemExit as error:
        if "cannot read" not in str(error):
            raise SystemExit(
                f"self-check: missing file: unexpected message {error}")
    else:
        raise SystemExit("self-check: missing file did not fail")

    # Every committed baseline must itself pass the gate against itself:
    # a baseline missing qps/p99_ms, carrying non-zero lost/errors, or
    # unparseable would otherwise sit dormant until the first real
    # comparison against it — i.e. a new baseline could land in
    # bench/baselines/ without ever having been validated.
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    baselines = sorted(
        glob.glob(os.path.join(repo_root, "bench", "baselines",
                               "BENCH_*.json")))
    if not baselines:
        raise SystemExit(
            "self-check: no committed baselines match "
            "bench/baselines/BENCH_*.json")
    for path in baselines:
        name, failures = compare(path, path)
        if failures:
            raise SystemExit(
                f"self-check: committed baseline {path} ({name}) does not "
                f"pass the gate against itself: {failures}")

    print(f"self-check OK: {len(all_scenarios) + 1} scenarios, "
          f"{len(baselines)} committed baselines validated")
    return 0


def main(argv):
    if len(argv) == 2 and argv[1] == "--self_check":
        return self_check()
    args = argv[1:]
    profile = "auto"
    if args and args[0].startswith("--profile"):
        if args[0] == "--profile":
            if len(args) < 2:
                raise SystemExit("bench_compare: --profile needs a value "
                                 f"(one of {', '.join(PROFILES)})")
            profile, args = args[1], args[2:]
        else:
            profile, args = args[0].split("=", 1)[1], args[1:]
        if profile not in PROFILES:
            raise SystemExit(f"bench_compare: unknown profile {profile!r} "
                             f"(one of {', '.join(PROFILES)})")
    if len(args) < 2 or len(args) % 2 != 0:
        raise SystemExit(__doc__)
    failed = False
    for i in range(0, len(args), 2):
        baseline_path, current_path = args[i], args[i + 1]
        name, failures = compare(baseline_path, current_path, profile)
        if failures:
            failed = True
            print(f"FAIL {name} ({current_path} vs {baseline_path}):")
            for failure in failures:
                print(f"  - {failure}")
        else:
            current = load(current_path)
            keys = ("qps", "p50_ms", "p99_ms")
            if current.get("bench") == "world_sim" or profile == "world":
                keys += ("peak_p99_ms", "degraded_share", "primary_balance",
                         "storm_recovery_ms")
            summary = {k: current[k] for k in keys if k in current}
            print(f"OK   {name}: {summary}")
    if failed:
        print()
        print("If a deliberate change moved the numbers, refresh the")
        print("baselines (commands in scripts/bench_compare.py's header)")
        print("and commit them alongside the change that justified it.")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
