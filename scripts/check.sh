#!/usr/bin/env bash
# Repo check matrix: builds and tests the CI lanes. Each lane maps to
# one job in .github/workflows/ci.yml; running the script with no
# arguments reproduces the blocking part of CI locally.
#
#   scripts/check.sh              # docs + format + release + asan + tsan
#   scripts/check.sh release      # just one lane
#   scripts/check.sh bench        # serving benchmarks, smoke config
#   scripts/check.sh --list       # print every lane + one-line purpose
#   TSAN_FILTER=. scripts/check.sh tsan   # widen the tsan test filter
#
# Lanes:
#   docs     no build: every intra-repo markdown link resolves
#            (relative and repo-absolute), docs/ARCHITECTURE.md mentions
#            every src/* subsystem, docs/serving.md covers the
#            partitioned-serving vocabulary, docs/networking.md covers
#            the reactor/pipelining vocabulary, and shellcheck (when
#            installed) passes on tracked shell scripts
#   format   clang-format --dry-run over tracked C++ sources; skipped
#            with a notice when clang-format is not installed
#   release  RelWithDebInfo, full ctest suite (the tier-1 gate)
#   asan     address+undefined sanitizers, full ctest suite
#   ubsan    undefined-behavior sanitizer alone (catches UB that asan's
#            shadow memory layout can mask), full ctest suite
#   tsan     thread sanitizer; by default runs only the concurrent
#            serving-runtime tests (ctest -R serve), where data races
#            actually live. Override the filter with TSAN_FILTER.
#   release-core / release-serve / asan-core / asan-serve
#            the same suites split by ctest regex (-E '^serve/' vs
#            -R '^serve/') so CI can run both halves in parallel with
#            per-lane build caches
#   release-serve-f64
#            the release serve/ split re-run with AFTER_INFER_ENGINE=f64,
#            so the f64 reference inference engine keeps passing the
#            concurrent serving suite even though f32 is the default
#            (docs/inference.md)
#   infer-native
#            configure with -DAFTER_INFER_NATIVE=ON and build the
#            after_infer library alone: proves the -march=native build of
#            the inference kernels stays compilable (the runtime CPUID
#            dispatch is what ships; this guards the opt-in native path)
#   bench    smoke-config serving benchmarks: serve_throughput
#            (in-process), net_throughput (TCP fleet with mid-run
#            shard kill, then a partitioned fleet with live migration,
#            then a 500-connection idle swarm with pipelined clients),
#            and tick_throughput (delta-vs-scratch room ticking plus
#            the stale-cache recovery drill), writing
#            build/BENCH_*.json and failing on malformed output. Not
#            in the default set: CI runs it as a non-blocking job.
#   bench-regression
#            runs the serve/net benches in the baseline config — once
#            on the default primary and once with --engine=f32 (the
#            fused inference engine) — plus the C10k config (10k idle
#            connections + pipelined bursts; the run itself fails on
#            any unconnected swarm client or lost ping) and the
#            tick_throughput baseline (512-user room, 5% movers, which
#            must hold a >=3x delta-vs-scratch speedup), and gates all
#            six runs against bench/baselines/*.json with
#            scripts/bench_compare.py (>25% p99/throughput regression,
#            lost/errors != 0, or degraded-share growth fails), then
#            runs the world_sim macro-driver in its baseline config
#            (Zipf fleet + diurnal curve + kill-at-peak reconnect
#            storm + co-evolution) and gates it with
#            `bench_compare.py --profile world` against
#            bench/baselines/BENCH_world.json. This one IS blocking
#            in CI.
#   world-sim
#            macro-scenario smoke: a small Zipf-skewed partitioned
#            fleet under a diurnal load curve with a flash-crowd
#            hotspot and a kill-at-peak reconnect storm. The binary
#            itself exits nonzero on any lost request or a primary-
#            balance breach; the lane additionally runs the scenario
#            twice and fails unless both runs emit the same
#            scenario_fingerprint (the bit-identical-plan contract
#            that makes failures reproducible from a seed).
set -euo pipefail
cd "$(dirname "$0")/.."

# Lane registry: every runnable lane in display order, with a one-line
# purpose. `scripts/check.sh --list` prints it, and an unknown lane
# name fails fast with the same list instead of dying inside cmake
# with a missing-preset error.
LANE_ORDER=(docs format release asan ubsan tsan release-core release-serve
  asan-core asan-serve release-serve-f64 infer-native bench bench-regression
  world-sim)
declare -A LANE_PURPOSE=(
  [docs]="markdown link integrity, subsystem + vocabulary coverage, shellcheck"
  [format]="clang-format --dry-run over tracked C++ sources"
  [release]="RelWithDebInfo build, full ctest suite (the tier-1 gate)"
  [asan]="address+undefined sanitizers, full ctest suite"
  [ubsan]="undefined-behavior sanitizer alone, full ctest suite"
  [tsan]="thread sanitizer over the concurrent serving tests (TSAN_FILTER)"
  [release-core]="release suite minus serve/ (CI cache-split half)"
  [release-serve]="release suite, serve/ tests only (CI cache-split half)"
  [asan-core]="asan suite minus serve/ (CI cache-split half)"
  [asan-serve]="asan suite, serve/ tests only (CI cache-split half)"
  [release-serve-f64]="serve/ suite with the f64 reference engine pinned"
  [infer-native]="proves the -march=native after_infer build stays compilable"
  [bench]="smoke-config serving + delta-tick benchmarks (non-blocking in CI)"
  [bench-regression]="baseline-config benches gated vs bench/baselines (blocking)"
  [world-sim]="macro-scenario smoke: Zipf fleet + flash crowd + reconnect storm"
)

list_lanes() {
  local lane
  echo "Lanes:"
  for lane in "${LANE_ORDER[@]}"; do
    printf '  %-18s %s\n' "${lane}" "${LANE_PURPOSE[${lane}]}"
  done
}

JOBS="${JOBS:-$(nproc)}"
TSAN_FILTER="${TSAN_FILTER:-^serve/}"
LANES=("$@")
for lane in "${LANES[@]}"; do
  if [ "${lane}" = "--list" ] || [ "${lane}" = "-l" ]; then
    list_lanes
    exit 0
  fi
done
if [ "${#LANES[@]}" -eq 0 ]; then
  LANES=(docs format release asan tsan)
fi
for lane in "${LANES[@]}"; do
  if [ -z "${LANE_PURPOSE[${lane}]+x}" ]; then
    echo "check.sh: unknown lane '${lane}'" >&2
    list_lanes >&2
    exit 1
  fi
done

run_docs_lane() {
  local fail=0
  # Every intra-repo markdown link must resolve, from every tracked
  # page. Relative links resolve against the page's directory;
  # repo-absolute links (`/docs/...`) resolve against the repo root.
  # The extraction regex tolerates one level of parentheses inside the
  # target, so links like (see [spec](docs/wire(v1).md)) don't truncate
  # at the inner ')'.
  local file target path
  while IFS= read -r file; do
    while IFS= read -r target; do
      case "${target}" in
        http://*|https://*|mailto:*|'#'*) continue ;;
      esac
      path="${target%%#*}"          # drop in-page anchors
      path="${path%% *}"            # drop "title" suffixes
      [ -z "${path}" ] && continue
      case "${path}" in
        /*) path=".${path}" ;;      # repo-absolute: resolve from root
        *)  path="$(dirname "${file}")/${path}" ;;
      esac
      if [ ! -e "${path}" ]; then
        echo "docs: broken link in ${file}: (${target})"
        fail=1
      fi
    done < <(grep -oE '\]\(([^()]|\([^()]*\))*\)' "${file}" \
               | sed 's/^](//; s/)$//')
  done < <(git ls-files '*.md')
  # The architecture page must keep covering every subsystem.
  local dir name
  for dir in src/*/; do
    name="$(basename "${dir}")"
    if ! grep -q "src/${name}/" docs/ARCHITECTURE.md; then
      echo "docs: src/${name}/ is not mentioned in docs/ARCHITECTURE.md"
      fail=1
    fi
  done
  # The serving page must keep covering the partitioned-serving
  # vocabulary (ownership wire messages, the replication knob, and the
  # control-plane module).
  local term
  for term in kRoomAssign kRoomRelease kNotOwner replication_factor \
              shard_control kRoomRecover kDataLoss durable_dir; do
    if ! grep -q "${term}" docs/serving.md; then
      echo "docs: ${term} is not mentioned in docs/serving.md"
      fail=1
    fi
  done
  # The inference page must keep covering the engine vocabulary: the two
  # engines, the runtime knobs, the SIMD tiers, the workspace machinery,
  # and the numeric tolerance contract.
  for term in kFusedF32 kReferenceF64 AFTER_INFER_ENGINE AFTER_INFER_SIMD \
              AVX2 FMA WorkspacePool arena tolerance engine=f64; do
    if ! grep -q "${term}" docs/inference.md; then
      echo "docs: ${term} is not mentioned in docs/inference.md"
      fail=1
    fi
  done
  # The networking page must keep covering the event-driven front's
  # vocabulary: the reactor mechanics, the pipelining + correlation
  # contract, the slow-peer knobs, and the router's multiplexed links.
  for term in epoll reactor EPOLLET "request ID" pipelining backpressure \
              idle_timeout_ms max_connections write_close_bytes MuxLink \
              mux_links "--connections"; do
    if ! grep -q -- "${term}" docs/networking.md; then
      echo "docs: ${term} is not mentioned in docs/networking.md"
      fail=1
    fi
  done
  # The ticking page must keep covering the delta-tick vocabulary: the
  # snapshot-delta lifecycle, the fallback knob, the pruning contract,
  # and the recovery-rebuilds-caches rule.
  for term in delta_snapshots delta_rebuild_fraction "moved set" \
              built_by_delta TemporalIndex max_candidates \
              co_presence_radius tick_throughput "stale-cache" \
              bit-exact; do
    if ! grep -q -- "${term}" docs/ticking.md; then
      echo "docs: ${term} is not mentioned in docs/ticking.md"
      fail=1
    fi
  done
  # The world-sim page must keep covering the macro-scenario
  # vocabulary: the four workload axes, the reconnect storm, and the
  # reproducibility + gating knobs.
  for term in Zipf diurnal flash-crowd co-evolution "reconnect storm" \
              scenario_fingerprint balance_cap storm_recovery_ms \
              degraded_share "--profile world"; do
    if ! grep -q -- "${term}" docs/world_sim.md; then
      echo "docs: ${term} is not mentioned in docs/world_sim.md"
      fail=1
    fi
  done
  # The nightly chaos matrix must keep every drill it has ever grown:
  # a matrix refactor that silently drops an entry would otherwise go
  # unnoticed until the drill it ran stops catching regressions.
  local drill
  for drill in fault-injection-eval kill-a-shard c10k-kill \
               partitioned-migration cold-restart stale-cache world-sim; do
    if ! grep -q "name: ${drill}" .github/workflows/ci.yml; then
      echo "docs: nightly drill '${drill}' missing from ci.yml chaos matrix"
      fail=1
    fi
  done
  # Tracked shell scripts must be shellcheck-clean where the tool
  # exists (CI installs it; a bare container may not have it).
  if command -v shellcheck > /dev/null 2>&1; then
    local script
    while IFS= read -r script; do
      if ! shellcheck "${script}"; then
        echo "docs: shellcheck failed on ${script}"
        fail=1
      fi
    done < <(git ls-files '*.sh')
  else
    echo "docs lane: shellcheck not installed, skipping script lint"
  fi
  if [ "${fail}" -ne 0 ]; then
    return 1
  fi
  echo "docs lane OK: links resolve, ARCHITECTURE.md covers src/*"
}

run_format_lane() {
  if ! command -v clang-format > /dev/null 2>&1; then
    echo "format lane SKIPPED: clang-format not installed"
    return 0
  fi
  # --dry-run -Werror prints a diagnostic per deviation and fails the
  # lane without rewriting anything; `git ls-files` keeps generated or
  # untracked sources out of scope.
  git ls-files '*.h' '*.cc' | xargs -r clang-format --dry-run -Werror
  echo "format lane OK: tracked C++ sources match .clang-format"
}

run_bench_lane() {
  cmake --preset release
  cmake --build --preset release -j "${JOBS}" \
    --target serve_throughput net_throughput tick_throughput
  echo "---- serve_throughput (in-process smoke) ----"
  ./build/bench/serve_throughput --rooms=2 --threads=2 --requests=200 \
    --users=24 --json=build/BENCH_serve.json
  echo "---- net_throughput (TCP fleet smoke, kill one shard) ----"
  ./build/bench/net_throughput --shards=2 --rooms=4 --users=24 \
    --clients=4 --requests=800 --kill_shard_ms=100
  echo "---- net_throughput (partitioned fleet, kill + live add) ----"
  ./build/bench/net_throughput --partitioned --shards=3 --rooms=12 \
    --users=24 --clients=4 --requests=4000 --kill_shard_ms=200 \
    --add_shard_ms=400 --json=build/BENCH_net.json
  echo "---- net_throughput (connection-count axis smoke: idle swarm ----"
  echo "---- + pipelined bursts) ----"
  ./build/bench/net_throughput --shards=2 --rooms=4 --users=24 \
    --clients=4 --requests=800 --pipeline=4 --connections=500
  echo "---- tick_throughput (delta-tick smoke + stale-cache drill) ----"
  ./build/bench/tick_throughput --users=96 --hot=16 --move_fraction=0.1 \
    --ticks=10 --warmup=2 --json=build/BENCH_tick_smoke.json
  ./build/bench/tick_throughput --stale_cache_drill --users=96 \
    --move_fraction=0.1 --durable_dir=build/tick-stale-cache-drill
  # A benchmark that silently emits garbage is worse than one that
  # fails: validate the summaries before anything downstream trusts
  # them. The net summary must carry the degraded counter so "all
  # served" and "all served by the fallback" stay distinguishable.
  python3 - build/BENCH_serve.json build/BENCH_net.json \
    build/BENCH_tick_smoke.json <<'PY'
import json, sys
for path in sys.argv[1:]:
    with open(path) as handle:
        data = json.load(handle)
    keys = ["bench", "ok", "qps", "p50_ms", "p95_ms", "p99_ms"]
    if data.get("bench") == "net_throughput":
        keys += ["requests", "degraded", "not_owner", "lost", "errors"]
    for key in keys:
        if key not in data:
            raise SystemExit(f"{path}: missing key {key!r}")
    if data["ok"] <= 0 or data["qps"] <= 0:
        raise SystemExit(f"{path}: non-positive ok/qps")
    if data["p50_ms"] > data["p99_ms"]:
        raise SystemExit(f"{path}: p50 > p99")
    print(f"{path} OK:",
          {k: data[k] for k in ("qps", "p50_ms", "p95_ms", "p99_ms")})
PY
}

run_bench_regression_lane() {
  cmake --preset release
  cmake --build --preset release -j "${JOBS}" \
    --target serve_throughput net_throughput tick_throughput world_sim
  echo "---- serve_throughput (baseline config) ----"
  ./build/bench/serve_throughput --rooms=2 --threads=2 --clients=4 \
    --requests=4000 --users=24 --json=build/BENCH_serve.json
  echo "---- net_throughput (baseline config: partitioned + kill) ----"
  ./build/bench/net_throughput --partitioned --shards=3 --rooms=12 \
    --users=24 --clients=4 --requests=8000 --kill_shard_ms=300 \
    --json=build/BENCH_net.json
  echo "---- serve_throughput (baseline config, fused f32 engine) ----"
  ./build/bench/serve_throughput --rooms=2 --threads=2 --clients=4 \
    --requests=4000 --users=24 --engine=f32 \
    --json=build/BENCH_serve_f32.json
  echo "---- net_throughput (baseline config, fused f32 engine) ----"
  ./build/bench/net_throughput --partitioned --shards=3 --rooms=12 \
    --users=24 --clients=4 --requests=8000 --kill_shard_ms=300 \
    --engine=f32 --json=build/BENCH_net_f32.json
  echo "---- net_throughput (C10k baseline: 10k idle connections + ----"
  echo "---- pipelined bursts) ----"
  ./build/bench/net_throughput --shards=2 --rooms=8 --users=24 \
    --clients=4 --requests=6000 --pipeline=8 --connections=10000 \
    --json=build/BENCH_net_c10k.json
  echo "---- tick_throughput (baseline config: 512-user room, 5% ----"
  echo "---- movers, 3x delta-vs-scratch gate) ----"
  ./build/bench/tick_throughput --users=512 --hot=64 --move_fraction=0.05 \
    --ticks=40 --warmup=8 --min_speedup=3 --json=build/BENCH_tick.json
  echo "---- bench_compare self-check (gate the gate) ----"
  python3 scripts/bench_compare.py --self_check
  echo "---- compare against committed baselines ----"
  python3 scripts/bench_compare.py \
    bench/baselines/BENCH_serve.json build/BENCH_serve.json \
    bench/baselines/BENCH_net.json build/BENCH_net.json \
    bench/baselines/BENCH_serve_f32.json build/BENCH_serve_f32.json \
    bench/baselines/BENCH_net_f32.json build/BENCH_net_f32.json \
    bench/baselines/BENCH_net_c10k.json build/BENCH_net_c10k.json \
    bench/baselines/BENCH_tick.json build/BENCH_tick.json
  echo "---- world_sim (baseline config: Zipf + diurnal + kill-at- ----"
  echo "---- peak storm + co-evolution) ----"
  ./build/bench/world_sim --shards=3 --rooms=12 --clients=4 \
    --requests=4000 --slices=6 --kill_at_peak --coevolve --seed=1 \
    --json=build/BENCH_world.json
  echo "---- compare against the committed world baseline ----"
  python3 scripts/bench_compare.py --profile world \
    bench/baselines/BENCH_world.json build/BENCH_world.json
}

run_world_sim_lane() {
  cmake --preset release
  cmake --build --preset release -j "${JOBS}" --target world_sim
  echo "---- world_sim (Zipf fleet + flash crowd + kill-at-peak storm) ----"
  # The binary is its own gate: exit 2 on any lost request, any
  # client/storm error, or a primary-balance breach.
  ./build/bench/world_sim --shards=3 --rooms=12 --clients=4 \
    --requests=1200 --slices=6 --kill_at_peak --storm_wave=8 --seed=1 \
    --json=build/BENCH_world_smoke.json
  echo "---- world_sim (same seed again: bit-identical-plan check) ----"
  ./build/bench/world_sim --shards=3 --rooms=12 --clients=4 \
    --requests=1200 --slices=6 --kill_at_peak --storm_wave=8 --seed=1 \
    --json=build/BENCH_world_smoke_rerun.json
  # Same seed, same flags => the generated scenario (room sizes,
  # diurnal slice totals, churned populations, request schedule) must
  # be bit-identical; live latency numbers may differ, the plan not.
  python3 - build/BENCH_world_smoke.json \
    build/BENCH_world_smoke_rerun.json <<'PY'
import json, sys
runs = []
for path in sys.argv[1:]:
    with open(path) as handle:
        runs.append(json.load(handle))
for data, path in zip(runs, sys.argv[1:]):
    for key in ("scenario_fingerprint", "requests", "lost", "errors",
                "primary_balance", "peak_p99_ms", "degraded_share",
                "storm_recovery_ms", "storm_errors"):
        if key not in data:
            raise SystemExit(f"{path}: missing key {key!r}")
a, b = runs
if a["scenario_fingerprint"] != b["scenario_fingerprint"]:
    raise SystemExit(
        "world-sim: rerun with the same seed produced a different "
        f"scenario_fingerprint: {a['scenario_fingerprint']} vs "
        f"{b['scenario_fingerprint']}")
print("world-sim lane OK: zero lost requests, balance within gate,",
      "fingerprint", a["scenario_fingerprint"], "reproduced")
PY
}

run_lane() {
  local lane="$1"
  echo "==== lane: ${lane} ===================================="
  case "${lane}" in
    docs)   run_docs_lane;   return ;;
    format) run_format_lane; return ;;
    bench)  run_bench_lane;  return ;;
    bench-regression) run_bench_regression_lane; return ;;
    world-sim) run_world_sim_lane; return ;;
    release-serve-f64)
      # The f32 engine is the default; this lane pins the f64 reference
      # engine via the environment override and re-runs the concurrent
      # serving suite against it.
      cmake --preset release
      cmake --build --preset release -j "${JOBS}"
      AFTER_INFER_ENGINE=f64 ctest --test-dir build -R '^serve/' \
        --output-on-failure -j "${JOBS}"
      return ;;
    infer-native)
      # Opt-in -march=native build of the inference kernels must stay
      # compilable; only the after_infer library is needed to prove it.
      cmake -S . -B build-infer-native \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo -DAFTER_INFER_NATIVE=ON
      cmake --build build-infer-native -j "${JOBS}" --target after_infer
      echo "infer-native lane OK: after_infer builds with AFTER_INFER_NATIVE=ON"
      return ;;
  esac
  # release-core / asan-serve / ... are the base preset plus a ctest
  # split: -core excludes the serving-runtime tests, -serve runs only
  # them, so CI halves each suite across two cached jobs.
  local preset="${lane%%-*}"
  local -a filter=()
  case "${lane}" in
    *-core)  filter=(-E '^serve/') ;;
    *-serve) filter=(-R '^serve/') ;;
  esac
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "${JOBS}"
  local dir="build-${preset}"
  [ "${preset}" = release ] && dir=build
  if [ "${preset}" = tsan ]; then
    ctest --test-dir "${dir}" -R "${TSAN_FILTER}" \
      --output-on-failure -j "${JOBS}"
  else
    ctest --test-dir "${dir}" "${filter[@]}" --output-on-failure -j "${JOBS}"
  fi
}

for lane in "${LANES[@]}"; do
  run_lane "${lane}"
done
echo "All lanes passed: ${LANES[*]}"
