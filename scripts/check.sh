#!/usr/bin/env bash
# Repo check matrix: builds and tests the three CI lanes.
#
#   scripts/check.sh              # release + asan + tsan
#   scripts/check.sh release      # just one lane
#   TSAN_FILTER=. scripts/check.sh tsan   # widen the tsan test filter
#
# Lanes:
#   release  RelWithDebInfo, full ctest suite (the tier-1 gate)
#   asan     address+undefined sanitizers, full ctest suite
#   tsan     thread sanitizer; by default runs only the concurrent
#            serving-runtime tests (ctest -R serve), where data races
#            actually live. Override the filter with TSAN_FILTER.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
TSAN_FILTER="${TSAN_FILTER:-^serve/}"
LANES=("$@")
if [ "${#LANES[@]}" -eq 0 ]; then
  LANES=(release asan tsan)
fi

run_lane() {
  local lane="$1"
  echo "==== lane: ${lane} ===================================="
  cmake --preset "${lane}"
  cmake --build --preset "${lane}" -j "${JOBS}"
  if [ "${lane}" = tsan ]; then
    ctest --test-dir "build-tsan" -R "${TSAN_FILTER}" \
      --output-on-failure -j "${JOBS}"
  else
    local dir=build
    [ "${lane}" = asan ] && dir=build-asan
    ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}"
  fi
}

for lane in "${LANES[@]}"; do
  run_lane "${lane}"
done
echo "All lanes passed: ${LANES[*]}"
