#!/usr/bin/env bash
# Repo check matrix: builds and tests the CI lanes.
#
#   scripts/check.sh              # docs + release + asan + tsan
#   scripts/check.sh release      # just one lane
#   TSAN_FILTER=. scripts/check.sh tsan   # widen the tsan test filter
#
# Lanes:
#   docs     no build: every intra-repo markdown link resolves, and
#            docs/ARCHITECTURE.md mentions every src/* subsystem
#   release  RelWithDebInfo, full ctest suite (the tier-1 gate)
#   asan     address+undefined sanitizers, full ctest suite
#   tsan     thread sanitizer; by default runs only the concurrent
#            serving-runtime tests (ctest -R serve), where data races
#            actually live. Override the filter with TSAN_FILTER.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
TSAN_FILTER="${TSAN_FILTER:-^serve/}"
LANES=("$@")
if [ "${#LANES[@]}" -eq 0 ]; then
  LANES=(docs release asan tsan)
fi

run_docs_lane() {
  local fail=0
  # Every relative markdown link must resolve, from every tracked page.
  local file target path
  while IFS= read -r file; do
    while IFS= read -r target; do
      case "${target}" in
        http://*|https://*|mailto:*|'#'*) continue ;;
      esac
      path="${target%%#*}"          # drop in-page anchors
      path="${path%% *}"            # drop "title" suffixes
      [ -z "${path}" ] && continue
      if [ ! -e "$(dirname "${file}")/${path}" ]; then
        echo "docs: broken link in ${file}: (${target})"
        fail=1
      fi
    done < <(grep -oE '\]\([^)]+\)' "${file}" | sed 's/^](//; s/)$//')
  done < <(git ls-files '*.md')
  # The architecture page must keep covering every subsystem.
  local dir name
  for dir in src/*/; do
    name="$(basename "${dir}")"
    if ! grep -q "src/${name}/" docs/ARCHITECTURE.md; then
      echo "docs: src/${name}/ is not mentioned in docs/ARCHITECTURE.md"
      fail=1
    fi
  done
  if [ "${fail}" -ne 0 ]; then
    return 1
  fi
  echo "docs lane OK: links resolve, ARCHITECTURE.md covers src/*"
}

run_lane() {
  local lane="$1"
  echo "==== lane: ${lane} ===================================="
  if [ "${lane}" = docs ]; then
    run_docs_lane
    return
  fi
  cmake --preset "${lane}"
  cmake --build --preset "${lane}" -j "${JOBS}"
  if [ "${lane}" = tsan ]; then
    ctest --test-dir "build-tsan" -R "${TSAN_FILTER}" \
      --output-on-failure -j "${JOBS}"
  else
    local dir=build
    [ "${lane}" = asan ] && dir=build-asan
    ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}"
  fi
}

for lane in "${LANES[@]}"; do
  run_lane "${lane}"
done
echo "All lanes passed: ${LANES[*]}"
