#include "baselines/comurnet.h"

#include <algorithm>

#include "core/mia.h"
#include "graph/mwis.h"

namespace after {

Comurnet::Comurnet(const Options& options)
    : options_(options), rng_(options.seed) {}

void Comurnet::BeginSession(int num_users, int target) {
  (void)num_users;
  (void)target;
  pipeline_.clear();
}

std::vector<bool> Comurnet::Solve(const StepContext& context) {
  const int n = static_cast<int>(context.positions->size());
  const int v = context.target;

  // Hard feasibility: candidates physically blocked by nearer co-located
  // MR bodies can never be seen, so they are pre-pruned; everything else
  // competes by preference weight only (COMURNet ignores social
  // presence and continuity).
  const std::vector<bool> blocked = Mia::PhysicallyBlocked(context);
  std::vector<double> weights(n, 0.0);
  for (int w = 0; w < n; ++w) {
    if (w == v || blocked[w]) continue;
    weights[w] = (1.0 - context.beta) * context.preference->At(v, w);
  }

  // Independent re-solve every step with random restarts.
  MwisResult result =
      LocalSearchMwis(*context.occlusion, weights, options_.iterations, rng_);
  result.selected[v] = false;

  // Apply the shared display budget: keep the heaviest selected users.
  std::vector<int> chosen;
  for (int w = 0; w < n; ++w)
    if (result.selected[w]) chosen.push_back(w);
  if (options_.max_recommendations > 0 &&
      static_cast<int>(chosen.size()) > options_.max_recommendations) {
    std::sort(chosen.begin(), chosen.end(),
              [&](int a, int b) { return weights[a] > weights[b]; });
    chosen.resize(options_.max_recommendations);
    std::fill(result.selected.begin(), result.selected.end(), false);
    for (int w : chosen) result.selected[w] = true;
  }
  return result.selected;
}

std::vector<bool> Comurnet::Recommend(const StepContext& context) {
  const int n = static_cast<int>(context.positions->size());

  // The policy starts a fresh solve on the current scene every step...
  pipeline_.push_back(Solve(context));

  // ...but what reaches the display is the solution whose computation
  // began delay_steps ago; before the first solve completes nothing is
  // recommended (paper Sec. I: the t=0 result is only ready after t=2).
  if (options_.delay_steps <= 0) {
    std::vector<bool> fresh = pipeline_.back();
    pipeline_.clear();
    return fresh;
  }
  if (static_cast<int>(pipeline_.size()) <= options_.delay_steps)
    return std::vector<bool>(n, false);
  std::vector<bool> stale = pipeline_.front();
  pipeline_.erase(pipeline_.begin());
  return stale;
}

}  // namespace after
