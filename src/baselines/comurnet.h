#ifndef AFTER_BASELINES_COMURNET_H_
#define AFTER_BASELINES_COMURNET_H_

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "core/recommender.h"

namespace after {

/// COMURNet baseline (Chen & Yang, CIKM'22). The original is a
/// reinforcement-learning (actor-critic) recommender that maximizes user
/// preference under a HARD no-occlusion constraint, re-solving each time
/// step independently at great computational cost. We reproduce its
/// observable behavior (DESIGN.md): at every step it (i) discards
/// candidates physically blocked by co-located participants, then (ii)
/// runs an expensive iterated-local-search MWIS on the occlusion graph
/// with weights (1-beta)*p(v,w), yielding an occlusion-free but
/// continuity-free and hybrid-participation-blind recommendation whose
/// per-step latency scales with `iterations` (the stand-in for the RL
/// policy's "excessive steps").
class Comurnet : public Recommender {
 public:
  struct Options {
    /// Local-search iterations per time step; dominates runtime (the
    /// stand-in for the RL policy's "excessive steps").
    int iterations = 10000;
    /// Display budget: the k heaviest members of the final independent
    /// set are rendered (matching the shared budget of all methods).
    int max_recommendations = 10;
    /// Recommendation staleness in time steps ("the recommendation at
    /// t=0 is calculated after t=2, and thus the results are no longer
    /// effective"): the rendered set always derives from a scene
    /// delay_steps old, and steps earlier than the first completed solve
    /// render nothing. The paper measures ~22 s per solve on the N=200
    /// rooms against 0.5 s time steps, i.e., a 44-step delay; on the
    /// small Hub room it measures 0.4 s, i.e., ~1 step. 0 disables
    /// staleness (idealized COMURNet).
    int delay_steps = 44;
    /// Display label (benches distinguish idealized vs stale variants).
    std::string label = "COMURNet";
    uint64_t seed = 3;
  };

  explicit Comurnet(const Options& options);

  std::string name() const override { return options_.label; }
  void BeginSession(int num_users, int target) override;
  /// NOT thread-safe (thread_safe() stays false): every call mutates the
  /// staleness pipeline and the local-search RNG, per target session.
  std::vector<bool> Recommend(const StepContext& context) override;

 private:
  /// The occlusion-free solve on the *current* scene (what the RL policy
  /// starts computing at this step).
  std::vector<bool> Solve(const StepContext& context);

  Options options_;
  Rng rng_;
  /// Solutions in flight: the front is delay_steps old.
  std::vector<std::vector<bool>> pipeline_;
};

}  // namespace after

#endif  // AFTER_BASELINES_COMURNET_H_
