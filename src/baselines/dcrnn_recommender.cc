#include "baselines/dcrnn_recommender.h"

#include "common/rng.h"

namespace after {
namespace {

constexpr int kFeatureDim = 4;

Rng SeedRng(uint64_t seed) { return Rng(seed * 0xBF58476D1CE4E5B9ULL); }

}  // namespace

DcrnnRecommender::DcrnnRecommender(double alpha, double beta, int hidden_dim,
                                   double threshold, int max_hops,
                                   uint64_t seed)
    : RecurrentGnnRecommender(alpha, beta, hidden_dim, threshold),
      update_gate_([&] {
        Rng rng = SeedRng(seed);
        return DiffusionConv(kFeatureDim + hidden_dim, hidden_dim, max_hops,
                             rng);
      }()),
      reset_gate_([&] {
        Rng rng = SeedRng(seed + 1);
        return DiffusionConv(kFeatureDim + hidden_dim, hidden_dim, max_hops,
                             rng);
      }()),
      candidate_([&] {
        Rng rng = SeedRng(seed + 2);
        return DiffusionConv(kFeatureDim + hidden_dim, hidden_dim, max_hops,
                             rng);
      }()),
      readout_([&] {
        Rng rng = SeedRng(seed + 3);
        return Linear(hidden_dim, 1, rng);
      }()) {}

RecurrentGnnRecommender::StepOutput DcrnnRecommender::StepOnTape(
    const MiaOutput& mia, const Variable& h_prev) const {
  Variable features = Variable::Constant(mia.features);
  Variable transition = Variable::Constant(
      DiffusionConv::RandomWalkTransition(mia.adjacency));

  Variable xh = Variable::ConcatCols(features, h_prev);
  Variable z = Variable::Sigmoid(update_gate_.Forward(xh, transition));
  Variable r = Variable::Sigmoid(reset_gate_.Forward(xh, transition));
  Variable xrh =
      Variable::ConcatCols(features, Variable::Hadamard(r, h_prev));
  Variable c = Variable::Tanh(candidate_.Forward(xrh, transition));

  StepOutput out;
  Variable zh = Variable::Hadamard(z, h_prev);
  Variable zc = Variable::Hadamard(z, c);
  out.hidden = zh + (c - zc);
  out.recommendation = Variable::Sigmoid(readout_.Forward(out.hidden));
  return out;
}

std::vector<Variable> DcrnnRecommender::Parameters() const {
  std::vector<Variable> params = update_gate_.Parameters();
  for (const auto& p : reset_gate_.Parameters()) params.push_back(p);
  for (const auto& p : candidate_.Parameters()) params.push_back(p);
  for (const auto& p : readout_.Parameters()) params.push_back(p);
  return params;
}

}  // namespace after
