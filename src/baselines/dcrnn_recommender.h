#ifndef AFTER_BASELINES_DCRNN_RECOMMENDER_H_
#define AFTER_BASELINES_DCRNN_RECOMMENDER_H_

#include <cstdint>

#include "baselines/recurrent_base.h"
#include "nn/diffusion_conv.h"
#include "nn/linear.h"

namespace after {

/// DCRNN baseline (Li et al., ICLR'18): a diffusion-convolutional GRU
/// (DCGRU) cell whose gates replace the dense projections of a GRU with
/// K-hop diffusion convolutions over the random-walk transition matrix of
/// the occlusion graph. Trained with the POSHGNN loss over MIA inputs.
class DcrnnRecommender : public RecurrentGnnRecommender {
 public:
  DcrnnRecommender(double alpha, double beta, int hidden_dim,
                   double threshold, int max_hops, uint64_t seed);

  std::string name() const override { return "DCRNN"; }

 protected:
  StepOutput StepOnTape(const MiaOutput& mia,
                        const Variable& h_prev) const override;
  std::vector<Variable> Parameters() const override;

 private:
  DiffusionConv update_gate_;
  DiffusionConv reset_gate_;
  DiffusionConv candidate_;
  Linear readout_;
};

}  // namespace after

#endif  // AFTER_BASELINES_DCRNN_RECOMMENDER_H_
