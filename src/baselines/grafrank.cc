#include "baselines/grafrank.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"
#include "common/rng.h"
#include "data/dataset.h"
#include "nn/adam.h"

namespace after {
namespace {

Rng SeedRng(uint64_t seed) { return Rng(seed * 0x94D049BB133111EBULL); }

}  // namespace

GraFrank::GraFrank(const Options& options)
    : options_(options),
      pref_encoder_([&] {
        Rng rng = SeedRng(options.seed);
        return Linear(2, options.encode_dim, rng);
      }()),
      social_encoder_([&] {
        Rng rng = SeedRng(options.seed + 1);
        return Linear(2, options.encode_dim, rng);
      }()),
      attention_([&] {
        Rng rng = SeedRng(options.seed + 2);
        return Linear(2 * options.encode_dim, options.encode_dim, rng);
      }()),
      scorer_([&] {
        Rng rng = SeedRng(options.seed + 3);
        return Linear(options.encode_dim, 1, rng);
      }()) {}

Variable GraFrank::ScoreOnTape(const Matrix& facet_pref,
                               const Matrix& facet_social) const {
  Variable pref = Variable::Relu(
      pref_encoder_.Forward(Variable::Constant(facet_pref)));
  Variable social = Variable::Relu(
      social_encoder_.Forward(Variable::Constant(facet_social)));
  // Cross-facet attention gate: convex per-dimension mixture of facets.
  Variable gate = Variable::Sigmoid(
      attention_.Forward(Variable::ConcatCols(pref, social)));
  Variable one_minus_gate = Variable::AddScalar(-1.0 * gate, 1.0);
  Variable fused = Variable::Hadamard(gate, pref) +
                   Variable::Hadamard(one_minus_gate, social);
  return scorer_.Forward(fused);
}

std::vector<Variable> GraFrank::Parameters() const {
  std::vector<Variable> params = pref_encoder_.Parameters();
  for (const auto& p : social_encoder_.Parameters()) params.push_back(p);
  for (const auto& p : attention_.Parameters()) params.push_back(p);
  for (const auto& p : scorer_.Parameters()) params.push_back(p);
  return params;
}

void GraFrank::Train(const Dataset& dataset, const TrainOptions& options) {
  (void)options;
  trained_on_ = &dataset;
  const int n = dataset.num_users();
  max_degree_ = 1.0;
  for (int u = 0; u < n; ++u)
    max_degree_ =
        std::max(max_degree_, static_cast<double>(dataset.social.Degree(u)));

  Rng rng(options_.seed + 100);
  Adam::Options adam_options;
  adam_options.learning_rate = options_.learning_rate;
  Adam optimizer(Parameters(), adam_options);

  // Ground-truth affinity a ranker on a social platform would learn from:
  // an even blend of preference and tie strength.
  auto affinity = [&](int v, int w) {
    return 0.5 * dataset.preference.At(v, w) +
           0.5 * dataset.social_presence.At(v, w);
  };

  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    const int batch = options_.pairs_per_epoch;
    Matrix pos_pref(batch, 2), pos_social(batch, 2);
    Matrix neg_pref(batch, 2), neg_social(batch, 2);
    for (int b = 0; b < batch; ++b) {
      // Rejection-sample an ordered pair for a random target.
      int v = rng.UniformInt(n);
      int w_pos = rng.UniformInt(n);
      int w_neg = rng.UniformInt(n);
      int guard = 0;
      while ((w_pos == v || w_neg == v || w_pos == w_neg ||
              affinity(v, w_pos) <= affinity(v, w_neg)) &&
             guard++ < 200) {
        v = rng.UniformInt(n);
        w_pos = rng.UniformInt(n);
        w_neg = rng.UniformInt(n);
      }
      pos_pref.At(b, 0) = dataset.preference.At(v, w_pos);
      pos_pref.At(b, 1) = dataset.preference.At(w_pos, v);
      pos_social.At(b, 0) = dataset.social_presence.At(v, w_pos);
      pos_social.At(b, 1) = dataset.social.Degree(w_pos) / max_degree_;
      neg_pref.At(b, 0) = dataset.preference.At(v, w_neg);
      neg_pref.At(b, 1) = dataset.preference.At(w_neg, v);
      neg_social.At(b, 0) = dataset.social_presence.At(v, w_neg);
      neg_social.At(b, 1) = dataset.social.Degree(w_neg) / max_degree_;
    }

    // Margin ranking loss (squared hinge), a BPR surrogate expressible
    // with the available tape ops: sum(relu(1 - (s+ - s-))²) / batch.
    Variable diff = ScoreOnTape(pos_pref, pos_social) -
                    ScoreOnTape(neg_pref, neg_social);
    Variable hinge = Variable::Relu(Variable::AddScalar(-1.0 * diff, 1.0));
    Variable loss = (1.0 / batch) *
                    Variable::Sum(Variable::Hadamard(hinge, hinge));
    optimizer.ZeroGrad();
    loss.Backward();
    optimizer.Step();
  }
}

double GraFrank::Score(const Dataset& dataset, int v, int w) const {
  Matrix facet_pref(1, 2), facet_social(1, 2);
  facet_pref.At(0, 0) = dataset.preference.At(v, w);
  facet_pref.At(0, 1) = dataset.preference.At(w, v);
  facet_social.At(0, 0) = dataset.social_presence.At(v, w);
  facet_social.At(0, 1) = dataset.social.Degree(w) / max_degree_;
  return ScoreOnTape(facet_pref, facet_social).value().At(0, 0);
}

std::vector<bool> GraFrank::Recommend(const StepContext& context) {
  AFTER_CHECK(trained_on_ != nullptr);
  const Dataset& dataset = *trained_on_;
  const int n = static_cast<int>(context.positions->size());
  const int v = context.target;

  // Score all candidates in one batched forward pass.
  Matrix facet_pref(n, 2), facet_social(n, 2);
  for (int w = 0; w < n; ++w) {
    facet_pref.At(w, 0) = context.preference->At(v, w);
    facet_pref.At(w, 1) = context.preference->At(w, v);
    facet_social.At(w, 0) = context.social_presence->At(v, w);
    facet_social.At(w, 1) = dataset.social.Degree(w) / max_degree_;
  }
  const Matrix scores = ScoreOnTape(facet_pref, facet_social).value();

  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return scores.At(a, 0) > scores.At(b, 0);
  });

  std::vector<bool> selected(n, false);
  int chosen = 0;
  for (int w : order) {
    if (w == v) continue;
    selected[w] = true;
    if (++chosen >= options_.k) break;
  }
  return selected;
}

}  // namespace after
