#ifndef AFTER_BASELINES_GRAFRANK_H_
#define AFTER_BASELINES_GRAFRANK_H_

#include <cstdint>

#include "core/recommender.h"
#include "nn/linear.h"

namespace after {

class Rng;

/// GraFrank baseline (Sankar et al., WWW'21): multi-faceted personalized
/// friend ranking. Two facets per candidate pair (preference facet and
/// social facet) are encoded, fused with a learned attention gate, and
/// scored; training uses Bayesian pairwise ranking (BPR) against the
/// users' ground-truth affinities. The ranker is static: it ignores
/// trajectories and occlusion and recommends its top-k every step.
class GraFrank : public TrainableRecommender {
 public:
  struct Options {
    int k = 10;             // display budget
    int encode_dim = 8;     // facet encoder width
    int pairs_per_epoch = 512;
    int epochs = 30;
    double learning_rate = 5e-3;
    uint64_t seed = 11;
  };

  explicit GraFrank(const Options& options);

  std::string name() const override { return "GraFrank"; }
  void Train(const Dataset& dataset, const TrainOptions& options) override;
  std::vector<bool> Recommend(const StepContext& context) override;
  /// Inference builds a fresh tape per call and only *reads* the shared
  /// parameter nodes, so a trained instance may serve concurrent
  /// requests (training and serving must not overlap).
  bool thread_safe() const override { return true; }

  /// Learned ranking score for candidate w from the view of target v.
  double Score(const Dataset& dataset, int v, int w) const;

 private:
  /// Facet tensors for a (v, w) pair: preference facet [p(v,w), p(w,v)],
  /// social facet [s(v,w), deg(w)/max_deg].
  Variable ScoreOnTape(const Matrix& facet_pref,
                       const Matrix& facet_social) const;

  std::vector<Variable> Parameters() const;

  Options options_;
  Linear pref_encoder_;
  Linear social_encoder_;
  Linear attention_;
  Linear scorer_;
  const Dataset* trained_on_ = nullptr;
  double max_degree_ = 1.0;
};

}  // namespace after

#endif  // AFTER_BASELINES_GRAFRANK_H_
