#include "baselines/mvagc.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/rng.h"
#include "data/dataset.h"
#include "tensor/matrix.h"

namespace after {
namespace {

/// Symmetrically-normalized low-pass filter step:
/// X <- (X + D^{-1/2} A D^{-1/2} X) / 2, i.e., (I - L_sym/2) X.
Matrix LowPassFilter(const SocialGraph& graph, Matrix features, int order) {
  const int n = graph.num_nodes();
  std::vector<double> inv_sqrt_degree(n, 0.0);
  for (int u = 0; u < n; ++u) {
    const int d = graph.Degree(u);
    if (d > 0) inv_sqrt_degree[u] = 1.0 / std::sqrt(static_cast<double>(d));
  }
  for (int step = 0; step < order; ++step) {
    Matrix propagated(n, features.cols());
    for (int u = 0; u < n; ++u) {
      for (const auto& nbr : graph.Neighbors(u)) {
        const double coeff =
            inv_sqrt_degree[u] * inv_sqrt_degree[nbr.node];
        for (int c = 0; c < features.cols(); ++c)
          propagated.At(u, c) += coeff * features.At(nbr.node, c);
      }
    }
    features = (features + propagated) * 0.5;
  }
  return features;
}

double DistanceSq(const Matrix& points, int row, const Matrix& centers,
                  int center) {
  double total = 0.0;
  for (int c = 0; c < points.cols(); ++c) {
    const double diff = points.At(row, c) - centers.At(center, c);
    total += diff * diff;
  }
  return total;
}

std::vector<int> KMeans(const Matrix& points, int k, int iterations,
                        Rng& rng) {
  const int n = points.rows();
  const int dim = points.cols();
  k = std::min(k, n);
  Matrix centers(k, dim);
  const std::vector<int> seeds = rng.SampleWithoutReplacement(n, k);
  for (int c = 0; c < k; ++c)
    for (int d = 0; d < dim; ++d) centers.At(c, d) = points.At(seeds[c], d);

  std::vector<int> assignment(n, 0);
  for (int iter = 0; iter < iterations; ++iter) {
    bool changed = false;
    for (int i = 0; i < n; ++i) {
      int best = 0;
      double best_dist = std::numeric_limits<double>::max();
      for (int c = 0; c < k; ++c) {
        const double dist = DistanceSq(points, i, centers, c);
        if (dist < best_dist) {
          best_dist = dist;
          best = c;
        }
      }
      if (assignment[i] != best) {
        assignment[i] = best;
        changed = true;
      }
    }
    if (!changed && iter > 0) break;
    // Recompute centers.
    Matrix sums(k, dim);
    std::vector<int> counts(k, 0);
    for (int i = 0; i < n; ++i) {
      ++counts[assignment[i]];
      for (int d = 0; d < dim; ++d)
        sums.At(assignment[i], d) += points.At(i, d);
    }
    for (int c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;  // keep stale center for empty cluster
      for (int d = 0; d < dim; ++d)
        centers.At(c, d) = sums.At(c, d) / counts[c];
    }
  }
  return assignment;
}

}  // namespace

MvAgc::MvAgc(const Options& options) : options_(options) {}

void MvAgc::Train(const Dataset& dataset, const TrainOptions& options) {
  (void)options;
  const int n = dataset.num_users();
  // Multi-view attributes: preference profile view and social presence
  // view, concatenated after graph filtering.
  Matrix view1 = LowPassFilter(dataset.social, dataset.preference,
                               options_.filter_order);
  Matrix view2 = LowPassFilter(dataset.social, dataset.social_presence,
                               options_.filter_order);
  Matrix features = view1.ConcatCols(view2);
  Rng rng(options_.seed);
  assignment_ =
      KMeans(features, std::min(options_.num_groups, n),
             options_.kmeans_iterations, rng);
  filtered_features_ = std::move(features);
}

std::vector<bool> MvAgc::Recommend(const StepContext& context) {
  const int n = static_cast<int>(context.positions->size());
  AFTER_CHECK_EQ(static_cast<int>(assignment_.size()), n);
  const int group = assignment_[context.target];
  std::vector<int> members;
  for (int w = 0; w < n; ++w)
    if (w != context.target && assignment_[w] == group) members.push_back(w);

  if (options_.max_recommendations > 0 &&
      static_cast<int>(members.size()) > options_.max_recommendations) {
    // Keep the co-members closest to the target in filtered feature
    // space (still purely social — no spatial information).
    const int v = context.target;
    auto distance_sq = [&](int w) {
      double total = 0.0;
      for (int c = 0; c < filtered_features_.cols(); ++c) {
        const double diff =
            filtered_features_.At(v, c) - filtered_features_.At(w, c);
        total += diff * diff;
      }
      return total;
    };
    std::sort(members.begin(), members.end(),
              [&](int a, int b) { return distance_sq(a) < distance_sq(b); });
    members.resize(options_.max_recommendations);
  }

  std::vector<bool> selected(n, false);
  for (int w : members) selected[w] = true;
  return selected;
}

}  // namespace after
