#ifndef AFTER_BASELINES_MVAGC_H_
#define AFTER_BASELINES_MVAGC_H_

#include <cstdint>
#include <vector>

#include "core/recommender.h"

namespace after {

/// MvAGC baseline (Lin & Kang, IJCAI'21): graph-filter-based multi-view
/// attributed graph clustering. Node attributes (preference and presence
/// profiles) are smoothed by a k-order low-pass graph filter over the
/// social network, then clustered with k-means; each user is always shown
/// the members of her own cluster (grouping-based recommendation,
/// oblivious to trajectories and occlusion).
class MvAgc : public TrainableRecommender {
 public:
  struct Options {
    /// Number of clusters (paper: k << N).
    int num_groups = 10;
    /// Low-pass filter order.
    int filter_order = 2;
    int kmeans_iterations = 25;
    /// Display budget: at most this many co-members are shown (the ones
    /// closest in filtered feature space). <= 0 shows the whole group.
    int max_recommendations = 10;
    uint64_t seed = 5;
  };

  explicit MvAgc(const Options& options);

  std::string name() const override { return "MvAGC"; }
  void Train(const Dataset& dataset, const TrainOptions& options) override;
  std::vector<bool> Recommend(const StepContext& context) override;
  /// Inference only reads the frozen cluster assignment and filtered
  /// features; safe to share across server threads once Train() is done
  /// (training and serving must not overlap).
  bool thread_safe() const override { return true; }

  const std::vector<int>& assignments() const { return assignment_; }

 private:
  Options options_;
  std::vector<int> assignment_;  // cluster id per user
  Matrix filtered_features_;     // smoothed attributes used for clustering
};

}  // namespace after

#endif  // AFTER_BASELINES_MVAGC_H_
