#include "baselines/nearest_recommender.h"

#include <algorithm>
#include <numeric>

namespace after {

NearestRecommender::NearestRecommender(int k) : k_(k) {}

std::vector<bool> NearestRecommender::Recommend(const StepContext& context) {
  const auto& positions = *context.positions;
  const int n = static_cast<int>(positions.size());
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  const Vec2 here = positions[context.target];
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return (positions[a] - here).NormSq() < (positions[b] - here).NormSq();
  });

  std::vector<bool> selected(n, false);
  int chosen = 0;
  for (int w : order) {
    if (w == context.target) continue;
    selected[w] = true;
    if (++chosen >= k_) break;
  }
  return selected;
}

}  // namespace after
