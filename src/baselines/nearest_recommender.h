#ifndef AFTER_BASELINES_NEAREST_RECOMMENDER_H_
#define AFTER_BASELINES_NEAREST_RECOMMENDER_H_

#include "core/recommender.h"

namespace after {

/// Nearest baseline: recommends the top-k users closest to the target at
/// time t. Spatially aware (nearest users are rarely occluded) but blind
/// to preference and social ties.
class NearestRecommender : public Recommender {
 public:
  explicit NearestRecommender(int k);

  std::string name() const override { return "Nearest"; }
  std::vector<bool> Recommend(const StepContext& context) override;

 private:
  int k_;
};

}  // namespace after

#endif  // AFTER_BASELINES_NEAREST_RECOMMENDER_H_
