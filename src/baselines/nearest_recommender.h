#ifndef AFTER_BASELINES_NEAREST_RECOMMENDER_H_
#define AFTER_BASELINES_NEAREST_RECOMMENDER_H_

#include "core/recommender.h"

namespace after {

/// Nearest baseline: recommends the top-k users closest to the target at
/// time t. Spatially aware (nearest users are rarely occluded) but blind
/// to preference and social ties.
class NearestRecommender : public Recommender {
 public:
  explicit NearestRecommender(int k);

  std::string name() const override { return "Nearest"; }
  std::vector<bool> Recommend(const StepContext& context) override;
  /// Purely functional: reads only the StepContext, so one instance can
  /// serve every room and target concurrently (it is the server's
  /// degradation fallback for exactly this reason).
  bool thread_safe() const override { return true; }

 private:
  int k_;
};

}  // namespace after

#endif  // AFTER_BASELINES_NEAREST_RECOMMENDER_H_
