#include "baselines/oracle_recommender.h"

#include <algorithm>

#include "core/mia.h"
#include "graph/arc_mwis.h"
#include "graph/occlusion_converter.h"

namespace after {

OracleRecommender::OracleRecommender(int max_recommendations)
    : max_recommendations_(max_recommendations) {}

void OracleRecommender::BeginSession(int num_users, int target) {
  (void)target;
  prev_selected_.assign(num_users, false);
}

std::vector<bool> OracleRecommender::Recommend(const StepContext& context) {
  const int n = static_cast<int>(context.positions->size());
  const int v = context.target;
  if (static_cast<int>(prev_selected_.size()) != n)
    BeginSession(n, v);

  const std::vector<ViewArc> arcs =
      ComputeViewArcs(*context.positions, v, context.body_radius);
  const std::vector<bool> blocked = Mia::PhysicallyBlocked(context);

  std::vector<double> weights(n, 0.0);
  for (int w = 0; w < n; ++w) {
    if (w == v || blocked[w]) continue;
    double weight = (1.0 - context.beta) * context.preference->At(v, w);
    if (prev_selected_[w])
      weight += context.beta * context.social_presence->At(v, w);
    weights[w] = weight;
  }

  MwisResult result = CircularArcMwis(arcs, weights);
  result.selected[v] = false;

  if (max_recommendations_ > 0) {
    std::vector<int> chosen;
    for (int w = 0; w < n; ++w)
      if (result.selected[w]) chosen.push_back(w);
    if (static_cast<int>(chosen.size()) > max_recommendations_) {
      std::sort(chosen.begin(), chosen.end(),
                [&](int a, int b) { return weights[a] > weights[b]; });
      chosen.resize(max_recommendations_);
      std::fill(result.selected.begin(), result.selected.end(), false);
      for (int w : chosen) result.selected[w] = true;
    }
  }

  prev_selected_ = result.selected;
  return result.selected;
}

}  // namespace after
