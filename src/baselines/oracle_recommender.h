#ifndef AFTER_BASELINES_ORACLE_RECOMMENDER_H_
#define AFTER_BASELINES_ORACLE_RECOMMENDER_H_

#include <vector>

#include "core/recommender.h"

namespace after {

/// Myopic per-step oracle: at every step it solves the single-step AFTER
/// objective *exactly* using the polynomial circular-arc MWIS (the static
/// occlusion graph of Sec. III-B is a circular-arc graph), with weights
///
///   w(u) = (1-beta) * p(v,u) + beta * 1[u seen at t-1] * s(v,u),
///
/// after pruning physically blocked candidates. Its selections are fully
/// visible by construction (0% occlusion) and it upper-bounds what any
/// real-time recommender can earn per step (it is not a global optimum
/// over T, which is NP-hard per Theorem 1 as soon as the geometry is
/// richer, nor optimal under a display budget; the budget truncation is
/// applied post hoc like everywhere else).
///
/// Used by bench/oracle_gap to quantify the paper's C2 dilemma: how close
/// POSHGNN's real-time solutions get to the per-step optimum.
class OracleRecommender : public Recommender {
 public:
  explicit OracleRecommender(int max_recommendations);

  std::string name() const override { return "Oracle"; }
  void BeginSession(int num_users, int target) override;
  std::vector<bool> Recommend(const StepContext& context) override;

 private:
  int max_recommendations_;
  std::vector<bool> prev_selected_;
};

}  // namespace after

#endif  // AFTER_BASELINES_ORACLE_RECOMMENDER_H_
