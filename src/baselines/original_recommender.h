#ifndef AFTER_BASELINES_ORIGINAL_RECOMMENDER_H_
#define AFTER_BASELINES_ORIGINAL_RECOMMENDER_H_

#include "core/recommender.h"

namespace after {

/// "Original" condition from the user study: render every surrounding
/// user, exactly as today's social XR applications do. Maximal candidate
/// coverage, maximal occlusion.
class OriginalRecommender : public Recommender {
 public:
  OriginalRecommender() = default;

  std::string name() const override { return "Original"; }

  std::vector<bool> Recommend(const StepContext& context) override {
    std::vector<bool> selected(context.positions->size(), true);
    selected[context.target] = false;
    return selected;
  }
};

}  // namespace after

#endif  // AFTER_BASELINES_ORIGINAL_RECOMMENDER_H_
