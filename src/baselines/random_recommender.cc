#include "baselines/random_recommender.h"

#include <algorithm>

#include "common/check.h"

namespace after {

RandomRecommender::RandomRecommender(int k, uint64_t seed)
    : k_(k), rng_(seed) {}

void RandomRecommender::BeginSession(int num_users, int target) {
  selection_.assign(num_users, false);
  const int want = std::min(k_, num_users - 1);
  int chosen = 0;
  while (chosen < want) {
    const int w = rng_.UniformInt(num_users);
    if (w == target || selection_[w]) continue;
    selection_[w] = true;
    ++chosen;
  }
}

std::vector<bool> RandomRecommender::Recommend(const StepContext& context) {
  const int n = static_cast<int>(context.positions->size());
  if (static_cast<int>(selection_.size()) != n)
    BeginSession(n, context.target);
  return selection_;
}

}  // namespace after
