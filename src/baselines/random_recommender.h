#ifndef AFTER_BASELINES_RANDOM_RECOMMENDER_H_
#define AFTER_BASELINES_RANDOM_RECOMMENDER_H_

#include <cstdint>

#include "common/rng.h"
#include "core/recommender.h"

namespace after {

/// Random baseline: selects k surrounding users uniformly at random when
/// a session starts and keeps displaying them, ignoring preferences,
/// social ties and occlusion.
class RandomRecommender : public Recommender {
 public:
  RandomRecommender(int k, uint64_t seed);

  std::string name() const override { return "Random"; }
  void BeginSession(int num_users, int target) override;
  std::vector<bool> Recommend(const StepContext& context) override;

 private:
  int k_;
  Rng rng_;
  std::vector<bool> selection_;
};

}  // namespace after

#endif  // AFTER_BASELINES_RANDOM_RECOMMENDER_H_
