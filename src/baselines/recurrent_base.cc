#include "baselines/recurrent_base.h"

#include <algorithm>
#include <cstdio>

#include "common/check.h"
#include "common/rng.h"
#include "core/loss.h"
#include "core/session.h"
#include "data/dataset.h"
#include "graph/occlusion_converter.h"
#include "nn/adam.h"

namespace after {

RecurrentGnnRecommender::RecurrentGnnRecommender(double alpha, double beta,
                                                 int hidden_dim,
                                                 double threshold,
                                                 int max_recommendations)
    : alpha_(alpha),
      beta_(beta),
      hidden_dim_(hidden_dim),
      threshold_(threshold),
      max_recommendations_(max_recommendations) {}

void RecurrentGnnRecommender::BeginSession(int num_users, int target) {
  (void)target;
  mia_.Reset();
  state_hidden_ = Matrix(num_users, hidden_dim_);
  state_recommendation_ = Matrix(num_users, 1);
}

std::vector<bool> RecurrentGnnRecommender::Recommend(
    const StepContext& context) {
  const int n = static_cast<int>(context.positions->size());
  if (state_hidden_.rows() != n) BeginSession(n, context.target);

  const MiaOutput mia = mia_.Process(context);
  const StepOutput step =
      StepOnTape(mia, Variable::Constant(state_hidden_));
  state_hidden_ = step.hidden.value();
  const Matrix previous = state_recommendation_;
  state_recommendation_ = step.recommendation.value();

  // Same objective-guided decoding as POSHGNN (see Poshgnn::Recommend)
  // so the recurrent baselines compete on equal footing.
  const Matrix& r = state_recommendation_;
  std::vector<int> candidates;
  for (int w = 0; w < n; ++w) {
    if (w == context.target) continue;
    if (r.At(w, 0) > threshold_) candidates.push_back(w);
  }
  if (max_recommendations_ > 0 &&
      static_cast<int>(candidates.size()) > max_recommendations_) {
    std::vector<double> decode_score(n, 0.0);
    for (int w : candidates) {
      const double gain = (1.0 - beta_) * mia.p_hat.At(w, 0) +
                          beta_ * previous.At(w, 0) * mia.s_hat.At(w, 0);
      decode_score[w] = r.At(w, 0) * gain;
    }
    std::sort(candidates.begin(), candidates.end(), [&](int a, int b) {
      return decode_score[a] > decode_score[b];
    });
    candidates.resize(max_recommendations_);
  }
  std::vector<bool> selected(n, false);
  for (int w : candidates) selected[w] = true;
  return selected;
}

void RecurrentGnnRecommender::Train(const Dataset& dataset,
                                    const TrainOptions& options) {
  Rng rng(options.seed);
  const int n = dataset.num_users();
  last_train_status_ = OkStatus();
  train_steps_skipped_ = 0;
  train_rollbacks_ = 0;
  if (dataset.sessions.empty() || n <= 0) {
    last_train_status_ = InvalidDataError(
        "RecurrentGnnRecommender::Train: dataset has no sessions or users");
    std::fprintf(stderr, "[%s] %s\n", name().c_str(),
                 last_train_status_.ToString().c_str());
    return;
  }

  std::vector<int> train_sessions = options.train_sessions;
  if (train_sessions.empty()) {
    const int limit =
        std::max(1, static_cast<int>(dataset.sessions.size()) - 1);
    for (int s = 0; s < limit; ++s) train_sessions.push_back(s);
  }

  Adam::Options adam_options;
  adam_options.learning_rate = options.learning_rate;
  Adam optimizer(Parameters(), adam_options);
  TrainingGuard guard(options.robustness, &optimizer);

  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    double epoch_loss = 0.0;
    int rollouts = 0;
    const std::vector<int> targets = rng.SampleWithoutReplacement(
        n, std::min(n, options.targets_per_epoch));
    for (int session_index : train_sessions) {
      if (session_index < 0 ||
          session_index >= static_cast<int>(dataset.sessions.size()))
        continue;
      const XrWorld& world = dataset.sessions[session_index];
      if (world.num_steps() <= 0) continue;
      for (int target : targets) {
        Mia mia_state;
        Variable r_prev = Variable::Constant(Matrix(n, 1));
        Variable h_prev = Variable::Constant(Matrix(n, hidden_dim_));
        Variable total_loss;
        ForEachSessionStep(
            dataset, session_index, target, beta_,
            [&](const StepContext& context) {
              const MiaOutput mia = mia_state.Process(context);
              const StepOutput step = StepOnTape(mia, h_prev);
              Variable loss = PoshgnnStepLoss(
                  step.recommendation, r_prev,
                  Variable::Constant(mia.p_hat),
                  Variable::Constant(mia.s_hat),
                  Variable::Constant(mia.adjacency), alpha_, beta_);
              total_loss = total_loss.defined() ? total_loss + loss : loss;
              r_prev = step.recommendation;
              h_prev = step.hidden;
            });
        // Every step of the rollout may have been skipped as poisoned.
        if (!total_loss.defined()) continue;
        total_loss =
            (1.0 / static_cast<double>(world.num_steps())) * total_loss;
        optimizer.ZeroGrad();
        total_loss.Backward();
        const TrainingGuard::Outcome outcome =
            guard.GuardedStep(total_loss.value().At(0, 0));
        if (outcome == TrainingGuard::Outcome::kFailed) {
          last_train_status_ = guard.status();
          train_steps_skipped_ = guard.steps_skipped();
          train_rollbacks_ = guard.rollbacks();
          std::fprintf(stderr, "[%s] training halted: %s\n", name().c_str(),
                       last_train_status_.ToString().c_str());
          return;
        }
        if (outcome == TrainingGuard::Outcome::kStepped) {
          epoch_loss += total_loss.value().At(0, 0);
          ++rollouts;
        }
      }
    }
    last_training_loss_ = epoch_loss / std::max(1, rollouts);
    if (options.verbose) {
      std::printf("[%s] epoch %d/%d loss %.4f\n", name().c_str(), epoch + 1,
                  options.epochs, last_training_loss_);
    }
  }
  train_steps_skipped_ = guard.steps_skipped();
  train_rollbacks_ = guard.rollbacks();
}

}  // namespace after
