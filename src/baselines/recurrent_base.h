#ifndef AFTER_BASELINES_RECURRENT_BASE_H_
#define AFTER_BASELINES_RECURRENT_BASE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/mia.h"
#include "core/recommender.h"
#include "tensor/autograd.h"

namespace after {

/// Shared machinery for the recurrent GNN baselines (TGCN, DCRNN). As in
/// the paper's experimental setup, they consume the same MIA-aggregated
/// inputs as POSHGNN and are trained with the POSHGNN loss; only the
/// recurrent kernel differs (implemented by subclasses via StepOnTape).
class RecurrentGnnRecommender : public TrainableRecommender {
 public:
  struct StepOutput {
    Variable recommendation;  // r_t (n x 1), in [0, 1]
    Variable hidden;          // h_t (n x hidden_dim)
  };

  RecurrentGnnRecommender(double alpha, double beta, int hidden_dim,
                          double threshold, int max_recommendations = 10);

  void BeginSession(int num_users, int target) override;
  /// NOT thread-safe (thread_safe() stays false): each call advances the
  /// cached recurrent state (state_hidden_ / state_recommendation_) and
  /// the MIA's remembered previous adjacency, all keyed to a single
  /// target's session. The server must create one instance per
  /// (room, target) stream and serialize its calls.
  std::vector<bool> Recommend(const StepContext& context) override;
  void Train(const Dataset& dataset, const TrainOptions& options) override;

  double last_training_loss() const { return last_training_loss_; }

  /// Outcome of the last Train() call (mirrors Poshgnn::last_train_status).
  const Status& last_train_status() const { return last_train_status_; }
  int train_steps_skipped() const { return train_steps_skipped_; }
  int train_rollbacks() const { return train_rollbacks_; }

 protected:
  /// One recurrent step on the tape.
  virtual StepOutput StepOnTape(const MiaOutput& mia,
                                const Variable& h_prev) const = 0;
  virtual std::vector<Variable> Parameters() const = 0;

  double alpha_;
  double beta_;
  int hidden_dim_;
  double threshold_;
  /// Display budget shared with POSHGNN (see PoshgnnConfig).
  int max_recommendations_;

 private:
  Mia mia_;
  Matrix state_hidden_;
  Matrix state_recommendation_;
  double last_training_loss_ = 0.0;
  Status last_train_status_;
  int train_steps_skipped_ = 0;
  int train_rollbacks_ = 0;
};

}  // namespace after

#endif  // AFTER_BASELINES_RECURRENT_BASE_H_
