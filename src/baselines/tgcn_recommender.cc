#include "baselines/tgcn_recommender.h"

#include "common/rng.h"

namespace after {
namespace {

constexpr int kFeatureDim = 4;

Rng SeedRng(uint64_t seed) { return Rng(seed * 0xD1342543DE82EF95ULL); }

}  // namespace

TgcnRecommender::TgcnRecommender(double alpha, double beta, int hidden_dim,
                                 double threshold, uint64_t seed)
    : RecurrentGnnRecommender(alpha, beta, hidden_dim, threshold),
      spatial_([&] {
        Rng rng = SeedRng(seed);
        return GcnLayer(kFeatureDim, hidden_dim, Activation::kRelu, rng);
      }()),
      recurrent_([&] {
        Rng rng = SeedRng(seed + 1);
        return GruCell(hidden_dim, hidden_dim, rng);
      }()),
      readout_([&] {
        Rng rng = SeedRng(seed + 2);
        return Linear(hidden_dim, 1, rng);
      }()) {}

RecurrentGnnRecommender::StepOutput TgcnRecommender::StepOnTape(
    const MiaOutput& mia, const Variable& h_prev) const {
  Variable features = Variable::Constant(mia.features);
  Variable adjacency = Variable::Constant(mia.adjacency);
  Variable spatial = spatial_.Forward(features, adjacency);
  StepOutput out;
  out.hidden = recurrent_.Forward(spatial, h_prev);
  out.recommendation = Variable::Sigmoid(readout_.Forward(out.hidden));
  return out;
}

std::vector<Variable> TgcnRecommender::Parameters() const {
  std::vector<Variable> params = spatial_.Parameters();
  for (const auto& p : recurrent_.Parameters()) params.push_back(p);
  for (const auto& p : readout_.Parameters()) params.push_back(p);
  return params;
}

}  // namespace after
