#ifndef AFTER_BASELINES_TGCN_RECOMMENDER_H_
#define AFTER_BASELINES_TGCN_RECOMMENDER_H_

#include <cstdint>

#include "baselines/recurrent_base.h"
#include "nn/gcn_layer.h"
#include "nn/gru_cell.h"
#include "nn/linear.h"

namespace after {

/// TGCN baseline (Zhao et al., T-ITS'20): a graph convolution captures
/// spatial structure and a GRU captures temporal dynamics. Trained with
/// the POSHGNN loss over MIA inputs, as in the paper's setup.
class TgcnRecommender : public RecurrentGnnRecommender {
 public:
  TgcnRecommender(double alpha, double beta, int hidden_dim,
                  double threshold, uint64_t seed);

  std::string name() const override { return "TGCN"; }

 protected:
  StepOutput StepOnTape(const MiaOutput& mia,
                        const Variable& h_prev) const override;
  std::vector<Variable> Parameters() const override;

 private:
  GcnLayer spatial_;
  GruCell recurrent_;
  Linear readout_;
};

}  // namespace after

#endif  // AFTER_BASELINES_TGCN_RECOMMENDER_H_
