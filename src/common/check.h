#ifndef AFTER_COMMON_CHECK_H_
#define AFTER_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace after {

/// Terminates the program with a message. Used by the AFTER_CHECK macros;
/// the library treats check failures as unrecoverable programming errors
/// (consistent with a no-exceptions style).
[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const std::string& message) {
  std::fprintf(stderr, "[AFTER CHECK FAILED] %s:%d: %s\n", file, line,
               message.c_str());
  std::abort();
}

}  // namespace after

/// Aborts with a diagnostic if `condition` is false.
#define AFTER_CHECK(condition)                                        \
  do {                                                                \
    if (!(condition)) {                                               \
      ::after::CheckFailed(__FILE__, __LINE__, "expected " #condition); \
    }                                                                 \
  } while (0)

/// Aborts with a diagnostic including both operand values.
#define AFTER_CHECK_OP(op, a, b)                                     \
  do {                                                               \
    auto va_ = (a);                                                  \
    auto vb_ = (b);                                                  \
    if (!(va_ op vb_)) {                                             \
      std::ostringstream oss_;                                       \
      oss_ << "expected " #a " " #op " " #b " (" << va_ << " vs "    \
           << vb_ << ")";                                            \
      ::after::CheckFailed(__FILE__, __LINE__, oss_.str());          \
    }                                                                \
  } while (0)

/// Aborts with a caller-supplied message. `msg` may be a stream-style
/// expression chain, e.g.:
///   AFTER_CHECK_MSG(rows == n, "matrix has " << rows << " rows, want " << n);
#define AFTER_CHECK_MSG(condition, msg)                               \
  do {                                                                \
    if (!(condition)) {                                               \
      std::ostringstream oss_;                                        \
      oss_ << "expected " #condition ": " << msg;                     \
      ::after::CheckFailed(__FILE__, __LINE__, oss_.str());           \
    }                                                                 \
  } while (0)

#define AFTER_CHECK_EQ(a, b) AFTER_CHECK_OP(==, a, b)
#define AFTER_CHECK_NE(a, b) AFTER_CHECK_OP(!=, a, b)
#define AFTER_CHECK_LT(a, b) AFTER_CHECK_OP(<, a, b)
#define AFTER_CHECK_LE(a, b) AFTER_CHECK_OP(<=, a, b)
#define AFTER_CHECK_GT(a, b) AFTER_CHECK_OP(>, a, b)
#define AFTER_CHECK_GE(a, b) AFTER_CHECK_OP(>=, a, b)

#endif  // AFTER_COMMON_CHECK_H_
