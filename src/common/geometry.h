#ifndef AFTER_COMMON_GEOMETRY_H_
#define AFTER_COMMON_GEOMETRY_H_

#include <cmath>

namespace after {

/// 2D vector used for positions and velocities in the (flat) social XR
/// space W. Following Sec. III-B of the paper, the occlusion-graph
/// converter assumes a flat environment, i.e., trajectories live in the
/// y=0 plane, so 2D coordinates (x, z) suffice.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  Vec2() = default;
  Vec2(double x_in, double y_in) : x(x_in), y(y_in) {}

  Vec2 operator+(const Vec2& o) const { return {x + o.x, y + o.y}; }
  Vec2 operator-(const Vec2& o) const { return {x - o.x, y - o.y}; }
  Vec2 operator*(double s) const { return {x * s, y * s}; }
  Vec2& operator+=(const Vec2& o) {
    x += o.x;
    y += o.y;
    return *this;
  }

  double Dot(const Vec2& o) const { return x * o.x + y * o.y; }
  /// 2D cross product (z-component of the 3D cross product).
  double Cross(const Vec2& o) const { return x * o.y - y * o.x; }
  double NormSq() const { return x * x + y * y; }
  double Norm() const { return std::sqrt(NormSq()); }

  /// Unit vector in this direction (zero vector maps to zero).
  Vec2 Normalized() const {
    const double n = Norm();
    if (n < 1e-12) return {0.0, 0.0};
    return {x / n, y / n};
  }

  /// Counter-clockwise perpendicular.
  Vec2 Perpendicular() const { return {-y, x}; }

  /// Angle in radians in (-pi, pi].
  double Angle() const { return std::atan2(y, x); }
};

inline Vec2 operator*(double s, const Vec2& v) { return v * s; }

inline double Distance(const Vec2& a, const Vec2& b) { return (a - b).Norm(); }

}  // namespace after

#endif  // AFTER_COMMON_GEOMETRY_H_
