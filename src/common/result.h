#ifndef AFTER_COMMON_RESULT_H_
#define AFTER_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/check.h"
#include "common/status.h"

namespace after {

/// Either a value or a non-OK Status, in a no-exceptions style: the
/// error-union return type for fallible constructors and loaders
/// (e.g. `Result<Dataset> LoadDatasetResult(dir)`).
///
/// Accessing `value()` on an error Result is a programming error and
/// trips AFTER_CHECK; callers must branch on `ok()` first (or use
/// `value_or`). Constructing from an OK status is likewise a programming
/// error — an OK result must carry a value.
template <typename T>
class Result {
 public:
  /// Error result. `status` must be non-OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    AFTER_CHECK(!status_.ok());
  }

  /// Success result.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return value_.has_value(); }

  /// OK when a value is held.
  const Status& status() const { return status_; }

  const T& value() const& {
    AFTER_CHECK(ok());
    return *value_;
  }
  T& value() & {
    AFTER_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    AFTER_CHECK(ok());
    return std::move(*value_);
  }

  /// The value, or `fallback` when this holds an error.
  T value_or(T fallback) const& {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace after

#endif  // AFTER_COMMON_RESULT_H_
