#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace after {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

int Rng::UniformInt(int n) {
  AFTER_CHECK_GT(n, 0);
  return static_cast<int>(NextUint64() % static_cast<uint64_t>(n));
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  const double u2 = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(theta);
  has_cached_normal_ = true;
  return radius * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  AFTER_CHECK_LE(k, n);
  std::vector<int> all(n);
  for (int i = 0; i < n; ++i) all[i] = i;
  // Partial Fisher-Yates: the first k slots end up uniformly sampled.
  for (int i = 0; i < k; ++i) {
    int j = i + UniformInt(n - i);
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

int Rng::SampleWeighted(const std::vector<double>& weights) {
  AFTER_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    AFTER_CHECK_GE(w, 0.0);
    total += w;
  }
  AFTER_CHECK_GT(total, 0.0);
  double target = Uniform() * total;
  double cumulative = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    cumulative += weights[i];
    if (target < cumulative) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

}  // namespace after
