#ifndef AFTER_COMMON_RNG_H_
#define AFTER_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace after {

/// Deterministic pseudo-random number generator (xoshiro256**) used
/// everywhere in the library so that dataset generation, simulation and
/// training are exactly reproducible from a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  Rng(const Rng&) = default;
  Rng& operator=(const Rng&) = default;

  /// Next raw 64-bit value.
  uint64_t NextUint64();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  int UniformInt(int n);

  /// Standard normal variate (Box-Muller).
  double Normal();

  /// Normal variate with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (int i = static_cast<int>(items.size()) - 1; i > 0; --i) {
      int j = UniformInt(i + 1);
      std::swap(items[i], items[j]);
    }
  }

  /// Samples k distinct indices from [0, n) without replacement.
  std::vector<int> SampleWithoutReplacement(int n, int k);

  /// Samples an index proportionally to the non-negative weights.
  int SampleWeighted(const std::vector<double>& weights);

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace after

#endif  // AFTER_COMMON_RNG_H_
