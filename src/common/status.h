#ifndef AFTER_COMMON_STATUS_H_
#define AFTER_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace after {

/// Error taxonomy for recoverable failures. AFTER_CHECK remains the tool
/// for programming errors (it aborts); Status is the tool for everything
/// the system must survive: corrupt datasets, numerically degenerate
/// training steps, exhausted budgets. The library is built without
/// exceptions, so Status / Result<T> are the only error channel on
/// recoverable paths.
enum class StatusCode {
  kOk = 0,
  /// External input (dataset file, session, matrix) failed validation.
  kInvalidData,
  /// A NaN/Inf or otherwise degenerate value surfaced in numeric code.
  kNumericalError,
  /// A deadline or step budget was exceeded.
  kTimeout,
  /// An allocation / capacity / retry budget was exhausted.
  kResourceExhausted,
  /// A required file or entity does not exist.
  kNotFound,
  /// Invariant violation that was caught instead of aborting.
  kInternal,
  /// A caller-supplied argument (e.g. a wire frame, a flag value) is
  /// malformed. Distinct from kInvalidData, which covers external
  /// *content* (files, datasets): an invalid argument is never worth
  /// retrying, while invalid data may be fixed out of band.
  kInvalidArgument,
  /// A remote peer or backend cannot be reached right now; the request
  /// did not run and is safe to retry elsewhere (the shard router's
  /// retry-next-shard trigger).
  kUnavailable,
  /// A shard was asked about a room it does not own (partitioned
  /// serving, serve/shard_control.h). The request did not run; the
  /// caller should re-route to the room's current owner. Distinct from
  /// kUnavailable: the shard is healthy, it just is not responsible.
  kNotOwner,
  /// Durable state (a checkpoint or journal, serve/checkpoint.h) is
  /// unrecoverably corrupt: the bytes exist but fail checksum or
  /// structural validation, so recovery must discard them. Distinct
  /// from kInvalidData (bad external input worth fixing out of band):
  /// data loss is a degradation the fleet keeps serving through, with
  /// the affected rooms rebuilt fresh.
  kDataLoss,
};

/// Short upper-case name for a code ("INVALID_DATA").
inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidData:
      return "INVALID_DATA";
    case StatusCode::kNumericalError:
      return "NUMERICAL_ERROR";
    case StatusCode::kTimeout:
      return "TIMEOUT";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kNotOwner:
      return "NOT_OWNER";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
  }
  return "UNKNOWN";
}

/// Value-type status: a code plus a human-readable diagnostic. Cheap to
/// copy in the OK case (empty message).
class Status {
 public:
  /// OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "INVALID_DATA: preference.txt line 3: non-finite entry" or "OK".
  std::string ToString() const {
    if (ok()) return "OK";
    std::string out = StatusCodeName(code_);
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

  /// Returns a copy with `context` prepended to the message, preserving
  /// the code; no-op on OK. Used to build file -> line -> field trails.
  Status Annotate(const std::string& context) const {
    if (ok()) return *this;
    if (message_.empty()) return Status(code_, context);
    return Status(code_, context + ": " + message_);
  }

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status(); }
inline Status InvalidDataError(std::string message) {
  return Status(StatusCode::kInvalidData, std::move(message));
}
inline Status NumericalError(std::string message) {
  return Status(StatusCode::kNumericalError, std::move(message));
}
inline Status TimeoutError(std::string message) {
  return Status(StatusCode::kTimeout, std::move(message));
}
inline Status ResourceExhaustedError(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}
inline Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
inline Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
inline Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
inline Status UnavailableError(std::string message) {
  return Status(StatusCode::kUnavailable, std::move(message));
}
inline Status NotOwnerError(std::string message) {
  return Status(StatusCode::kNotOwner, std::move(message));
}
inline Status DataLossError(std::string message) {
  return Status(StatusCode::kDataLoss, std::move(message));
}

}  // namespace after

/// Propagates a non-OK Status to the caller.
#define AFTER_RETURN_IF_ERROR(expr)                 \
  do {                                              \
    ::after::Status after_status_ = (expr);         \
    if (!after_status_.ok()) return after_status_;  \
  } while (0)

#endif  // AFTER_COMMON_STATUS_H_
