#ifndef AFTER_COMMON_TIMER_H_
#define AFTER_COMMON_TIMER_H_

#include <chrono>
#include <limits>

namespace after {

/// Simple wall-clock stopwatch used to measure per-step recommendation
/// latency in the evaluation harness.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time in milliseconds since construction or the last Reset().
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  /// Elapsed time in seconds.
  double ElapsedSeconds() const { return ElapsedMs() / 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Monotonic deadline: a fixed point in the future against which latency
/// budgets are checked. Used by the serving runtime (per-request
/// deadlines -> kTimeout / fallback degradation) and by the evaluator's
/// per-step latency accounting. A default-constructed Deadline never
/// expires.
class Deadline {
 public:
  /// Never expires; Remaining() is +infinity.
  Deadline() = default;

  /// Deadline `ms` milliseconds from now. ms <= 0 yields an already
  /// expired deadline.
  static Deadline ExpiresIn(double ms) {
    Deadline d;
    d.has_expiry_ = true;
    d.expiry_ = d.start_ + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double, std::milli>(ms));
    return d;
  }

  /// Explicitly infinite deadline (same as default construction).
  static Deadline Infinite() { return Deadline(); }

  bool Expired() const { return has_expiry_ && Clock::now() >= expiry_; }

  /// Milliseconds until expiry (negative once past it); +infinity for an
  /// infinite deadline.
  double RemainingMs() const {
    if (!has_expiry_) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double, std::milli>(expiry_ - Clock::now())
        .count();
  }

  /// Milliseconds since the deadline was created. Lets one object serve
  /// both budget enforcement and elapsed-latency accounting.
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  bool infinite() const { return !has_expiry_; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_ = Clock::now();
  Clock::time_point expiry_{};
  bool has_expiry_ = false;
};

}  // namespace after

#endif  // AFTER_COMMON_TIMER_H_
