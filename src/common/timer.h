#ifndef AFTER_COMMON_TIMER_H_
#define AFTER_COMMON_TIMER_H_

#include <chrono>

namespace after {

/// Simple wall-clock stopwatch used to measure per-step recommendation
/// latency in the evaluation harness.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time in milliseconds since construction or the last Reset().
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  /// Elapsed time in seconds.
  double ElapsedSeconds() const { return ElapsedMs() / 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace after

#endif  // AFTER_COMMON_TIMER_H_
