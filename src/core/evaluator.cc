#include "core/evaluator.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"
#include "common/timer.h"
#include "graph/occlusion_converter.h"

namespace after {

std::vector<int> DefaultEvalTargets(int num_users, int num_targets,
                                    uint64_t seed) {
  Rng rng(seed);
  return rng.SampleWithoutReplacement(num_users,
                                      std::min(num_users, num_targets));
}

EvalResult EvaluateRecommender(Recommender& recommender,
                               const Dataset& dataset,
                               const EvalOptions& options) {
  AFTER_CHECK(!dataset.sessions.empty());
  const int session_index =
      options.session >= 0
          ? options.session
          : static_cast<int>(dataset.sessions.size()) - 1;
  const XrWorld& world = dataset.sessions[session_index];
  const int n = world.num_users();
  const double body_radius = world.body_radius();

  std::vector<int> targets = options.targets;
  if (targets.empty())
    targets = DefaultEvalTargets(n, options.num_targets, options.target_seed);

  EvalResult result;
  result.method = recommender.name();
  result.steps_per_session = world.num_steps();

  double total_steps_timed = 0.0;
  double total_time_ms = 0.0;
  double occlusion_numerator = 0.0;
  double occlusion_denominator = 0.0;
  double recommended_total = 0.0;

  for (int target : targets) {
    recommender.BeginSession(n, target);
    std::vector<bool> prev_visible(n, false);
    std::vector<bool> prev_recommended(n, false);
    double target_after = 0.0;
    double target_preference = 0.0;
    double target_presence = 0.0;

    for (int t = 0; t < world.num_steps(); ++t) {
      const auto& positions = world.PositionsAt(t);
      const OcclusionGraph occlusion =
          BuildOcclusionGraph(positions, target, body_radius);

      StepContext context;
      context.t = t;
      context.target = target;
      context.positions = &positions;
      context.occlusion = &occlusion;
      context.interfaces = &world.interfaces();
      context.preference = &dataset.preference;
      context.social_presence = &dataset.social_presence;
      context.beta = options.beta;
      context.body_radius = body_radius;

      WallTimer timer;
      std::vector<bool> recommended = recommender.Recommend(context);
      total_time_ms += timer.ElapsedMs();
      total_steps_timed += 1.0;

      AFTER_CHECK_EQ(static_cast<int>(recommended.size()), n);
      recommended[target] = false;

      // Rendered = recommended plus, for MR targets, the physically
      // present co-located MR participants.
      std::vector<bool> rendered = recommended;
      const bool target_is_mr =
          world.interface_of(target) == Interface::kMR;
      if (target_is_mr) {
        for (int w = 0; w < n; ++w)
          if (w != target && world.interface_of(w) == Interface::kMR)
            rendered[w] = true;
      }

      const std::vector<bool> visible =
          ComputeVisibility(positions, target, body_radius, rendered);

      int recommended_count = 0;
      int occluded_count = 0;
      for (int w = 0; w < n; ++w) {
        if (!recommended[w]) continue;
        ++recommended_count;
        const bool sees_now = visible[w];  // 1[v => w at t]
        if (!sees_now) ++occluded_count;
        if (sees_now) {
          const double p = dataset.preference.At(target, w);
          target_preference += p;
          target_after += (1.0 - options.beta) * p;
          const bool seen_before = prev_recommended[w] && prev_visible[w];
          if (seen_before) {
            const double s = dataset.social_presence.At(target, w);
            target_presence += s;
            target_after += options.beta * s;
          }
        }
      }
      if (recommended_count > 0) {
        occlusion_numerator +=
            static_cast<double>(occluded_count) / recommended_count;
        occlusion_denominator += 1.0;
      }
      recommended_total += recommended_count;

      prev_visible = visible;
      prev_recommended = recommended;
    }

    result.per_target_after.push_back(target_after);
    result.per_target_preference.push_back(target_preference);
    result.per_target_presence.push_back(target_presence);
    result.evaluated_targets.push_back(target);
    result.after_utility += target_after;
    result.preference_utility += target_preference;
    result.social_presence_utility += target_presence;
  }

  const double num_targets = static_cast<double>(targets.size());
  result.after_utility /= num_targets;
  result.preference_utility /= num_targets;
  result.social_presence_utility /= num_targets;
  result.view_occlusion_rate =
      occlusion_denominator > 0.0
          ? occlusion_numerator / occlusion_denominator
          : 0.0;
  result.running_time_ms =
      total_steps_timed > 0.0 ? total_time_ms / total_steps_timed : 0.0;
  result.avg_recommended_per_step =
      total_steps_timed > 0.0 ? recommended_total / total_steps_timed : 0.0;
  return result;
}

}  // namespace after
