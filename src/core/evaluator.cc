#include "core/evaluator.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/check.h"
#include "common/rng.h"
#include "common/timer.h"
#include "graph/occlusion_converter.h"

namespace after {
namespace {

bool StepPositionsFinite(const std::vector<Vec2>& positions) {
  for (const Vec2& p : positions)
    if (!std::isfinite(p.x) || !std::isfinite(p.y)) return false;
  return true;
}

/// Reads a utility entry, zeroing non-finite values (poisoned matrix)
/// and counting the repair.
double GuardedUtility(const Matrix& m, int r, int c,
                      EvalDiagnostics* diagnostics) {
  const double value = m.At(r, c);
  if (!std::isfinite(value)) {
    ++diagnostics->non_finite_utilities_zeroed;
    return 0.0;
  }
  return value;
}

}  // namespace

std::vector<int> DefaultEvalTargets(int num_users, int num_targets,
                                    uint64_t seed) {
  Rng rng(seed);
  return rng.SampleWithoutReplacement(num_users,
                                      std::min(num_users, num_targets));
}

Result<EvalResult> EvaluateRecommenderChecked(Recommender& recommender,
                                              const Dataset& dataset,
                                              const EvalOptions& options) {
  if (dataset.sessions.empty())
    return InvalidDataError("dataset has no sessions to evaluate");
  const int session_index =
      options.session >= 0
          ? options.session
          : static_cast<int>(dataset.sessions.size()) - 1;
  if (session_index >= static_cast<int>(dataset.sessions.size())) {
    std::ostringstream oss;
    oss << "session index " << session_index << " out of range [0, "
        << dataset.sessions.size() << ")";
    return InvalidDataError(oss.str());
  }
  const XrWorld& world = dataset.sessions[session_index];
  const int n = world.num_users();
  const double body_radius = world.body_radius();
  if (n <= 0) return InvalidDataError("session has no users");
  if (dataset.preference.rows() < n || dataset.preference.cols() < n ||
      dataset.social_presence.rows() < n ||
      dataset.social_presence.cols() < n) {
    std::ostringstream oss;
    oss << "utility matrices (" << dataset.preference.rows() << "x"
        << dataset.preference.cols() << ") do not cover the session's " << n
        << " users";
    return InvalidDataError(oss.str());
  }

  EvalResult result;
  result.method = recommender.name();
  result.steps_per_session = world.num_steps();
  EvalDiagnostics& diagnostics = result.diagnostics;

  std::vector<int> targets;
  {
    const std::vector<int> requested =
        options.targets.empty()
            ? DefaultEvalTargets(n, options.num_targets, options.target_seed)
            : options.targets;
    for (int target : requested) {
      if (target < 0 || target >= n) {
        ++diagnostics.skipped_targets;
        continue;
      }
      targets.push_back(target);
    }
  }
  if (targets.empty())
    return InvalidDataError("no valid evaluation targets");

  double total_steps_timed = 0.0;
  double total_time_ms = 0.0;
  double occlusion_numerator = 0.0;
  double occlusion_denominator = 0.0;
  double recommended_total = 0.0;

  for (int target : targets) {
    recommender.BeginSession(n, target);
    if (options.fallback != nullptr)
      options.fallback->BeginSession(n, target);
    std::vector<bool> prev_visible(n, false);
    std::vector<bool> prev_recommended(n, false);
    double target_after = 0.0;
    double target_preference = 0.0;
    double target_presence = 0.0;

    for (int t = 0; t < world.num_steps(); ++t) {
      const auto& positions = world.PositionsAt(t);
      if (!StepPositionsFinite(positions)) {
        // Poisoned trace: the geometry kernels assume finite coordinates,
        // so this step earns nothing and breaks continuity.
        ++diagnostics.poisoned_steps_skipped;
        std::fill(prev_visible.begin(), prev_visible.end(), false);
        std::fill(prev_recommended.begin(), prev_recommended.end(), false);
        continue;
      }
      const OcclusionGraph occlusion =
          BuildOcclusionGraph(positions, target, body_radius);

      StepContext context;
      context.t = t;
      context.target = target;
      context.positions = &positions;
      context.occlusion = &occlusion;
      context.interfaces = &world.interfaces();
      context.preference = &dataset.preference;
      context.social_presence = &dataset.social_presence;
      context.beta = options.beta;
      context.body_radius = body_radius;

      // One Deadline object serves both the latency accounting (elapsed
      // time) and the optional per-step budget check, replacing the old
      // ad-hoc WallTimer arithmetic.
      const Deadline step_deadline =
          options.recommend_deadline_ms > 0.0
              ? Deadline::ExpiresIn(options.recommend_deadline_ms)
              : Deadline::Infinite();
      std::vector<bool> recommended = recommender.Recommend(context);
      total_time_ms += step_deadline.ElapsedMs();
      total_steps_timed += 1.0;
      const bool missed_deadline = step_deadline.Expired();
      if (missed_deadline) ++diagnostics.deadline_missed_steps;

      if (static_cast<int>(recommended.size()) != n) {
        // The primary recommender misbehaved; degrade to the fallback
        // rather than aborting the whole evaluation.
        bool recovered = false;
        if (options.fallback != nullptr) {
          recommended = options.fallback->Recommend(context);
          recovered = static_cast<int>(recommended.size()) == n;
          if (recovered) ++diagnostics.fallback_steps;
        }
        if (!recovered) {
          ++diagnostics.failed_steps_skipped;
          std::fill(prev_visible.begin(), prev_visible.end(), false);
          std::fill(prev_recommended.begin(), prev_recommended.end(), false);
          continue;
        }
      } else if (missed_deadline && options.fallback != nullptr) {
        // Too slow to be worth rendering: serve the cheap spatial
        // fallback for this step, as the online server would.
        std::vector<bool> degraded = options.fallback->Recommend(context);
        if (static_cast<int>(degraded.size()) == n) {
          recommended = std::move(degraded);
          ++diagnostics.fallback_steps;
        }
      }
      recommended[target] = false;

      // Rendered = recommended plus, for MR targets, the physically
      // present co-located MR participants.
      std::vector<bool> rendered = recommended;
      const bool target_is_mr =
          world.interface_of(target) == Interface::kMR;
      if (target_is_mr) {
        for (int w = 0; w < n; ++w)
          if (w != target && world.interface_of(w) == Interface::kMR)
            rendered[w] = true;
      }

      const std::vector<bool> visible =
          ComputeVisibility(positions, target, body_radius, rendered);

      int recommended_count = 0;
      int occluded_count = 0;
      for (int w = 0; w < n; ++w) {
        if (!recommended[w]) continue;
        ++recommended_count;
        const bool sees_now = visible[w];  // 1[v => w at t]
        if (!sees_now) ++occluded_count;
        if (sees_now) {
          const double p =
              GuardedUtility(dataset.preference, target, w, &diagnostics);
          target_preference += p;
          target_after += (1.0 - options.beta) * p;
          const bool seen_before = prev_recommended[w] && prev_visible[w];
          if (seen_before) {
            const double s = GuardedUtility(dataset.social_presence, target,
                                            w, &diagnostics);
            target_presence += s;
            target_after += options.beta * s;
          }
        }
      }
      if (recommended_count > 0) {
        occlusion_numerator +=
            static_cast<double>(occluded_count) / recommended_count;
        occlusion_denominator += 1.0;
      }
      recommended_total += recommended_count;

      prev_visible = visible;
      prev_recommended = recommended;
    }

    result.per_target_after.push_back(target_after);
    result.per_target_preference.push_back(target_preference);
    result.per_target_presence.push_back(target_presence);
    result.evaluated_targets.push_back(target);
    result.after_utility += target_after;
    result.preference_utility += target_preference;
    result.social_presence_utility += target_presence;
  }

  const double num_targets = static_cast<double>(targets.size());
  result.after_utility /= num_targets;
  result.preference_utility /= num_targets;
  result.social_presence_utility /= num_targets;
  result.view_occlusion_rate =
      occlusion_denominator > 0.0
          ? occlusion_numerator / occlusion_denominator
          : 0.0;
  result.running_time_ms =
      total_steps_timed > 0.0 ? total_time_ms / total_steps_timed : 0.0;
  result.avg_recommended_per_step =
      total_steps_timed > 0.0 ? recommended_total / total_steps_timed : 0.0;
  return result;
}

EvalResult EvaluateRecommender(Recommender& recommender,
                               const Dataset& dataset,
                               const EvalOptions& options) {
  Result<EvalResult> result =
      EvaluateRecommenderChecked(recommender, dataset, options);
  if (!result.ok()) {
    std::fprintf(stderr, "EvaluateRecommender(%s): %s\n",
                 recommender.name().c_str(),
                 result.status().ToString().c_str());
    EvalResult empty;
    empty.method = recommender.name();
    return empty;
  }
  return std::move(result).value();
}

}  // namespace after
