#ifndef AFTER_CORE_EVALUATOR_H_
#define AFTER_CORE_EVALUATOR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/recommender.h"
#include "data/dataset.h"

namespace after {

/// Options for replaying a session through a recommender and scoring it
/// with the AFTER utility (Definitions 2 and 3).
struct EvalOptions {
  /// Session index into Dataset::sessions; -1 = last (the held-out test
  /// session under the paper's 80/20 split).
  int session = -1;
  /// Target users to evaluate; empty = deterministic sample below.
  std::vector<int> targets;
  /// Number of targets sampled (seeded) when `targets` is empty.
  int num_targets = 8;
  uint64_t target_seed = 1234;
  /// Preference / social-presence trade-off.
  double beta = 0.5;
  /// Degradation recommender consulted when the primary one misbehaves
  /// (wrong-size output). The harness passes a NearestRecommender here;
  /// nullptr means misbehaving steps are skipped and counted instead.
  /// Not owned; must outlive the evaluation.
  Recommender* fallback = nullptr;
  /// Per-step latency budget for Recommend(), milliseconds; <= 0
  /// disables. A step whose call overruns the budget is counted in
  /// diagnostics.deadline_missed_steps and, when a fallback is present,
  /// re-answered by it (mirroring the serving runtime's degradation to
  /// NearestRecommender on a missed deadline). Gives the offline tables
  /// kTimeout-style coverage for COMURNet-scale methods.
  double recommend_deadline_ms = 0.0;
};

/// Counters describing how much graceful degradation an evaluation
/// needed. A clean run reports all zeros.
struct EvalDiagnostics {
  /// Steps dropped because a position was NaN/Inf (poisoned trace).
  int poisoned_steps_skipped = 0;
  /// Steps answered by the fallback recommender.
  int fallback_steps = 0;
  /// Steps dropped because both primary and fallback misbehaved.
  int failed_steps_skipped = 0;
  /// Requested targets dropped (out of range).
  int skipped_targets = 0;
  /// Utility entries that were non-finite and scored as zero.
  int non_finite_utilities_zeroed = 0;
  /// Steps whose Recommend() call overran EvalOptions::
  /// recommend_deadline_ms (0 when no deadline is configured).
  int deadline_missed_steps = 0;

  bool clean() const {
    return poisoned_steps_skipped == 0 && fallback_steps == 0 &&
           failed_steps_skipped == 0 && skipped_targets == 0 &&
           non_finite_utilities_zeroed == 0 && deadline_missed_steps == 0;
  }
};

/// Aggregated metrics matching the rows of Tables II-VII.
struct EvalResult {
  std::string method;
  /// Mean over targets of the total AFTER utility over the session.
  double after_utility = 0.0;
  /// Total preference utility: sum of 1[v=>w at t] * p(v,w).
  double preference_utility = 0.0;
  /// Total social presence utility: sum of 1[v=>w at t-1,t] * s(v,w).
  double social_presence_utility = 0.0;
  /// Fraction of recommended users that were occluded, averaged per step.
  double view_occlusion_rate = 0.0;
  /// Mean wall-clock per Recommend() call, milliseconds.
  double running_time_ms = 0.0;
  /// Mean number of users recommended per step (display-budget usage).
  double avg_recommended_per_step = 0.0;
  /// Per-target totals (for significance tests and the user study).
  std::vector<double> per_target_after;
  std::vector<double> per_target_preference;
  std::vector<double> per_target_presence;
  /// The targets evaluated, parallel to the per-target vectors.
  std::vector<int> evaluated_targets;
  /// Steps per session (to convert totals into per-step averages).
  int steps_per_session = 0;
  /// How much graceful degradation this evaluation needed.
  EvalDiagnostics diagnostics;
};

/// Replays one session of `dataset` through `recommender` for each target
/// user and accumulates the AFTER metrics. Rendering semantics: for an MR
/// target, co-located MR participants are always physically rendered;
/// visibility is depth-ordered arc blocking (see ComputeVisibility).
/// Utility is earned only by recommended, visible users.
EvalResult EvaluateRecommender(Recommender& recommender,
                               const Dataset& dataset,
                               const EvalOptions& options);

/// Status-returning variant of EvaluateRecommender. Structural problems
/// (no sessions, bad session index, utility matrices that do not cover
/// the population, no valid targets) yield kInvalidData instead of
/// aborting. Recoverable per-step faults — poisoned positions, a
/// recommender emitting wrong-size output, non-finite utility entries —
/// degrade gracefully (fallback recommender, skip-and-count) and are
/// reported in the result's `diagnostics`; all returned metrics are
/// finite.
Result<EvalResult> EvaluateRecommenderChecked(Recommender& recommender,
                                              const Dataset& dataset,
                                              const EvalOptions& options);

/// Deterministic evaluation targets for a dataset size (shared across
/// methods so comparisons are paired).
std::vector<int> DefaultEvalTargets(int num_users, int num_targets,
                                    uint64_t seed);

}  // namespace after

#endif  // AFTER_CORE_EVALUATOR_H_
