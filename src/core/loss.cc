#include "core/loss.h"

namespace after {

Variable PoshgnnStepLoss(const Variable& r_t, const Variable& r_prev,
                         const Variable& p_hat, const Variable& s_hat,
                         const Variable& adjacency, double alpha,
                         double beta) {
  // Preference gain: r_t · p̂_t.
  Variable preference_gain =
      Variable::Sum(Variable::Hadamard(r_t, p_hat));
  // Social presence gain: (r_t ⊗ r_{t-1}) · ŝ_t.
  Variable presence_gain = Variable::Sum(
      Variable::Hadamard(Variable::Hadamard(r_t, r_prev), s_hat));
  // Occlusion penalty: r_tᵀ A_t r_t.
  Variable penalty = Variable::Sum(Variable::Hadamard(
      r_t, Variable::MatMul(adjacency, r_t)));

  const double gamma =
      (1.0 - beta) * p_hat.value().Sum() + beta * s_hat.value().Sum();

  Variable loss = (-(1.0 - beta)) * preference_gain +
                  (-beta) * presence_gain + alpha * penalty;
  return Variable::AddScalar(loss, gamma);
}

double PoshgnnStepLossValue(const Matrix& r_t, const Matrix& r_prev,
                            const Matrix& p_hat, const Matrix& s_hat,
                            const Matrix& adjacency, double alpha,
                            double beta) {
  const double preference_gain = r_t.Hadamard(p_hat).Sum();
  const double presence_gain = r_t.Hadamard(r_prev).Hadamard(s_hat).Sum();
  const double penalty = r_t.Hadamard(adjacency.MatMul(r_t)).Sum();
  const double gamma = (1.0 - beta) * p_hat.Sum() + beta * s_hat.Sum();
  return -(1.0 - beta) * preference_gain - beta * presence_gain +
         alpha * penalty + gamma;
}

}  // namespace after
