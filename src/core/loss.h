#ifndef AFTER_CORE_LOSS_H_
#define AFTER_CORE_LOSS_H_

#include "tensor/autograd.h"

namespace after {

/// POSHGNN loss for a single time step (Definition 7):
///
///   L_t = -(1-β)·r_tᵀ·p̂_t - β·(r_t ⊗ r_{t-1})ᵀ·ŝ_t + α·r_tᵀ·A_t·r_t + γ
///
/// with γ = Σ_w [(1-β)·p̂_t + β·ŝ_t] keeping the loss positive. The total
/// POSHGNN loss is the sum of L_t over t = 0..T; r_{t-1} at t = 0 is the
/// zero vector (nothing was rendered before the conference started).
///
/// r_t, r_prev: (n x 1) recommendation probability columns (tape
/// variables); p_hat, s_hat: constants (n x 1); adjacency: constant
/// (n x n). Returns a 1x1 variable.
Variable PoshgnnStepLoss(const Variable& r_t, const Variable& r_prev,
                         const Variable& p_hat, const Variable& s_hat,
                         const Variable& adjacency, double alpha, double beta);

/// Non-differentiable convenience overload for plain matrices, used by
/// tests and by baselines that only need the loss value.
double PoshgnnStepLossValue(const Matrix& r_t, const Matrix& r_prev,
                            const Matrix& p_hat, const Matrix& s_hat,
                            const Matrix& adjacency, double alpha,
                            double beta);

}  // namespace after

#endif  // AFTER_CORE_LOSS_H_
