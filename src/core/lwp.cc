#include "core/lwp.h"

#include "common/rng.h"

namespace after {

Lwp::Lwp(int in_features, int hidden_dim, Rng& rng)
    : layer1_(in_features, hidden_dim, Activation::kRelu, rng),
      layer2_(hidden_dim, hidden_dim, Activation::kRelu, rng),
      layer3_(hidden_dim, 1, Activation::kSigmoid, rng) {}

Variable Lwp::Forward(const Variable& x, const Variable& adjacency) const {
  Variable h = layer1_.Forward(x, adjacency);
  h = layer2_.Forward(h, adjacency);
  return layer3_.Forward(h, adjacency);
}

std::vector<Variable> Lwp::Parameters() const {
  std::vector<Variable> params = layer1_.Parameters();
  for (const auto& p : layer2_.Parameters()) params.push_back(p);
  for (const auto& p : layer3_.Parameters()) params.push_back(p);
  return params;
}

Variable PreservationGate(const Variable& mask, const Variable& sigma,
                          const Variable& prototype,
                          const Variable& previous) {
  // (1 - σ) ⊗ r̃_t + σ ⊗ r_{t-1}
  Variable one_minus_sigma =
      Variable::AddScalar(-1.0 * sigma, 1.0);
  Variable blended = Variable::Hadamard(one_minus_sigma, prototype) +
                     Variable::Hadamard(sigma, previous);
  return Variable::Hadamard(mask, blended);
}

}  // namespace after
