#ifndef AFTER_CORE_LWP_H_
#define AFTER_CORE_LWP_H_

#include <vector>

#include "nn/gcn_layer.h"
#include "tensor/autograd.h"

namespace after {

class Rng;

/// Learning Which to Preserve (Sec. IV-C): a three-layer GCN that decides,
/// per user, what fraction of the previous recommendation to inherit.
/// Its input concatenates [x̂_t | Δ_t | h_{t-1} | r_{t-1}]; it outputs the
/// preservation vector σ in [0,1]^{|V|} consumed by the preservation gate
///
///   r_t = m_t ⊗ [(1-σ) ⊗ r̃_t + σ ⊗ r_{t-1}].
class Lwp {
 public:
  /// in_features must equal feature_dim + delta_dim + hidden_dim + 1.
  Lwp(int in_features, int hidden_dim, Rng& rng);

  /// Returns σ (n x 1).
  Variable Forward(const Variable& x, const Variable& adjacency) const;

  std::vector<Variable> Parameters() const;

 private:
  GcnLayer layer1_;
  GcnLayer layer2_;
  GcnLayer layer3_;
};

/// Preservation gate combining the prototype recommendation with the
/// previous recommendation under mask m_t.
Variable PreservationGate(const Variable& mask, const Variable& sigma,
                          const Variable& prototype,
                          const Variable& previous);

}  // namespace after

#endif  // AFTER_CORE_LWP_H_
