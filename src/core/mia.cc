#include "core/mia.h"

#include <cmath>

#include "common/check.h"
#include "graph/occlusion_converter.h"

namespace after {

void Mia::Reset() {
  has_previous_ = false;
  previous_adjacency_ = Matrix();
}

std::vector<bool> Mia::PhysicallyBlocked(const StepContext& context) {
  const auto& positions = *context.positions;
  const auto& interfaces = *context.interfaces;
  const int n = static_cast<int>(positions.size());
  std::vector<bool> is_physical(n, false);
  for (int u = 0; u < n; ++u)
    is_physical[u] = interfaces[u] == Interface::kMR;
  return PhysicallyBlockedUsers(positions, context.target,
                                context.body_radius, is_physical);
}

MiaOutput Mia::Process(const StepContext& context) {
  AFTER_CHECK(context.positions != nullptr);
  AFTER_CHECK(context.occlusion != nullptr);
  AFTER_CHECK(context.interfaces != nullptr);
  AFTER_CHECK(context.preference != nullptr);
  AFTER_CHECK(context.social_presence != nullptr);

  const auto& positions = *context.positions;
  const auto& interfaces = *context.interfaces;
  const int n = static_cast<int>(positions.size());
  const int v = context.target;

  MiaOutput out;
  out.adjacency = context.occlusion->ToAdjacencyMatrix();

  // Hybrid-participation mask, plus the user's blocklist (footnote 8).
  const std::vector<bool> blocked = PhysicallyBlocked(context);
  out.mask = Matrix(n, 1, 1.0);
  out.mask.At(v, 0) = 0.0;
  for (int w = 0; w < n; ++w) {
    if (blocked[w]) out.mask.At(w, 0) = 0.0;
    if (context.blocklist != nullptr && (*context.blocklist)[w])
      out.mask.At(w, 0) = 0.0;
  }

  // Normalized utilities and features.
  out.features = Matrix(n, 4);
  out.p_hat = Matrix(n, 1);
  out.s_hat = Matrix(n, 1);
  const double scale =
      context.distance_scale > 0.0 ? context.distance_scale : 1.0;
  for (int w = 0; w < n; ++w) {
    if (w == v) continue;
    const double dist = Distance(positions[v], positions[w]);
    const double denom = 1.0 + (dist / scale) * (dist / scale);
    double p_hat = context.preference->At(v, w) / denom;
    double s_hat = context.social_presence->At(v, w) / denom;
    // Physically occluded users are pruned by zeroing their utilities.
    if (out.mask.At(w, 0) == 0.0) {
      p_hat = 0.0;
      s_hat = 0.0;
    }
    out.p_hat.At(w, 0) = p_hat;
    out.s_hat.At(w, 0) = s_hat;
    out.features.At(w, 0) = p_hat;
    out.features.At(w, 1) = s_hat;
    out.features.At(w, 2) = dist;
    out.features.At(w, 3) = interfaces[w] == Interface::kMR ? 1.0 : 0.0;
  }

  // Structural differences Δ_t = [e0 || e1 || e2].
  out.delta = Matrix(n, 3);
  for (int w = 0; w < n; ++w) out.delta.At(w, 0) = 1.0;  // e0: all-one
  if (has_previous_) {
    // e1 = (A_t - A_{t-1}) · 1  (row sums of the difference).
    for (int r = 0; r < n; ++r) {
      double e1 = 0.0;
      for (int c = 0; c < n; ++c)
        e1 += out.adjacency.At(r, c) - previous_adjacency_.At(r, c);
      out.delta.At(r, 1) = e1;
    }
    // e2 = (A_t² - A_{t-1}²) · 1. Computed as A·(A·1) per matrix to stay
    // O(n²) instead of forming the squares.
    auto two_hop_row_sums = [n](const Matrix& a) {
      std::vector<double> degree(n, 0.0);
      for (int r = 0; r < n; ++r)
        for (int c = 0; c < n; ++c) degree[r] += a.At(r, c);
      std::vector<double> result(n, 0.0);
      for (int r = 0; r < n; ++r)
        for (int c = 0; c < n; ++c) result[r] += a.At(r, c) * degree[c];
      return result;
    };
    const std::vector<double> now = two_hop_row_sums(out.adjacency);
    const std::vector<double> before = two_hop_row_sums(previous_adjacency_);
    for (int r = 0; r < n; ++r) out.delta.At(r, 2) = now[r] - before[r];
  }

  previous_adjacency_ = out.adjacency;
  has_previous_ = true;
  return out;
}

}  // namespace after
