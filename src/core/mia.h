#ifndef AFTER_CORE_MIA_H_
#define AFTER_CORE_MIA_H_

#include <vector>

#include "core/recommender.h"
#include "tensor/matrix.h"

namespace after {

/// Output of the Multi-modal Information Aggregator at one time step.
struct MiaOutput {
  /// Normalized node features x̂_t (N x 4): [p̂, ŝ, relative distance,
  /// interface flag (1 = MR)]. p̂/ŝ are the preference / social presence
  /// utilities divided by (1 + d²) so that POSHGNN focuses on nearby,
  /// reachable candidates rather than raw distance.
  Matrix features;
  /// Structural-difference embedding Δ_t = [e0 || e1 || e2] (N x 3) with
  /// e1 = (A_t - A_{t-1})·1 and e2 = (A_t² - A_{t-1}²)·1.
  Matrix delta;
  /// Hybrid-participation mask m_t (N x 1): 0 for the target user and for
  /// candidates whose view is physically blocked by a nearer co-located
  /// MR participant (only when the target uses MR); 1 otherwise.
  Matrix mask;
  /// Dense adjacency A_t of the occlusion graph.
  Matrix adjacency;
  /// p̂_t and ŝ_t as N x 1 columns (inputs to the POSHGNN loss).
  Matrix p_hat;
  Matrix s_hat;
};

/// MIA (Sec. IV-A): fuses users' social embeddings, trajectories and
/// device information into an attributed dynamic occlusion graph,
/// computes inter-step structural differences, and prunes physically
/// occluded candidates for hybrid participation.
class Mia {
 public:
  Mia() = default;

  /// Clears the remembered previous-step adjacency (call per session).
  void Reset();

  /// Aggregates one step. Maintains A_{t-1} internally for Δ_t.
  MiaOutput Process(const StepContext& context);

  /// Stand-alone HP mask computation (exposed for tests): blocked[w] is
  /// true when a strictly nearer co-located MR participant's arc covers
  /// w's arc center from the target's viewpoint.
  static std::vector<bool> PhysicallyBlocked(const StepContext& context);

 private:
  bool has_previous_ = false;
  Matrix previous_adjacency_;
};

}  // namespace after

#endif  // AFTER_CORE_MIA_H_
