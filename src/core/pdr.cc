#include "core/pdr.h"

#include "common/rng.h"

namespace after {

Pdr::Pdr(int in_features, int hidden_dim, Rng& rng)
    : hidden_dim_(hidden_dim),
      layer1_(in_features, hidden_dim, Activation::kRelu, rng),
      layer2_(hidden_dim, 1, Activation::kSigmoid, rng) {}

Pdr::Output Pdr::Forward(const Variable& x, const Variable& adjacency) const {
  Output out;
  out.hidden = layer1_.Forward(x, adjacency);
  out.recommendation = layer2_.Forward(out.hidden, adjacency);
  return out;
}

std::vector<Variable> Pdr::Parameters() const {
  std::vector<Variable> params = layer1_.Parameters();
  for (const auto& p : layer2_.Parameters()) params.push_back(p);
  return params;
}

}  // namespace after
