#ifndef AFTER_CORE_PDR_H_
#define AFTER_CORE_PDR_H_

#include <vector>

#include "nn/gcn_layer.h"
#include "tensor/autograd.h"

namespace after {

class Rng;

/// Partial view De-occlusion Recommender (Sec. IV-B): a light two-layer
/// GCN that maps the aggregated scene features x̂_t and the occlusion
/// graph A_t to (i) a prototype recommendation r̃_t in [0,1]^{|V|} and
/// (ii) a hidden state h_t in R^{|V| x k} carrying recommendation
/// uncertainty to the next time step.
class Pdr {
 public:
  struct Output {
    /// Hidden state h_t (n x hidden_dim).
    Variable hidden;
    /// Prototype recommendation r̃_t (n x 1), sigmoid-activated.
    Variable recommendation;
  };

  Pdr(int in_features, int hidden_dim, Rng& rng);

  /// x: (n x in_features), adjacency: constant (n x n).
  Output Forward(const Variable& x, const Variable& adjacency) const;

  std::vector<Variable> Parameters() const;

  int hidden_dim() const { return hidden_dim_; }

 private:
  int hidden_dim_;
  GcnLayer layer1_;  // h_t^1 = ReLU(...) = h_t
  GcnLayer layer2_;  // h_t^2 = sigmoid(...) = r̃_t
};

}  // namespace after

#endif  // AFTER_CORE_PDR_H_
