#include "core/poshgnn.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/check.h"
#include "infer/engine.h"
#include "core/loss.h"
#include "core/session.h"
#include "nn/adam.h"
#include "nn/serialize.h"
#include "data/dataset.h"
#include "graph/occlusion_converter.h"

namespace after {
namespace {

constexpr int kFeatureDim = 4;  // [p̂, ŝ, distance, interface]
constexpr int kDeltaDim = 3;    // [e0, e1, e2]

Rng MakeInitRng(uint64_t seed) { return Rng(seed * 0xA24BAED4963EE407ULL); }

/// Decodes the display set from one step's probabilities. Shared by the
/// mutable model (previous = its recurrent state before the step) and
/// the frozen inference path (previous = zeros), which is what keeps
/// the two bit-exact on the same inputs.
std::vector<bool> DecodeSelection(const PoshgnnConfig& config,
                                  const MiaOutput& mia,
                                  const Matrix& probabilities,
                                  const Matrix& previous, int target) {
  const int n = probabilities.rows();
  // Following the objective-guided decoding of the neural MIS literature
  // the framework builds on (Ahn et al. 2020), the budgeted set is the
  // top-k by r_w * (expected marginal AFTER gain); the threshold gates
  // which users are considered recommended at all.
  std::vector<int> candidates;
  for (int w = 0; w < n; ++w) {
    if (w == target) continue;
    if (probabilities.At(w, 0) > config.threshold) candidates.push_back(w);
  }
  if (config.max_recommendations > 0 &&
      static_cast<int>(candidates.size()) > config.max_recommendations) {
    std::vector<double> decode_score(n, 0.0);
    for (int w : candidates) {
      // The continuity term exists only when the model actually carries
      // its previous recommendation (LWP); the ablated variants are
      // memoryless and decode on preference alone.
      double gain = (1.0 - config.beta) * mia.p_hat.At(w, 0);
      if (config.use_lwp)
        gain += config.beta * previous.At(w, 0) * mia.s_hat.At(w, 0);
      decode_score[w] = probabilities.At(w, 0) * gain;
    }
    std::sort(candidates.begin(), candidates.end(), [&](int a, int b) {
      // Index tie-break keeps the budgeted set deterministic under
      // std::sort (unstable) and aligned with the f32 engine's decoder
      // on exactly-tied scores.
      if (decode_score[a] != decode_score[b])
        return decode_score[a] > decode_score[b];
      return a < b;
    });
    candidates.resize(config.max_recommendations);
  }
  std::vector<bool> selected(n, false);
  for (int w : candidates) selected[w] = true;
  return selected;
}

std::string FormatDouble(double value) {
  std::ostringstream oss;
  oss.precision(17);
  oss << value;
  return oss.str();
}

/// True when two batch entries describe the same inference job — same
/// scene snapshot (by pointer; the in-tick batcher hands every request
/// of one room tick the same snapshot), same target, same geometry
/// knobs. Mirrors infer::SameJob so both engines dedupe identically.
bool SameBatchJob(const StepContext& a, const StepContext& b) {
  return a.t == b.t && a.target == b.target && a.positions == b.positions &&
         a.occlusion == b.occlusion && a.interfaces == b.interfaces &&
         a.preference == b.preference &&
         a.social_presence == b.social_presence &&
         a.body_radius == b.body_radius &&
         a.distance_scale == b.distance_scale && a.blocklist == b.blocklist;
}

}  // namespace

const char* InferEngineName(InferEngine engine) {
  switch (engine) {
    case InferEngine::kFusedF32:
      return "f32";
    case InferEngine::kReferenceF64:
      return "f64";
  }
  return "unknown";
}

bool ParseInferEngine(const std::string& name, InferEngine* out) {
  if (name == "f32") {
    *out = InferEngine::kFusedF32;
    return true;
  }
  if (name == "f64") {
    *out = InferEngine::kReferenceF64;
    return true;
  }
  return false;
}

InferEngine DefaultInferEngine() {
  InferEngine engine = InferEngine::kFusedF32;
  const char* env = std::getenv("AFTER_INFER_ENGINE");
  if (env != nullptr) ParseInferEngine(env, &engine);
  return engine;
}

Poshgnn::Poshgnn(const PoshgnnConfig& config)
    : config_(config),
      pdr_([&] {
        Rng rng = MakeInitRng(config.seed);
        return Pdr(kFeatureDim, config.hidden_dim, rng);
      }()),
      lwp_([&] {
        Rng rng = MakeInitRng(config.seed + 1);
        return Lwp(kFeatureDim + kDeltaDim + config.hidden_dim + 1,
                   config.hidden_dim, rng);
      }()) {}

std::string Poshgnn::name() const {
  if (config_.use_mia && config_.use_lwp) return "POSHGNN";
  if (config_.use_mia) return "PDR w/ MIA";
  return "Only PDR";
}

void Poshgnn::BeginSession(int num_users, int target) {
  (void)target;
  mia_.Reset();
  state_recommendation_ = Matrix(num_users, 1);
  state_hidden_ = Matrix(num_users, config_.hidden_dim);
}

MiaOutput Poshgnn::AggregateRaw(const StepContext& context) const {
  const auto& positions = *context.positions;
  const auto& interfaces = *context.interfaces;
  const int n = static_cast<int>(positions.size());
  const int v = context.target;

  MiaOutput out;
  out.adjacency = context.occlusion->ToAdjacencyMatrix();
  out.mask = Matrix(n, 1, 1.0);
  out.mask.At(v, 0) = 0.0;
  out.features = Matrix(n, kFeatureDim);
  out.p_hat = Matrix(n, 1);
  out.s_hat = Matrix(n, 1);
  for (int w = 0; w < n; ++w) {
    if (w == v) continue;
    const double p = context.preference->At(v, w);
    const double s = context.social_presence->At(v, w);
    out.p_hat.At(w, 0) = p;
    out.s_hat.At(w, 0) = s;
    out.features.At(w, 0) = p;
    out.features.At(w, 1) = s;
    out.features.At(w, 2) = Distance(positions[v], positions[w]);
    out.features.At(w, 3) = interfaces[w] == Interface::kMR ? 1.0 : 0.0;
  }
  out.delta = Matrix(n, kDeltaDim);
  for (int w = 0; w < n; ++w) out.delta.At(w, 0) = 1.0;
  return out;
}

MiaOutput Poshgnn::Aggregate(const StepContext& context) {
  return config_.use_mia ? mia_.Process(context) : AggregateRaw(context);
}

MiaOutput Poshgnn::AggregateFresh(const StepContext& context) const {
  if (!config_.use_mia) return AggregateRaw(context);
  // A local aggregator reproduces the session-start step (no remembered
  // adjacency) without touching mia_ — const and race-free.
  Mia fresh;
  return fresh.Process(context);
}

Poshgnn::StepResult Poshgnn::StepOnTape(const MiaOutput& mia,
                                        const Variable& r_prev,
                                        const Variable& h_prev) const {
  Variable features = Variable::Constant(mia.features);
  Variable adjacency = Variable::Constant(mia.adjacency);
  Variable mask = Variable::Constant(mia.mask);

  Pdr::Output pdr_out = pdr_.Forward(features, adjacency);

  StepResult result;
  result.hidden = pdr_out.hidden;
  if (config_.use_lwp) {
    Variable lwp_input = Variable::ConcatCols(
        Variable::ConcatCols(features, Variable::Constant(mia.delta)),
        Variable::ConcatCols(h_prev, r_prev));
    Variable sigma = lwp_.Forward(lwp_input, adjacency);
    result.recommendation =
        PreservationGate(mask, sigma, pdr_out.recommendation, r_prev);
  } else {
    result.recommendation =
        Variable::Hadamard(mask, pdr_out.recommendation);
  }
  return result;
}

std::vector<bool> Poshgnn::Recommend(const StepContext& context) {
  const int n = static_cast<int>(context.positions->size());
  if (state_recommendation_.rows() != n)
    BeginSession(n, context.target);

  const MiaOutput mia = Aggregate(context);
  // Detached step: the recurrent state enters as constants so the tape of
  // one step is dropped immediately after thresholding.
  const StepResult step =
      StepOnTape(mia, Variable::Constant(state_recommendation_),
                 Variable::Constant(state_hidden_));

  const Matrix previous = state_recommendation_;
  state_recommendation_ = step.recommendation.value();
  state_hidden_ = step.hidden.value();

  return DecodeSelection(config_, mia, state_recommendation_, previous,
                         context.target);
}

std::vector<Variable> Poshgnn::Parameters() const {
  std::vector<Variable> params = pdr_.Parameters();
  if (config_.use_lwp) {
    for (const auto& p : lwp_.Parameters()) params.push_back(p);
  }
  return params;
}

bool Poshgnn::SaveWeights(const std::string& path) const {
  return SaveParameters(path, Parameters());
}

bool Poshgnn::LoadWeights(const std::string& path) {
  std::vector<Variable> params = Parameters();
  return LoadParameters(path, params);
}

ModelArtifact Poshgnn::ToArtifact() const {
  ModelArtifact artifact;
  artifact.kind = "POSHGNN";
  artifact.metadata["hidden_dim"] = std::to_string(config_.hidden_dim);
  artifact.metadata["beta"] = FormatDouble(config_.beta);
  artifact.metadata["alpha"] = FormatDouble(config_.alpha);
  artifact.metadata["use_mia"] = config_.use_mia ? "1" : "0";
  artifact.metadata["use_lwp"] = config_.use_lwp ? "1" : "0";
  artifact.metadata["threshold"] = FormatDouble(config_.threshold);
  artifact.metadata["max_recommendations"] =
      std::to_string(config_.max_recommendations);
  artifact.metadata["init_seed"] = std::to_string(config_.seed);
  artifact.parameters = SnapshotParameters(Parameters());
  return artifact;
}

Status Poshgnn::LoadArtifact(const ModelArtifact& artifact) {
  if (artifact.kind != "POSHGNN")
    return InvalidDataError("artifact kind '" + artifact.kind +
                            "' is not POSHGNN");
  if (artifact.FieldInt("hidden_dim", -1) != config_.hidden_dim ||
      artifact.FieldInt("use_mia", -1) != (config_.use_mia ? 1 : 0) ||
      artifact.FieldInt("use_lwp", -1) != (config_.use_lwp ? 1 : 0))
    return InvalidDataError(
        "artifact architecture header (hidden_dim/use_mia/use_lwp) does not "
        "match this model's config");
  std::vector<Variable> params = Parameters();
  return artifact.ApplyTo(params);
}

Result<PoshgnnConfig> PoshgnnConfigFromArtifact(
    const ModelArtifact& artifact) {
  if (artifact.kind != "POSHGNN")
    return InvalidDataError("artifact kind '" + artifact.kind +
                            "' is not POSHGNN");
  for (const char* required : {"hidden_dim", "use_mia", "use_lwp"}) {
    if (artifact.Field(required).empty())
      return InvalidDataError(std::string("POSHGNN artifact is missing the "
                                          "architecture field '") +
                              required + "'");
  }
  PoshgnnConfig config;
  config.hidden_dim = artifact.FieldInt("hidden_dim", config.hidden_dim);
  if (config.hidden_dim <= 0)
    return InvalidDataError("POSHGNN artifact: hidden_dim must be positive");
  config.use_mia = artifact.FieldInt("use_mia", 1) != 0;
  config.use_lwp = artifact.FieldInt("use_lwp", 1) != 0;
  config.beta = artifact.FieldDouble("beta", config.beta);
  config.alpha = artifact.FieldDouble("alpha", config.alpha);
  config.threshold = artifact.FieldDouble("threshold", config.threshold);
  config.max_recommendations =
      artifact.FieldInt("max_recommendations", config.max_recommendations);
  config.seed = static_cast<uint64_t>(
      artifact.FieldInt("init_seed", static_cast<int>(config.seed)));
  return config;
}

FrozenPoshgnn::FrozenPoshgnn(const Poshgnn& source, InferEngine engine)
    : model_(source.config()), engine_(engine) {
  // Deep copy: a fresh architecture plus a bit-exact value restore, so
  // the frozen instance shares no autograd nodes with the source and a
  // later Train() on the source cannot perturb serving.
  std::vector<Variable> params = model_.Parameters();
  RestoreParameters(SnapshotParameters(source.Parameters()), params);

  if (engine_ == InferEngine::kFusedF32) {
    // One-time weight conversion: the engine narrows every parameter to
    // contiguous row-major f32 and pre-folds the LWP session-start
    // structure (docs/inference.md).
    const PoshgnnConfig& config = model_.config();
    infer::EngineConfig engine_config;
    engine_config.hidden_dim = config.hidden_dim;
    engine_config.beta = config.beta;
    engine_config.threshold = config.threshold;
    engine_config.max_recommendations = config.max_recommendations;
    engine_config.use_mia = config.use_mia;
    engine_config.use_lwp = config.use_lwp;
    std::vector<Matrix> values;
    for (const Variable& parameter : model_.Parameters())
      values.push_back(parameter.value());
    fused_ =
        std::make_unique<infer::PoshgnnInferEngine>(engine_config, values);
  }
}

FrozenPoshgnn::~FrozenPoshgnn() = default;

Result<std::unique_ptr<FrozenPoshgnn>> FrozenPoshgnn::FromArtifact(
    const ModelArtifact& artifact, InferEngine engine) {
  Result<PoshgnnConfig> config = PoshgnnConfigFromArtifact(artifact);
  if (!config.ok()) return config.status();
  Poshgnn model(config.value());
  AFTER_RETURN_IF_ERROR(model.LoadArtifact(artifact));
  return std::make_unique<FrozenPoshgnn>(model, engine);
}

Result<std::unique_ptr<FrozenPoshgnn>> FrozenPoshgnn::FromArtifactFile(
    const std::string& path, InferEngine engine) {
  Result<ModelArtifact> artifact = ModelArtifact::Load(path);
  if (!artifact.ok()) return artifact.status();
  return FromArtifact(artifact.value(), engine);
}

std::string FrozenPoshgnn::name() const {
  return model_.name() + " (frozen)";
}

void FrozenPoshgnn::BeginSession(int num_users, int target) {
  (void)num_users;
  (void)target;  // Stateless: every step is a session-start step.
}

std::vector<bool> FrozenPoshgnn::Recommend(const StepContext& context) {
  if (fused_ != nullptr) return fused_->Recommend(context);
  const int n = static_cast<int>(context.positions->size());
  const MiaOutput mia = model_.AggregateFresh(context);
  const Matrix zero_r(n, 1);
  const Poshgnn::StepResult step =
      model_.StepOnTape(mia, Variable::Constant(zero_r),
                        Variable::Constant(Matrix(n, config().hidden_dim)));
  return DecodeSelection(config(), mia, step.recommendation.value(), zero_r,
                         context.target);
}

std::vector<std::vector<bool>> FrozenPoshgnn::RecommendBatch(
    const std::vector<StepContext>& contexts) {
  if (fused_ != nullptr) return fused_->RecommendBatch(contexts);
  // One coalesced job: the zero session-start state is materialized once
  // per population size and shared (as autograd constants) by every
  // target's pass, and duplicate (scene, target) entries reuse the first
  // forward instead of recomputing it. The graph convolutions stay
  // per-target because each target has its own occlusion adjacency — a
  // dense block-diagonal super-pass would square the flop count (header
  // comment).
  std::vector<std::vector<bool>> out(contexts.size());
  std::vector<int> distinct;
  Variable zero_r, zero_h;
  Matrix zero_previous;
  for (std::size_t i = 0; i < contexts.size(); ++i) {
    const StepContext& context = contexts[i];
    int duplicate_of = -1;
    for (int j : distinct) {
      if (SameBatchJob(contexts[j], context)) {
        duplicate_of = j;
        break;
      }
    }
    if (duplicate_of >= 0) {
      out[i] = out[duplicate_of];
      continue;
    }
    const int n = static_cast<int>(context.positions->size());
    if (!zero_r.defined() || zero_r.rows() != n) {
      zero_previous = Matrix(n, 1);
      zero_r = Variable::Constant(zero_previous);
      zero_h = Variable::Constant(Matrix(n, config().hidden_dim));
    }
    const MiaOutput mia = model_.AggregateFresh(context);
    const Poshgnn::StepResult step = model_.StepOnTape(mia, zero_r, zero_h);
    out[i] = DecodeSelection(config(), mia, step.recommendation.value(),
                             zero_previous, context.target);
    distinct.push_back(static_cast<int>(i));
  }
  return out;
}

void Poshgnn::Train(const Dataset& dataset, const TrainOptions& options) {
  Rng rng(options.seed);
  const int n = dataset.num_users();
  last_train_status_ = OkStatus();
  train_steps_skipped_ = 0;
  train_rollbacks_ = 0;
  if (dataset.sessions.empty() || n <= 0) {
    last_train_status_ =
        InvalidDataError("Poshgnn::Train: dataset has no sessions or users");
    std::fprintf(stderr, "[%s] %s\n", name().c_str(),
                 last_train_status_.ToString().c_str());
    return;
  }

  std::vector<int> train_sessions = options.train_sessions;
  if (train_sessions.empty()) {
    const int limit = std::max(1, static_cast<int>(dataset.sessions.size()) - 1);
    for (int s = 0; s < limit; ++s) train_sessions.push_back(s);
  }

  Adam::Options adam_options;
  adam_options.learning_rate = options.learning_rate;
  Adam optimizer(Parameters(), adam_options);
  TrainingGuard guard(options.robustness, &optimizer);

  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    double epoch_loss = 0.0;
    int rollouts = 0;
    const std::vector<int> targets = rng.SampleWithoutReplacement(
        n, std::min(n, options.targets_per_epoch));
    for (int session_index : train_sessions) {
      if (session_index < 0 ||
          session_index >= static_cast<int>(dataset.sessions.size()))
        continue;
      const XrWorld& world = dataset.sessions[session_index];
      if (world.num_steps() <= 0) continue;
      for (int target : targets) {
        mia_.Reset();
        Variable r_prev = Variable::Constant(Matrix(n, 1));
        Variable h_prev = Variable::Constant(Matrix(n, config_.hidden_dim));
        Variable total_loss;
        ForEachSessionStep(
            dataset, session_index, target, config_.beta,
            [&](const StepContext& context) {
              const MiaOutput mia = Aggregate(context);
              const StepResult step = StepOnTape(mia, r_prev, h_prev);
              Variable loss = PoshgnnStepLoss(
                  step.recommendation, r_prev,
                  Variable::Constant(mia.p_hat),
                  Variable::Constant(mia.s_hat),
                  Variable::Constant(mia.adjacency), config_.alpha,
                  config_.beta);
              total_loss = total_loss.defined() ? total_loss + loss : loss;
              r_prev = step.recommendation;
              h_prev = step.hidden;
            });
        // Every step of the rollout may have been skipped as poisoned.
        if (!total_loss.defined()) continue;
        total_loss =
            (1.0 / static_cast<double>(world.num_steps())) * total_loss;
        optimizer.ZeroGrad();
        total_loss.Backward();
        const TrainingGuard::Outcome outcome =
            guard.GuardedStep(total_loss.value().At(0, 0));
        if (outcome == TrainingGuard::Outcome::kFailed) {
          last_train_status_ = guard.status();
          train_steps_skipped_ = guard.steps_skipped();
          train_rollbacks_ = guard.rollbacks();
          std::fprintf(stderr, "[%s] training halted: %s\n", name().c_str(),
                       last_train_status_.ToString().c_str());
          return;
        }
        if (outcome == TrainingGuard::Outcome::kStepped) {
          epoch_loss += total_loss.value().At(0, 0);
          ++rollouts;
        }
      }
    }
    last_training_loss_ = epoch_loss / std::max(1, rollouts);
    if (options.verbose) {
      std::printf("[%s] epoch %d/%d loss %.4f\n", name().c_str(), epoch + 1,
                  options.epochs, last_training_loss_);
    }
  }
  train_steps_skipped_ = guard.steps_skipped();
  train_rollbacks_ = guard.rollbacks();
}

}  // namespace after
