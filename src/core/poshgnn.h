#ifndef AFTER_CORE_POSHGNN_H_
#define AFTER_CORE_POSHGNN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/lwp.h"
#include "core/mia.h"
#include "core/pdr.h"
#include "core/recommender.h"
#include "nn/artifact.h"

namespace after {

namespace infer {
class PoshgnnInferEngine;
}  // namespace infer

/// Which forward implementation a FrozenPoshgnn serves with.
/// Training, artifact I/O and the mutable model are always double —
/// the engine choice only affects frozen inference.
enum class InferEngine {
  /// Fused float32 kernels (src/infer/): weights converted once at
  /// load, runtime AVX2/FMA dispatch, arena-backed zero-allocation
  /// steady state. Matches the reference path within the documented
  /// tolerance (docs/inference.md). The default.
  kFusedF32,
  /// The original double-precision autograd path — bit-exact against
  /// the mutable model; escape hatch (--engine=f64) for numerical
  /// triage and A/B benching.
  kReferenceF64,
};

/// "f32" / "f64" — used by bench JSON and flag parsing.
const char* InferEngineName(InferEngine engine);

/// Parses "f32"/"f64" (the InferEngineName vocabulary). Returns false
/// and leaves *out untouched on anything else.
bool ParseInferEngine(const std::string& name, InferEngine* out);

/// kFusedF32 unless the AFTER_INFER_ENGINE environment variable names a
/// valid engine ("f32"/"f64"). Read per call, so tests and CI lanes can
/// re-point a whole binary without plumbing flags.
InferEngine DefaultInferEngine();

/// Configuration of the POSHGNN framework (Sec. IV). The `use_*` flags
/// realize the Table V ablations: Full = both true; "PDR w/ MIA" =
/// use_lwp false; "Only PDR" = both false (raw features, no Δ, no mask
/// beyond the target, no distance normalization).
struct PoshgnnConfig {
  int hidden_dim = 8;
  /// Trade-off between preference and social presence (Definition 2).
  double beta = 0.5;
  /// Occlusion penalty weight in the POSHGNN loss (Definition 7).
  double alpha = 0.01;
  bool use_mia = true;
  bool use_lwp = true;
  /// A user is recommended when its final probability exceeds this.
  double threshold = 0.5;
  /// Display budget: at most this many users are rendered per step (the
  /// highest-probability ones above the threshold). Rendering cost and
  /// cognitive load bound the set size in a real XR client; every method
  /// in the benches shares the same budget for fairness.
  int max_recommendations = 10;
  uint64_t seed = 42;
};

/// POSHGNN: the paper's deep temporal graph-learning recommender.
/// MIA fuses multi-modal inputs into an attributed occlusion graph, PDR
/// produces a prototype de-occlusion recommendation, and LWP gates how
/// much of the previous recommendation to preserve.
class Poshgnn : public TrainableRecommender {
 public:
  /// Result of one recurrent step on the autograd tape.
  struct StepResult {
    Variable recommendation;  // r_t (n x 1)
    Variable hidden;          // h_t (n x hidden_dim)
  };

  explicit Poshgnn(const PoshgnnConfig& config);

  std::string name() const override;
  void BeginSession(int num_users, int target) override;
  /// NOT thread-safe (thread_safe() stays false): Recommend advances the
  /// detached recurrent state and MIA's previous-step adjacency, both
  /// keyed to one target's session; the serving runtime therefore
  /// instantiates POSHGNN per (room, target) stream.
  std::vector<bool> Recommend(const StepContext& context) override;
  void Train(const Dataset& dataset, const TrainOptions& options) override;

  /// One differentiable step given MIA output and previous-state
  /// variables; used by the trainer (BPTT) and by Recommend (detached).
  StepResult StepOnTape(const MiaOutput& mia, const Variable& r_prev,
                        const Variable& h_prev) const;

  /// Builds MIA output for a step, honoring the use_mia ablation flag.
  MiaOutput Aggregate(const StepContext& context);

  /// Session-start aggregation that touches no member state: a fresh MIA
  /// (no remembered previous adjacency, so Δ_t = [1 | 0 | 0]) or the raw
  /// ablation path. This is the inference substrate of FrozenPoshgnn —
  /// const and safe to call concurrently.
  MiaOutput AggregateFresh(const StepContext& context) const;

  std::vector<Variable> Parameters() const;

  /// Persists / restores trained weights (see nn/serialize.h). Loading
  /// requires a model constructed with the same architecture flags.
  bool SaveWeights(const std::string& path) const;
  bool LoadWeights(const std::string& path);

  /// Wraps the current weights and architecture into the versioned,
  /// checksummed artifact container (kind "POSHGNN"; header fields
  /// documented in docs/model_artifacts.md). Callers may add
  /// provenance fields (dataset fingerprint, training config) to the
  /// returned artifact before saving it.
  ModelArtifact ToArtifact() const;

  /// Loads weights from an artifact, validating kind and architecture
  /// header fields against this model's config before touching any
  /// parameter. kInvalidData on any mismatch; parameters are untouched
  /// on failure.
  Status LoadArtifact(const ModelArtifact& artifact);

  const PoshgnnConfig& config() const { return config_; }

  /// Average training loss of the last Train() call's final epoch.
  double last_training_loss() const { return last_training_loss_; }

  /// Outcome of the last Train() call: OK on success (possibly with
  /// skipped/rolled-back steps under the robustness policy), kInvalidData
  /// for an untrainable dataset, kNumericalError when the guard gave up.
  /// Parameters are finite in every case.
  const Status& last_train_status() const { return last_train_status_; }

  /// Guard counters from the last Train() call (0 on a clean run).
  int train_steps_skipped() const { return train_steps_skipped_; }
  int train_rollbacks() const { return train_rollbacks_; }

 private:
  /// Raw (un-normalized, un-masked) aggregation for the "Only PDR"
  /// ablation.
  MiaOutput AggregateRaw(const StepContext& context) const;

  PoshgnnConfig config_;
  Mia mia_;
  Pdr pdr_;
  Lwp lwp_;
  double last_training_loss_ = 0.0;
  Status last_train_status_;
  int train_steps_skipped_ = 0;
  int train_rollbacks_ = 0;

  // Detached recurrent state for inference.
  Matrix state_recommendation_;
  Matrix state_hidden_;
};

/// Reconstructs the architecture a POSHGNN artifact was produced with
/// (hidden_dim, ablation flags, decode knobs) from its header fields.
/// kInvalidData when the artifact is not kind "POSHGNN" or the
/// architecture fields are missing/malformed.
Result<PoshgnnConfig> PoshgnnConfigFromArtifact(const ModelArtifact& artifact);

/// Frozen inference-only POSHGNN: immutable trained weights, no
/// recurrent state, `thread_safe() == true` — one instance is shared
/// lock-free by every worker of the serving runtime (serve/server.h).
///
/// Semantics: every Recommend() is a *session-start* step — MIA carries
/// no previous adjacency and the preservation gate sees r_{t-1} = 0,
/// h_{t-1} = 0 — exactly what the mutable model computes on the first
/// step after BeginSession(). That makes the frozen f64 path bit-exact
/// against the mutable model on the same inputs (tested in
/// tests/core/poshgnn_test.cc) at the cost of the temporal-continuity
/// term, a deliberate serving trade-off documented in docs/serving.md:
/// cross-tick smoothing is traded for lock-free sharing and in-tick
/// batching.
///
/// By default inference runs on the fused float32 engine (src/infer/,
/// InferEngine::kFusedF32): same decisions within the documented
/// tolerance, several times faster. InferEngine::kReferenceF64 keeps
/// the bit-exact double path.
class FrozenPoshgnn : public Recommender {
 public:
  /// Deep-copies config and current weights from a (typically trained)
  /// mutable model; the frozen instance shares no autograd nodes with
  /// the source.
  explicit FrozenPoshgnn(const Poshgnn& source,
                         InferEngine engine = DefaultInferEngine());
  ~FrozenPoshgnn() override;

  /// Builds the architecture described by the artifact header and loads
  /// the checksummed weights into it. The engine choice is a serving
  /// knob, not part of the artifact: the same bytes power both.
  static Result<std::unique_ptr<FrozenPoshgnn>> FromArtifact(
      const ModelArtifact& artifact,
      InferEngine engine = DefaultInferEngine());

  /// Convenience: Load + FromArtifact.
  static Result<std::unique_ptr<FrozenPoshgnn>> FromArtifactFile(
      const std::string& path, InferEngine engine = DefaultInferEngine());

  std::string name() const override;
  /// Stateless by construction: nothing to reset.
  void BeginSession(int num_users, int target) override;
  bool thread_safe() const override { return true; }
  std::vector<bool> Recommend(const StepContext& context) override;

  /// One coalesced inference job for all targets of one scene: shared
  /// zero-state across targets, one forward per *distinct* job —
  /// duplicate (scene, target) contexts in the batch reuse the first
  /// answer instead of recomputing the forward. The graph convolutions
  /// stay per-target because the occlusion adjacency is target-specific
  /// (a dense block-diagonal super-pass would cost O(T²·n²) against the
  /// per-target sum's O(T·n²)); see docs/serving.md.
  std::vector<std::vector<bool>> RecommendBatch(
      const std::vector<StepContext>& contexts) override;

  const PoshgnnConfig& config() const { return model_.config(); }

  /// The engine this instance serves with (fixed at construction).
  InferEngine engine() const { return engine_; }

 private:
  /// Const after construction; only const members (AggregateFresh,
  /// StepOnTape) are ever invoked on it.
  Poshgnn model_;
  InferEngine engine_;
  /// Present iff engine_ == kFusedF32: the weights converted to f32 at
  /// construction plus the per-request workspace pool.
  std::unique_ptr<infer::PoshgnnInferEngine> fused_;
};

}  // namespace after

#endif  // AFTER_CORE_POSHGNN_H_
