#ifndef AFTER_CORE_POSHGNN_H_
#define AFTER_CORE_POSHGNN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/lwp.h"
#include "core/mia.h"
#include "core/pdr.h"
#include "core/recommender.h"

namespace after {

/// Configuration of the POSHGNN framework (Sec. IV). The `use_*` flags
/// realize the Table V ablations: Full = both true; "PDR w/ MIA" =
/// use_lwp false; "Only PDR" = both false (raw features, no Δ, no mask
/// beyond the target, no distance normalization).
struct PoshgnnConfig {
  int hidden_dim = 8;
  /// Trade-off between preference and social presence (Definition 2).
  double beta = 0.5;
  /// Occlusion penalty weight in the POSHGNN loss (Definition 7).
  double alpha = 0.01;
  bool use_mia = true;
  bool use_lwp = true;
  /// A user is recommended when its final probability exceeds this.
  double threshold = 0.5;
  /// Display budget: at most this many users are rendered per step (the
  /// highest-probability ones above the threshold). Rendering cost and
  /// cognitive load bound the set size in a real XR client; every method
  /// in the benches shares the same budget for fairness.
  int max_recommendations = 10;
  uint64_t seed = 42;
};

/// POSHGNN: the paper's deep temporal graph-learning recommender.
/// MIA fuses multi-modal inputs into an attributed occlusion graph, PDR
/// produces a prototype de-occlusion recommendation, and LWP gates how
/// much of the previous recommendation to preserve.
class Poshgnn : public TrainableRecommender {
 public:
  /// Result of one recurrent step on the autograd tape.
  struct StepResult {
    Variable recommendation;  // r_t (n x 1)
    Variable hidden;          // h_t (n x hidden_dim)
  };

  explicit Poshgnn(const PoshgnnConfig& config);

  std::string name() const override;
  void BeginSession(int num_users, int target) override;
  /// NOT thread-safe (thread_safe() stays false): Recommend advances the
  /// detached recurrent state and MIA's previous-step adjacency, both
  /// keyed to one target's session; the serving runtime therefore
  /// instantiates POSHGNN per (room, target) stream.
  std::vector<bool> Recommend(const StepContext& context) override;
  void Train(const Dataset& dataset, const TrainOptions& options) override;

  /// One differentiable step given MIA output and previous-state
  /// variables; used by the trainer (BPTT) and by Recommend (detached).
  StepResult StepOnTape(const MiaOutput& mia, const Variable& r_prev,
                        const Variable& h_prev) const;

  /// Builds MIA output for a step, honoring the use_mia ablation flag.
  MiaOutput Aggregate(const StepContext& context);

  std::vector<Variable> Parameters() const;

  /// Persists / restores trained weights (see nn/serialize.h). Loading
  /// requires a model constructed with the same architecture flags.
  bool SaveWeights(const std::string& path) const;
  bool LoadWeights(const std::string& path);

  const PoshgnnConfig& config() const { return config_; }

  /// Average training loss of the last Train() call's final epoch.
  double last_training_loss() const { return last_training_loss_; }

  /// Outcome of the last Train() call: OK on success (possibly with
  /// skipped/rolled-back steps under the robustness policy), kInvalidData
  /// for an untrainable dataset, kNumericalError when the guard gave up.
  /// Parameters are finite in every case.
  const Status& last_train_status() const { return last_train_status_; }

  /// Guard counters from the last Train() call (0 on a clean run).
  int train_steps_skipped() const { return train_steps_skipped_; }
  int train_rollbacks() const { return train_rollbacks_; }

 private:
  /// Raw (un-normalized, un-masked) aggregation for the "Only PDR"
  /// ablation.
  MiaOutput AggregateRaw(const StepContext& context) const;

  PoshgnnConfig config_;
  Mia mia_;
  Pdr pdr_;
  Lwp lwp_;
  double last_training_loss_ = 0.0;
  Status last_train_status_;
  int train_steps_skipped_ = 0;
  int train_rollbacks_ = 0;

  // Detached recurrent state for inference.
  Matrix state_recommendation_;
  Matrix state_hidden_;
};

}  // namespace after

#endif  // AFTER_CORE_POSHGNN_H_
