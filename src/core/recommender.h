#ifndef AFTER_CORE_RECOMMENDER_H_
#define AFTER_CORE_RECOMMENDER_H_

#include <string>
#include <vector>

#include "common/geometry.h"
#include "graph/occlusion_graph.h"
#include "nn/guard.h"
#include "sim/xr_world.h"
#include "tensor/matrix.h"

namespace after {

struct Dataset;

/// Everything an AFTER recommender may consult at one time step for one
/// target user (Definition 1: F_t(v) -> 2^V).
struct StepContext {
  int t = 0;
  int target = 0;
  /// Positions of every user at time t.
  const std::vector<Vec2>* positions = nullptr;
  /// Static occlusion graph for the target at time t (Definition 4).
  const OcclusionGraph* occlusion = nullptr;
  /// Interface (MR/VR) of every user.
  const std::vector<Interface>* interfaces = nullptr;
  /// Global preference matrix p(v, w).
  const Matrix* preference = nullptr;
  /// Global social presence matrix s(v, w).
  const Matrix* social_presence = nullptr;
  /// Importance of social presence relative to preference (Definition 2).
  double beta = 0.5;
  /// Body radius used by the occlusion model.
  double body_radius = 0.25;
  /// Length scale (meters) of MIA's distance normalization:
  /// p̂ = p / (1 + (d / distance_scale)²). Keeps the normalization from
  /// drowning preference in distance (Sec. IV-A: the model should focus
  /// on preference and social presence rather than relative distance).
  double distance_scale = 5.0;
  /// Optional per-target blocklist (paper footnote 8: "an inter-user
  /// blocklist or allowlist could easily be achieved by a slight
  /// modification of the MIA mask"). blocklist[w] == true means user w
  /// must never be rendered for the target; MIA zeroes its mask slot and
  /// utilities. nullptr = no blocklist.
  ///
  /// The serving runtime reuses this channel for temporal candidate
  /// pruning (ServerOptions::max_candidates, docs/ticking.md): the mask
  /// blocks everyone outside the target's top-k recently co-present
  /// candidates. Implementations must therefore treat the blocklist as
  /// a hard candidate filter with no side effects on the survivors —
  /// the scores/ordering of unblocked users must be identical to an
  /// unpruned call (that is what makes the "exact ranking within the
  /// pruned set" contract hold end to end).
  const std::vector<bool>* blocklist = nullptr;
};

/// Options controlling offline training of learned recommenders.
struct TrainOptions {
  int epochs = 12;
  /// Target users sampled per training epoch.
  int targets_per_epoch = 4;
  /// Sessions (by index into Dataset::sessions) used for training; the
  /// evaluation harness holds out the last session. Empty = all but last.
  std::vector<int> train_sessions;
  double learning_rate = 1e-2;
  uint64_t seed = 7;
  /// If true, prints the loss once per epoch.
  bool verbose = false;
  /// NaN/Inf guarding and degradation policy for the optimizer loop
  /// (see nn/guard.h). Guarding is on by default; set
  /// robustness.guard_training = false for the historical fail-fast
  /// behavior.
  RobustnessConfig robustness;
};

/// Abstract AFTER recommender (Definition 1). Implementations are
/// stateful across a session rollout (BeginSession resets recurrent
/// state); Recommend must be callable at 'real time', i.e., it is the
/// code path whose latency the benchmarks measure.
class Recommender {
 public:
  virtual ~Recommender() = default;

  virtual std::string name() const = 0;

  /// Called before replaying a session for a given target user.
  virtual void BeginSession(int num_users, int target) {
    (void)num_users;
    (void)target;
  }

  /// Capability bit consulted by the online serving runtime
  /// (serve/server.h): true means Recommend() is logically const and
  /// re-entrant — it mutates no member state, so one instance may serve
  /// concurrent requests for arbitrary targets without synchronization.
  /// Defaults to false (the safe answer): session-stateful models
  /// (POSHGNN / TGCN / DCRNN carry recurrent state, COMURNet carries its
  /// staleness pipeline, Random/Oracle mutate an RNG or the previous
  /// selection) must be instantiated per (room, target) stream and have
  /// their calls serialized. Purely functional baselines (Nearest, and
  /// MvAGC / GraFrank after training) override this to true.
  virtual bool thread_safe() const { return false; }

  /// Returns the set of users rendered for the target at this step
  /// (true = recommended). The target's own slot must be false.
  virtual std::vector<bool> Recommend(const StepContext& context) = 0;

  /// Answers many targets of the *same scene* in one call — the hook the
  /// serving runtime's in-tick batcher (serve/batcher.h) drives: all
  /// requests queued against one room snapshot coalesce into a single
  /// RecommendBatch invocation. The default simply loops Recommend;
  /// batch-aware models (FrozenPoshgnn) override it to share per-scene
  /// work across targets. Returns one Recommend-shaped vector per
  /// context, in order.
  ///
  /// Contexts in one batch may carry different (or no) blocklists —
  /// the batcher attaches per-target prune masks — so overrides that
  /// dedupe or share work across contexts must key on the blocklist
  /// too, not just the target (infer/engine.cc's SameJob does).
  virtual std::vector<std::vector<bool>> RecommendBatch(
      const std::vector<StepContext>& contexts) {
    std::vector<std::vector<bool>> out;
    out.reserve(contexts.size());
    for (const StepContext& context : contexts)
      out.push_back(Recommend(context));
    return out;
  }
};

/// A recommender with an offline training phase (POSHGNN, DCRNN, TGCN,
/// GraFrank).
class TrainableRecommender : public Recommender {
 public:
  virtual void Train(const Dataset& dataset, const TrainOptions& options) = 0;
};

}  // namespace after

#endif  // AFTER_CORE_RECOMMENDER_H_
