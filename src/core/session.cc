#include "core/session.h"

#include "common/check.h"
#include "graph/occlusion_converter.h"

namespace after {

void ForEachSessionStep(
    const Dataset& dataset, int session_index, int target, double beta,
    const std::function<void(const StepContext&)>& step_fn) {
  AFTER_CHECK_GE(session_index, 0);
  AFTER_CHECK_LT(session_index, static_cast<int>(dataset.sessions.size()));
  const XrWorld& world = dataset.sessions[session_index];
  AFTER_CHECK_GE(target, 0);
  AFTER_CHECK_LT(target, world.num_users());

  for (int t = 0; t < world.num_steps(); ++t) {
    const OcclusionGraph occlusion = BuildOcclusionGraph(
        world.PositionsAt(t), target, world.body_radius());
    StepContext context;
    context.t = t;
    context.target = target;
    context.positions = &world.PositionsAt(t);
    context.occlusion = &occlusion;
    context.interfaces = &world.interfaces();
    context.preference = &dataset.preference;
    context.social_presence = &dataset.social_presence;
    context.beta = beta;
    context.body_radius = world.body_radius();
    step_fn(context);
  }
}

}  // namespace after
