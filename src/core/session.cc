#include "core/session.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/check.h"
#include "graph/occlusion_converter.h"

namespace after {
namespace {

bool StepPositionsFinite(const std::vector<Vec2>& positions) {
  for (const Vec2& p : positions)
    if (!std::isfinite(p.x) || !std::isfinite(p.y)) return false;
  return true;
}

}  // namespace

Status ForEachSessionStepChecked(
    const Dataset& dataset, int session_index, int target, double beta,
    const std::function<void(const StepContext&)>& step_fn,
    int* skipped_steps) {
  if (skipped_steps != nullptr) *skipped_steps = 0;
  if (session_index < 0 ||
      session_index >= static_cast<int>(dataset.sessions.size())) {
    std::ostringstream oss;
    oss << "session index " << session_index << " out of range [0, "
        << dataset.sessions.size() << ")";
    return InvalidDataError(oss.str());
  }
  const XrWorld& world = dataset.sessions[session_index];
  if (target < 0 || target >= world.num_users()) {
    std::ostringstream oss;
    oss << "target " << target << " out of range [0, " << world.num_users()
        << ")";
    return InvalidDataError(oss.str());
  }
  if (dataset.preference.rows() < world.num_users() ||
      dataset.preference.cols() < world.num_users() ||
      dataset.social_presence.rows() < world.num_users() ||
      dataset.social_presence.cols() < world.num_users()) {
    std::ostringstream oss;
    oss << "utility matrices (" << dataset.preference.rows() << "x"
        << dataset.preference.cols() << ") do not cover the session's "
        << world.num_users() << " users";
    return InvalidDataError(oss.str());
  }

  for (int t = 0; t < world.num_steps(); ++t) {
    // A poisoned step (NaN/Inf position, e.g. a corrupted trace or a
    // tracking glitch) is skipped rather than fed into the geometry
    // kernels, which assume finite coordinates.
    if (!StepPositionsFinite(world.PositionsAt(t))) {
      if (skipped_steps != nullptr) ++*skipped_steps;
      continue;
    }
    const OcclusionGraph occlusion = BuildOcclusionGraph(
        world.PositionsAt(t), target, world.body_radius());
    StepContext context;
    context.t = t;
    context.target = target;
    context.positions = &world.PositionsAt(t);
    context.occlusion = &occlusion;
    context.interfaces = &world.interfaces();
    context.preference = &dataset.preference;
    context.social_presence = &dataset.social_presence;
    context.beta = beta;
    context.body_radius = world.body_radius();
    step_fn(context);
  }
  return OkStatus();
}

void ForEachSessionStep(
    const Dataset& dataset, int session_index, int target, double beta,
    const std::function<void(const StepContext&)>& step_fn) {
  const Status status =
      ForEachSessionStepChecked(dataset, session_index, target, beta, step_fn);
  if (!status.ok())
    std::fprintf(stderr, "ForEachSessionStep: %s\n",
                 status.ToString().c_str());
}

}  // namespace after
