#ifndef AFTER_CORE_SESSION_H_
#define AFTER_CORE_SESSION_H_

#include <functional>

#include "common/status.h"
#include "core/recommender.h"
#include "data/dataset.h"

namespace after {

/// Replays one session of a dataset for one target user, building the
/// per-step occlusion graph and a fully-populated StepContext, and
/// invoking `step_fn` at every time step. This is the single place where
/// the raw scene (trajectories + interfaces + utilities) is turned into
/// Definition 4's dynamic occlusion graph view; the evaluator, the
/// trainers and the examples all replay sessions through it.
///
/// Logs and returns without invoking `step_fn` when the session index or
/// target is out of range (both ultimately come from external input);
/// use ForEachSessionStepChecked to receive the diagnostic.
void ForEachSessionStep(
    const Dataset& dataset, int session_index, int target, double beta,
    const std::function<void(const StepContext&)>& step_fn);

/// Status-returning variant: kInvalidData (with a diagnostic) instead of
/// aborting on a malformed session, out-of-range index, or out-of-range
/// target. Steps whose positions contain non-finite coordinates (poisoned
/// trajectories) are skipped; `skipped_steps`, when non-null, receives
/// the count.
Status ForEachSessionStepChecked(
    const Dataset& dataset, int session_index, int target, double beta,
    const std::function<void(const StepContext&)>& step_fn,
    int* skipped_steps = nullptr);

}  // namespace after

#endif  // AFTER_CORE_SESSION_H_
