#ifndef AFTER_CORE_SESSION_H_
#define AFTER_CORE_SESSION_H_

#include <functional>

#include "core/recommender.h"
#include "data/dataset.h"

namespace after {

/// Replays one session of a dataset for one target user, building the
/// per-step occlusion graph and a fully-populated StepContext, and
/// invoking `step_fn` at every time step. This is the single place where
/// the raw scene (trajectories + interfaces + utilities) is turned into
/// Definition 4's dynamic occlusion graph view; the evaluator, the
/// trainers and the examples all replay sessions through it.
void ForEachSessionStep(
    const Dataset& dataset, int session_index, int target, double beta,
    const std::function<void(const StepContext&)>& step_fn);

}  // namespace after

#endif  // AFTER_CORE_SESSION_H_
