#include "data/dataset.h"

#include <cstring>

#include "common/rng.h"
#include "data/preference_model.h"
#include "graph/generators.h"

namespace after {
namespace {

std::vector<XrWorld> GenerateSessions(const DatasetConfig& config,
                                      const XrWorld::Config& world_config,
                                      Rng& rng) {
  std::vector<XrWorld> sessions;
  sessions.reserve(config.num_sessions);
  for (int s = 0; s < config.num_sessions; ++s)
    sessions.push_back(XrWorld::Generate(world_config, rng));
  return sessions;
}

XrWorld::Config BaseWorldConfig(const DatasetConfig& config) {
  XrWorld::Config world_config;
  world_config.num_users = config.num_users;
  world_config.vr_fraction = config.vr_fraction;
  world_config.num_steps = config.num_steps;
  world_config.room_side = config.room_side;
  return world_config;
}

}  // namespace

Dataset GenerateTimikLike(const DatasetConfig& config) {
  Rng rng(config.seed * 0x51ED2701ULL + 17);
  Dataset dataset;
  dataset.name = "timik";

  // Heavy-tailed metaverse friendship network.
  dataset.social = BarabasiAlbert(config.num_users, /*edges_per_node=*/3, rng);

  PreferenceModelOptions pref_options;
  pref_options.latent_dim = 8;
  pref_options.celebrity_fraction = 0.05;  // idols and influencers
  pref_options.celebrity_boost = 2.0;
  pref_options.factor_weight = 0.6;
  pref_options.idiosyncratic_stddev = 1.0;
  dataset.preference = BuildPreferenceModel(config.num_users, pref_options,
                                            rng)
                           .preference;
  dataset.social_presence = SocialPresenceFromGraph(
      dataset.social, /*friend_lo=*/0.6, /*friend_hi=*/1.0,
      /*stranger=*/0.15, rng);

  XrWorld::Config world_config = BaseWorldConfig(config);
  world_config.num_gathering_spots = 4;
  dataset.sessions = GenerateSessions(config, world_config, rng);
  return dataset;
}

Dataset GenerateSmmLike(const DatasetConfig& config) {
  Rng rng(config.seed * 0x9D3F7A21ULL + 23);
  Dataset dataset;
  dataset.name = "smm";

  // Community-structured gamer network (nationalities / map communities).
  std::vector<int> community;
  const int num_blocks = std::max(2, config.num_users / 25);
  dataset.social = StochasticBlockModel(
      config.num_users, num_blocks, /*p_in=*/0.25,
      /*p_out=*/0.01, rng, &community);

  PreferenceModelOptions pref_options;
  pref_options.latent_dim = 8;
  pref_options.community = &community;
  pref_options.community_boost = 1.0;  // homophily within communities
  pref_options.factor_weight = 0.6;
  pref_options.idiosyncratic_stddev = 1.0;
  dataset.preference = BuildPreferenceModel(config.num_users, pref_options,
                                            rng)
                           .preference;
  // Likes/plays make presence utilities denser and stronger than Timik.
  dataset.social_presence = SocialPresenceFromGraph(
      dataset.social, /*friend_lo=*/0.7, /*friend_hi=*/1.0,
      /*stranger=*/0.15, rng);

  XrWorld::Config world_config = BaseWorldConfig(config);
  world_config.num_gathering_spots = num_blocks;  // communities cluster
  dataset.sessions = GenerateSessions(config, world_config, rng);
  return dataset;
}

Dataset GenerateHubsLike(const DatasetConfig& config) {
  Rng rng(config.seed * 0x1B56C4E9ULL + 29);
  Dataset dataset;
  dataset.name = "hub";

  // Small-world workshop acquaintance graph.
  dataset.social = WattsStrogatz(config.num_users, /*k=*/3,
                                 /*rewire_prob=*/0.2, rng);

  PreferenceModelOptions pref_options;
  pref_options.latent_dim = 8;
  pref_options.factor_weight = 0.7;
  pref_options.idiosyncratic_stddev = 0.8;
  dataset.preference = BuildPreferenceModel(config.num_users, pref_options,
                                            rng)
                           .preference;
  dataset.social_presence = SocialPresenceFromGraph(
      dataset.social, /*friend_lo=*/0.6, /*friend_hi=*/1.0,
      /*stranger=*/0.15, rng);

  XrWorld::Config world_config = BaseWorldConfig(config);
  world_config.num_gathering_spots = 2;
  world_config.max_speed = 0.8;  // workshop attendees amble
  dataset.sessions = GenerateSessions(config, world_config, rng);
  return dataset;
}

DatasetConfig HubsDefaultConfig() {
  DatasetConfig config;
  config.num_users = 30;   // "only dozens of candidates exist in a Hub room"
  config.room_side = 6.0;  // small workshop space
  return config;
}

namespace {

/// FNV-1a 64 running hash; doubles are hashed by bit pattern so any
/// representable change to a utility or position changes the print.
struct Fingerprint {
  uint64_t hash = 0xCBF29CE484222325ULL;

  void Mix(uint64_t word) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (word >> (8 * byte)) & 0xFF;
      hash *= 0x100000001B3ULL;
    }
  }
  void Mix(double value) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    Mix(bits);
  }
  void Mix(const Matrix& m) {
    Mix(static_cast<uint64_t>(m.rows()));
    Mix(static_cast<uint64_t>(m.cols()));
    for (double v : m.data()) Mix(v);
  }
};

}  // namespace

uint64_t DatasetFingerprint(const Dataset& dataset) {
  Fingerprint fp;
  fp.Mix(static_cast<uint64_t>(dataset.num_users()));
  fp.Mix(dataset.preference);
  fp.Mix(dataset.social_presence);
  fp.Mix(static_cast<uint64_t>(dataset.sessions.size()));
  for (const XrWorld& world : dataset.sessions) {
    fp.Mix(static_cast<uint64_t>(world.num_steps()));
    fp.Mix(world.body_radius());
    for (Interface interface : world.interfaces())
      fp.Mix(static_cast<uint64_t>(interface));
    for (const auto& frame : world.trajectory()) {
      for (const Vec2& position : frame) {
        fp.Mix(position.x);
        fp.Mix(position.y);
      }
    }
  }
  return fp.hash;
}

}  // namespace after
