#ifndef AFTER_DATA_DATASET_H_
#define AFTER_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/social_graph.h"
#include "sim/xr_world.h"
#include "tensor/matrix.h"

namespace after {

/// A social-XR dataset: the participants' social network, pairwise
/// preference / social-presence utilities, and one or more simulated
/// conferencing sessions (trajectories + interfaces). Stands in for the
/// gated Timik / SMM / Hubs data; see DESIGN.md for the substitution
/// rationale.
struct Dataset {
  std::string name;
  SocialGraph social;
  /// preference.At(v, w) = p(v, w) in [0, 1]; diagonal is 0.
  Matrix preference;
  /// social_presence.At(v, w) = s(v, w) in [0, 1]; diagonal is 0.
  Matrix social_presence;
  /// Independent conferencing sessions over the same population. The
  /// paper's 80/20 split is realized by training on the leading sessions
  /// and evaluating on the trailing ones.
  std::vector<XrWorld> sessions;

  int num_users() const { return social.num_nodes(); }
  double body_radius() const {
    return sessions.empty() ? 0.25 : sessions.front().body_radius();
  }
};

/// Generation parameters shared by the three dataset builders.
struct DatasetConfig {
  int num_users = 200;
  double vr_fraction = 0.5;
  /// Recorded steps per session: T + 1 with T = 100 as in the paper.
  int num_steps = 101;
  double room_side = 10.0;
  int num_sessions = 2;
  uint64_t seed = 1;
};

/// Timik-like: preferential-attachment (heavy-tailed) social metaverse
/// network with a small set of celebrity users that many participants
/// find attractive.
Dataset GenerateTimikLike(const DatasetConfig& config);

/// SMM-like: community-structured (stochastic block model) game social
/// network; preferences are homophilous within communities and
/// interaction-count-driven presence utilities are denser.
Dataset GenerateSmmLike(const DatasetConfig& config);

/// Hubs-like: a small VR-workshop room (dozens of users, small-world
/// acquaintance graph, slower motion). `config.num_users` is still
/// honored; use HubsDefaultConfig() for paper-scale defaults.
Dataset GenerateHubsLike(const DatasetConfig& config);

/// Paper-scale defaults for the Hub dataset (a few dozen candidates).
DatasetConfig HubsDefaultConfig();

/// Deterministic 64-bit fingerprint of a dataset's contents: population
/// size, both utility matrices, and every session's interfaces and
/// trajectories. Recorded in model artifacts (nn/artifact.h) so a
/// served weight file can be traced to the data it was trained on —
/// two datasets with the same fingerprint are bit-identical in every
/// field the models consume.
uint64_t DatasetFingerprint(const Dataset& dataset);

}  // namespace after

#endif  // AFTER_DATA_DATASET_H_
