#include "data/dataset_io.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace after {
namespace {

bool WriteMatrix(const std::string& path, const Matrix& m) {
  std::ofstream out(path);
  if (!out) return false;
  out.precision(17);
  out << m.rows() << " " << m.cols() << "\n";
  for (int r = 0; r < m.rows(); ++r) {
    for (int c = 0; c < m.cols(); ++c) {
      if (c > 0) out << " ";
      out << m.At(r, c);
    }
    out << "\n";
  }
  return static_cast<bool>(out);
}

bool ReadMatrix(const std::string& path, Matrix* m) {
  std::ifstream in(path);
  if (!in) return false;
  int rows = 0, cols = 0;
  if (!(in >> rows >> cols) || rows < 0 || cols < 0) return false;
  *m = Matrix(rows, cols);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c)
      if (!(in >> m->At(r, c))) return false;
  return true;
}

bool WriteSession(const std::string& path, const XrWorld& world) {
  std::ofstream out(path);
  if (!out) return false;
  out.precision(17);
  out << world.num_users() << " " << world.num_steps() << " "
      << world.body_radius() << "\n";
  for (int u = 0; u < world.num_users(); ++u) {
    out << (world.interface_of(u) == Interface::kMR ? 1 : 0);
    out << (u + 1 == world.num_users() ? "\n" : " ");
  }
  for (int t = 0; t < world.num_steps(); ++t) {
    for (int u = 0; u < world.num_users(); ++u) {
      const Vec2& p = world.PositionsAt(t)[u];
      out << p.x << " " << p.y;
      out << (u + 1 == world.num_users() ? "\n" : " ");
    }
  }
  return static_cast<bool>(out);
}

bool ReadSession(const std::string& path, XrWorld* world) {
  std::ifstream in(path);
  if (!in) return false;
  int num_users = 0, num_steps = 0;
  double body_radius = 0.0;
  if (!(in >> num_users >> num_steps >> body_radius)) return false;
  if (num_users <= 0 || num_steps <= 0) return false;

  std::vector<Interface> interfaces(num_users);
  for (int u = 0; u < num_users; ++u) {
    int flag = 0;
    if (!(in >> flag)) return false;
    interfaces[u] = flag == 1 ? Interface::kMR : Interface::kVR;
  }
  std::vector<std::vector<Vec2>> trajectory(
      num_steps, std::vector<Vec2>(num_users));
  for (int t = 0; t < num_steps; ++t)
    for (int u = 0; u < num_users; ++u)
      if (!(in >> trajectory[t][u].x >> trajectory[t][u].y)) return false;

  *world = XrWorld::FromRecorded(std::move(interfaces),
                                 std::move(trajectory), body_radius);
  return true;
}

}  // namespace

bool SaveDataset(const Dataset& dataset, const std::string& directory) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    std::fprintf(stderr, "SaveDataset: cannot create %s: %s\n",
                 directory.c_str(), ec.message().c_str());
    return false;
  }

  {
    std::ofstream meta(directory + "/meta.txt");
    if (!meta) return false;
    meta << dataset.name << "\n"
         << dataset.num_users() << " " << dataset.sessions.size() << "\n";
  }
  {
    std::ofstream social(directory + "/social.txt");
    if (!social) return false;
    social.precision(17);
    social << dataset.social.num_nodes() << "\n";
    for (int u = 0; u < dataset.social.num_nodes(); ++u)
      for (const auto& nbr : dataset.social.Neighbors(u))
        if (nbr.node > u)
          social << u << " " << nbr.node << " " << nbr.weight << "\n";
  }
  if (!WriteMatrix(directory + "/preference.txt", dataset.preference))
    return false;
  if (!WriteMatrix(directory + "/presence.txt", dataset.social_presence))
    return false;
  for (size_t s = 0; s < dataset.sessions.size(); ++s) {
    if (!WriteSession(directory + "/session_" + std::to_string(s) + ".txt",
                      dataset.sessions[s]))
      return false;
  }
  return true;
}

bool LoadDataset(const std::string& directory, Dataset* dataset) {
  *dataset = Dataset();
  int num_users = 0;
  size_t num_sessions = 0;
  {
    std::ifstream meta(directory + "/meta.txt");
    if (!meta) return false;
    if (!std::getline(meta, dataset->name)) return false;
    if (!(meta >> num_users >> num_sessions)) return false;
  }
  {
    std::ifstream social(directory + "/social.txt");
    if (!social) return false;
    int n = 0;
    if (!(social >> n) || n != num_users) return false;
    dataset->social = SocialGraph(n);
    int u, v;
    double weight;
    while (social >> u >> v >> weight) dataset->social.AddEdge(u, v, weight);
  }
  if (!ReadMatrix(directory + "/preference.txt", &dataset->preference))
    return false;
  if (!ReadMatrix(directory + "/presence.txt", &dataset->social_presence))
    return false;
  if (dataset->preference.rows() != num_users ||
      dataset->social_presence.rows() != num_users)
    return false;
  for (size_t s = 0; s < num_sessions; ++s) {
    XrWorld world;
    if (!ReadSession(directory + "/session_" + std::to_string(s) + ".txt",
                     &world))
      return false;
    if (world.num_users() != num_users) return false;
    dataset->sessions.push_back(std::move(world));
  }
  return true;
}

}  // namespace after
