#include "data/dataset_io.h"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace after {
namespace {

/// Caps applied to counts parsed from file headers so a corrupt header
/// cannot drive a multi-gigabyte allocation before validation kicks in.
constexpr long long kMaxUsers = 1 << 20;
constexpr long long kMaxSteps = 1 << 20;
constexpr long long kMaxSessionCells = 1LL << 26;
constexpr long long kMaxMatrixCells = 1LL << 26;

/// Splits `line` into whitespace tokens parsed as finite doubles.
/// Returns a Status naming the first offending token on failure.
Status ParseFiniteRow(const std::string& line, int expected_count,
                      std::vector<double>* out) {
  std::istringstream tokens(line);
  out->clear();
  double value = 0.0;
  while (tokens >> value) {
    if (!std::isfinite(value)) {
      std::ostringstream oss;
      oss << "non-finite value in column "
          << static_cast<int>(out->size()) + 1;
      return InvalidDataError(oss.str());
    }
    out->push_back(value);
  }
  if (!tokens.eof()) {
    std::ostringstream oss;
    oss << "unparseable token in column "
        << static_cast<int>(out->size()) + 1;
    return InvalidDataError(oss.str());
  }
  if (static_cast<int>(out->size()) != expected_count) {
    std::ostringstream oss;
    oss << "expected " << expected_count << " values, found " << out->size();
    return InvalidDataError(oss.str());
  }
  return OkStatus();
}

/// Reads the next non-empty line, tracking the 1-based line number.
bool NextLine(std::ifstream& in, std::string* line, int* line_number) {
  while (std::getline(in, *line)) {
    ++*line_number;
    // Trim trailing carriage returns so CRLF files load.
    while (!line->empty() && (line->back() == '\r' || line->back() == ' '))
      line->pop_back();
    if (!line->empty()) return true;
  }
  return false;
}

std::string FileLine(const std::string& file, int line_number) {
  std::ostringstream oss;
  oss << file << " line " << line_number;
  return oss.str();
}

bool WriteMatrix(const std::string& path, const Matrix& m) {
  std::ofstream out(path);
  if (!out) return false;
  out.precision(17);
  out << m.rows() << " " << m.cols() << "\n";
  for (int r = 0; r < m.rows(); ++r) {
    for (int c = 0; c < m.cols(); ++c) {
      if (c > 0) out << " ";
      out << m.At(r, c);
    }
    out << "\n";
  }
  return static_cast<bool>(out);
}

/// Strict matrix reader: rejects truncated files, rows whose length
/// differs from the header, unparseable or non-finite entries. The
/// diagnostic names `file_label` and the offending line.
Status ReadMatrixChecked(const std::string& path,
                         const std::string& file_label, Matrix* m) {
  std::ifstream in(path);
  if (!in) return NotFoundError(file_label + ": cannot open");
  int line_number = 0;
  std::string line;
  if (!NextLine(in, &line, &line_number))
    return InvalidDataError(file_label + ": missing header");
  long long rows = -1, cols = -1;
  {
    std::istringstream header(line);
    std::string extra;
    if (!(header >> rows >> cols) || (header >> extra) || rows < 0 ||
        cols < 0)
      return InvalidDataError(FileLine(file_label, line_number) +
                              ": malformed header (want \"rows cols\")");
  }
  if (rows * cols > kMaxMatrixCells)
    return ResourceExhaustedError(file_label +
                                  ": header declares an implausibly "
                                  "large matrix");
  *m = Matrix(static_cast<int>(rows), static_cast<int>(cols));
  std::vector<double> row_values;
  for (int r = 0; r < rows; ++r) {
    if (!NextLine(in, &line, &line_number)) {
      std::ostringstream oss;
      oss << file_label << ": truncated after row " << r << " of " << rows;
      return InvalidDataError(oss.str());
    }
    const Status row_status =
        ParseFiniteRow(line, static_cast<int>(cols), &row_values);
    if (!row_status.ok())
      return row_status.Annotate(FileLine(file_label, line_number));
    for (int c = 0; c < cols; ++c) m->At(r, c) = row_values[c];
  }
  if (NextLine(in, &line, &line_number))
    return InvalidDataError(FileLine(file_label, line_number) +
                            ": trailing data after final row");
  return OkStatus();
}

bool WriteSession(const std::string& path, const XrWorld& world) {
  std::ofstream out(path);
  if (!out) return false;
  out.precision(17);
  out << world.num_users() << " " << world.num_steps() << " "
      << world.body_radius() << "\n";
  for (int u = 0; u < world.num_users(); ++u) {
    out << (world.interface_of(u) == Interface::kMR ? 1 : 0);
    out << (u + 1 == world.num_users() ? "\n" : " ");
  }
  for (int t = 0; t < world.num_steps(); ++t) {
    for (int u = 0; u < world.num_users(); ++u) {
      const Vec2& p = world.PositionsAt(t)[u];
      out << p.x << " " << p.y;
      out << (u + 1 == world.num_users() ? "\n" : " ");
    }
  }
  return static_cast<bool>(out);
}

Status ReadSessionChecked(const std::string& path,
                          const std::string& file_label,
                          int expected_users, XrWorld* world) {
  std::ifstream in(path);
  if (!in) return NotFoundError(file_label + ": cannot open");
  int line_number = 0;
  std::string line;
  if (!NextLine(in, &line, &line_number))
    return InvalidDataError(file_label + ": missing header");
  long long num_users = 0, num_steps = 0;
  double body_radius = 0.0;
  {
    std::istringstream header(line);
    std::string extra;
    if (!(header >> num_users >> num_steps >> body_radius) ||
        (header >> extra))
      return InvalidDataError(
          FileLine(file_label, line_number) +
          ": malformed header (want \"users steps body_radius\")");
  }
  if (num_users <= 0 || num_steps <= 0)
    return InvalidDataError(FileLine(file_label, line_number) +
                            ": non-positive user or step count");
  if (num_users > kMaxUsers || num_steps > kMaxSteps ||
      num_users * num_steps > kMaxSessionCells)
    return ResourceExhaustedError(file_label +
                                  ": header declares an implausibly "
                                  "large session");
  if (!std::isfinite(body_radius) || body_radius <= 0.0)
    return InvalidDataError(FileLine(file_label, line_number) +
                            ": body radius must be finite and positive");
  if (num_users != expected_users) {
    std::ostringstream oss;
    oss << file_label << ": session has " << num_users
        << " users but the dataset has " << expected_users;
    return InvalidDataError(oss.str());
  }

  const int n = static_cast<int>(num_users);
  std::vector<double> row_values;
  if (!NextLine(in, &line, &line_number))
    return InvalidDataError(file_label + ": missing interface row");
  Status row_status = ParseFiniteRow(line, n, &row_values);
  if (!row_status.ok())
    return row_status.Annotate(FileLine(file_label, line_number) +
                               " (interfaces)");
  std::vector<Interface> interfaces(n);
  for (int u = 0; u < n; ++u) {
    if (row_values[u] != 0.0 && row_values[u] != 1.0)
      return InvalidDataError(FileLine(file_label, line_number) +
                              ": interface flag must be 0 or 1");
    interfaces[u] = row_values[u] == 1.0 ? Interface::kMR : Interface::kVR;
  }

  std::vector<std::vector<Vec2>> trajectory(
      static_cast<size_t>(num_steps), std::vector<Vec2>(n));
  for (int t = 0; t < num_steps; ++t) {
    if (!NextLine(in, &line, &line_number)) {
      std::ostringstream oss;
      oss << file_label << ": truncated after step " << t << " of "
          << num_steps;
      return InvalidDataError(oss.str());
    }
    row_status = ParseFiniteRow(line, 2 * n, &row_values);
    if (!row_status.ok())
      return row_status.Annotate(FileLine(file_label, line_number));
    for (int u = 0; u < n; ++u) {
      trajectory[t][u].x = row_values[2 * u];
      trajectory[t][u].y = row_values[2 * u + 1];
    }
  }
  if (NextLine(in, &line, &line_number))
    return InvalidDataError(FileLine(file_label, line_number) +
                            ": trailing data after final step");

  *world = XrWorld::FromRecorded(std::move(interfaces),
                                 std::move(trajectory), body_radius);
  return OkStatus();
}

Status ReadSocialChecked(const std::string& path,
                         const std::string& file_label, int expected_users,
                         SocialGraph* graph) {
  std::ifstream in(path);
  if (!in) return NotFoundError(file_label + ": cannot open");
  int line_number = 0;
  std::string line;
  if (!NextLine(in, &line, &line_number))
    return InvalidDataError(file_label + ": missing header");
  long long n = -1;
  {
    std::istringstream header(line);
    std::string extra;
    if (!(header >> n) || (header >> extra) || n < 0)
      return InvalidDataError(FileLine(file_label, line_number) +
                              ": malformed node-count header");
  }
  if (n != expected_users) {
    std::ostringstream oss;
    oss << file_label << ": social graph has " << n
        << " nodes but meta.txt declares " << expected_users << " users";
    return InvalidDataError(oss.str());
  }
  *graph = SocialGraph(static_cast<int>(n));
  while (NextLine(in, &line, &line_number)) {
    std::istringstream edge(line);
    long long u = 0, v = 0;
    double weight = 0.0;
    std::string extra;
    if (!(edge >> u >> v >> weight) || (edge >> extra))
      return InvalidDataError(FileLine(file_label, line_number) +
                              ": malformed edge (want \"u v weight\")");
    if (u < 0 || u >= n || v < 0 || v >= n) {
      std::ostringstream oss;
      oss << FileLine(file_label, line_number) << ": edge index (" << u
          << ", " << v << ") out of range [0, " << n << ")";
      return InvalidDataError(oss.str());
    }
    if (u == v)
      return InvalidDataError(FileLine(file_label, line_number) +
                              ": self-loop edge");
    if (!std::isfinite(weight))
      return InvalidDataError(FileLine(file_label, line_number) +
                              ": non-finite edge weight");
    graph->AddEdge(static_cast<int>(u), static_cast<int>(v), weight);
  }
  return OkStatus();
}

Status ValidateUtilityMatrix(const Matrix& m, int n, const char* label) {
  if (m.rows() != n || m.cols() != n) {
    std::ostringstream oss;
    oss << label << " matrix is " << m.rows() << "x" << m.cols()
        << ", want " << n << "x" << n;
    return InvalidDataError(oss.str());
  }
  for (int r = 0; r < m.rows(); ++r)
    for (int c = 0; c < m.cols(); ++c)
      if (!std::isfinite(m.At(r, c))) {
        std::ostringstream oss;
        oss << label << " matrix has a non-finite entry at (" << r << ", "
            << c << ")";
        return InvalidDataError(oss.str());
      }
  return OkStatus();
}

}  // namespace

Status ValidateDataset(const Dataset& dataset) {
  const int n = dataset.num_users();
  if (n <= 0) return InvalidDataError("dataset has no users");
  AFTER_RETURN_IF_ERROR(
      ValidateUtilityMatrix(dataset.preference, n, "preference"));
  AFTER_RETURN_IF_ERROR(
      ValidateUtilityMatrix(dataset.social_presence, n, "social presence"));
  if (dataset.sessions.empty())
    return InvalidDataError("dataset has no sessions");
  for (size_t s = 0; s < dataset.sessions.size(); ++s) {
    const XrWorld& world = dataset.sessions[s];
    std::ostringstream label;
    label << "session " << s;
    if (world.num_users() != n) {
      std::ostringstream oss;
      oss << label.str() << " has " << world.num_users()
          << " users, want " << n;
      return InvalidDataError(oss.str());
    }
    if (world.num_steps() <= 0)
      return InvalidDataError(label.str() + " has no steps");
    if (!std::isfinite(world.body_radius()) || world.body_radius() <= 0.0)
      return InvalidDataError(label.str() + " has an invalid body radius");
    for (int t = 0; t < world.num_steps(); ++t)
      for (int u = 0; u < n; ++u) {
        const Vec2& p = world.PositionsAt(t)[u];
        if (!std::isfinite(p.x) || !std::isfinite(p.y)) {
          std::ostringstream oss;
          oss << label.str() << " has a non-finite position for user " << u
              << " at step " << t;
          return InvalidDataError(oss.str());
        }
      }
  }
  return OkStatus();
}

Status SaveDatasetChecked(const Dataset& dataset,
                          const std::string& directory) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec)
    return InvalidDataError("cannot create " + directory + ": " +
                            ec.message());

  {
    std::ofstream meta(directory + "/meta.txt");
    if (!meta) return InvalidDataError("cannot write meta.txt");
    meta << dataset.name << "\n"
         << dataset.num_users() << " " << dataset.sessions.size() << "\n";
    if (!meta) return InvalidDataError("I/O error writing meta.txt");
  }
  {
    std::ofstream social(directory + "/social.txt");
    if (!social) return InvalidDataError("cannot write social.txt");
    social.precision(17);
    social << dataset.social.num_nodes() << "\n";
    for (int u = 0; u < dataset.social.num_nodes(); ++u)
      for (const auto& nbr : dataset.social.Neighbors(u))
        if (nbr.node > u)
          social << u << " " << nbr.node << " " << nbr.weight << "\n";
    if (!social) return InvalidDataError("I/O error writing social.txt");
  }
  if (!WriteMatrix(directory + "/preference.txt", dataset.preference))
    return InvalidDataError("I/O error writing preference.txt");
  if (!WriteMatrix(directory + "/presence.txt", dataset.social_presence))
    return InvalidDataError("I/O error writing presence.txt");
  for (size_t s = 0; s < dataset.sessions.size(); ++s) {
    const std::string file = "session_" + std::to_string(s) + ".txt";
    if (!WriteSession(directory + "/" + file, dataset.sessions[s]))
      return InvalidDataError("I/O error writing " + file);
  }
  return OkStatus();
}

Result<Dataset> LoadDatasetChecked(const std::string& directory) {
  Dataset dataset;
  long long num_users = 0, num_sessions = 0;
  {
    std::ifstream meta(directory + "/meta.txt");
    if (!meta) return NotFoundError("meta.txt: cannot open");
    if (!std::getline(meta, dataset.name))
      return InvalidDataError("meta.txt: missing dataset name");
    std::string counts_line;
    if (!std::getline(meta, counts_line))
      return InvalidDataError("meta.txt line 2: missing counts");
    std::istringstream counts(counts_line);
    std::string extra;
    if (!(counts >> num_users >> num_sessions) || (counts >> extra))
      return InvalidDataError(
          "meta.txt line 2: malformed counts (want \"users sessions\")");
    if (num_users <= 0 || num_sessions < 0)
      return InvalidDataError("meta.txt line 2: non-positive user count");
    if (num_users > kMaxUsers || num_sessions > kMaxSteps)
      return ResourceExhaustedError(
          "meta.txt declares implausibly large counts");
  }
  const int n = static_cast<int>(num_users);

  AFTER_RETURN_IF_ERROR(ReadSocialChecked(directory + "/social.txt",
                                          "social.txt", n, &dataset.social));
  AFTER_RETURN_IF_ERROR(ReadMatrixChecked(directory + "/preference.txt",
                                          "preference.txt",
                                          &dataset.preference));
  AFTER_RETURN_IF_ERROR(ReadMatrixChecked(directory + "/presence.txt",
                                          "presence.txt",
                                          &dataset.social_presence));
  for (long long s = 0; s < num_sessions; ++s) {
    const std::string file = "session_" + std::to_string(s) + ".txt";
    XrWorld world;
    AFTER_RETURN_IF_ERROR(
        ReadSessionChecked(directory + "/" + file, file, n, &world));
    dataset.sessions.push_back(std::move(world));
  }
  AFTER_RETURN_IF_ERROR(ValidateDataset(dataset));
  return dataset;
}

bool SaveDataset(const Dataset& dataset, const std::string& directory) {
  const Status status = SaveDatasetChecked(dataset, directory);
  if (!status.ok())
    std::fprintf(stderr, "SaveDataset(%s): %s\n", directory.c_str(),
                 status.ToString().c_str());
  return status.ok();
}

bool LoadDataset(const std::string& directory, Dataset* dataset) {
  Result<Dataset> result = LoadDatasetChecked(directory);
  if (!result.ok()) {
    std::fprintf(stderr, "LoadDataset(%s): %s\n", directory.c_str(),
                 result.status().ToString().c_str());
    return false;
  }
  *dataset = std::move(result).value();
  return true;
}

}  // namespace after
