#ifndef AFTER_DATA_DATASET_IO_H_
#define AFTER_DATA_DATASET_IO_H_

#include <string>

#include "common/result.h"
#include "common/status.h"
#include "data/dataset.h"

namespace after {

/// Plain-text persistence for datasets so generated benchmarks inputs can
/// be archived and replayed bit-exactly (one directory per dataset):
///
///   <dir>/meta.txt        name, counts
///   <dir>/social.txt      u v weight   (one undirected edge per line)
///   <dir>/preference.txt  N x N matrix, row per line
///   <dir>/presence.txt    N x N matrix, row per line
///   <dir>/session_<k>.txt per step: interface flags then positions
///
/// The Status/Result variants are the primary API: they perform strict
/// validation (dimension cross-checks, finite-value checks, edge-index
/// bounds, per-row length checks) and their diagnostics name the
/// offending file and line. The bool variants are thin compatibility
/// wrappers that log the diagnostic to stderr.

Status SaveDatasetChecked(const Dataset& dataset,
                          const std::string& directory);

/// Loads and strictly validates a dataset previously written by
/// SaveDataset. Any corruption — truncated or missing file, inconsistent
/// matrix row length, non-finite entry, out-of-range edge index,
/// dimension mismatch across files — yields a non-OK Status whose
/// message names the bad file (and line where applicable). Never aborts.
Result<Dataset> LoadDatasetChecked(const std::string& directory);

/// Structural validation of an in-memory dataset: square finite utility
/// matrices matching the social graph's node count, sessions over the
/// same population with finite trajectories. Used by LoadDatasetChecked
/// and by pipeline entry points that accept externally-built datasets.
Status ValidateDataset(const Dataset& dataset);

/// Returns false (and logs to stderr) on I/O failure.
bool SaveDataset(const Dataset& dataset, const std::string& directory);

/// Loads a dataset previously written by SaveDataset. Returns false on
/// missing/corrupt files; `dataset` is left unspecified on failure.
bool LoadDataset(const std::string& directory, Dataset* dataset);

}  // namespace after

#endif  // AFTER_DATA_DATASET_IO_H_
