#ifndef AFTER_DATA_DATASET_IO_H_
#define AFTER_DATA_DATASET_IO_H_

#include <string>

#include "data/dataset.h"

namespace after {

/// Plain-text persistence for datasets so generated benchmarks inputs can
/// be archived and replayed bit-exactly (one directory per dataset):
///
///   <dir>/meta.txt        name, counts
///   <dir>/social.txt      u v weight   (one undirected edge per line)
///   <dir>/preference.txt  N x N matrix, row per line
///   <dir>/presence.txt    N x N matrix, row per line
///   <dir>/session_<k>.txt per step: interface flags then positions
///
/// Returns false (and logs to stderr) on I/O failure.
bool SaveDataset(const Dataset& dataset, const std::string& directory);

/// Loads a dataset previously written by SaveDataset. Returns false on
/// missing/corrupt files; `dataset` is left unspecified on failure.
bool LoadDataset(const std::string& directory, Dataset* dataset);

}  // namespace after

#endif  // AFTER_DATA_DATASET_IO_H_
