#include "data/preference_model.h"

#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace after {

PreferenceModel BuildPreferenceModel(int num_users,
                                     const PreferenceModelOptions& options,
                                     Rng& rng) {
  AFTER_CHECK_GE(num_users, 1);
  PreferenceModel model;
  model.factors = Matrix::Randn(num_users, options.latent_dim, 1.0, rng);

  std::vector<bool> celebrity(num_users, false);
  const int num_celebrities =
      static_cast<int>(options.celebrity_fraction * num_users);
  for (int idx : rng.SampleWithoutReplacement(num_users, num_celebrities))
    celebrity[idx] = true;

  const double inv_sqrt_dim =
      1.0 / std::sqrt(static_cast<double>(options.latent_dim));
  model.preference = Matrix(num_users, num_users);
  for (int v = 0; v < num_users; ++v) {
    for (int w = 0; w < num_users; ++w) {
      if (v == w) continue;
      double score = 0.0;
      for (int d = 0; d < options.latent_dim; ++d)
        score += model.factors.At(v, d) * model.factors.At(w, d);
      score *= inv_sqrt_dim * options.factor_weight;
      if (options.idiosyncratic_stddev > 0.0)
        score += rng.Normal(0.0, options.idiosyncratic_stddev);
      if (celebrity[w]) score += options.celebrity_boost;
      if (options.community != nullptr &&
          (*options.community)[v] == (*options.community)[w])
        score += options.community_boost;
      model.preference.At(v, w) = 1.0 / (1.0 + std::exp(-score));
    }
  }
  return model;
}

Matrix SocialPresenceFromGraph(const SocialGraph& graph, double friend_lo,
                               double friend_hi, double stranger, Rng& rng) {
  const int n = graph.num_nodes();
  Matrix presence(n, n, stranger);
  for (int v = 0; v < n; ++v) presence.At(v, v) = 0.0;
  for (int v = 0; v < n; ++v) {
    for (const auto& neighbor : graph.Neighbors(v)) {
      if (neighbor.node < v) continue;  // handle each undirected edge once
      const double base = rng.Uniform(friend_lo, friend_hi);
      const double value =
          std::min(1.0, std::max(0.0, base * neighbor.weight));
      presence.At(v, neighbor.node) = value;
      presence.At(neighbor.node, v) = value;
    }
  }
  return presence;
}

}  // namespace after
