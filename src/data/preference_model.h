#ifndef AFTER_DATA_PREFERENCE_MODEL_H_
#define AFTER_DATA_PREFERENCE_MODEL_H_

#include <vector>

#include "graph/social_graph.h"
#include "tensor/matrix.h"

namespace after {

class Rng;

/// Latent-factor preference model. The paper estimates p(v, w) with
/// pre-trained personalized recommenders (GraFrank etc.); here the ground
/// truth itself is generated from user latent factors, which the learned
/// recommenders then consume as pre-trained embeddings.
struct PreferenceModelOptions {
  int latent_dim = 8;
  /// Weight of the latent-factor similarity term. Lower values make
  /// taste more idiosyncratic (harder for grouping methods to exploit).
  double factor_weight = 1.0;
  /// Std-dev of per-pair idiosyncratic taste noise added before
  /// squashing. Individual taste that no clustering of profiles can
  /// recover — the paper's "personally preferred candidates may not be
  /// suitable for grouping" effect.
  double idiosyncratic_stddev = 0.0;
  /// Fraction of users that are "celebrities": broadly attractive
  /// regardless of factor similarity (Timik-style idols).
  double celebrity_fraction = 0.0;
  /// Additional attractiveness of celebrities, added before squashing.
  double celebrity_boost = 2.0;
  /// Optional community assignment; members of the same community get a
  /// similarity bonus (SMM-style homophily).
  const std::vector<int>* community = nullptr;
  double community_boost = 1.0;
};

struct PreferenceModel {
  /// Row-per-user latent factors (n x latent_dim).
  Matrix factors;
  /// p(v, w) matrix in [0, 1], zero diagonal.
  Matrix preference;
};

/// Samples latent factors and derives the pairwise preference matrix
/// p(v, w) = sigmoid(<f_v, f_w>/sqrt(d) + boosts).
PreferenceModel BuildPreferenceModel(int num_users,
                                     const PreferenceModelOptions& options,
                                     Rng& rng);

/// Derives s(v, w) from the social graph: friends yield presence utility
/// scaled by tie strength in [friend_lo, friend_hi]; non-friends yield
/// `stranger` (usually 0; the paper couples s with friendship).
Matrix SocialPresenceFromGraph(const SocialGraph& graph, double friend_lo,
                               double friend_hi, double stranger, Rng& rng);

}  // namespace after

#endif  // AFTER_DATA_PREFERENCE_MODEL_H_
