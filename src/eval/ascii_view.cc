#include "eval/ascii_view.h"

#include <cmath>
#include <sstream>

#include "common/check.h"
#include "graph/occlusion_converter.h"

namespace after {
namespace {

char UserLetter(int user, bool visible) {
  const char base = visible ? 'A' : 'a';
  return static_cast<char>(base + (user % 26));
}

}  // namespace

std::string RenderViewportStrip(const std::vector<Vec2>& positions,
                                int target,
                                const std::vector<bool>& rendered,
                                const AsciiViewOptions& options) {
  const int n = static_cast<int>(positions.size());
  AFTER_CHECK_EQ(static_cast<int>(rendered.size()), n);
  AFTER_CHECK_GT(options.width, 0);

  const std::vector<ViewArc> arcs =
      ComputeViewArcs(positions, target, options.body_radius);
  const std::vector<bool> visible =
      ComputeVisibility(positions, target, options.body_radius, rendered);

  std::string strip(options.width, '.');
  for (int column = 0; column < options.width; ++column) {
    const double theta =
        -M_PI + (column + 0.5) * (2.0 * M_PI / options.width);
    int nearest = -1;
    for (int w = 0; w < n; ++w) {
      if (w == target || !rendered[w] || !arcs[w].valid) continue;
      double diff = std::fmod(std::abs(arcs[w].center - theta), 2.0 * M_PI);
      if (diff > M_PI) diff = 2.0 * M_PI - diff;
      if (diff > arcs[w].half_width) continue;
      if (nearest < 0 || arcs[w].distance < arcs[nearest].distance)
        nearest = w;
    }
    if (nearest >= 0)
      strip[column] = UserLetter(nearest, visible[nearest]);
  }
  return strip;
}

std::string RenderViewportWithLegend(const std::vector<Vec2>& positions,
                                     int target,
                                     const std::vector<bool>& rendered,
                                     const std::vector<std::string>& labels,
                                     const AsciiViewOptions& options) {
  const int n = static_cast<int>(positions.size());
  AFTER_CHECK_EQ(static_cast<int>(labels.size()), n);
  std::ostringstream out;
  out << "[" << RenderViewportStrip(positions, target, rendered, options)
      << "]\n";

  const std::vector<bool> visible =
      ComputeVisibility(positions, target, options.body_radius, rendered);
  out << " visible:";
  bool any = false;
  for (int w = 0; w < n; ++w) {
    if (w == target || !rendered[w] || !visible[w]) continue;
    out << " " << UserLetter(w, true) << "=" << w;
    if (!labels[w].empty()) out << "(" << labels[w] << ")";
    any = true;
  }
  if (!any) out << " (none)";
  out << "\n";
  return out.str();
}

}  // namespace after
