#ifndef AFTER_EVAL_ASCII_VIEW_H_
#define AFTER_EVAL_ASCII_VIEW_H_

#include <string>
#include <vector>

#include "common/geometry.h"

namespace after {

/// Renders a target user's 360-degree viewport as a text strip for
/// debugging and the example applications. Each column is an angular
/// bucket of the view circle; the character shows the nearest *rendered*
/// user whose arc covers the bucket:
///
///   'A'..'Z'  visible rendered user (letter = user index mod 26)
///   'a'..'z'  rendered user present in the bucket but hidden behind a
///             nearer rendered user
///   '.'       empty direction
///
/// A second line can mark which users are recommended vs merely
/// physically present. Purely observational — uses the same arc geometry
/// as the occlusion converter, so what the strip shows is exactly what
/// the evaluator scores.
struct AsciiViewOptions {
  int width = 72;           // angular buckets
  double body_radius = 0.25;
};

/// One-line viewport strip for `target` given the rendered set.
std::string RenderViewportStrip(const std::vector<Vec2>& positions,
                                int target,
                                const std::vector<bool>& rendered,
                                const AsciiViewOptions& options);

/// Convenience: strip plus a legend of visible users ("A=17(0.82) ...")
/// using `labels[w]` as the per-user annotation (may be empty).
std::string RenderViewportWithLegend(const std::vector<Vec2>& positions,
                                     int target,
                                     const std::vector<bool>& rendered,
                                     const std::vector<std::string>& labels,
                                     const AsciiViewOptions& options);

}  // namespace after

#endif  // AFTER_EVAL_ASCII_VIEW_H_
