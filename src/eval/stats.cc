#include "eval/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "common/check.h"

namespace after {
namespace {

/// The aggregation entry points are fed by evaluation pipelines that may
/// legitimately produce zero sessions (everything skipped as poisoned)
/// or mismatched pairings (a method dropped targets). Those cases warn
/// and return a NaN-safe default instead of aborting or emitting NaN.
void WarnDegenerate(const char* fn, const char* what) {
  std::fprintf(stderr, "[stats] %s: %s; returning a safe default\n", fn,
               what);
}

/// Continued-fraction helper for the incomplete beta (Numerical-Recipes
/// style modified Lentz algorithm).
double BetaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIterations = 300;
  constexpr double kEpsilon = 1e-14;
  constexpr double kTiny = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::abs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < kEpsilon) break;
  }
  return h;
}

std::vector<double> Ranks(const std::vector<double>& values) {
  const int n = static_cast<int>(values.size());
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return values[a] < values[b]; });
  std::vector<double> ranks(n, 0.0);
  int i = 0;
  while (i < n) {
    int j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    const double average_rank = (i + j) / 2.0 + 1.0;  // 1-based
    for (int k = i; k <= j; ++k) ranks[order[k]] = average_rank;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

double Mean(const std::vector<double>& values) {
  if (values.empty()) {
    WarnDegenerate("Mean", "empty sample (zero sessions?)");
    return 0.0;
  }
  double total = 0.0;
  int finite = 0;
  for (double v : values) {
    if (!std::isfinite(v)) continue;
    total += v;
    ++finite;
  }
  if (finite == 0) {
    WarnDegenerate("Mean", "no finite values in sample");
    return 0.0;
  }
  if (finite < static_cast<int>(values.size()))
    WarnDegenerate("Mean", "non-finite values ignored");
  return total / static_cast<double>(finite);
}

double Variance(const std::vector<double>& values) {
  const int n = static_cast<int>(values.size());
  if (n < 2) return 0.0;
  const double mean = Mean(values);
  double total = 0.0;
  int finite = 0;
  for (double v : values) {
    if (!std::isfinite(v)) continue;
    total += (v - mean) * (v - mean);
    ++finite;
  }
  if (finite < 2) {
    WarnDegenerate("Variance", "fewer than two finite values");
    return 0.0;
  }
  return total / static_cast<double>(finite - 1);
}

double RegularizedIncompleteBeta(double a, double b, double x) {
  AFTER_CHECK_GT(a, 0.0);
  AFTER_CHECK_GT(b, 0.0);
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double log_beta = std::lgamma(a + b) - std::lgamma(a) -
                          std::lgamma(b) + a * std::log(x) +
                          b * std::log(1.0 - x);
  const double front = std::exp(log_beta);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double StudentTCdf(double t, double df) {
  AFTER_CHECK_GT(df, 0.0);
  const double x = df / (df + t * t);
  const double tail = 0.5 * RegularizedIncompleteBeta(df / 2.0, 0.5, x);
  return t >= 0.0 ? 1.0 - tail : tail;
}

TTestResult WelchTTest(const std::vector<double>& a,
                       const std::vector<double>& b) {
  TTestResult result;
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  if (a.size() < 2 || b.size() < 2) return result;
  const double va = Variance(a) / na;
  const double vb = Variance(b) / nb;
  const double denom = std::sqrt(va + vb);
  if (denom < 1e-300) return result;
  result.t_statistic = (Mean(a) - Mean(b)) / denom;
  result.degrees_of_freedom =
      (va + vb) * (va + vb) /
      (va * va / (na - 1.0) + vb * vb / (nb - 1.0));
  const double tail =
      1.0 - StudentTCdf(std::abs(result.t_statistic),
                        result.degrees_of_freedom);
  result.p_value = std::min(1.0, 2.0 * tail);
  return result;
}

TTestResult PairedTTest(const std::vector<double>& a,
                        const std::vector<double>& b) {
  TTestResult result;
  if (a.size() != b.size()) {
    WarnDegenerate("PairedTTest", "sample sizes differ (unpaired data)");
    return result;
  }
  const int n = static_cast<int>(a.size());
  if (n < 2) return result;
  std::vector<double> diff(n);
  for (int i = 0; i < n; ++i) diff[i] = a[i] - b[i];
  const double sd = std::sqrt(Variance(diff));
  if (sd < 1e-300) {
    result.p_value = Mean(diff) == 0.0 ? 1.0 : 0.0;
    return result;
  }
  result.t_statistic = Mean(diff) / (sd / std::sqrt(static_cast<double>(n)));
  result.degrees_of_freedom = n - 1;
  const double tail =
      1.0 - StudentTCdf(std::abs(result.t_statistic),
                        result.degrees_of_freedom);
  result.p_value = std::min(1.0, 2.0 * tail);
  return result;
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  if (x.size() != y.size()) {
    WarnDegenerate("PearsonCorrelation", "sample sizes differ");
    return 0.0;
  }
  const int n = static_cast<int>(x.size());
  if (n < 2) return 0.0;
  const double mx = Mean(x);
  const double my = Mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (int i = 0; i < n; ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  const double denom = std::sqrt(sxx * syy);
  if (denom < 1e-300) return 0.0;
  return sxy / denom;
}

double SpearmanCorrelation(const std::vector<double>& x,
                           const std::vector<double>& y) {
  if (x.size() != y.size()) {
    WarnDegenerate("SpearmanCorrelation", "sample sizes differ");
    return 0.0;
  }
  return PearsonCorrelation(Ranks(x), Ranks(y));
}

}  // namespace after
