#ifndef AFTER_EVAL_STATS_H_
#define AFTER_EVAL_STATS_H_

#include <vector>

namespace after {

/// Statistical utilities for the evaluation section: significance tests
/// between methods (Tables II-IV report p <= 0.0003; the user study
/// reports p <= 0.004) and utility/feedback correlations (Table VIII).

/// Sample mean.
double Mean(const std::vector<double>& values);

/// Unbiased sample variance (n-1 denominator); 0 for fewer than 2 points.
double Variance(const std::vector<double>& values);

struct TTestResult {
  double t_statistic = 0.0;
  double degrees_of_freedom = 0.0;
  /// Two-sided p-value.
  double p_value = 1.0;
};

/// Welch's two-sample t-test (unequal variances).
TTestResult WelchTTest(const std::vector<double>& a,
                       const std::vector<double>& b);

/// Paired t-test (same subjects measured under two methods).
TTestResult PairedTTest(const std::vector<double>& a,
                        const std::vector<double>& b);

/// Pearson linear correlation coefficient.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

/// Spearman rank correlation (average ranks for ties).
double SpearmanCorrelation(const std::vector<double>& x,
                           const std::vector<double>& y);

/// Regularized incomplete beta function I_x(a, b) via the continued
/// fraction expansion (exposed for tests).
double RegularizedIncompleteBeta(double a, double b, double x);

/// CDF of Student's t distribution with `df` degrees of freedom.
double StudentTCdf(double t, double df);

}  // namespace after

#endif  // AFTER_EVAL_STATS_H_
