#include "eval/table_printer.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace after {
namespace {

std::string FormatCell(double value, int precision, bool best) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f%s", precision, value,
                best ? "*" : "");
  return buffer;
}

void AppendRow(std::ostringstream& out, const std::string& label,
               const std::vector<std::string>& cells, size_t width) {
  out << "  ";
  out.width(24);
  out.setf(std::ios::left, std::ios::adjustfield);
  out << label;
  for (const auto& cell : cells) {
    out.width(static_cast<std::streamsize>(width));
    out.setf(std::ios::right, std::ios::adjustfield);
    out << cell;
  }
  out << "\n";
}

}  // namespace

TablePrinter::TablePrinter(std::string title) : title_(std::move(title)) {}

void TablePrinter::AddResult(const EvalResult& result) {
  results_.push_back(result);
}

std::string TablePrinter::Render() const {
  std::ostringstream out;
  out << "== " << title_ << " ==\n";
  if (results_.empty()) return out.str();

  std::vector<std::string> headers;
  for (const auto& r : results_) headers.push_back(r.method);

  struct RowSpec {
    const char* label;
    int precision;
    bool higher_better;
    double (*get)(const EvalResult&);
  };
  const RowSpec rows[] = {
      {"AFTER Utility (up)", 1, true,
       [](const EvalResult& r) { return r.after_utility; }},
      {"Preference (up)", 1, true,
       [](const EvalResult& r) { return r.preference_utility; }},
      {"Social Presence (up)", 1, true,
       [](const EvalResult& r) { return r.social_presence_utility; }},
      {"View Occlusion % (down)", 1, false,
       [](const EvalResult& r) { return r.view_occlusion_rate * 100.0; }},
      {"Running Time ms (down)", 3, false,
       [](const EvalResult& r) { return r.running_time_ms; }},
  };

  size_t width = 12;
  for (const auto& h : headers) width = std::max(width, h.size() + 2);

  AppendRow(out, "Metric", headers, width);
  for (const auto& row : rows) {
    std::vector<double> values;
    for (const auto& r : results_) values.push_back(row.get(r));
    const double best =
        row.higher_better
            ? *std::max_element(values.begin(), values.end())
            : *std::min_element(values.begin(), values.end());
    std::vector<std::string> cells;
    for (double v : values)
      cells.push_back(FormatCell(v, row.precision, v == best));
    AppendRow(out, row.label, cells, width);
  }
  return out.str();
}

void TablePrinter::Print() const { std::fputs(Render().c_str(), stdout); }

std::string RenderGenericTable(
    const std::string& title, const std::vector<std::string>& row_labels,
    const std::vector<std::string>& column_labels,
    const std::vector<std::vector<double>>& cells, int precision) {
  std::ostringstream out;
  out << "== " << title << " ==\n";
  size_t width = 12;
  for (const auto& c : column_labels) width = std::max(width, c.size() + 2);

  AppendRow(out, "", column_labels, width);
  for (size_t r = 0; r < row_labels.size(); ++r) {
    std::vector<std::string> row_cells;
    for (double v : cells[r])
      row_cells.push_back(FormatCell(v, precision, false));
    AppendRow(out, row_labels[r], row_cells, width);
  }
  return out.str();
}

}  // namespace after
