#ifndef AFTER_EVAL_TABLE_PRINTER_H_
#define AFTER_EVAL_TABLE_PRINTER_H_

#include <string>
#include <vector>

#include "core/evaluator.h"

namespace after {

/// Formats evaluation results in the layout of the paper's tables:
/// metric rows (AFTER Utility, Preference, Social Presence, View
/// Occlusion %, Running Time ms) against method columns, with the best
/// value per row marked by '*'.
class TablePrinter {
 public:
  explicit TablePrinter(std::string title);

  /// Appends one method column.
  void AddResult(const EvalResult& result);

  /// Renders the table to a string (also used by benches to tee output).
  std::string Render() const;

  /// Prints to stdout.
  void Print() const;

  const std::vector<EvalResult>& results() const { return results_; }

 private:
  std::string title_;
  std::vector<EvalResult> results_;
};

/// Renders a generic numeric table: one row label per row, one column
/// label per column. Used by sensitivity tables (VI, VII) and the user
/// study figure data.
std::string RenderGenericTable(
    const std::string& title, const std::vector<std::string>& row_labels,
    const std::vector<std::string>& column_labels,
    const std::vector<std::vector<double>>& cells, int precision = 1);

}  // namespace after

#endif  // AFTER_EVAL_TABLE_PRINTER_H_
