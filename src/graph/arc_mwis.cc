#include "graph/arc_mwis.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace after {
namespace {

constexpr double kTwoPi = 2.0 * M_PI;

/// Smallest absolute angular difference, in [0, pi].
double AngularDistance(double a, double b) {
  double diff = std::fmod(std::abs(a - b), kTwoPi);
  if (diff > M_PI) diff = kTwoPi - diff;
  return diff;
}

bool ArcCoversPoint(const ViewArc& arc, double theta) {
  return AngularDistance(arc.center, theta) <= arc.half_width;
}

/// Normalizes an angle into [0, 2*pi).
double Normalize(double angle) {
  double a = std::fmod(angle, kTwoPi);
  if (a < 0.0) a += kTwoPi;
  return a;
}

}  // namespace

MwisResult IntervalMwis(const std::vector<double>& starts,
                        const std::vector<double>& ends,
                        const std::vector<double>& weights) {
  const int n = static_cast<int>(starts.size());
  AFTER_CHECK_EQ(static_cast<int>(ends.size()), n);
  AFTER_CHECK_EQ(static_cast<int>(weights.size()), n);

  MwisResult result;
  result.selected.assign(n, false);
  if (n == 0) return result;

  // Indices of positive-weight intervals sorted by end.
  std::vector<int> order;
  for (int i = 0; i < n; ++i)
    if (weights[i] > 0.0) order.push_back(i);
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return ends[a] < ends[b]; });
  const int m = static_cast<int>(order.size());
  if (m == 0) return result;

  // prev[i]: largest j < i with ends[order[j]] < starts[order[i]]
  // (strict: touching intervals conflict), or -1.
  std::vector<int> prev(m, -1);
  std::vector<double> sorted_ends(m);
  for (int i = 0; i < m; ++i) sorted_ends[i] = ends[order[i]];
  for (int i = 0; i < m; ++i) {
    const double s = starts[order[i]];
    const int idx = static_cast<int>(
        std::lower_bound(sorted_ends.begin(), sorted_ends.end(), s) -
        sorted_ends.begin());
    prev[i] = idx - 1;
  }

  // dp[i]: best weight using the first i sorted intervals.
  std::vector<double> dp(m + 1, 0.0);
  for (int i = 1; i <= m; ++i) {
    const double take = weights[order[i - 1]] + dp[prev[i - 1] + 1];
    dp[i] = std::max(dp[i - 1], take);
  }
  result.weight = dp[m];

  // Backtrack.
  int i = m;
  while (i > 0) {
    const double take = weights[order[i - 1]] + dp[prev[i - 1] + 1];
    if (take >= dp[i - 1]) {
      result.selected[order[i - 1]] = true;
      i = prev[i - 1] + 1;
    } else {
      --i;
    }
  }
  return result;
}

MwisResult CircularArcMwis(const std::vector<ViewArc>& arcs,
                           const std::vector<double>& weights) {
  const int n = static_cast<int>(arcs.size());
  AFTER_CHECK_EQ(static_cast<int>(weights.size()), n);

  MwisResult best;
  best.selected.assign(n, false);

  std::vector<int> candidates;
  for (int i = 0; i < n; ++i)
    if (arcs[i].valid && weights[i] > 0.0) candidates.push_back(i);
  if (candidates.empty()) return best;

  // Full-circle arcs conflict with everything: they can only appear as a
  // singleton solution; handle them directly and exclude them below.
  std::vector<int> normal;
  for (int i : candidates) {
    if (arcs[i].half_width >= M_PI) {
      if (weights[i] > best.weight) {
        best.selected.assign(n, false);
        best.selected[i] = true;
        best.weight = weights[i];
      }
    } else {
      normal.push_back(i);
    }
  }
  if (normal.empty()) return best;

  // Helper: interval MWIS over a subset of arcs mapped to a cut at
  // `origin` (all arcs given must not cross the origin).
  auto solve_interval = [&](const std::vector<int>& subset, double origin) {
    std::vector<double> starts, ends, subset_weights;
    starts.reserve(subset.size());
    for (int i : subset) {
      const double start = Normalize(arcs[i].center - arcs[i].half_width -
                                     origin);
      starts.push_back(start);
      ends.push_back(start + 2.0 * arcs[i].half_width);
      subset_weights.push_back(weights[i]);
    }
    return IntervalMwis(starts, ends, subset_weights);
  };

  const double theta0 = arcs[normal.front()].center;

  // Case (a): no selected arc covers theta0.
  {
    std::vector<int> subset;
    for (int i : normal)
      if (!ArcCoversPoint(arcs[i], theta0)) subset.push_back(i);
    // Cut just after theta0; arcs not covering theta0 cannot cross it.
    const MwisResult sub = solve_interval(subset, theta0);
    if (sub.weight > best.weight) {
      best.weight = sub.weight;
      best.selected.assign(n, false);
      for (size_t k = 0; k < subset.size(); ++k)
        if (sub.selected[k]) best.selected[subset[k]] = true;
    }
  }

  // Case (b): some selected arc a covers theta0. Enumerate it; the rest
  // of the solution lives in a's complementary interval.
  for (int a : normal) {
    if (!ArcCoversPoint(arcs[a], theta0)) continue;
    std::vector<int> subset;
    for (int i : normal)
      if (i != a && !ArcsOverlap(arcs[i], arcs[a])) subset.push_back(i);
    const double a_end = arcs[a].center + arcs[a].half_width;
    const MwisResult sub = solve_interval(subset, a_end);
    const double total = weights[a] + sub.weight;
    if (total > best.weight) {
      best.weight = total;
      best.selected.assign(n, false);
      best.selected[a] = true;
      for (size_t k = 0; k < subset.size(); ++k)
        if (sub.selected[k]) best.selected[subset[k]] = true;
    }
  }
  return best;
}

}  // namespace after
