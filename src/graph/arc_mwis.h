#ifndef AFTER_GRAPH_ARC_MWIS_H_
#define AFTER_GRAPH_ARC_MWIS_H_

#include <vector>

#include "graph/mwis.h"
#include "graph/occlusion_converter.h"

namespace after {

/// Exact polynomial MWIS for circular-arc graphs.
///
/// The static occlusion graph of Sec. III-B is by construction a
/// circular-arc graph (plus the isolated target vertex). While MWIS is
/// NP-hard on general geometric intersection graphs (Theorem 1 uses unit
/// disks), it is polynomial on circular-arc graphs: either the optimum
/// avoids a chosen cut point θ0 — reducing to weighted interval
/// scheduling — or it contains one of the arcs covering θ0, whose
/// complement is again an interval domain. Complexity O(k · n log n)
/// with k arcs covering the cut.
///
/// This gives the exact *per-step* optimum of the AFTER objective at a
/// single time step, i.e., the quantity COMURNet approximates with its
/// expensive search and POSHGNN approximates in real time (challenge C2).
///
/// `arcs[i].valid == false` (the target user) and non-positive weights
/// are never selected. Overlap semantics match ArcsOverlap exactly
/// (touching arcs conflict), so the result is an independent set of the
/// corresponding OcclusionGraph.
MwisResult CircularArcMwis(const std::vector<ViewArc>& arcs,
                           const std::vector<double>& weights);

/// Exact weighted interval scheduling (MWIS on an interval graph):
/// intervals are closed [start, end]; touching intervals conflict.
/// Exposed for tests. `selected` output is indexed like the inputs.
MwisResult IntervalMwis(const std::vector<double>& starts,
                        const std::vector<double>& ends,
                        const std::vector<double>& weights);

}  // namespace after

#endif  // AFTER_GRAPH_ARC_MWIS_H_
