#include "graph/generators.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"

namespace after {

SocialGraph BarabasiAlbert(int num_nodes, int edges_per_node, Rng& rng) {
  AFTER_CHECK_GE(num_nodes, 2);
  AFTER_CHECK_GE(edges_per_node, 1);
  SocialGraph graph(num_nodes);

  // Seed clique of edges_per_node + 1 nodes.
  const int seed = std::min(num_nodes, edges_per_node + 1);
  std::vector<int> attachment_targets;  // node repeated once per degree
  for (int u = 0; u < seed; ++u) {
    for (int v = u + 1; v < seed; ++v) {
      graph.AddEdge(u, v, 1.0);
      attachment_targets.push_back(u);
      attachment_targets.push_back(v);
    }
  }

  for (int u = seed; u < num_nodes; ++u) {
    std::vector<int> chosen;
    int guard = 0;
    while (static_cast<int>(chosen.size()) < edges_per_node &&
           guard++ < 100 * edges_per_node) {
      const int pick = attachment_targets[rng.UniformInt(
          static_cast<int>(attachment_targets.size()))];
      if (std::find(chosen.begin(), chosen.end(), pick) == chosen.end())
        chosen.push_back(pick);
    }
    for (int v : chosen) {
      graph.AddEdge(u, v, 1.0);
      attachment_targets.push_back(u);
      attachment_targets.push_back(v);
    }
  }
  return graph;
}

SocialGraph StochasticBlockModel(int num_nodes, int num_blocks, double p_in,
                                 double p_out, Rng& rng,
                                 std::vector<int>* block_of) {
  AFTER_CHECK_GE(num_nodes, 1);
  AFTER_CHECK_GE(num_blocks, 1);
  SocialGraph graph(num_nodes);
  std::vector<int> blocks(num_nodes);
  for (int u = 0; u < num_nodes; ++u) blocks[u] = u % num_blocks;
  rng.Shuffle(blocks);

  for (int u = 0; u < num_nodes; ++u) {
    for (int v = u + 1; v < num_nodes; ++v) {
      const double p = blocks[u] == blocks[v] ? p_in : p_out;
      if (rng.Bernoulli(p)) graph.AddEdge(u, v, 1.0);
    }
  }
  if (block_of != nullptr) *block_of = std::move(blocks);
  return graph;
}

SocialGraph WattsStrogatz(int num_nodes, int k, double rewire_prob, Rng& rng) {
  AFTER_CHECK_GE(num_nodes, 3);
  AFTER_CHECK_GE(k, 1);
  AFTER_CHECK_LT(2 * k, num_nodes);
  SocialGraph graph(num_nodes);
  // Ring lattice.
  for (int u = 0; u < num_nodes; ++u) {
    for (int offset = 1; offset <= k; ++offset) {
      int v = (u + offset) % num_nodes;
      if (rng.Bernoulli(rewire_prob)) {
        // Rewire to a random non-neighbor.
        int guard = 0;
        int w = rng.UniformInt(num_nodes);
        while ((w == u || graph.HasEdge(u, w)) && guard++ < 100)
          w = rng.UniformInt(num_nodes);
        if (w != u && !graph.HasEdge(u, w)) {
          graph.AddEdge(u, w, 1.0);
          continue;
        }
      }
      if (!graph.HasEdge(u, v)) graph.AddEdge(u, v, 1.0);
    }
  }
  return graph;
}

}  // namespace after
