#ifndef AFTER_GRAPH_GENERATORS_H_
#define AFTER_GRAPH_GENERATORS_H_

#include <vector>

#include "graph/social_graph.h"

namespace after {

class Rng;

/// Random social-network generators used by the synthetic dataset builders
/// that stand in for the gated Timik / SMM / Hubs data (see DESIGN.md).

/// Barabasi-Albert preferential attachment: each new node attaches to
/// `edges_per_node` existing nodes with probability proportional to
/// degree. Produces the heavy-tailed degree distribution typical of the
/// Timik social metaverse network.
SocialGraph BarabasiAlbert(int num_nodes, int edges_per_node, Rng& rng);

/// Stochastic block model with `num_blocks` equal-size communities;
/// within-community edges appear with probability `p_in`, across with
/// `p_out`. Models SMM's nationality/interest communities.
/// Returns the graph and writes each node's block id to `block_of`.
SocialGraph StochasticBlockModel(int num_nodes, int num_blocks, double p_in,
                                 double p_out, Rng& rng,
                                 std::vector<int>* block_of = nullptr);

/// Watts-Strogatz small world: ring lattice with `k` neighbors per side,
/// each edge rewired with probability `rewire_prob`. Models the
/// small-workshop acquaintance structure of the Hubs dataset.
SocialGraph WattsStrogatz(int num_nodes, int k, double rewire_prob, Rng& rng);

}  // namespace after

#endif  // AFTER_GRAPH_GENERATORS_H_
