#include "graph/gig.h"

#include "common/rng.h"

namespace after {

bool DisksIntersect(const Disk& a, const Disk& b) {
  const double limit = a.radius + b.radius;
  return (a.center - b.center).NormSq() <= limit * limit;
}

OcclusionGraph BuildGeometricIntersectionGraph(
    const std::vector<Disk>& disks) {
  const int n = static_cast<int>(disks.size());
  OcclusionGraph graph(n);
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j)
      if (DisksIntersect(disks[i], disks[j])) graph.AddEdge(i, j);
  return graph;
}

std::vector<Disk> RandomDisks(int count, double extent, double min_radius,
                              double max_radius, Rng& rng) {
  std::vector<Disk> disks(count);
  for (auto& disk : disks) {
    disk.center = Vec2(rng.Uniform(0.0, extent), rng.Uniform(0.0, extent));
    disk.radius = rng.Uniform(min_radius, max_radius);
  }
  return disks;
}

}  // namespace after
