#ifndef AFTER_GRAPH_GIG_H_
#define AFTER_GRAPH_GIG_H_

#include <vector>

#include "common/geometry.h"
#include "graph/occlusion_graph.h"

namespace after {

class Rng;

/// Geometric Intersection Graph machinery from Definition 6 / Lemma 1.
/// Vertices are compact connected objects (disks here); an edge exists
/// when two objects intersect. Lemma 1: any GIG is a DOG with T = 0, which
/// underlies the NP-hardness reduction of Theorem 1.

/// A closed disk in R^2.
struct Disk {
  Vec2 center;
  double radius = 0.0;
};

/// True iff the two closed disks intersect.
bool DisksIntersect(const Disk& a, const Disk& b);

/// Builds the geometric intersection graph over the disks.
OcclusionGraph BuildGeometricIntersectionGraph(const std::vector<Disk>& disks);

/// Samples `count` random disks inside [0, extent]^2 with radii in
/// [min_radius, max_radius] (used by property tests and the hardness
/// reduction bench).
std::vector<Disk> RandomDisks(int count, double extent, double min_radius,
                              double max_radius, Rng& rng);

}  // namespace after

#endif  // AFTER_GRAPH_GIG_H_
