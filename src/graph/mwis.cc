#include "graph/mwis.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"

namespace after {
namespace {

struct BranchState {
  const OcclusionGraph* graph;
  const std::vector<double>* weights;
  std::vector<bool> alive;
  std::vector<bool> selected;
  double current = 0.0;
  MwisResult best;
};

double RemainingUpperBound(const BranchState& state) {
  double bound = 0.0;
  for (int u = 0; u < state.graph->num_nodes(); ++u)
    if (state.alive[u] && (*state.weights)[u] > 0.0)
      bound += (*state.weights)[u];
  return bound;
}

void Branch(BranchState& state) {
  if (state.current + RemainingUpperBound(state) <= state.best.weight)
    return;

  // Pick the alive positive-weight vertex with maximum degree among alive.
  int pivot = -1;
  int pivot_degree = -1;
  for (int u = 0; u < state.graph->num_nodes(); ++u) {
    if (!state.alive[u] || (*state.weights)[u] <= 0.0) continue;
    int degree = 0;
    for (int v : state.graph->Neighbors(u))
      if (state.alive[v]) ++degree;
    if (degree > pivot_degree) {
      pivot_degree = degree;
      pivot = u;
    }
  }
  if (pivot < 0) {
    if (state.current > state.best.weight) {
      state.best.weight = state.current;
      state.best.selected = state.selected;
    }
    return;
  }

  // Branch 1: include pivot, kill its closed neighborhood.
  std::vector<int> killed;
  state.alive[pivot] = false;
  killed.push_back(pivot);
  for (int v : state.graph->Neighbors(pivot)) {
    if (state.alive[v]) {
      state.alive[v] = false;
      killed.push_back(v);
    }
  }
  state.selected[pivot] = true;
  state.current += (*state.weights)[pivot];
  Branch(state);
  state.current -= (*state.weights)[pivot];
  state.selected[pivot] = false;
  for (int v : killed) state.alive[v] = true;

  // Branch 2: exclude pivot.
  state.alive[pivot] = false;
  Branch(state);
  state.alive[pivot] = true;
}

}  // namespace

MwisResult ExactMwis(const OcclusionGraph& graph,
                     const std::vector<double>& weights) {
  AFTER_CHECK_EQ(static_cast<int>(weights.size()), graph.num_nodes());
  BranchState state;
  state.graph = &graph;
  state.weights = &weights;
  state.alive.assign(graph.num_nodes(), true);
  state.selected.assign(graph.num_nodes(), false);
  state.best.selected.assign(graph.num_nodes(), false);
  state.best.weight = 0.0;
  Branch(state);
  return state.best;
}

MwisResult GreedyMwis(const OcclusionGraph& graph,
                      const std::vector<double>& weights) {
  AFTER_CHECK_EQ(static_cast<int>(weights.size()), graph.num_nodes());
  const int n = graph.num_nodes();
  std::vector<bool> alive(n, true);
  MwisResult result;
  result.selected.assign(n, false);

  while (true) {
    int best = -1;
    double best_score = 0.0;
    for (int u = 0; u < n; ++u) {
      if (!alive[u] || weights[u] <= 0.0) continue;
      int degree = 0;
      for (int v : graph.Neighbors(u))
        if (alive[v]) ++degree;
      const double score = weights[u] / static_cast<double>(degree + 1);
      if (best < 0 || score > best_score) {
        best = u;
        best_score = score;
      }
    }
    if (best < 0) break;
    result.selected[best] = true;
    result.weight += weights[best];
    alive[best] = false;
    for (int v : graph.Neighbors(best)) alive[v] = false;
  }
  return result;
}

MwisResult LocalSearchMwis(const OcclusionGraph& graph,
                           const std::vector<double>& weights, int iterations,
                           Rng& rng) {
  const int n = graph.num_nodes();
  MwisResult best = GreedyMwis(graph, weights);
  MwisResult current = best;

  auto try_add = [&](MwisResult& sol, int u) {
    if (sol.selected[u] || weights[u] <= 0.0) return false;
    for (int v : graph.Neighbors(u))
      if (sol.selected[v]) return false;
    sol.selected[u] = true;
    sol.weight += weights[u];
    return true;
  };

  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;

  for (int iter = 0; iter < iterations; ++iter) {
    // Perturb: drop a random selected vertex (if any).
    std::vector<int> chosen;
    for (int u = 0; u < n; ++u)
      if (current.selected[u]) chosen.push_back(u);
    if (!chosen.empty()) {
      const int drop =
          chosen[rng.UniformInt(static_cast<int>(chosen.size()))];
      current.selected[drop] = false;
      current.weight -= weights[drop];
    }
    // Greedy re-completion in random order.
    rng.Shuffle(order);
    for (int u : order) try_add(current, u);

    // (1,2)-swap: replace a selected vertex by a heavier non-neighbor pair
    // is approximated here by single-swap improvement: select u when its
    // weight exceeds the total weight of its selected neighbors.
    for (int u : order) {
      if (current.selected[u] || weights[u] <= 0.0) continue;
      double blocked_weight = 0.0;
      for (int v : graph.Neighbors(u))
        if (current.selected[v]) blocked_weight += weights[v];
      if (weights[u] > blocked_weight) {
        for (int v : graph.Neighbors(u)) {
          if (current.selected[v]) {
            current.selected[v] = false;
            current.weight -= weights[v];
          }
        }
        current.selected[u] = true;
        current.weight += weights[u];
      }
    }

    if (current.weight > best.weight) best = current;
  }
  return best;
}

double SelectionWeight(const OcclusionGraph& graph,
                       const std::vector<double>& weights,
                       const std::vector<bool>& selected, bool check) {
  AFTER_CHECK_EQ(static_cast<int>(selected.size()), graph.num_nodes());
  if (check) AFTER_CHECK_EQ(graph.CountConflicts(selected), 0);
  double total = 0.0;
  for (int u = 0; u < graph.num_nodes(); ++u)
    if (selected[u]) total += weights[u];
  return total;
}

}  // namespace after
