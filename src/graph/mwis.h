#ifndef AFTER_GRAPH_MWIS_H_
#define AFTER_GRAPH_MWIS_H_

#include <vector>

#include "graph/occlusion_graph.h"

namespace after {

class Rng;

/// Maximum Weighted Independent Set solvers (Definition 5). The AFTER
/// problem at T = 0 reduces to MWIS on the occlusion graph (Theorem 1);
/// these solvers power the COMURNet baseline, the hardness-reduction
/// tests, and offline-optimal references.

struct MwisResult {
  std::vector<bool> selected;
  double weight = 0.0;
};

/// Exact branch-and-bound MWIS. Exponential worst case; intended for
/// graphs up to a few dozen vertices (tests, Hub-sized rooms).
/// Negative-weight vertices are never selected.
MwisResult ExactMwis(const OcclusionGraph& graph,
                     const std::vector<double>& weights);

/// Greedy MWIS: repeatedly picks the vertex maximizing
/// weight / (degree + 1) among remaining vertices, then deletes its
/// closed neighborhood. Linear-ish; used for large graphs.
MwisResult GreedyMwis(const OcclusionGraph& graph,
                      const std::vector<double>& weights);

/// Iterated local search on top of a greedy start: random restarts plus
/// (1,2)-swap improvements for `iterations` rounds. This is the engine of
/// the COMURNet baseline, whose per-step cost scales with `iterations`.
MwisResult LocalSearchMwis(const OcclusionGraph& graph,
                           const std::vector<double>& weights, int iterations,
                           Rng& rng);

/// Total weight of a selection (checks independence when `check` is true).
double SelectionWeight(const OcclusionGraph& graph,
                       const std::vector<double>& weights,
                       const std::vector<bool>& selected, bool check = false);

}  // namespace after

#endif  // AFTER_GRAPH_MWIS_H_
