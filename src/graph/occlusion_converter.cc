#include "graph/occlusion_converter.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace after {
namespace {

/// Smallest absolute angular difference between two angles, in [0, pi].
double AngularDistance(double a, double b) {
  double diff = std::fmod(std::abs(a - b), 2.0 * M_PI);
  if (diff > M_PI) diff = 2.0 * M_PI - diff;
  return diff;
}

}  // namespace

ViewArc ComputeViewArc(const Vec2& target, const Vec2& other,
                       double body_radius) {
  ViewArc arc;
  const Vec2 delta = other - target;
  const double distance = delta.Norm();
  arc.distance = distance;
  arc.valid = true;
  if (distance <= body_radius) {
    // The other user's body encloses the target: full-circle arc.
    arc.center = 0.0;
    arc.half_width = M_PI;
    return arc;
  }
  arc.center = delta.Angle();
  arc.half_width = std::asin(body_radius / distance);
  return arc;
}

bool ArcsOverlap(const ViewArc& a, const ViewArc& b) {
  if (!a.valid || !b.valid) return false;
  return AngularDistance(a.center, b.center) <= a.half_width + b.half_width;
}

std::vector<ViewArc> ComputeViewArcs(const std::vector<Vec2>& positions,
                                     int target, double body_radius) {
  AFTER_CHECK_GE(target, 0);
  AFTER_CHECK_LT(target, static_cast<int>(positions.size()));
  std::vector<ViewArc> arcs(positions.size());
  for (size_t i = 0; i < positions.size(); ++i) {
    if (static_cast<int>(i) == target) continue;  // stays invalid
    arcs[i] =
        ComputeViewArc(positions[target], positions[i], body_radius);
  }
  return arcs;
}

OcclusionGraph BuildOcclusionGraph(const std::vector<Vec2>& positions,
                                   int target, double body_radius) {
  const int n = static_cast<int>(positions.size());
  const std::vector<ViewArc> arcs =
      ComputeViewArcs(positions, target, body_radius);
  OcclusionGraph graph(n);
  for (int i = 0; i < n; ++i) {
    if (!arcs[i].valid) continue;
    for (int j = i + 1; j < n; ++j) {
      if (!arcs[j].valid) continue;
      if (ArcsOverlap(arcs[i], arcs[j])) graph.AddEdgeUnchecked(i, j);
    }
  }
  return graph;
}

OcclusionGraph BuildOcclusionGraphFromArcs(const std::vector<ViewArc>& arcs) {
  const int n = static_cast<int>(arcs.size());
  OcclusionGraph graph(n);
  for (int i = 0; i < n; ++i) {
    if (!arcs[i].valid) continue;
    for (int j = i + 1; j < n; ++j) {
      if (!arcs[j].valid) continue;
      if (ArcsOverlap(arcs[i], arcs[j])) graph.AddEdgeUnchecked(i, j);
    }
  }
  return graph;
}

void UpdateViewArcs(const std::vector<Vec2>& positions, int target,
                    double body_radius, const std::vector<int>& moved,
                    std::vector<ViewArc>* arcs) {
  AFTER_CHECK(arcs != nullptr);
  AFTER_CHECK_EQ(arcs->size(), positions.size());
  AFTER_CHECK_GE(target, 0);
  AFTER_CHECK_LT(target, static_cast<int>(positions.size()));
  for (int m : moved) {
    AFTER_CHECK(m != target);
    (*arcs)[m] =
        ComputeViewArc(positions[target], positions[m], body_radius);
  }
}

OcclusionGraph UpdateOcclusionGraph(const OcclusionGraph& previous,
                                    const std::vector<ViewArc>& arcs,
                                    const std::vector<int>& moved,
                                    const std::vector<bool>& is_moved) {
  const int n = static_cast<int>(arcs.size());
  AFTER_CHECK_EQ(previous.num_nodes(), n);
  AFTER_CHECK_EQ(static_cast<int>(is_moved.size()), n);

  // Both streams below are produced in lexicographic (i, j) order and
  // cover disjoint pair sets, so a single sorted merge reproduces the
  // exact AddEdge sequence of a from-scratch build (which iterates
  // i < j lexicographically). That makes the result structurally
  // identical, not just edge-set equal.
  // Stream 1 is the surviving edges — both endpoints unmoved, overlap
  // unchanged — consumed straight off previous.edges() with an inline
  // filter (skipping moved endpoints) so the old lexicographic order is
  // preserved without materializing an intermediate vector.
  const std::vector<std::pair<int, int>>& old_edges = previous.edges();

  // Stream 2: every pair with at least one moved endpoint, re-tested.
  // For a moved i we test all j > i; for an unmoved i only the moved
  // j > i (`moved` is sorted, so j ascends). Pairs where both ends
  // moved appear exactly once, via the moved-i branch.
  std::vector<std::pair<int, int>> fresh;
  for (int i = 0; i < n; ++i) {
    if (!arcs[i].valid) continue;
    if (is_moved[i]) {
      for (int j = i + 1; j < n; ++j) {
        if (!arcs[j].valid) continue;
        if (ArcsOverlap(arcs[i], arcs[j])) fresh.emplace_back(i, j);
      }
    } else {
      for (int m : moved) {
        if (m <= i) continue;
        if (!arcs[m].valid) continue;
        if (ArcsOverlap(arcs[i], arcs[m])) fresh.emplace_back(i, m);
      }
    }
  }

  OcclusionGraph graph(n);
  graph.ReserveEdges(previous.num_edges() + static_cast<int>(fresh.size()));
  {
    // Capacity hints: an unmoved node keeps at most its previous degree
    // and gains its fresh incident edges; a moved node's edges are all
    // re-derived, so only the fresh count bounds it.
    std::vector<int> fresh_degree(n, 0);
    for (const auto& e : fresh) {
      ++fresh_degree[e.first];
      ++fresh_degree[e.second];
    }
    for (int u = 0; u < n; ++u) {
      const int cap =
          (is_moved[u] ? 0 : previous.Degree(u)) + fresh_degree[u];
      if (cap > 0) graph.ReserveNeighbors(u, cap);
    }
  }
  size_t k = 0;
  size_t f = 0;
  while (true) {
    while (k < old_edges.size() &&
           (is_moved[old_edges[k].first] || is_moved[old_edges[k].second]))
      ++k;
    if (k == old_edges.size() && f == fresh.size()) break;
    if (f == fresh.size() ||
        (k < old_edges.size() && old_edges[k] < fresh[f])) {
      graph.AddEdgeUnchecked(old_edges[k].first, old_edges[k].second);
      ++k;
    } else {
      graph.AddEdgeUnchecked(fresh[f].first, fresh[f].second);
      ++f;
    }
  }
  return graph;
}

DynamicOcclusionGraph BuildDynamicOcclusionGraph(
    const std::vector<std::vector<Vec2>>& trajectory, int target,
    double body_radius) {
  DynamicOcclusionGraph dog;
  for (const auto& positions : trajectory)
    dog.Append(BuildOcclusionGraph(positions, target, body_radius));
  return dog;
}

std::vector<bool> PhysicallyBlockedUsers(const std::vector<Vec2>& positions,
                                         int target, double body_radius,
                                         const std::vector<bool>& is_physical) {
  const int n = static_cast<int>(positions.size());
  AFTER_CHECK_EQ(static_cast<int>(is_physical.size()), n);
  std::vector<bool> blocked(n, false);
  if (!is_physical[target]) return blocked;

  const std::vector<ViewArc> arcs =
      ComputeViewArcs(positions, target, body_radius);
  for (int w = 0; w < n; ++w) {
    if (w == target) continue;
    for (int u = 0; u < n; ++u) {
      if (u == w || u == target) continue;
      if (!is_physical[u]) continue;  // only physical bodies block
      if (arcs[u].distance < arcs[w].distance &&
          ArcsOverlap(arcs[u], arcs[w])) {
        blocked[w] = true;
        break;
      }
    }
  }
  return blocked;
}

std::vector<bool> ComputeVisibility(const std::vector<Vec2>& positions,
                                    int target, double body_radius,
                                    const std::vector<bool>& rendered) {
  const int n = static_cast<int>(positions.size());
  AFTER_CHECK_EQ(static_cast<int>(rendered.size()), n);
  const std::vector<ViewArc> arcs =
      ComputeViewArcs(positions, target, body_radius);
  std::vector<bool> visible(n, false);
  for (int w = 0; w < n; ++w) {
    if (w == target || !rendered[w]) continue;
    bool blocked = false;
    for (int u = 0; u < n; ++u) {
      if (u == w || u == target || !rendered[u]) continue;
      if (arcs[u].distance < arcs[w].distance &&
          ArcsOverlap(arcs[u], arcs[w])) {
        blocked = true;
        break;
      }
    }
    visible[w] = !blocked;
  }
  return visible;
}

}  // namespace after
