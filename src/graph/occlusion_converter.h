#ifndef AFTER_GRAPH_OCCLUSION_CONVERTER_H_
#define AFTER_GRAPH_OCCLUSION_CONVERTER_H_

#include <vector>

#include "common/geometry.h"
#include "graph/occlusion_graph.h"

namespace after {

/// Occlusion-graph converter from Sec. III-B of the paper: the target user
/// v is placed at the center of a circle and every surrounding user w
/// occupies an arc I_t^w of v's 360-degree view. The circular-arc graph
/// over those arcs (plus v as an isolated node) is v's static occlusion
/// graph at time t.

/// The arc a user occupies in the target's 360-degree view.
struct ViewArc {
  /// Angular center in radians, in (-pi, pi].
  double center = 0.0;
  /// Angular half-width in radians, in [0, pi].
  double half_width = 0.0;
  /// Euclidean distance from the target (depth; used for visibility).
  double distance = 0.0;
  /// False for the target itself (no arc).
  bool valid = false;
};

/// Computes the arc `other` occupies in `target`'s view, modeling each
/// user as a disk of `body_radius`. If the disk contains the target the
/// arc covers the full circle.
ViewArc ComputeViewArc(const Vec2& target, const Vec2& other,
                       double body_radius);

/// True when the two arcs intersect on the circle (I_a ∩ I_b != ∅).
bool ArcsOverlap(const ViewArc& a, const ViewArc& b);

/// Arcs for all users from the perspective of `positions[target]`.
/// Index `target` gets an invalid arc.
std::vector<ViewArc> ComputeViewArcs(const std::vector<Vec2>& positions,
                                     int target, double body_radius);

/// Builds the static occlusion graph for `target` at one time instant:
/// an edge between w_i and w_j iff their arcs overlap. The target itself
/// is an isolated node (Sec. III-B).
OcclusionGraph BuildOcclusionGraph(const std::vector<Vec2>& positions,
                                   int target, double body_radius);

/// Same graph, built from precomputed arcs (ComputeViewArcs). Lets the
/// delta-tick path cache a target's arcs across ticks and still produce
/// a graph bitwise-identical to the position-based overload.
OcclusionGraph BuildOcclusionGraphFromArcs(const std::vector<ViewArc>& arcs);

/// Incremental counterpart of ComputeViewArcs for delta ticks
/// (docs/ticking.md): `arcs` holds the target's arcs from the previous
/// tick and only the entries for the agents in `moved` (sorted
/// ascending, never containing `target`) are recomputed against the new
/// positions. An arc depends only on the target's and the arc owner's
/// positions, so untouched entries are exactly what ComputeViewArcs
/// would produce.
void UpdateViewArcs(const std::vector<Vec2>& positions, int target,
                    double body_radius, const std::vector<int>& moved,
                    std::vector<ViewArc>* arcs);

/// Delta-rebuilds the target's static occlusion graph: edges between
/// two unmoved agents are carried over from `previous`; every pair with
/// at least one endpoint in `moved` is re-tested against the (already
/// patched, see UpdateViewArcs) `arcs`. Requirements: `target` is not
/// in `moved`, `moved` is sorted ascending, and `is_moved` is its
/// indicator vector. Cost O(E + |moved| * n) instead of O(n^2), and the
/// result — including edge insertion order and adjacency order — is
/// bitwise-identical to BuildOcclusionGraphFromArcs(arcs).
OcclusionGraph UpdateOcclusionGraph(const OcclusionGraph& previous,
                                    const std::vector<ViewArc>& arcs,
                                    const std::vector<int>& moved,
                                    const std::vector<bool>& is_moved);

/// Builds the dynamic occlusion graph over a trajectory: one static graph
/// per time step. `trajectory[t][i]` is user i's position at time t.
DynamicOcclusionGraph BuildDynamicOcclusionGraph(
    const std::vector<std::vector<Vec2>>& trajectory, int target,
    double body_radius);

/// Hybrid-participation blocking (MIA's HP mask, Sec. IV-A): blocked[w]
/// is true when a strictly nearer *physical* participant's arc covers
/// w's arc center from the target's viewpoint. `is_physical[u]` marks
/// users with a physical body in the target's space (MR interface).
/// All-false when the target itself is not physical (a VR viewer sees
/// rendered avatars, not bodies). Shared by core/mia.cc and the fused
/// inference engine (infer/engine.cc) so both paths make identical mask
/// decisions.
std::vector<bool> PhysicallyBlockedUsers(const std::vector<Vec2>& positions,
                                         int target, double body_radius,
                                         const std::vector<bool>& is_physical);

/// Visibility indicator 1[v => w at t] for a set of rendered users: w is
/// visible iff w is rendered and no strictly-nearer rendered user's arc
/// overlaps w's arc (the nearer user's image blocks w). The target index
/// is never visible (it is the viewer).
std::vector<bool> ComputeVisibility(const std::vector<Vec2>& positions,
                                    int target, double body_radius,
                                    const std::vector<bool>& rendered);

}  // namespace after

#endif  // AFTER_GRAPH_OCCLUSION_CONVERTER_H_
