#include "graph/occlusion_converter_3d.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace after {

double Vec3::Norm() const { return std::sqrt(NormSq()); }

ViewCap ComputeViewCap(const Vec3& target, const Vec3& other,
                       double body_radius) {
  ViewCap cap;
  const Vec3 delta = other - target;
  const double distance = delta.Norm();
  cap.distance = distance;
  cap.valid = true;
  if (distance <= body_radius) {
    cap.direction = Vec3(1.0, 0.0, 0.0);
    cap.angular_radius = M_PI;  // body encloses the target
    return cap;
  }
  const double inv = 1.0 / distance;
  cap.direction = Vec3(delta.x * inv, delta.y * inv, delta.z * inv);
  cap.angular_radius = std::asin(body_radius / distance);
  return cap;
}

bool CapsOverlap(const ViewCap& a, const ViewCap& b) {
  if (!a.valid || !b.valid) return false;
  const double cosine =
      std::clamp(a.direction.Dot(b.direction), -1.0, 1.0);
  const double separation = std::acos(cosine);
  return separation <= a.angular_radius + b.angular_radius;
}

std::vector<ViewCap> ComputeViewCaps(const std::vector<Vec3>& positions,
                                     int target, double body_radius) {
  AFTER_CHECK_GE(target, 0);
  AFTER_CHECK_LT(target, static_cast<int>(positions.size()));
  std::vector<ViewCap> caps(positions.size());
  for (size_t i = 0; i < positions.size(); ++i) {
    if (static_cast<int>(i) == target) continue;
    caps[i] = ComputeViewCap(positions[target], positions[i], body_radius);
  }
  return caps;
}

OcclusionGraph BuildOcclusionGraph3d(const std::vector<Vec3>& positions,
                                     int target, double body_radius) {
  const int n = static_cast<int>(positions.size());
  const std::vector<ViewCap> caps =
      ComputeViewCaps(positions, target, body_radius);
  OcclusionGraph graph(n);
  for (int i = 0; i < n; ++i) {
    if (!caps[i].valid) continue;
    for (int j = i + 1; j < n; ++j) {
      if (!caps[j].valid) continue;
      if (CapsOverlap(caps[i], caps[j])) graph.AddEdge(i, j);
    }
  }
  return graph;
}

std::vector<bool> ComputeVisibility3d(const std::vector<Vec3>& positions,
                                      int target, double body_radius,
                                      const std::vector<bool>& rendered) {
  const int n = static_cast<int>(positions.size());
  AFTER_CHECK_EQ(static_cast<int>(rendered.size()), n);
  const std::vector<ViewCap> caps =
      ComputeViewCaps(positions, target, body_radius);
  std::vector<bool> visible(n, false);
  for (int w = 0; w < n; ++w) {
    if (w == target || !rendered[w]) continue;
    bool blocked = false;
    for (int u = 0; u < n; ++u) {
      if (u == w || u == target || !rendered[u]) continue;
      if (caps[u].distance < caps[w].distance &&
          CapsOverlap(caps[u], caps[w])) {
        blocked = true;
        break;
      }
    }
    visible[w] = !blocked;
  }
  return visible;
}

}  // namespace after
