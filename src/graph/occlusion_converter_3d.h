#ifndef AFTER_GRAPH_OCCLUSION_CONVERTER_3D_H_
#define AFTER_GRAPH_OCCLUSION_CONVERTER_3D_H_

#include <vector>

#include "graph/occlusion_graph.h"

namespace after {

/// 3D occlusion-graph converter. Definition 4 formulates the social XR
/// space as W ⊂ R³; the paper's Sec. III-B converter assumes a flat
/// environment "without loss of generality". This module supplies the
/// general case: each surrounding user, modeled as a sphere of
/// body_radius, subtends a spherical cap of the target's view sphere;
/// two users occlude iff their caps intersect, i.e., iff the great-circle
/// angle between their directions is at most the sum of the caps'
/// angular radii.

/// 3D position in W = {(x, y, z) ∈ R³}.
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  Vec3() = default;
  Vec3(double x_in, double y_in, double z_in) : x(x_in), y(y_in), z(z_in) {}

  Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  double Dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  double NormSq() const { return Dot(*this); }
  double Norm() const;
};

/// The spherical cap a user occupies on the target's view sphere.
struct ViewCap {
  /// Unit direction from the target to the user.
  Vec3 direction;
  /// Angular radius of the cap, in [0, pi].
  double angular_radius = 0.0;
  /// Euclidean distance (depth).
  double distance = 0.0;
  /// False for the target itself.
  bool valid = false;
};

/// Computes the cap `other` subtends in `target`'s view. If the body
/// sphere contains the target, the cap covers the whole sphere.
ViewCap ComputeViewCap(const Vec3& target, const Vec3& other,
                       double body_radius);

/// True when the two caps intersect on the view sphere.
bool CapsOverlap(const ViewCap& a, const ViewCap& b);

/// Caps for all users from `positions[target]`'s perspective.
std::vector<ViewCap> ComputeViewCaps(const std::vector<Vec3>& positions,
                                     int target, double body_radius);

/// Static 3D occlusion graph: an edge between w_i and w_j iff their caps
/// overlap; the target is an isolated node.
OcclusionGraph BuildOcclusionGraph3d(const std::vector<Vec3>& positions,
                                     int target, double body_radius);

/// Depth-ordered cap visibility, the 3D analogue of ComputeVisibility.
std::vector<bool> ComputeVisibility3d(const std::vector<Vec3>& positions,
                                      int target, double body_radius,
                                      const std::vector<bool>& rendered);

}  // namespace after

#endif  // AFTER_GRAPH_OCCLUSION_CONVERTER_3D_H_
