#include "graph/occlusion_graph.h"

#include <algorithm>

#include "common/check.h"

namespace after {

OcclusionGraph::OcclusionGraph(int num_nodes) : adjacency_(num_nodes) {
  AFTER_CHECK_GE(num_nodes, 0);
}

void OcclusionGraph::AddEdge(int u, int v) {
  AFTER_CHECK_GE(u, 0);
  AFTER_CHECK_LT(u, num_nodes());
  AFTER_CHECK_GE(v, 0);
  AFTER_CHECK_LT(v, num_nodes());
  AFTER_CHECK_NE(u, v);
  if (HasEdge(u, v)) return;
  adjacency_[u].push_back(v);
  adjacency_[v].push_back(u);
  edges_.emplace_back(std::min(u, v), std::max(u, v));
}

bool OcclusionGraph::HasEdge(int u, int v) const {
  const auto& nbrs = adjacency_[u];
  return std::find(nbrs.begin(), nbrs.end(), v) != nbrs.end();
}

Matrix OcclusionGraph::ToAdjacencyMatrix() const {
  Matrix adjacency(num_nodes(), num_nodes());
  for (const auto& [u, v] : edges_) {
    adjacency.At(u, v) = 1.0;
    adjacency.At(v, u) = 1.0;
  }
  return adjacency;
}

int OcclusionGraph::CountConflicts(const std::vector<bool>& selected) const {
  AFTER_CHECK_EQ(static_cast<int>(selected.size()), num_nodes());
  int conflicts = 0;
  for (const auto& [u, v] : edges_)
    if (selected[u] && selected[v]) ++conflicts;
  return conflicts;
}

DynamicOcclusionGraph::DynamicOcclusionGraph(int num_nodes, int num_steps)
    : num_nodes_(num_nodes) {
  steps_.reserve(num_steps);
  for (int t = 0; t < num_steps; ++t) steps_.emplace_back(num_nodes);
}

OcclusionGraph& DynamicOcclusionGraph::At(int t) {
  AFTER_CHECK_GE(t, 0);
  AFTER_CHECK_LT(t, num_steps());
  return steps_[t];
}

const OcclusionGraph& DynamicOcclusionGraph::At(int t) const {
  AFTER_CHECK_GE(t, 0);
  AFTER_CHECK_LT(t, num_steps());
  return steps_[t];
}

void DynamicOcclusionGraph::Append(OcclusionGraph graph) {
  if (steps_.empty()) {
    num_nodes_ = graph.num_nodes();
  } else {
    AFTER_CHECK_EQ(graph.num_nodes(), num_nodes_);
  }
  steps_.push_back(std::move(graph));
}

}  // namespace after
