#ifndef AFTER_GRAPH_OCCLUSION_GRAPH_H_
#define AFTER_GRAPH_OCCLUSION_GRAPH_H_

#include <utility>
#include <vector>

#include "tensor/matrix.h"

namespace after {

/// Static occlusion graph O_t^v = (V, E_t^v) from Definition 4: a simple
/// undirected graph over the users whose edges are pairwise view overlaps
/// from the target user's perspective at a single time step. Also serves
/// as the general simple-graph type consumed by the MWIS solvers and
/// produced by the geometric-intersection-graph builder (Lemma 1).
class OcclusionGraph {
 public:
  OcclusionGraph() = default;
  explicit OcclusionGraph(int num_nodes);

  int num_nodes() const { return static_cast<int>(adjacency_.size()); }
  int num_edges() const { return static_cast<int>(edges_.size()); }

  /// Adds an undirected edge (deduplicated).
  void AddEdge(int u, int v);

  /// Bulk-insertion fast path for builders that generate each edge
  /// exactly once with u < v (the occlusion converters' lexicographic
  /// i < j loops do): skips AddEdge's dedup scan — which is O(degree)
  /// per call and quadratic on high-degree hubs — while producing the
  /// exact same adjacency/edge layout. Feeding it a duplicate or an
  /// unordered pair corrupts the graph; callers own that invariant.
  void AddEdgeUnchecked(int u, int v) {
    adjacency_[u].push_back(v);
    adjacency_[v].push_back(u);
    edges_.emplace_back(u, v);
  }

  /// Capacity hints for bulk builders; contents and layout unchanged.
  void ReserveEdges(int num_edges) { edges_.reserve(num_edges); }
  void ReserveNeighbors(int u, int capacity) {
    adjacency_[u].reserve(capacity);
  }

  bool HasEdge(int u, int v) const;

  const std::vector<int>& Neighbors(int u) const { return adjacency_[u]; }
  const std::vector<std::pair<int, int>>& edges() const { return edges_; }

  int Degree(int u) const { return static_cast<int>(adjacency_[u].size()); }

  /// Dense symmetric 0/1 adjacency matrix A_t (used by MIA and the
  /// POSHGNN loss quadratic form).
  Matrix ToAdjacencyMatrix() const;

  /// Number of edges with both endpoints selected; 0 means `selected`
  /// is an independent set.
  int CountConflicts(const std::vector<bool>& selected) const;

  /// Structural identity, including internal layout: equal graphs have
  /// the same edge insertion order and the same per-node adjacency
  /// order. This is the bit-exactness contract the delta-tick fuzz
  /// leans on — a delta-updated graph must be indistinguishable from a
  /// from-scratch rebuild even to order-sensitive consumers.
  friend bool operator==(const OcclusionGraph& a, const OcclusionGraph& b) {
    return a.adjacency_ == b.adjacency_ && a.edges_ == b.edges_;
  }
  friend bool operator!=(const OcclusionGraph& a, const OcclusionGraph& b) {
    return !(a == b);
  }

 private:
  std::vector<std::vector<int>> adjacency_;
  std::vector<std::pair<int, int>> edges_;
};

/// Dynamic occlusion graph O^v = (V, E^v, T) from Definition 4: one static
/// occlusion graph per time step t in {0, ..., T}.
class DynamicOcclusionGraph {
 public:
  DynamicOcclusionGraph() = default;
  DynamicOcclusionGraph(int num_nodes, int num_steps);

  int num_nodes() const { return num_nodes_; }
  int num_steps() const { return static_cast<int>(steps_.size()); }

  OcclusionGraph& At(int t);
  const OcclusionGraph& At(int t) const;

  void Append(OcclusionGraph graph);

 private:
  int num_nodes_ = 0;
  std::vector<OcclusionGraph> steps_;
};

}  // namespace after

#endif  // AFTER_GRAPH_OCCLUSION_GRAPH_H_
