#include "graph/social_graph.h"

#include "common/check.h"

namespace after {

SocialGraph::SocialGraph(int num_nodes) : adjacency_(num_nodes) {
  AFTER_CHECK_GE(num_nodes, 0);
}

void SocialGraph::AddEdge(int u, int v, double weight) {
  AFTER_CHECK_GE(u, 0);
  AFTER_CHECK_LT(u, num_nodes());
  AFTER_CHECK_GE(v, 0);
  AFTER_CHECK_LT(v, num_nodes());
  AFTER_CHECK_NE(u, v);
  for (auto& n : adjacency_[u]) {
    if (n.node == v) {
      n.weight = weight;
      for (auto& m : adjacency_[v]) {
        if (m.node == u) m.weight = weight;
      }
      return;
    }
  }
  adjacency_[u].push_back({v, weight});
  adjacency_[v].push_back({u, weight});
  ++num_edges_;
}

bool SocialGraph::HasEdge(int u, int v) const {
  for (const auto& n : adjacency_[u])
    if (n.node == v) return true;
  return false;
}

double SocialGraph::EdgeWeight(int u, int v) const {
  for (const auto& n : adjacency_[u])
    if (n.node == v) return n.weight;
  return 0.0;
}

int SocialGraph::Degree(int u) const {
  return static_cast<int>(adjacency_[u].size());
}

const std::vector<SocialGraph::Neighbor>& SocialGraph::Neighbors(int u) const {
  return adjacency_[u];
}

}  // namespace after
