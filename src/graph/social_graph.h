#ifndef AFTER_GRAPH_SOCIAL_GRAPH_H_
#define AFTER_GRAPH_SOCIAL_GRAPH_H_

#include <vector>

namespace after {

/// Undirected weighted social network G = (V, E) from the AFTER problem
/// definition. Vertices are users; edge weights encode social tie
/// strength in [0, 1] (used to derive the social presence utility s).
class SocialGraph {
 public:
  struct Neighbor {
    int node;
    double weight;
  };

  SocialGraph() = default;
  explicit SocialGraph(int num_nodes);

  int num_nodes() const { return static_cast<int>(adjacency_.size()); }
  int num_edges() const { return num_edges_; }

  /// Adds an undirected edge; if it already exists the weight is replaced.
  void AddEdge(int u, int v, double weight = 1.0);

  bool HasEdge(int u, int v) const;

  /// Edge weight, or 0 if the edge does not exist.
  double EdgeWeight(int u, int v) const;

  int Degree(int u) const;

  const std::vector<Neighbor>& Neighbors(int u) const;

 private:
  std::vector<std::vector<Neighbor>> adjacency_;
  int num_edges_ = 0;
};

}  // namespace after

#endif  // AFTER_GRAPH_SOCIAL_GRAPH_H_
