#include "graph/temporal_index.h"

#include <algorithm>

#include "common/check.h"

namespace after {

void TemporalView::FillPruneMask(int target, int k,
                                 std::vector<bool>* mask) const {
  AFTER_CHECK(mask != nullptr);
  AFTER_CHECK_GE(target, 0);
  AFTER_CHECK_LT(target, n_);
  mask->assign(n_, false);
  if (k <= 0 || k >= n_ - 1) return;  // nothing to prune
  std::vector<int> cand;
  cand.reserve(n_ - 1);
  for (int i = 0; i < n_; ++i) {
    if (i != target) cand.push_back(i);
  }
  // (score desc, index asc) is a strict total order, so the top-k set is
  // unique and the mask deterministic.
  const auto better = [this, target](int a, int b) {
    const std::int32_t sa = score(target, a);
    const std::int32_t sb = score(target, b);
    if (sa != sb) return sa > sb;
    return a < b;
  };
  std::nth_element(cand.begin(), cand.begin() + k, cand.end(), better);
  for (auto it = cand.begin() + k; it != cand.end(); ++it) {
    (*mask)[*it] = true;
  }
}

std::vector<int> TemporalView::TopCandidates(int target, int k) const {
  AFTER_CHECK_GE(target, 0);
  AFTER_CHECK_LT(target, n_);
  std::vector<int> cand;
  cand.reserve(n_ - 1);
  for (int i = 0; i < n_; ++i) {
    if (i != target) cand.push_back(i);
  }
  const auto better = [this, target](int a, int b) {
    const std::int32_t sa = score(target, a);
    const std::int32_t sb = score(target, b);
    if (sa != sb) return sa > sb;
    return a < b;
  };
  const size_t take = std::min<size_t>(k < 0 ? 0 : k, cand.size());
  std::partial_sort(cand.begin(), cand.begin() + take, cand.end(), better);
  cand.resize(take);
  return cand;
}

void TemporalIndex::Rebuild(const std::vector<Vec2>& positions,
                            std::int64_t tick) {
  n_ = static_cast<int>(positions.size());
  scores_.assign(static_cast<size_t>(n_) * n_, TemporalView::kNever);
  for (int i = 0; i < n_; ++i) {
    for (int j = i + 1; j < n_; ++j) {
      if (CoPresent(positions[i], positions[j])) {
        At(scores_, i, j) = TemporalView::kCoPresent;
        At(scores_, j, i) = TemporalView::kCoPresent;
      }
    }
  }
  last_tick_ = tick;
  ++version_;
  // History is gone, so views from before the rebuild are no longer
  // patchable; dropping the ring makes PublishView fall back to copies.
  ring_.clear();
}

void TemporalIndex::Update(const std::vector<Vec2>& positions,
                           const std::vector<int>& moved,
                           std::int64_t tick) {
  AFTER_CHECK_EQ(static_cast<int>(positions.size()), n_);
  for (int m : moved) {
    AFTER_CHECK_GE(m, 0);
    AFTER_CHECK_LT(m, n_);
    for (int c = 0; c < n_; ++c) {
      if (c == m) continue;
      std::int32_t& s = At(scores_, m, c);
      std::int32_t& mirror = At(scores_, c, m);
      if (CoPresent(positions[m], positions[c])) {
        s = TemporalView::kCoPresent;
        mirror = TemporalView::kCoPresent;
      } else if (s == TemporalView::kCoPresent) {
        // The pair just separated; it was last co-present at the
        // previous update. (A doubly-moved pair hits this branch only
        // on its first visit — the second sees the stamped tick.)
        s = static_cast<std::int32_t>(last_tick_);
        mirror = s;
      }
    }
  }
  last_tick_ = tick;
  ++version_;
  ring_.push_back(RingEntry{version_, moved});
  while (ring_.size() > kRingCapacity) ring_.pop_front();
}

std::shared_ptr<const TemporalView> TemporalIndex::PublishView() {
  // Pick the freshest pooled buffer nobody else holds — the fresher the
  // buffer, the smaller the patch.
  std::shared_ptr<TemporalView> buf;
  for (const auto& p : pool_) {
    if (p.use_count() == 1 && (!buf || p->version_ > buf->version_)) {
      buf = p;
    }
  }
  if (!buf) {
    buf = std::make_shared<TemporalView>();
    if (pool_.size() < kPoolCapacity) pool_.push_back(buf);
  }

  bool patchable = buf->n_ == n_ && buf->version_ >= 0 &&
                   buf->version_ <= version_;
  if (patchable && buf->version_ < version_) {
    patchable = !ring_.empty() && ring_.back().version == version_ &&
                ring_.front().version <= buf->version_ + 1;
  }
  if (patchable) {
    if (buf->version_ < version_) {
      std::vector<bool> touched(n_, false);
      for (const auto& e : ring_) {
        if (e.version <= buf->version_) continue;
        for (int m : e.moved) touched[m] = true;
      }
      for (int m = 0; m < n_; ++m) {
        if (!touched[m]) continue;
        const size_t row = static_cast<size_t>(m) * n_;
        std::copy(scores_.begin() + row, scores_.begin() + row + n_,
                  buf->scores_.begin() + row);
        for (int t = 0; t < n_; ++t) {
          buf->scores_[static_cast<size_t>(t) * n_ + m] =
              scores_[static_cast<size_t>(t) * n_ + m];
        }
      }
    }
  } else {
    buf->n_ = n_;
    buf->scores_ = scores_;
  }
  buf->version_ = version_;
  return buf;
}

}  // namespace after
