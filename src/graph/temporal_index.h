#ifndef AFTER_GRAPH_TEMPORAL_INDEX_H_
#define AFTER_GRAPH_TEMPORAL_INDEX_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/geometry.h"

namespace after {

/// Temporal candidate pre-filter (docs/ticking.md, TGLib idiom from
/// PAPERS.md): a per-(target, candidate) recency/co-presence score that
/// caps the candidate set handed to the POSHGNN ranker in large rooms.
///
/// The score is a sentinel-encoded "last co-presence" value:
///   - kCoPresent  — the pair is within `co_presence_radius` right now;
///   - a tick      — the last tick at which the pair was co-present;
///   - kNever      — the pair has never been co-present (since the last
///                   full Rebuild, which forgets history by design).
/// Ranking candidates by (score descending, index ascending) is exactly
/// recency ranking — currently-co-present first, then most recently
/// co-present, then never-met — without any decay arithmetic, which is
/// what makes the incremental update cheap: a pair's score can only
/// change when one of its endpoints moved, so a tick with |M| movers
/// costs O(|M| * n) instead of O(n^2).

/// Immutable published view of the score matrix. Snapshots hold one of
/// these via shared_ptr; the index recycles view buffers whose refcount
/// dropped back to one (see TemporalIndex::PublishView).
class TemporalView {
 public:
  static constexpr std::int32_t kCoPresent = INT32_MAX;
  static constexpr std::int32_t kNever = INT32_MIN;

  int num_users() const { return n_; }
  std::int64_t version() const { return version_; }

  /// Score for candidate `c` in target `t`'s view (symmetric).
  std::int32_t score(int t, int c) const {
    return scores_[static_cast<size_t>(t) * n_ + c];
  }

  /// Fills `mask` (resized to n) with true for every candidate that is
  /// NOT in the target's top-`k` by (score desc, index asc). The target
  /// itself is never masked. With k <= 0 or k >= n-1 nothing is pruned.
  /// The mask plugs into StepContext::blocklist, so ranking among the
  /// surviving candidates is exactly the unpruned ranking restricted to
  /// them (the accuracy contract of ServerOptions::max_candidates).
  void FillPruneMask(int target, int k, std::vector<bool>* mask) const;

  /// The target's top-`k` candidate indices in rank order (for tests
  /// and introspection).
  std::vector<int> TopCandidates(int target, int k) const;

 private:
  friend class TemporalIndex;
  int n_ = 0;
  std::int64_t version_ = -1;
  std::vector<std::int32_t> scores_;
};

/// Incrementally maintained recency/co-presence index owned by a Room
/// and updated under its tick lock. Not thread-safe by itself; the
/// published views are immutable and safe to read from any thread.
class TemporalIndex {
 public:
  struct Options {
    /// Pairs within this distance count as co-present.
    double co_presence_radius = 2.0;
  };

  explicit TemporalIndex(const Options& options) : options_(options) {}

  int num_users() const { return n_; }

  /// Rebuilds from scratch at `tick`: currently-co-present pairs score
  /// kCoPresent, everything else kNever. Historical recency is lost —
  /// the documented behavior after migration / cold-restart recovery.
  void Rebuild(const std::vector<Vec2>& positions, std::int64_t tick);

  /// Incremental tick update: re-evaluates only pairs with at least one
  /// endpoint in `moved` (sorted ascending). A pair leaving co-presence
  /// is stamped with the previous update's tick (its last co-present
  /// tick); untouched pairs cannot have changed co-presence status, so
  /// their scores are already correct. Idempotent for doubly-moved
  /// pairs.
  void Update(const std::vector<Vec2>& positions,
              const std::vector<int>& moved, std::int64_t tick);

  /// Publishes an immutable view of the current scores. Reuses a pooled
  /// buffer whose only owner is the pool (use_count() == 1), patching
  /// just the rows/columns touched since that buffer's version via the
  /// recent-mover ring; falls back to a full copy when the buffer is
  /// too stale (ring no longer covers its version) or the pool is
  /// exhausted.
  std::shared_ptr<const TemporalView> PublishView();

 private:
  std::int32_t& At(std::vector<std::int32_t>& s, int t, int c) const {
    return s[static_cast<size_t>(t) * n_ + c];
  }
  bool CoPresent(const Vec2& a, const Vec2& b) const {
    const double r = options_.co_presence_radius;
    return (a - b).NormSq() <= r * r;
  }

  Options options_;
  int n_ = 0;
  std::int64_t last_tick_ = -1;
  /// Bumped by every Rebuild/Update; views remember the version they
  /// were copied at so PublishView knows what to patch.
  std::int64_t version_ = 0;
  std::vector<std::int32_t> scores_;

  /// Ring of per-update mover lists, newest last. A pooled view at
  /// version v is patchable when every entry with version > v is still
  /// in the ring.
  struct RingEntry {
    std::int64_t version;
    std::vector<int> moved;
  };
  static constexpr size_t kRingCapacity = 64;
  static constexpr size_t kPoolCapacity = 8;
  std::deque<RingEntry> ring_;
  std::vector<std::shared_ptr<TemporalView>> pool_;
};

}  // namespace after

#endif  // AFTER_GRAPH_TEMPORAL_INDEX_H_
