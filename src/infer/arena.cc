#include "infer/arena.h"

#include <algorithm>
#include <cstring>

#include "infer/tensor.h"

namespace after {
namespace infer {

Arena::Block::Block(std::size_t floats)
    : data(AlignedAlloc(floats)), size(AlignedCount(floats)) {}

Arena::Block::~Block() { AlignedFree(data); }

Arena::Arena(std::size_t initial_floats) {
  if (initial_floats > 0) {
    blocks_.push_back(std::make_unique<Block>(initial_floats));
    capacity_ = blocks_.back()->size;
  }
}

float* Arena::Allocate(std::size_t count) {
  const std::size_t aligned = AlignedCount(std::max<std::size_t>(count, 1));
  if (blocks_.empty() ||
      blocks_.back()->offset + aligned > blocks_.back()->size) {
    // Overflow: chain a block big enough for this carve-out (and then
    // some, to bound the number of chained blocks while warming up).
    const std::size_t grown = std::max(aligned, std::max<std::size_t>(
        capacity_, 4096 / sizeof(float)));
    blocks_.push_back(std::make_unique<Block>(grown));
    capacity_ += blocks_.back()->size;
  }
  Block& block = *blocks_.back();
  float* out = block.data + block.offset;
  block.offset += aligned;
  used_ += aligned;
  // Blocks are zeroed at birth, but a reused block carries the previous
  // forward's activations.
  std::memset(out, 0, aligned * sizeof(float));
  return out;
}

void Arena::Reset() {
  peak_ = std::max(peak_, used_);
  used_ = 0;
  if (blocks_.size() > 1 || (capacity_ > 0 && capacity_ < peak_)) {
    // Coalesce: one block sized for the peak so the next forward runs
    // without chaining.
    blocks_.clear();
    blocks_.push_back(std::make_unique<Block>(peak_));
    capacity_ = blocks_.back()->size;
  }
  for (auto& block : blocks_) block->offset = 0;
}

WorkspacePool::Handle WorkspacePool::Acquire() {
  std::unique_ptr<Workspace> workspace;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!free_.empty()) {
      workspace = std::move(free_.back());
      free_.pop_back();
    } else {
      ++created_;
    }
  }
  if (workspace == nullptr) workspace = std::make_unique<Workspace>();
  return Handle(this, std::move(workspace));
}

std::size_t WorkspacePool::created() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return created_;
}

void WorkspacePool::Release(std::unique_ptr<Workspace> workspace) {
  workspace->arena.Reset();
  std::lock_guard<std::mutex> lock(mutex_);
  free_.push_back(std::move(workspace));
}

}  // namespace infer
}  // namespace after
