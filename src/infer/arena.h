#ifndef AFTER_INFER_ARENA_H_
#define AFTER_INFER_ARENA_H_

#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

namespace after {
namespace infer {

/// Bump allocator over 64-byte-aligned float blocks. One forward pass
/// carves all of its activations out of the arena and Reset() rewinds
/// the cursor — after the arena has warmed up to a room's peak working
/// set, steady-state serving performs zero heap allocations per
/// request.
///
/// Growth never invalidates live pointers: when the current block is
/// exhausted mid-forward an overflow block is chained, and the *next*
/// Reset() coalesces the total footprint into one contiguous block. The
/// bench/test hook for the zero-allocation claim is block_count() +
/// capacity(): both are stable across steady-state forwards.
class Arena {
 public:
  explicit Arena(std::size_t initial_floats = 0);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `count` zero-initialized floats aligned to
  /// kTensorAlignment. Valid until the next Reset().
  float* Allocate(std::size_t count);

  /// Rewinds the cursor; coalesces overflow blocks into one block sized
  /// for the peak observed footprint.
  void Reset();

  /// Total floats the arena can hand out before growing again.
  std::size_t capacity() const { return capacity_; }
  /// 1 in steady state; >1 only between an overflow and the next Reset.
  std::size_t block_count() const { return blocks_.size(); }
  /// Floats handed out since the last Reset.
  std::size_t used() const { return used_; }
  /// High-water mark across all forwards (drives coalescing).
  std::size_t peak() const { return peak_; }

 private:
  struct Block {
    explicit Block(std::size_t floats);
    ~Block();
    Block(const Block&) = delete;
    Block& operator=(const Block&) = delete;
    float* data;
    std::size_t size;
    std::size_t offset = 0;
  };

  std::vector<std::unique_ptr<Block>> blocks_;
  std::size_t capacity_ = 0;
  std::size_t used_ = 0;
  std::size_t peak_ = 0;
};

/// All per-request scratch state of one fused forward: the activation
/// arena plus the decode scratch vectors (kept outside the arena so
/// their capacity also persists across requests). One workspace serves
/// one forward at a time; concurrent requests each hold their own.
struct Workspace {
  Arena arena;
  /// Decode scratch (candidate indices + scores), reused across calls.
  /// Scores are double so the budgeted top-k ordering matches the
  /// reference decoder's comparisons as closely as possible.
  std::vector<int> candidates;
  std::vector<double> decode_score;
  /// Per-node degree of the occlusion adjacency (float for the fused
  /// LWP e0-degree term; see docs/inference.md).
  std::vector<float> degree;
  std::vector<bool> blocked;

  explicit Workspace(std::size_t initial_floats = 0)
      : arena(initial_floats) {}
};

/// Free-list of workspaces shared by all threads serving one frozen
/// model. Acquire pops (or creates) a workspace; Release returns it.
/// The lock guards only the pointer swap — the forward itself runs
/// lock-free on the acquired workspace, so a shared FrozenPoshgnn stays
/// wait-free in the model code and TSan-clean under concurrent rooms.
class WorkspacePool {
 public:
  class Handle {
   public:
    Handle(WorkspacePool* pool, std::unique_ptr<Workspace> workspace)
        : pool_(pool), workspace_(std::move(workspace)) {}
    ~Handle() {
      if (workspace_ != nullptr) pool_->Release(std::move(workspace_));
    }
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;
    Workspace* get() { return workspace_.get(); }
    Workspace* operator->() { return workspace_.get(); }

   private:
    WorkspacePool* pool_;
    std::unique_ptr<Workspace> workspace_;
  };

  /// Pops a warmed workspace or creates a fresh one.
  Handle Acquire();

  /// Workspaces created over the pool's lifetime (a steady-state serving
  /// mix should plateau at the peak concurrency, not grow per request).
  std::size_t created() const;

 private:
  void Release(std::unique_ptr<Workspace> workspace);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Workspace>> free_;
  std::size_t created_ = 0;
};

}  // namespace infer
}  // namespace after

#endif  // AFTER_INFER_ARENA_H_
