#include "infer/dispatch.h"

#include <cstdlib>
#include <cstring>

namespace after {
namespace infer {
namespace {

SimdLevel ProbeCpu() {
#if defined(__x86_64__) || defined(__i386__)
  // __builtin_cpu_supports consults CPUID (and XGETBV for the OS-saves-
  // YMM half of the contract), so a positive answer really means the
  // AVX2 paths may execute.
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma"))
    return SimdLevel::kAvx2Fma;
#endif
  return SimdLevel::kScalar;
}

SimdLevel Clamp(SimdLevel hardware) {
  const char* env = std::getenv("AFTER_INFER_SIMD");
  if (env != nullptr && std::strcmp(env, "scalar") == 0)
    return SimdLevel::kScalar;
  return hardware;
}

}  // namespace

SimdLevel DetectCpuSimdLevel() {
  static const SimdLevel level = ProbeCpu();
  return level;
}

SimdLevel ActiveSimdLevel() {
  static const SimdLevel level = Clamp(DetectCpuSimdLevel());
  return level;
}

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2Fma:
      return "avx2+fma";
  }
  return "unknown";
}

}  // namespace infer
}  // namespace after
