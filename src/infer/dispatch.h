#ifndef AFTER_INFER_DISPATCH_H_
#define AFTER_INFER_DISPATCH_H_

namespace after {
namespace infer {

/// Instruction-set tiers the fused kernels are compiled for. Dispatch
/// is resolved at runtime (CPUID), never at compile time: the same
/// binary runs the AVX2/FMA paths on capable hosts and the portable
/// scalar fallbacks everywhere else. kernels_avx2.cc carries per-
/// function target("avx2,fma") attributes, so the translation unit
/// builds without -mavx2 and the vector instructions are only ever
/// reached behind a positive CPUID probe.
enum class SimdLevel {
  kScalar = 0,
  kAvx2Fma = 1,
};

/// Highest tier this CPU supports (CPUID probe, cached after the first
/// call).
SimdLevel DetectCpuSimdLevel();

/// DetectCpuSimdLevel() clamped by the AFTER_INFER_SIMD environment
/// variable ("scalar" forces the fallback paths; "avx2" is a no-op cap
/// at the AVX2 tier). Unknown values are ignored. Cached.
SimdLevel ActiveSimdLevel();

/// "scalar" / "avx2+fma" — recorded by benches and the serving banner.
const char* SimdLevelName(SimdLevel level);

}  // namespace infer
}  // namespace after

#endif  // AFTER_INFER_DISPATCH_H_
