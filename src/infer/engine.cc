#include "infer/engine.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"
#include "common/geometry.h"
#include "graph/occlusion_converter.h"

namespace after {
namespace infer {
namespace {

constexpr int kFeatureDim = 4;  // [p̂, ŝ, distance, interface]
constexpr int kDeltaDim = 3;    // [e0, e1, e2]

/// Two contexts describe the same inference job when every input the
/// forward consults is identical — same scene snapshot (by pointer; the
/// in-tick batcher passes one snapshot per room tick), same target, same
/// geometry knobs. Duplicate jobs in one batch reuse the first answer.
bool SameJob(const StepContext& a, const StepContext& b) {
  return a.t == b.t && a.target == b.target && a.positions == b.positions &&
         a.occlusion == b.occlusion && a.interfaces == b.interfaces &&
         a.preference == b.preference &&
         a.social_presence == b.social_presence &&
         a.body_radius == b.body_radius &&
         a.distance_scale == b.distance_scale && a.blocklist == b.blocklist;
}

}  // namespace

PoshgnnInferEngine::PoshgnnInferEngine(const EngineConfig& config,
                                       const std::vector<Matrix>& parameters,
                                       SimdLevel level)
    : config_(config), level_(level), ops_(&OpsFor(level)) {
  const int k = config_.hidden_dim;
  AFTER_CHECK_GT(k, 0);
  AFTER_CHECK_EQ(static_cast<int>(parameters.size()),
                 config_.use_lwp ? 15 : 6);

  // PDR: layer1 {M1 4xK, M2 4xK, b 1xK}, layer2 {M1 Kx1, M2 Kx1, b 1x1}.
  AFTER_CHECK_EQ(parameters[0].rows(), kFeatureDim);
  AFTER_CHECK_EQ(parameters[0].cols(), k);
  AFTER_CHECK_EQ(parameters[3].rows(), k);
  AFTER_CHECK_EQ(parameters[3].cols(), 1);
  pdr1_self_ = TensorF32::FromMatrix(parameters[0]);
  pdr1_neigh_ = TensorF32::FromMatrix(parameters[1]);
  pdr1_bias_ = TensorF32::FromMatrix(parameters[2]);
  pdr2_self_ = TensorF32::FromMatrix(parameters[3]);
  pdr2_neigh_ = TensorF32::FromMatrix(parameters[4]);
  pdr2_bias_ = TensorF32::FromMatrix(parameters[5]);

  if (!config_.use_lwp) return;

  // LWP layer 1 consumes [x̂ | Δ | h_{t-1} | r_{t-1}]. The frozen model
  // always runs the session-start step, where Δ = [1 | 0 | 0] and
  // h_{t-1} = r_{t-1} = 0, so of the in_features rows only the x̂ block
  // and the e0 row ever multiply nonzero input. Fold them at load:
  //   self path:      1 * M1[e0,:]  ->  bias' = b + M1[e0,:]
  //   neighbor path:  (A*1)_i * M2[e0,:] = degree_i * M2[e0,:]
  // and drop every other non-x̂ row.
  const int lwp_in = kFeatureDim + kDeltaDim + k + 1;
  const int e0 = kFeatureDim;
  const Matrix& m1 = parameters[6];
  const Matrix& m2 = parameters[7];
  const Matrix& b1 = parameters[8];
  AFTER_CHECK_EQ(m1.rows(), lwp_in);
  AFTER_CHECK_EQ(m1.cols(), k);
  Matrix bias_folded(1, k);
  Matrix deg_row(1, k);
  for (int j = 0; j < k; ++j) {
    bias_folded.At(0, j) = b1.At(0, j) + m1.At(e0, j);
    deg_row.At(0, j) = m2.At(e0, j);
  }
  lwp1_self_x_ = TensorF32::FromMatrix(m1).SliceRows(0, kFeatureDim);
  lwp1_neigh_x_ = TensorF32::FromMatrix(m2).SliceRows(0, kFeatureDim);
  lwp1_bias_folded_ = TensorF32::FromMatrix(bias_folded);
  lwp1_deg_row_ = TensorF32::FromMatrix(deg_row);

  AFTER_CHECK_EQ(parameters[9].rows(), k);
  AFTER_CHECK_EQ(parameters[9].cols(), k);
  lwp2_self_ = TensorF32::FromMatrix(parameters[9]);
  lwp2_neigh_ = TensorF32::FromMatrix(parameters[10]);
  lwp2_bias_ = TensorF32::FromMatrix(parameters[11]);
  AFTER_CHECK_EQ(parameters[12].rows(), k);
  AFTER_CHECK_EQ(parameters[12].cols(), 1);
  lwp3_self_ = TensorF32::FromMatrix(parameters[12]);
  lwp3_neigh_ = TensorF32::FromMatrix(parameters[13]);
  lwp3_bias_ = TensorF32::FromMatrix(parameters[14]);
}

PoshgnnInferEngine::Buffers PoshgnnInferEngine::Forward(
    const StepContext& context, Workspace& workspace) const {
  AFTER_CHECK(context.positions != nullptr);
  AFTER_CHECK(context.occlusion != nullptr);
  AFTER_CHECK(context.interfaces != nullptr);
  AFTER_CHECK(context.preference != nullptr);
  AFTER_CHECK(context.social_presence != nullptr);

  const auto& positions = *context.positions;
  const auto& interfaces = *context.interfaces;
  const OcclusionGraph& graph = *context.occlusion;
  const int n = static_cast<int>(positions.size());
  const int v = context.target;
  const int k = config_.hidden_dim;
  Arena& arena = workspace.arena;

  Buffers b;
  b.x = arena.Allocate(static_cast<std::size_t>(n) * kFeatureDim);
  b.mask = arena.Allocate(n);
  b.p_hat = arena.Allocate(n);
  b.s_hat = arena.Allocate(n);

  // --- MIA, float32. The geometry stays double (exactly the reference
  // path's arithmetic) and narrows once at the feature store.
  if (config_.use_mia) {
    workspace.blocked.assign(n, false);
    for (int u = 0; u < n; ++u)
      workspace.blocked[u] = interfaces[u] == Interface::kMR;
    const std::vector<bool> blocked = PhysicallyBlockedUsers(
        positions, v, context.body_radius, workspace.blocked);
    for (int w = 0; w < n; ++w) {
      bool masked = w == v || blocked[w];
      if (context.blocklist != nullptr && (*context.blocklist)[w])
        masked = true;
      b.mask[w] = masked ? 0.0f : 1.0f;
    }
  } else {
    // "Only PDR" ablation: raw features, mask only excludes the target.
    for (int w = 0; w < n; ++w) b.mask[w] = w == v ? 0.0f : 1.0f;
  }
  const double scale =
      context.distance_scale > 0.0 ? context.distance_scale : 1.0;
  for (int w = 0; w < n; ++w) {
    if (w == v) continue;
    const double dist = Distance(positions[v], positions[w]);
    double p = context.preference->At(v, w);
    double s = context.social_presence->At(v, w);
    if (config_.use_mia) {
      const double denom = 1.0 + (dist / scale) * (dist / scale);
      p /= denom;
      s /= denom;
      if (b.mask[w] == 0.0f) {
        p = 0.0;
        s = 0.0;
      }
    }
    float* row = b.x + static_cast<std::size_t>(w) * kFeatureDim;
    b.p_hat[w] = row[0] = static_cast<float>(p);
    b.s_hat[w] = row[1] = static_cast<float>(s);
    row[2] = static_cast<float>(dist);
    row[3] = interfaces[w] == Interface::kMR ? 1.0f : 0.0f;
  }

  // --- Sparse aggregation: (A*x)_i = sum of neighbor rows, O(E*cols).
  const auto aggregate = [&](const float* src, int cols, float* dst) {
    for (int i = 0; i < n; ++i) {
      const std::vector<int>& nb = graph.Neighbors(i);
      ops_->sum_rows(src, cols, nb.data(), static_cast<int>(nb.size()),
                     dst + static_cast<std::size_t>(i) * cols);
    }
  };

  float* ax = arena.Allocate(static_cast<std::size_t>(n) * kFeatureDim);
  aggregate(b.x, kFeatureDim, ax);

  // --- PDR: ReLU layer to the hidden state, sigmoid layer to r̃.
  b.hidden = arena.Allocate(static_cast<std::size_t>(n) * k);
  ops_->gcn_layer(n, kFeatureDim, k, b.x, ax, pdr1_self_.data(),
                  pdr1_neigh_.data(), pdr1_bias_.data(), nullptr, nullptr,
                  Act::kRelu, b.hidden);
  float* ah = arena.Allocate(static_cast<std::size_t>(n) * k);
  aggregate(b.hidden, k, ah);
  b.proto = arena.Allocate(n);
  ops_->gcn_layer(n, k, 1, b.hidden, ah, pdr2_self_.data(),
                  pdr2_neigh_.data(), pdr2_bias_.data(), nullptr, nullptr,
                  Act::kSigmoid, b.proto);

  b.rec = arena.Allocate(n);
  if (!config_.use_lwp) {
    for (int w = 0; w < n; ++w) b.rec[w] = b.mask[w] * b.proto[w];
    return b;
  }

  // --- LWP on the folded session-start weights: layer 1 reads only x̂
  // plus the degree term standing in for the e0 column.
  workspace.degree.resize(n);
  for (int i = 0; i < n; ++i)
    workspace.degree[i] = static_cast<float>(graph.Degree(i));
  float* l1 = arena.Allocate(static_cast<std::size_t>(n) * k);
  ops_->gcn_layer(n, kFeatureDim, k, b.x, ax, lwp1_self_x_.data(),
                  lwp1_neigh_x_.data(), lwp1_bias_folded_.data(),
                  workspace.degree.data(), lwp1_deg_row_.data(), Act::kRelu,
                  l1);
  float* al1 = arena.Allocate(static_cast<std::size_t>(n) * k);
  aggregate(l1, k, al1);
  float* l2 = arena.Allocate(static_cast<std::size_t>(n) * k);
  ops_->gcn_layer(n, k, k, l1, al1, lwp2_self_.data(), lwp2_neigh_.data(),
                  lwp2_bias_.data(), nullptr, nullptr, Act::kRelu, l2);
  float* al2 = arena.Allocate(static_cast<std::size_t>(n) * k);
  aggregate(l2, k, al2);
  b.sigma = arena.Allocate(n);
  ops_->gcn_layer(n, k, 1, l2, al2, lwp3_self_.data(), lwp3_neigh_.data(),
                  lwp3_bias_.data(), nullptr, nullptr, Act::kSigmoid, b.sigma);

  // Preservation gate with r_{t-1} = 0: r = m ⊗ (1-σ) ⊗ r̃.
  for (int w = 0; w < n; ++w)
    b.rec[w] = b.mask[w] * (1.0f - b.sigma[w]) * b.proto[w];
  return b;
}

std::vector<bool> PoshgnnInferEngine::Decode(const StepContext& context,
                                             const Buffers& b,
                                             Workspace& workspace) const {
  const int n = static_cast<int>(context.positions->size());
  std::vector<int>& candidates = workspace.candidates;
  candidates.clear();
  for (int w = 0; w < n; ++w) {
    if (w == context.target) continue;
    if (static_cast<double>(b.rec[w]) > config_.threshold)
      candidates.push_back(w);
  }
  if (config_.max_recommendations > 0 &&
      static_cast<int>(candidates.size()) > config_.max_recommendations) {
    // Budgeted top-k by r_w * (1-β) p̂_w — the reference decoder's score
    // with the frozen path's r_{t-1} = 0 (the β continuity term
    // vanishes). Ties break by index in both decoders so the f32 and
    // f64 engines order equal-scored candidates identically.
    std::vector<double>& decode_score = workspace.decode_score;
    decode_score.assign(n, 0.0);
    for (int w : candidates) {
      const double gain =
          (1.0 - config_.beta) * static_cast<double>(b.p_hat[w]);
      decode_score[w] = static_cast<double>(b.rec[w]) * gain;
    }
    std::sort(candidates.begin(), candidates.end(), [&](int a, int c) {
      if (decode_score[a] != decode_score[c])
        return decode_score[a] > decode_score[c];
      return a < c;
    });
    candidates.resize(config_.max_recommendations);
  }
  std::vector<bool> selected(n, false);
  for (int w : candidates) selected[w] = true;
  return selected;
}

std::vector<bool> PoshgnnInferEngine::Recommend(
    const StepContext& context) const {
  WorkspacePool::Handle handle = pool_.Acquire();
  const Buffers b = Forward(context, *handle.get());
  return Decode(context, b, *handle.get());
}

std::vector<std::vector<bool>> PoshgnnInferEngine::RecommendBatch(
    const std::vector<StepContext>& contexts) const {
  std::vector<std::vector<bool>> out(contexts.size());
  std::vector<int> distinct;
  WorkspacePool::Handle handle = pool_.Acquire();
  for (std::size_t i = 0; i < contexts.size(); ++i) {
    int duplicate_of = -1;
    for (int j : distinct) {
      if (SameJob(contexts[j], contexts[i])) {
        duplicate_of = j;
        break;
      }
    }
    if (duplicate_of >= 0) {
      out[i] = out[duplicate_of];
      continue;
    }
    handle->arena.Reset();
    const Buffers b = Forward(contexts[i], *handle.get());
    out[i] = Decode(contexts[i], b, *handle.get());
    distinct.push_back(static_cast<int>(i));
  }
  return out;
}

ForwardTrace PoshgnnInferEngine::Trace(const StepContext& context) const {
  WorkspacePool::Handle handle = pool_.Acquire();
  const Buffers b = Forward(context, *handle.get());
  const int n = static_cast<int>(context.positions->size());
  const int k = config_.hidden_dim;
  ForwardTrace trace;
  trace.features.assign(b.x, b.x + static_cast<std::size_t>(n) * kFeatureDim);
  trace.mask.assign(b.mask, b.mask + n);
  trace.p_hat.assign(b.p_hat, b.p_hat + n);
  trace.s_hat.assign(b.s_hat, b.s_hat + n);
  trace.pdr_hidden.assign(b.hidden,
                          b.hidden + static_cast<std::size_t>(n) * k);
  trace.prototype.assign(b.proto, b.proto + n);
  if (b.sigma != nullptr) trace.sigma.assign(b.sigma, b.sigma + n);
  trace.recommendation.assign(b.rec, b.rec + n);
  return trace;
}

}  // namespace infer
}  // namespace after
