#ifndef AFTER_INFER_ENGINE_H_
#define AFTER_INFER_ENGINE_H_

#include <vector>

#include "core/recommender.h"
#include "infer/arena.h"
#include "infer/dispatch.h"
#include "infer/kernels.h"
#include "infer/tensor.h"
#include "tensor/matrix.h"

namespace after {
namespace infer {

/// Architecture + decode knobs of the frozen model the engine serves.
/// A projection of PoshgnnConfig (core/poshgnn.h) — duplicated here so
/// infer/ never includes the mutable model's header.
struct EngineConfig {
  int hidden_dim = 8;
  double beta = 0.5;
  double threshold = 0.5;
  int max_recommendations = 10;
  bool use_mia = true;
  bool use_lwp = true;
};

/// Every intermediate of one fused forward, copied out for the parity
/// harness (tests/infer/engine_test.cc compares each against the double
/// reference path layer by layer). All row-major, n rows.
struct ForwardTrace {
  std::vector<float> features;        // n x 4
  std::vector<float> mask;            // n x 1
  std::vector<float> p_hat;           // n x 1
  std::vector<float> s_hat;           // n x 1
  std::vector<float> pdr_hidden;      // n x hidden_dim
  std::vector<float> prototype;       // n x 1
  std::vector<float> sigma;           // n x 1 (empty when !use_lwp)
  std::vector<float> recommendation;  // n x 1 (post preservation gate)
};

/// Inference-only fused POSHGNN forward in float32 (docs/inference.md).
///
/// The engine is built once per frozen model: weights are narrowed to
/// contiguous row-major float32 tensors, the LWP session-start structure
/// is folded into the weights (zero h_{t-1}/r_{t-1}/e1/e2 columns are
/// dropped, the all-one e0 column folds into the bias on the self path
/// and into a rank-1 degree term on the neighbor path), and the kernel
/// table for the host's SIMD tier is resolved. Per request it performs
/// zero heap allocations in steady state (workspace pool + arena) and
/// aggregates over the occlusion graph's neighbor lists in O(E·cols)
/// instead of the dense O(n²·cols) adjacency matmul.
///
/// Thread-safe: all members are const after construction except the
/// workspace pool, which hands each concurrent caller its own scratch.
class PoshgnnInferEngine {
 public:
  /// `parameters` are the Poshgnn::Parameters() values in declaration
  /// order: PDR layer 1 {M1, M2, b}, PDR layer 2 {M1, M2, b}, then (when
  /// config.use_lwp) LWP layers 1-3 in the same per-layer order.
  PoshgnnInferEngine(const EngineConfig& config,
                     const std::vector<Matrix>& parameters,
                     SimdLevel level = ActiveSimdLevel());

  /// Session-start recommendation, same contract as
  /// FrozenPoshgnn::Recommend. Routed through the batch kernel path so
  /// single and batched answers are bit-identical.
  std::vector<bool> Recommend(const StepContext& context) const;

  /// Shared-scene batch: distinct (scene, target) jobs run the fused
  /// forward once; duplicate contexts reuse the computed selection. The
  /// whole batch shares one workspace (one warm arena).
  std::vector<std::vector<bool>> RecommendBatch(
      const std::vector<StepContext>& contexts) const;

  /// Runs the fused forward and copies out every intermediate (parity
  /// harness hook; not a serving path).
  ForwardTrace Trace(const StepContext& context) const;

  SimdLevel simd_level() const { return level_; }
  const EngineConfig& config() const { return config_; }
  /// Workspace-pool observability for the zero-allocation tests.
  const WorkspacePool& pool() const { return pool_; }

 private:
  /// Raw views into the workspace arena after one forward.
  struct Buffers {
    float* x = nullptr;       // n x 4
    float* mask = nullptr;    // n x 1
    float* p_hat = nullptr;   // n x 1
    float* s_hat = nullptr;   // n x 1
    float* hidden = nullptr;  // n x hidden_dim
    float* proto = nullptr;   // n x 1
    float* sigma = nullptr;   // n x 1 (null when !use_lwp)
    float* rec = nullptr;     // n x 1
  };

  /// The fused forward: MIA (f32) -> PDR -> LWP -> preservation gate.
  Buffers Forward(const StepContext& context, Workspace& workspace) const;

  /// Threshold + budgeted top-k decode on the forward's buffers.
  std::vector<bool> Decode(const StepContext& context, const Buffers& b,
                           Workspace& workspace) const;

  EngineConfig config_;
  SimdLevel level_;
  const KernelOps* ops_;

  // PDR, converted once at load.
  TensorF32 pdr1_self_, pdr1_neigh_, pdr1_bias_;  // 4xK, 4xK, 1xK
  TensorF32 pdr2_self_, pdr2_neigh_, pdr2_bias_;  // Kx1, Kx1, 1x1

  // LWP layer 1 after the session-start fold (empty when !use_lwp):
  // only the x̂ rows of M1/M2 survive; bias' = b + M1[e0,:] and the
  // degree row M2[e0,:] carry the all-one e0 column.
  TensorF32 lwp1_self_x_, lwp1_neigh_x_;      // 4xK each
  TensorF32 lwp1_bias_folded_, lwp1_deg_row_;  // 1xK each
  TensorF32 lwp2_self_, lwp2_neigh_, lwp2_bias_;  // KxK, KxK, 1xK
  TensorF32 lwp3_self_, lwp3_neigh_, lwp3_bias_;  // Kx1, Kx1, 1x1

  mutable WorkspacePool pool_;
};

}  // namespace infer
}  // namespace after

#endif  // AFTER_INFER_ENGINE_H_
