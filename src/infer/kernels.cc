#include "infer/kernels.h"

#include <cstring>

namespace after {
namespace infer {
namespace {

void ApplyActRow(Act act, int out, float* row) {
  switch (act) {
    case Act::kNone:
      break;
    case Act::kRelu:
      for (int j = 0; j < out; ++j)
        if (row[j] < 0.0f) row[j] = 0.0f;
      break;
    case Act::kSigmoid:
      for (int j = 0; j < out; ++j) row[j] = SigmoidF32(row[j]);
      break;
  }
}

// Broadcast-accumulate form: the k loop is outermost over the row so the
// j loop is a pure axpy. The AVX2 variant vectorizes the same j loop with
// the same k order, so scalar and vector tiers sum in the same order and
// differ only by FMA contraction.
void GcnLayerScalar(int n, int in, int out, const float* x, const float* ax,
                    const float* w_self, const float* w_neigh,
                    const float* bias, const float* deg, const float* deg_row,
                    Act act, float* y) {
  for (int i = 0; i < n; ++i) {
    float* row = y + static_cast<std::size_t>(i) * out;
    std::memcpy(row, bias, static_cast<std::size_t>(out) * sizeof(float));
    const float* xi = x + static_cast<std::size_t>(i) * in;
    for (int k = 0; k < in; ++k) {
      const float v = xi[k];
      if (v == 0.0f) continue;
      const float* w = w_self + static_cast<std::size_t>(k) * out;
      for (int j = 0; j < out; ++j) row[j] += v * w[j];
    }
    const float* axi = ax + static_cast<std::size_t>(i) * in;
    for (int k = 0; k < in; ++k) {
      const float v = axi[k];
      if (v == 0.0f) continue;
      const float* w = w_neigh + static_cast<std::size_t>(k) * out;
      for (int j = 0; j < out; ++j) row[j] += v * w[j];
    }
    if (deg != nullptr && deg_row != nullptr) {
      const float d = deg[i];
      if (d != 0.0f)
        for (int j = 0; j < out; ++j) row[j] += d * deg_row[j];
    }
    ApplyActRow(act, out, row);
  }
}

void SumRowsScalar(const float* x, int cols, const int* idx, int count,
                   float* dst) {
  std::memset(dst, 0, static_cast<std::size_t>(cols) * sizeof(float));
  for (int r = 0; r < count; ++r) {
    const float* row = x + static_cast<std::size_t>(idx[r]) * cols;
    for (int j = 0; j < cols; ++j) dst[j] += row[j];
  }
}

void MatMulScalar(int n, int k, int m, const float* a, const float* b,
                  float* c) {
  for (int i = 0; i < n; ++i) {
    float* row = c + static_cast<std::size_t>(i) * m;
    std::memset(row, 0, static_cast<std::size_t>(m) * sizeof(float));
    const float* ai = a + static_cast<std::size_t>(i) * k;
    for (int p = 0; p < k; ++p) {
      const float v = ai[p];
      const float* bp = b + static_cast<std::size_t>(p) * m;
      for (int j = 0; j < m; ++j) row[j] += v * bp[j];
    }
  }
}

}  // namespace

const KernelOps& ScalarOps() {
  static const KernelOps ops = {GcnLayerScalar, SumRowsScalar, MatMulScalar};
  return ops;
}

const KernelOps& OpsFor(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return ScalarOps();
    case SimdLevel::kAvx2Fma:
      return Avx2Ops();
  }
  return ScalarOps();
}

}  // namespace infer
}  // namespace after
