#ifndef AFTER_INFER_KERNELS_H_
#define AFTER_INFER_KERNELS_H_

#include <cmath>

#include "infer/dispatch.h"

namespace after {
namespace infer {

/// Activation fused into the kernel epilogues.
enum class Act {
  kNone,
  kRelu,
  kSigmoid,
};

/// Logistic sigmoid, float32. Deliberately a single scalar definition
/// shared by every SIMD tier: given identical inputs the scalar and
/// AVX2 engines produce bit-identical sigmoid outputs, so cross-tier
/// drift can only enter through FMA contraction in the accumulations
/// (bounded by the tolerance harness; docs/inference.md).
inline float SigmoidF32(float x) { return 1.0f / (1.0f + std::exp(-x)); }

/// The fused kernel table for one SIMD tier. All pointers are to
/// 64-byte-aligned buffers (infer/tensor.h) except the row-index lists.
struct KernelOps {
  /// Fused GCN layer (POSHGNN Eq. 1 at inference):
  ///
  ///   y = act( x * w_self + ax * w_neigh + bias [+ deg ⊗ deg_row] )
  ///
  /// x, ax: n x in (ax is the pre-aggregated A*x); w_self, w_neigh:
  /// in x out; bias, deg_row: 1 x out; deg: n x 1; y: n x out. The
  /// optional rank-1 degree term (deg/deg_row non-null together)
  /// carries the LWP structural-difference column e0 after the load-
  /// time weight fold (docs/inference.md).
  void (*gcn_layer)(int n, int in, int out, const float* x, const float* ax,
                    const float* w_self, const float* w_neigh,
                    const float* bias, const float* deg, const float* deg_row,
                    Act act, float* y);

  /// dst (1 x cols) = sum of the `count` rows of x listed in idx — the
  /// sparse adjacency aggregation (A*x one row at a time over neighbor
  /// lists, skipping the dense n x n matrix entirely).
  void (*sum_rows)(const float* x, int cols, const int* idx, int count,
                   float* dst);

  /// c (n x m) = a (n x k) * b (k x m). Plain dense matmul, kept for
  /// the micro-kernel benchmarks' f64-vs-f32 comparison.
  void (*matmul)(int n, int k, int m, const float* a, const float* b,
                 float* c);
};

/// Kernel table for a tier. kAvx2Fma returns the scalar table when the
/// binary was built without x86 support (the tier is then unreachable
/// anyway — DetectCpuSimdLevel() reports kScalar).
const KernelOps& OpsFor(SimdLevel level);

/// Implementation tables (exposed for the dispatch-equivalence tests).
const KernelOps& ScalarOps();
const KernelOps& Avx2Ops();

}  // namespace infer
}  // namespace after

#endif  // AFTER_INFER_KERNELS_H_
