// AVX2/FMA kernel tier. This translation unit is compiled WITHOUT
// -mavx2: every vector function carries a per-function
// target("avx2,fma") attribute, so the surrounding binary stays
// baseline-x86-64 and the YMM instructions are only reachable behind
// the CPUID probe in infer/dispatch.cc.

#include "infer/kernels.h"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <cstring>

namespace after {
namespace infer {
namespace {

#define AFTER_AVX2 __attribute__((target("avx2,fma")))

AFTER_AVX2 void ApplyActRowAvx2(Act act, int out, float* row) {
  switch (act) {
    case Act::kNone:
      break;
    case Act::kRelu: {
      const __m256 zero = _mm256_setzero_ps();
      int j = 0;
      for (; j + 8 <= out; j += 8)
        _mm256_storeu_ps(row + j,
                         _mm256_max_ps(_mm256_loadu_ps(row + j), zero));
      for (; j < out; ++j)
        if (row[j] < 0.0f) row[j] = 0.0f;
      break;
    }
    case Act::kSigmoid:
      // Scalar on purpose: SigmoidF32 is the single shared definition
      // across tiers (see kernels.h).
      for (int j = 0; j < out; ++j) row[j] = SigmoidF32(row[j]);
      break;
  }
}

AFTER_AVX2 inline void AxpyRowAvx2(float v, const float* w, int out,
                                   float* row) {
  if (v == 0.0f) return;
  const __m256 vv = _mm256_set1_ps(v);
  int j = 0;
  for (; j + 8 <= out; j += 8) {
    const __m256 acc = _mm256_fmadd_ps(vv, _mm256_loadu_ps(w + j),
                                       _mm256_loadu_ps(row + j));
    _mm256_storeu_ps(row + j, acc);
  }
  for (; j < out; ++j) row[j] += v * w[j];
}

AFTER_AVX2 void GcnLayerAvx2(int n, int in, int out, const float* x,
                             const float* ax, const float* w_self,
                             const float* w_neigh, const float* bias,
                             const float* deg, const float* deg_row, Act act,
                             float* y) {
  for (int i = 0; i < n; ++i) {
    float* row = y + static_cast<std::size_t>(i) * out;
    std::memcpy(row, bias, static_cast<std::size_t>(out) * sizeof(float));
    const float* xi = x + static_cast<std::size_t>(i) * in;
    for (int k = 0; k < in; ++k)
      AxpyRowAvx2(xi[k], w_self + static_cast<std::size_t>(k) * out, out, row);
    const float* axi = ax + static_cast<std::size_t>(i) * in;
    for (int k = 0; k < in; ++k)
      AxpyRowAvx2(axi[k], w_neigh + static_cast<std::size_t>(k) * out, out,
                  row);
    if (deg != nullptr && deg_row != nullptr)
      AxpyRowAvx2(deg[i], deg_row, out, row);
    ApplyActRowAvx2(act, out, row);
  }
}

AFTER_AVX2 void SumRowsAvx2(const float* x, int cols, const int* idx,
                            int count, float* dst) {
  std::memset(dst, 0, static_cast<std::size_t>(cols) * sizeof(float));
  for (int r = 0; r < count; ++r) {
    const float* row = x + static_cast<std::size_t>(idx[r]) * cols;
    int j = 0;
    for (; j + 8 <= cols; j += 8)
      _mm256_storeu_ps(dst + j, _mm256_add_ps(_mm256_loadu_ps(dst + j),
                                              _mm256_loadu_ps(row + j)));
    for (; j < cols; ++j) dst[j] += row[j];
  }
}

AFTER_AVX2 void MatMulAvx2(int n, int k, int m, const float* a, const float* b,
                           float* c) {
  for (int i = 0; i < n; ++i) {
    float* row = c + static_cast<std::size_t>(i) * m;
    std::memset(row, 0, static_cast<std::size_t>(m) * sizeof(float));
    const float* ai = a + static_cast<std::size_t>(i) * k;
    for (int p = 0; p < k; ++p)
      AxpyRowAvx2(ai[p], b + static_cast<std::size_t>(p) * m, m, row);
  }
}

#undef AFTER_AVX2

}  // namespace

const KernelOps& Avx2Ops() {
  static const KernelOps ops = {GcnLayerAvx2, SumRowsAvx2, MatMulAvx2};
  return ops;
}

}  // namespace infer
}  // namespace after

#else  // non-x86: the AVX2 tier is unreachable; alias the scalar table.

namespace after {
namespace infer {

const KernelOps& Avx2Ops() { return ScalarOps(); }

}  // namespace infer
}  // namespace after

#endif
