#include "infer/tensor.h"

#include <cstdlib>
#include <cstring>
#include <utility>

#include "tensor/matrix.h"

namespace after {
namespace infer {

float* AlignedAlloc(std::size_t count) {
  if (count == 0) return nullptr;
  const std::size_t bytes = AlignedCount(count) * sizeof(float);
  void* ptr = std::aligned_alloc(kTensorAlignment, bytes);
  AFTER_CHECK(ptr != nullptr);
  std::memset(ptr, 0, bytes);
  return static_cast<float*>(ptr);
}

void AlignedFree(float* ptr) { std::free(ptr); }

std::size_t AlignedCount(std::size_t count) {
  const std::size_t per_line = kTensorAlignment / sizeof(float);
  return (count + per_line - 1) / per_line * per_line;
}

TensorF32::TensorF32(int rows, int cols) : rows_(rows), cols_(cols) {
  AFTER_CHECK_GE(rows, 0);
  AFTER_CHECK_GE(cols, 0);
  data_ = AlignedAlloc(size());
}

TensorF32::~TensorF32() { AlignedFree(data_); }

TensorF32::TensorF32(TensorF32&& other) noexcept
    : rows_(other.rows_), cols_(other.cols_), data_(other.data_) {
  other.rows_ = 0;
  other.cols_ = 0;
  other.data_ = nullptr;
}

TensorF32& TensorF32::operator=(TensorF32&& other) noexcept {
  if (this != &other) {
    AlignedFree(data_);
    rows_ = other.rows_;
    cols_ = other.cols_;
    data_ = other.data_;
    other.rows_ = 0;
    other.cols_ = 0;
    other.data_ = nullptr;
  }
  return *this;
}

TensorF32 TensorF32::FromMatrix(const Matrix& source) {
  TensorF32 out(source.rows(), source.cols());
  const std::size_t total = out.size();
  for (std::size_t i = 0; i < total; ++i)
    out.data_[i] = static_cast<float>(source[i]);
  return out;
}

TensorF32 TensorF32::SliceRows(int begin, int count) const {
  AFTER_CHECK_GE(begin, 0);
  AFTER_CHECK_GE(count, 0);
  AFTER_CHECK_LE(begin + count, rows_);
  TensorF32 out(count, cols_);
  if (count > 0 && cols_ > 0)
    std::memcpy(out.data_,
                data_ + static_cast<std::size_t>(begin) * cols_,
                static_cast<std::size_t>(count) * cols_ * sizeof(float));
  return out;
}

}  // namespace infer
}  // namespace after
