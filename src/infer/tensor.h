#ifndef AFTER_INFER_TENSOR_H_
#define AFTER_INFER_TENSOR_H_

#include <cstddef>

#include "common/check.h"

namespace after {

class Matrix;

namespace infer {

/// Every float buffer the inference engine touches is aligned to this
/// boundary so AVX2 loads never straddle a cache line and a future
/// AVX-512 widening needs no layout change.
inline constexpr std::size_t kTensorAlignment = 64;

/// Allocates `count` floats aligned to kTensorAlignment. Counterpart of
/// AlignedFree; never returns nullptr (aborts on exhaustion like the
/// rest of the engine's CHECK discipline).
float* AlignedAlloc(std::size_t count);
void AlignedFree(float* ptr);

/// Rounds `count` floats up so the *next* arena carve-out stays aligned.
std::size_t AlignedCount(std::size_t count);

/// Plain contiguous row-major float32 tensor: the inference-side
/// counterpart of tensor/Matrix (double + autograd tape). Owns a
/// 64-byte-aligned buffer, carries no gradient machinery, and is
/// move-only — weights are converted into these exactly once at
/// artifact load (see infer/engine.h) and then never touched again.
class TensorF32 {
 public:
  TensorF32() = default;
  /// Zero-initialized rows x cols tensor.
  TensorF32(int rows, int cols);
  ~TensorF32();

  TensorF32(const TensorF32&) = delete;
  TensorF32& operator=(const TensorF32&) = delete;
  TensorF32(TensorF32&& other) noexcept;
  TensorF32& operator=(TensorF32&& other) noexcept;

  /// One-time weight conversion: narrows every double entry to float.
  static TensorF32 FromMatrix(const Matrix& source);

  /// Rows [begin, begin + count) as a fresh owning tensor (used to
  /// pre-slice the LWP input weights at load; docs/inference.md).
  TensorF32 SliceRows(int begin, int count) const;

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  std::size_t size() const {
    return static_cast<std::size_t>(rows_) * static_cast<std::size_t>(cols_);
  }

  float* data() { return data_; }
  const float* data() const { return data_; }

  float& At(int r, int c) {
    AFTER_CHECK_GE(r, 0);
    AFTER_CHECK_LT(r, rows_);
    AFTER_CHECK_GE(c, 0);
    AFTER_CHECK_LT(c, cols_);
    return data_[static_cast<std::size_t>(r) * cols_ + c];
  }
  float At(int r, int c) const {
    AFTER_CHECK_GE(r, 0);
    AFTER_CHECK_LT(r, rows_);
    AFTER_CHECK_GE(c, 0);
    AFTER_CHECK_LT(c, cols_);
    return data_[static_cast<std::size_t>(r) * cols_ + c];
  }

 private:
  int rows_ = 0;
  int cols_ = 0;
  float* data_ = nullptr;
};

}  // namespace infer
}  // namespace after

#endif  // AFTER_INFER_TENSOR_H_
