#include "nn/adam.h"

#include <cmath>

namespace after {

Adam::Adam(std::vector<Variable> parameters)
    : Adam(std::move(parameters), Options()) {}

Adam::Adam(std::vector<Variable> parameters, Options options)
    : parameters_(std::move(parameters)), options_(options) {
  for (const auto& p : parameters_) {
    AFTER_CHECK(p.requires_grad());
    first_moment_.emplace_back(p.value().rows(), p.value().cols());
    second_moment_.emplace_back(p.value().rows(), p.value().cols());
  }
}

void Adam::ZeroGrad() {
  for (auto& p : parameters_) p.ZeroGrad();
}

double Adam::GradNorm() const {
  double total_sq = 0.0;
  for (const auto& p : parameters_) {
    const double n = p.grad().Norm();
    total_sq += n * n;
  }
  return std::sqrt(total_sq);
}

void Adam::ResetMoments() {
  for (auto& m : first_moment_) m.Fill(0.0);
  for (auto& v : second_moment_) v.Fill(0.0);
  step_count_ = 0;
}

void Adam::Step() {
  ++step_count_;

  double scale = 1.0;
  if (options_.clip_norm > 0.0) {
    double total_sq = 0.0;
    for (const auto& p : parameters_) {
      const double n = p.grad().Norm();
      total_sq += n * n;
    }
    const double total = std::sqrt(total_sq);
    if (total > options_.clip_norm) scale = options_.clip_norm / total;
  }

  const double bias1 = 1.0 - std::pow(options_.beta1, step_count_);
  const double bias2 = 1.0 - std::pow(options_.beta2, step_count_);

  for (size_t i = 0; i < parameters_.size(); ++i) {
    Variable& p = parameters_[i];
    Matrix value = p.value();
    const Matrix& grad = p.grad();
    Matrix& m = first_moment_[i];
    Matrix& v = second_moment_[i];
    for (int j = 0; j < value.size(); ++j) {
      const size_t idx = static_cast<size_t>(j);
      const double g = grad[idx] * scale;
      m[idx] = options_.beta1 * m[idx] + (1.0 - options_.beta1) * g;
      v[idx] = options_.beta2 * v[idx] + (1.0 - options_.beta2) * g * g;
      const double m_hat = m[idx] / bias1;
      const double v_hat = v[idx] / bias2;
      value[idx] -= options_.learning_rate * m_hat /
                    (std::sqrt(v_hat) + options_.epsilon);
    }
    p.SetValue(std::move(value));
  }
}

}  // namespace after
