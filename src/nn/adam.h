#ifndef AFTER_NN_ADAM_H_
#define AFTER_NN_ADAM_H_

#include <vector>

#include "tensor/autograd.h"

namespace after {

/// Adam optimizer (Kingma & Ba) over a fixed set of Variable parameters.
/// POSHGNN and the learned baselines train with lr = 1e-2 as in the paper.
class Adam {
 public:
  struct Options {
    double learning_rate = 1e-2;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double epsilon = 1e-8;
    /// If > 0, gradients are globally clipped to this L2 norm before the
    /// update (stabilizes BPTT over T=100 steps).
    double clip_norm = 5.0;
  };

  explicit Adam(std::vector<Variable> parameters);
  Adam(std::vector<Variable> parameters, Options options);

  /// Zeroes the gradient accumulators of all parameters.
  void ZeroGrad();

  /// Applies one Adam update from the accumulated gradients.
  void Step();

  /// L2 norm over all accumulated gradients (pre-clipping). Used by the
  /// training guard to detect degenerate backward passes.
  double GradNorm() const;

  /// Zeroes the moment accumulators (after a rollback, stale momentum
  /// would steer the restored parameters straight back toward the
  /// divergence that triggered it).
  void ResetMoments();

  double learning_rate() const { return options_.learning_rate; }
  void set_learning_rate(double lr) { options_.learning_rate = lr; }

  int step_count() const { return step_count_; }
  const std::vector<Variable>& parameters() const { return parameters_; }

 private:
  std::vector<Variable> parameters_;
  Options options_;
  std::vector<Matrix> first_moment_;
  std::vector<Matrix> second_moment_;
  int step_count_ = 0;
};

}  // namespace after

#endif  // AFTER_NN_ADAM_H_
