#include "nn/artifact.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "nn/serialize.h"

namespace after {
namespace {

bool HasWhitespace(const std::string& token) {
  for (char c : token)
    if (std::isspace(static_cast<unsigned char>(c))) return true;
  return token.empty();
}

std::string ChecksumHex(uint64_t checksum) {
  std::ostringstream oss;
  oss << std::hex << std::setw(16) << std::setfill('0') << checksum;
  return oss.str();
}

}  // namespace

Status ModelArtifact::Save(const std::string& path) const {
  if (HasWhitespace(kind))
    return InvalidDataError("artifact kind must be a non-empty token");
  for (const auto& [key, value] : metadata) {
    (void)value;
    if (HasWhitespace(key))
      return InvalidDataError("metadata key '" + key +
                              "' must be a non-empty whitespace-free token");
  }

  // Serialize the payload first: the header carries its checksum.
  std::ostringstream params;
  WriteParameterBlock(params, parameters);
  const std::string param_bytes = params.str();

  std::ofstream out(path);
  if (!out)
    return NotFoundError("cannot open '" + path + "' for writing");
  out << "after-model-artifact " << kFormatVersion << "\n";
  out << "kind " << kind << "\n";
  for (const auto& [key, value] : metadata)
    out << "field " << key << " " << value << "\n";
  out << "checksum " << ChecksumHex(Fnv1a64(param_bytes)) << "\n";
  out << param_bytes;
  if (!out)
    return InternalError("short write to '" + path + "'");
  return OkStatus();
}

Result<ModelArtifact> ModelArtifact::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return NotFoundError("cannot open artifact '" + path + "'");
  auto fail = [&path](const std::string& what) {
    return InvalidDataError("artifact '" + path + "': " + what);
  };

  std::string magic;
  int version = -1;
  if (!(in >> magic >> version) || magic != "after-model-artifact")
    return fail("missing 'after-model-artifact' magic");
  if (version != kFormatVersion) {
    std::ostringstream oss;
    oss << "format version " << version << " unsupported (reader speaks "
        << kFormatVersion << ")";
    return fail(oss.str());
  }

  ModelArtifact artifact;
  std::string expected_checksum;
  std::string keyword;
  while (in >> keyword) {
    if (keyword == "kind") {
      if (!(in >> artifact.kind)) return fail("truncated 'kind' line");
    } else if (keyword == "field") {
      std::string key, value;
      if (!(in >> key)) return fail("truncated 'field' line");
      std::getline(in, value);
      if (!value.empty() && value.front() == ' ') value.erase(0, 1);
      artifact.metadata[key] = value;
    } else if (keyword == "checksum") {
      if (!(in >> expected_checksum) || expected_checksum.size() != 16)
        return fail("malformed 'checksum' line");
      break;  // the parameter block follows
    } else {
      return fail("unknown header keyword '" + keyword + "'");
    }
  }
  if (artifact.kind.empty()) return fail("header is missing 'kind'");
  if (expected_checksum.empty()) return fail("header is missing 'checksum'");

  // Read the payload in bounded chunks, hashing as it streams in, and
  // verify the checksum before parsing: bit rot is detected without
  // ever re-walking the payload bytes for a second hashing pass.
  in.get();  // newline ending the checksum line
  Fnv1a64Stream hasher;
  std::string param_bytes;
  char chunk[65536];
  while (in.read(chunk, sizeof(chunk)) || in.gcount() > 0) {
    const size_t got = static_cast<size_t>(in.gcount());
    hasher.Update(chunk, got);
    param_bytes.append(chunk, got);
  }
  const std::string actual_checksum = ChecksumHex(hasher.Digest());
  if (actual_checksum != expected_checksum)
    return fail("checksum mismatch: header says " + expected_checksum +
                ", payload hashes to " + actual_checksum +
                " (artifact corrupted?)");

  std::istringstream params(param_bytes);
  const Status parsed = ReadParameterBlock(params, &artifact.parameters);
  if (!parsed.ok()) return parsed.Annotate("artifact '" + path + "'");
  return artifact;
}

Status ModelArtifact::ApplyTo(std::vector<Variable>& live) const {
  if (parameters.size() != live.size()) {
    std::ostringstream oss;
    oss << "artifact holds " << parameters.size()
        << " parameters but the model has " << live.size();
    return InvalidDataError(oss.str());
  }
  for (size_t i = 0; i < live.size(); ++i) {
    if (parameters[i].rows() != live[i].value().rows() ||
        parameters[i].cols() != live[i].value().cols()) {
      std::ostringstream oss;
      oss << "parameter " << i << " shape mismatch: artifact "
          << parameters[i].rows() << "x" << parameters[i].cols()
          << " vs model " << live[i].value().rows() << "x"
          << live[i].value().cols();
      return InvalidDataError(oss.str());
    }
  }
  for (size_t i = 0; i < live.size(); ++i) live[i].SetValue(parameters[i]);
  return OkStatus();
}

std::string ModelArtifact::Field(const std::string& key) const {
  auto it = metadata.find(key);
  return it == metadata.end() ? std::string() : it->second;
}

int ModelArtifact::FieldInt(const std::string& key, int fallback) const {
  const std::string value = Field(key);
  if (value.empty()) return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(value.c_str(), &end, 10);
  return (end && *end == '\0') ? static_cast<int>(parsed) : fallback;
}

double ModelArtifact::FieldDouble(const std::string& key,
                                  double fallback) const {
  const std::string value = Field(key);
  if (value.empty()) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  return (end && *end == '\0') ? parsed : fallback;
}

}  // namespace after
