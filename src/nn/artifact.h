#ifndef AFTER_NN_ARTIFACT_H_
#define AFTER_NN_ARTIFACT_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "tensor/autograd.h"

namespace after {

/// Versioned, checksummed on-disk container for trained model weights —
/// the train → snapshot → serve interchange format specified in
/// docs/model_artifacts.md. The container wraps the nn/serialize
/// parameter block with a typed header:
///
///   after-model-artifact <format_version>
///   kind <model kind, e.g. POSHGNN>
///   field <key> <value...>          (0+ lines, sorted by key)
///   checksum <16 lowercase hex digits>
///   after-params <count>
///   ...                             (parameter block, nn/serialize.h)
///
/// The checksum is FNV-1a 64 over the exact bytes of the parameter
/// block, so bit rot in the payload is detected before any value is
/// parsed. Metadata keys are free-form tokens without whitespace
/// (values may contain spaces); producers record at least the model's
/// architecture fields so loaders can validate compatibility (see
/// Poshgnn::ToArtifact / FrozenPoshgnn::FromArtifact in core/poshgnn.h).
struct ModelArtifact {
  static constexpr int kFormatVersion = 1;

  /// Model family identifier; loaders refuse artifacts of foreign kinds.
  std::string kind;
  /// Free-form header metadata (architecture, dataset fingerprint,
  /// training configuration). std::map keeps serialization order
  /// deterministic, which keeps artifact bytes reproducible.
  std::map<std::string, std::string> metadata;
  /// Parameter values in Parameters() order of the producing model.
  std::vector<Matrix> parameters;

  /// Writes the artifact. Fails with kInvalidData when `kind` is empty
  /// or a metadata key contains whitespace, kNotFound when the path is
  /// not writable.
  Status Save(const std::string& path) const;

  /// Reads and validates an artifact: header shape, supported format
  /// version, checksum match, well-formed parameter block.
  static Result<ModelArtifact> Load(const std::string& path);

  /// Copies the artifact's values into live model parameters.
  /// kInvalidData when the count or any shape disagrees; parameters are
  /// untouched on failure.
  Status ApplyTo(std::vector<Variable>& live) const;

  /// Convenience metadata accessors. Lookup returns empty string when
  /// the key is absent; the typed variants return `fallback` when the
  /// key is absent or unparsable.
  std::string Field(const std::string& key) const;
  int FieldInt(const std::string& key, int fallback) const;
  double FieldDouble(const std::string& key, double fallback) const;
};

}  // namespace after

#endif  // AFTER_NN_ARTIFACT_H_
