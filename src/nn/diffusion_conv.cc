#include "nn/diffusion_conv.h"

#include <cmath>

#include "common/rng.h"

namespace after {

DiffusionConv::DiffusionConv(int in_features, int out_features, int max_hops,
                             Rng& rng)
    : max_hops_(max_hops) {
  AFTER_CHECK_GE(max_hops, 0);
  const double stddev = 1.0 / std::sqrt(static_cast<double>(in_features));
  for (int k = 0; k <= max_hops; ++k) {
    hop_weights_.push_back(Variable::Parameter(
        Matrix::Randn(in_features, out_features, stddev, rng)));
  }
  bias_ = Variable::Parameter(Matrix(1, out_features));
}

Variable DiffusionConv::Forward(const Variable& x,
                                const Variable& transition) const {
  Variable diffused = x;  // hop 0: identity
  Variable total = Variable::MatMul(diffused, hop_weights_[0]);
  for (int k = 1; k <= max_hops_; ++k) {
    diffused = Variable::MatMul(transition, diffused);
    total = total + Variable::MatMul(diffused, hop_weights_[k]);
  }
  return Variable::AddRowBroadcast(total, bias_);
}

std::vector<Variable> DiffusionConv::Parameters() const {
  std::vector<Variable> params = hop_weights_;
  params.push_back(bias_);
  return params;
}

Matrix DiffusionConv::RandomWalkTransition(const Matrix& adjacency) {
  AFTER_CHECK_EQ(adjacency.rows(), adjacency.cols());
  Matrix transition = adjacency;
  for (int r = 0; r < adjacency.rows(); ++r) {
    double degree = 0.0;
    for (int c = 0; c < adjacency.cols(); ++c) degree += adjacency.At(r, c);
    if (degree > 0.0) {
      for (int c = 0; c < adjacency.cols(); ++c)
        transition.At(r, c) /= degree;
    }
  }
  return transition;
}

}  // namespace after
