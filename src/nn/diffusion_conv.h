#ifndef AFTER_NN_DIFFUSION_CONV_H_
#define AFTER_NN_DIFFUSION_CONV_H_

#include <vector>

#include "tensor/autograd.h"

namespace after {

class Rng;

/// Diffusion convolution from DCRNN (Li et al., ICLR'18):
///
///   DConv(X) = sum_{k=0..K} (D^{-1} A)^k X W_k + b
///
/// On the undirected occlusion graphs used here the forward and backward
/// random-walk transitions coincide, so a single set of filters per hop
/// suffices.
class DiffusionConv {
 public:
  DiffusionConv(int in_features, int out_features, int max_hops, Rng& rng);

  /// x: (n x in), transition: constant (n x n) row-normalized adjacency.
  Variable Forward(const Variable& x, const Variable& transition) const;

  std::vector<Variable> Parameters() const;

  /// Builds the row-normalized random-walk transition matrix D^{-1}A from
  /// a (possibly weighted) adjacency matrix. Isolated nodes get a zero row.
  static Matrix RandomWalkTransition(const Matrix& adjacency);

 private:
  int max_hops_;
  std::vector<Variable> hop_weights_;  // one (in x out) filter per hop
  Variable bias_;
};

}  // namespace after

#endif  // AFTER_NN_DIFFUSION_CONV_H_
