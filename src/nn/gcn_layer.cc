#include "nn/gcn_layer.h"

#include <cmath>

#include "common/rng.h"

namespace after {

Variable ApplyActivation(const Variable& x, Activation activation) {
  switch (activation) {
    case Activation::kNone:
      return x;
    case Activation::kRelu:
      return Variable::Relu(x);
    case Activation::kSigmoid:
      return Variable::Sigmoid(x);
    case Activation::kTanh:
      return Variable::Tanh(x);
  }
  return x;
}

GcnLayer::GcnLayer(int in_features, int out_features, Activation activation,
                   Rng& rng)
    : activation_(activation) {
  const double stddev = 1.0 / std::sqrt(static_cast<double>(in_features));
  self_weight_ = Variable::Parameter(
      Matrix::Randn(in_features, out_features, stddev, rng));
  neighbor_weight_ = Variable::Parameter(
      Matrix::Randn(in_features, out_features, stddev, rng));
  bias_ = Variable::Parameter(Matrix(1, out_features));
}

Variable GcnLayer::Forward(const Variable& h,
                           const Variable& adjacency) const {
  Variable self_term = Variable::MatMul(h, self_weight_);
  Variable neighbor_term =
      Variable::MatMul(Variable::MatMul(adjacency, h), neighbor_weight_);
  Variable out =
      Variable::AddRowBroadcast(self_term + neighbor_term, bias_);
  return ApplyActivation(out, activation_);
}

}  // namespace after
