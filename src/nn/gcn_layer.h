#ifndef AFTER_NN_GCN_LAYER_H_
#define AFTER_NN_GCN_LAYER_H_

#include <vector>

#include "tensor/autograd.h"

namespace after {

class Rng;

/// Activation applied by graph layers.
enum class Activation { kNone, kRelu, kSigmoid, kTanh };

/// Applies the given activation as a tape operation.
Variable ApplyActivation(const Variable& x, Activation activation);

/// Graph convolution layer matching POSHGNN Eq. (1):
///
///   h_i^{l+1} = act( M1 * h_i^l + M2 * sum_{j in N(i)} h_j^l + b )
///
/// expressed in matrix form as act(H*M1 + (A*H)*M2 + b), where A is the
/// (binary, symmetric) adjacency matrix of the occlusion graph at time t.
class GcnLayer {
 public:
  GcnLayer(int in_features, int out_features, Activation activation, Rng& rng);

  /// h: (n x in), adjacency: constant (n x n). Returns (n x out).
  Variable Forward(const Variable& h, const Variable& adjacency) const;

  std::vector<Variable> Parameters() const {
    return {self_weight_, neighbor_weight_, bias_};
  }

 private:
  Activation activation_;
  Variable self_weight_;      // M1
  Variable neighbor_weight_;  // M2
  Variable bias_;
};

}  // namespace after

#endif  // AFTER_NN_GCN_LAYER_H_
