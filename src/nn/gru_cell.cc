#include "nn/gru_cell.h"

#include "common/rng.h"

namespace after {

GruCell::GruCell(int input_size, int hidden_size, Rng& rng)
    : hidden_size_(hidden_size),
      update_gate_(input_size + hidden_size, hidden_size, rng),
      reset_gate_(input_size + hidden_size, hidden_size, rng),
      candidate_(input_size + hidden_size, hidden_size, rng) {}

Variable GruCell::Forward(const Variable& x, const Variable& h) const {
  Variable xh = Variable::ConcatCols(x, h);
  Variable z = Variable::Sigmoid(update_gate_.Forward(xh));
  Variable r = Variable::Sigmoid(reset_gate_.Forward(xh));
  Variable xrh = Variable::ConcatCols(x, Variable::Hadamard(r, h));
  Variable c = Variable::Tanh(candidate_.Forward(xrh));
  // h' = z*h + (1-z)*c = z*h + c - z*c
  Variable zh = Variable::Hadamard(z, h);
  Variable zc = Variable::Hadamard(z, c);
  return zh + (c - zc);
}

std::vector<Variable> GruCell::Parameters() const {
  std::vector<Variable> params = update_gate_.Parameters();
  for (const auto& p : reset_gate_.Parameters()) params.push_back(p);
  for (const auto& p : candidate_.Parameters()) params.push_back(p);
  return params;
}

}  // namespace after
