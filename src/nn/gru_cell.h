#ifndef AFTER_NN_GRU_CELL_H_
#define AFTER_NN_GRU_CELL_H_

#include <vector>

#include "nn/linear.h"
#include "tensor/autograd.h"

namespace after {

class Rng;

/// Standard gated recurrent unit applied row-wise (per graph node):
///
///   z = sigmoid([x|h] Wz + bz)
///   r = sigmoid([x|h] Wr + br)
///   c = tanh([x | r*h] Wc + bc)
///   h' = z * h + (1-z) * c
///
/// Used by the TGCN baseline (on GCN-transformed inputs) and reusable for
/// any recurrent recommender.
class GruCell {
 public:
  GruCell(int input_size, int hidden_size, Rng& rng);

  /// x: (n x input), h: (n x hidden). Returns new hidden (n x hidden).
  Variable Forward(const Variable& x, const Variable& h) const;

  std::vector<Variable> Parameters() const;

  int hidden_size() const { return hidden_size_; }

 private:
  int hidden_size_;
  Linear update_gate_;
  Linear reset_gate_;
  Linear candidate_;
};

}  // namespace after

#endif  // AFTER_NN_GRU_CELL_H_
