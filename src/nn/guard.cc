#include "nn/guard.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "nn/serialize.h"

namespace after {

bool AllFinite(const Matrix& m) {
  for (int i = 0; i < m.size(); ++i)
    if (!std::isfinite(m[static_cast<size_t>(i)])) return false;
  return true;
}

TrainingGuard::TrainingGuard(const RobustnessConfig& config, Adam* optimizer)
    : config_(config),
      optimizer_(optimizer),
      base_learning_rate_(optimizer->learning_rate()) {
  AFTER_CHECK(optimizer_ != nullptr);
  last_good_ = SnapshotParameters(optimizer_->parameters());
}

bool TrainingGuard::ParametersFinite() const {
  for (const auto& p : optimizer_->parameters())
    if (!AllFinite(p.value())) return false;
  return true;
}

TrainingGuard::Outcome TrainingGuard::HandleBadStep(const char* reason) {
  ++consecutive_failures_;
  healthy_streak_ = 0;
  if (consecutive_failures_ > config_.max_consecutive_failures ||
      config_.policy == NumericalErrorPolicy::kFail) {
    std::ostringstream oss;
    oss << "training step rejected (" << reason << ")";
    if (config_.policy != NumericalErrorPolicy::kFail)
      oss << " " << consecutive_failures_ << " times in a row";
    status_ = NumericalError(oss.str());
    // Leave the model usable: whatever happened, parameters come back
    // finite.
    std::vector<Variable> params = optimizer_->parameters();
    RestoreParameters(last_good_, params);
    return Outcome::kFailed;
  }

  if (config_.policy == NumericalErrorPolicy::kSkipStep) {
    ++steps_skipped_;
    return Outcome::kSkipped;
  }

  // kRollbackAndHalveLr.
  std::vector<Variable> params = optimizer_->parameters();
  RestoreParameters(last_good_, params);
  optimizer_->ResetMoments();
  optimizer_->set_learning_rate(std::max(
      config_.min_learning_rate, optimizer_->learning_rate() * 0.5));
  ++rollbacks_;
  return Outcome::kRolledBack;
}

TrainingGuard::Outcome TrainingGuard::GuardedStep(double loss_value) {
  if (!status_.ok()) return Outcome::kFailed;

  if (!config_.guard_training) {
    optimizer_->Step();
    ++steps_applied_;
    return Outcome::kStepped;
  }

  if (!std::isfinite(loss_value)) return HandleBadStep("non-finite loss");

  const double grad_norm = optimizer_->GradNorm();
  if (!std::isfinite(grad_norm))
    return HandleBadStep("non-finite gradients");
  if (config_.max_grad_norm > 0.0 && grad_norm > config_.max_grad_norm)
    return HandleBadStep("exploding gradient norm");

  optimizer_->Step();
  if (!ParametersFinite())
    return HandleBadStep("non-finite parameters after update");

  // Healthy step: advance the last-good snapshot and decay any temporary
  // learning-rate reduction.
  ++steps_applied_;
  consecutive_failures_ = 0;
  last_good_ = SnapshotParameters(optimizer_->parameters());
  if (optimizer_->learning_rate() < base_learning_rate_) {
    ++healthy_streak_;
    if (healthy_streak_ >= config_.recovery_steps) {
      optimizer_->set_learning_rate(base_learning_rate_);
      healthy_streak_ = 0;
    }
  }
  return Outcome::kStepped;
}

}  // namespace after
