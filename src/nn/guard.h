#ifndef AFTER_NN_GUARD_H_
#define AFTER_NN_GUARD_H_

#include <vector>

#include "common/status.h"
#include "nn/adam.h"
#include "tensor/matrix.h"

namespace after {

/// What to do when a training step turns out to be numerically degenerate
/// (non-finite loss, non-finite gradients, or non-finite parameters after
/// the optimizer update).
enum class NumericalErrorPolicy {
  /// Drop the poisoned step: keep parameters and learning rate as they
  /// are and move on to the next rollout.
  kSkipStep,
  /// Restore the last-good parameter snapshot, reset optimizer momentum,
  /// and halve the learning rate (restored after `recovery_steps` healthy
  /// steps).
  kRollbackAndHalveLr,
  /// Stop training with a kNumericalError Status (strict mode for CI).
  kFail,
};

/// Degradation policy for guarded training; embedded in TrainOptions so
/// every trainable recommender (POSHGNN, DCRNN, TGCN) shares it.
struct RobustnessConfig {
  /// Disabled reproduces the historical unguarded behavior exactly.
  bool guard_training = true;
  NumericalErrorPolicy policy = NumericalErrorPolicy::kRollbackAndHalveLr;
  /// Gradient norms above this are treated as degenerate even when
  /// finite (exploding-BPTT guard); <= 0 disables the norm test.
  double max_grad_norm = 1e6;
  /// Give up (kFail semantics) after this many consecutive bad steps.
  int max_consecutive_failures = 32;
  /// kRollbackAndHalveLr never reduces the learning rate below this.
  double min_learning_rate = 1e-6;
  /// Healthy steps before the pre-rollback learning rate is restored.
  int recovery_steps = 4;
};

/// Wraps an Adam optimizer with NaN/Inf detection and last-good-parameter
/// rollback (snapshots via nn/serialize's SnapshotParameters). Usage:
///
///   Adam optimizer(params, ...);
///   TrainingGuard guard(robustness, &optimizer);
///   ...
///   optimizer.ZeroGrad();
///   loss.Backward();
///   switch (guard.GuardedStep(loss.value().At(0, 0))) { ... }
///
/// GuardedStep replaces the bare optimizer.Step(): it refuses to apply
/// updates from poisoned losses/gradients and repairs parameters that a
/// step drove non-finite, according to the configured policy.
class TrainingGuard {
 public:
  enum class Outcome {
    /// The update was applied; parameters are finite.
    kStepped,
    /// The step was dropped (skip-step policy, or a bad step under
    /// rollback policy whose parameters were already at the snapshot).
    kSkipped,
    /// Parameters were restored from the last-good snapshot.
    kRolledBack,
    /// Unrecoverable under the policy; `status()` holds the error and
    /// parameters hold the last-good snapshot.
    kFailed,
  };

  TrainingGuard(const RobustnessConfig& config, Adam* optimizer);

  /// Guards one optimizer step given the (already-backpropagated) scalar
  /// training loss. Never aborts.
  Outcome GuardedStep(double loss_value);

  /// OK unless a step ended in kFailed.
  const Status& status() const { return status_; }

  /// Counters for diagnostics / tests.
  int steps_applied() const { return steps_applied_; }
  int steps_skipped() const { return steps_skipped_; }
  int rollbacks() const { return rollbacks_; }

 private:
  bool ParametersFinite() const;
  Outcome HandleBadStep(const char* reason);

  RobustnessConfig config_;
  Adam* optimizer_;
  std::vector<Matrix> last_good_;
  double base_learning_rate_;
  int healthy_streak_ = 0;
  int consecutive_failures_ = 0;
  int steps_applied_ = 0;
  int steps_skipped_ = 0;
  int rollbacks_ = 0;
  Status status_;
};

/// True when every entry of `m` is finite.
bool AllFinite(const Matrix& m);

}  // namespace after

#endif  // AFTER_NN_GUARD_H_
