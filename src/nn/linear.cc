#include "nn/linear.h"

#include <cmath>

#include "common/rng.h"

namespace after {

Linear::Linear(int in_features, int out_features, Rng& rng)
    : in_features_(in_features), out_features_(out_features) {
  const double stddev = 1.0 / std::sqrt(static_cast<double>(in_features));
  weight_ = Variable::Parameter(
      Matrix::Randn(in_features, out_features, stddev, rng));
  bias_ = Variable::Parameter(Matrix(1, out_features));
}

Variable Linear::Forward(const Variable& x) const {
  return Variable::AddRowBroadcast(Variable::MatMul(x, weight_), bias_);
}

}  // namespace after
