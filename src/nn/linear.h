#ifndef AFTER_NN_LINEAR_H_
#define AFTER_NN_LINEAR_H_

#include <vector>

#include "tensor/autograd.h"

namespace after {

class Rng;

/// Fully-connected layer: y = x * W + b, with W in R^{in x out} and a
/// broadcast bias row b in R^{1 x out}. Weights use Xavier-style
/// initialization scaled by 1/sqrt(in).
class Linear {
 public:
  Linear(int in_features, int out_features, Rng& rng);

  /// x has shape (n x in_features); returns (n x out_features).
  Variable Forward(const Variable& x) const;

  /// Trainable parameters (weight, bias).
  std::vector<Variable> Parameters() const { return {weight_, bias_}; }

  int in_features() const { return in_features_; }
  int out_features() const { return out_features_; }

 private:
  int in_features_;
  int out_features_;
  Variable weight_;
  Variable bias_;
};

}  // namespace after

#endif  // AFTER_NN_LINEAR_H_
