#include "nn/serialize.h"

#include <fstream>
#include <string>

namespace after {

bool SaveParameters(const std::string& path,
                    const std::vector<Variable>& parameters) {
  std::ofstream out(path);
  if (!out) return false;
  out.precision(17);
  out << "after-params " << parameters.size() << "\n";
  for (const auto& p : parameters) {
    const Matrix& value = p.value();
    out << value.rows() << " " << value.cols() << "\n";
    for (int r = 0; r < value.rows(); ++r) {
      for (int c = 0; c < value.cols(); ++c) {
        if (c > 0) out << " ";
        out << value.At(r, c);
      }
      out << "\n";
    }
  }
  return static_cast<bool>(out);
}

bool LoadParameters(const std::string& path,
                    std::vector<Variable>& parameters) {
  std::ifstream in(path);
  if (!in) return false;
  std::string magic;
  size_t count = 0;
  if (!(in >> magic >> count) || magic != "after-params" ||
      count != parameters.size())
    return false;
  for (auto& p : parameters) {
    int rows = 0, cols = 0;
    if (!(in >> rows >> cols)) return false;
    if (rows != p.value().rows() || cols != p.value().cols()) return false;
    Matrix value(rows, cols);
    for (int r = 0; r < rows; ++r)
      for (int c = 0; c < cols; ++c)
        if (!(in >> value.At(r, c))) return false;
    p.SetValue(std::move(value));
  }
  return true;
}

std::vector<Matrix> SnapshotParameters(
    const std::vector<Variable>& parameters) {
  std::vector<Matrix> snapshot;
  snapshot.reserve(parameters.size());
  for (const auto& p : parameters) snapshot.push_back(p.value());
  return snapshot;
}

void RestoreParameters(const std::vector<Matrix>& snapshot,
                       std::vector<Variable>& parameters) {
  AFTER_CHECK_EQ(snapshot.size(), parameters.size());
  for (size_t i = 0; i < parameters.size(); ++i) {
    AFTER_CHECK_EQ(snapshot[i].rows(), parameters[i].value().rows());
    AFTER_CHECK_EQ(snapshot[i].cols(), parameters[i].value().cols());
    parameters[i].SetValue(snapshot[i]);
  }
}

}  // namespace after
