#include "nn/serialize.h"

#include <fstream>
#include <sstream>
#include <string>

namespace after {

void WriteParameterBlock(std::ostream& out,
                         const std::vector<Matrix>& values) {
  out.precision(17);
  out << "after-params " << values.size() << "\n";
  for (const auto& value : values) {
    out << value.rows() << " " << value.cols() << "\n";
    for (int r = 0; r < value.rows(); ++r) {
      for (int c = 0; c < value.cols(); ++c) {
        if (c > 0) out << " ";
        out << value.At(r, c);
      }
      out << "\n";
    }
  }
}

Status ReadParameterBlock(std::istream& in, std::vector<Matrix>* values) {
  std::string magic;
  size_t count = 0;
  if (!(in >> magic >> count) || magic != "after-params")
    return InvalidDataError("parameter block: missing 'after-params' header");
  values->clear();
  values->reserve(count);
  for (size_t i = 0; i < count; ++i) {
    int rows = 0, cols = 0;
    if (!(in >> rows >> cols) || rows < 0 || cols < 0) {
      std::ostringstream oss;
      oss << "parameter " << i << "/" << count << ": bad shape line";
      return InvalidDataError(oss.str());
    }
    Matrix value(rows, cols);
    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c < cols; ++c) {
        if (!(in >> value.At(r, c))) {
          std::ostringstream oss;
          oss << "parameter " << i << " (" << rows << "x" << cols
              << "): truncated at entry (" << r << ", " << c << ")";
          return InvalidDataError(oss.str());
        }
      }
    }
    values->push_back(std::move(value));
  }
  return OkStatus();
}

uint64_t Fnv1a64(const std::string& bytes) {
  return Fnv1a64Stream().Update(bytes).Digest();
}

bool SaveParameters(const std::string& path,
                    const std::vector<Variable>& parameters) {
  std::ofstream out(path);
  if (!out) return false;
  WriteParameterBlock(out, SnapshotParameters(parameters));
  return static_cast<bool>(out);
}

bool LoadParameters(const std::string& path,
                    std::vector<Variable>& parameters) {
  std::ifstream in(path);
  if (!in) return false;
  std::vector<Matrix> values;
  if (!ReadParameterBlock(in, &values).ok()) return false;
  if (values.size() != parameters.size()) return false;
  for (size_t i = 0; i < parameters.size(); ++i) {
    if (values[i].rows() != parameters[i].value().rows() ||
        values[i].cols() != parameters[i].value().cols())
      return false;
  }
  for (size_t i = 0; i < parameters.size(); ++i)
    parameters[i].SetValue(std::move(values[i]));
  return true;
}

std::vector<Matrix> SnapshotParameters(
    const std::vector<Variable>& parameters) {
  std::vector<Matrix> snapshot;
  snapshot.reserve(parameters.size());
  for (const auto& p : parameters) snapshot.push_back(p.value());
  return snapshot;
}

void RestoreParameters(const std::vector<Matrix>& snapshot,
                       std::vector<Variable>& parameters) {
  AFTER_CHECK_EQ(snapshot.size(), parameters.size());
  for (size_t i = 0; i < parameters.size(); ++i) {
    AFTER_CHECK_EQ(snapshot[i].rows(), parameters[i].value().rows());
    AFTER_CHECK_EQ(snapshot[i].cols(), parameters[i].value().cols());
    parameters[i].SetValue(snapshot[i]);
  }
}

}  // namespace after
