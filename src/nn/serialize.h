#ifndef AFTER_NN_SERIALIZE_H_
#define AFTER_NN_SERIALIZE_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.h"
#include "tensor/autograd.h"

namespace after {

/// Plain-text parameter persistence: stores the shapes and values of a
/// parameter list so a trained model (POSHGNN, the recurrent baselines,
/// GraFrank) can be saved once and reloaded into a freshly-constructed
/// model with the same architecture.
///
/// Format: first line "after-params <count>", then per parameter a line
/// "rows cols" followed by the row-major values. Returns false on I/O
/// failure.
bool SaveParameters(const std::string& path,
                    const std::vector<Variable>& parameters);

/// Loads values into `parameters` (same count and shapes as saved;
/// returns false on mismatch or I/O failure, leaving parameters
/// untouched).
bool LoadParameters(const std::string& path,
                    std::vector<Variable>& parameters);

/// Stream-level building blocks of the parameter format, shared by
/// Save/LoadParameters and the checksummed model-artifact container
/// (nn/artifact.h). WriteParameterBlock emits exactly the block
/// described above; ReadParameterBlock parses it into freshly allocated
/// matrices (no pre-built shape expectations), returning kInvalidData
/// with a line-level diagnostic on malformed input.
void WriteParameterBlock(std::ostream& out,
                         const std::vector<Matrix>& values);
Status ReadParameterBlock(std::istream& in, std::vector<Matrix>* values);

/// FNV-1a 64-bit hash of a byte string; the checksum primitive of the
/// artifact container (docs/model_artifacts.md). Stable across
/// platforms: the format stores parameter text, not raw doubles.
uint64_t Fnv1a64(const std::string& bytes);

/// Incremental counterpart of Fnv1a64 for payloads that are produced or
/// read in pieces (journal appends, chunked artifact verification,
/// serve/journal.h): feed bytes with Update() in any chunking and read
/// the running hash with Digest(). Equivalence with the one-shot hash
/// over the concatenated bytes is exact by construction (FNV-1a folds
/// one byte at a time) and pinned by tests/nn/serialize_test.cc.
class Fnv1a64Stream {
 public:
  Fnv1a64Stream& Update(const char* bytes, size_t count) {
    for (size_t i = 0; i < count; ++i) {
      hash_ ^= static_cast<unsigned char>(bytes[i]);
      hash_ *= 0x100000001B3ULL;
    }
    return *this;
  }
  Fnv1a64Stream& Update(const std::string& bytes) {
    return Update(bytes.data(), bytes.size());
  }

  /// The hash of everything fed so far; more Update() calls may follow.
  uint64_t Digest() const { return hash_; }

 private:
  uint64_t hash_ = 0xCBF29CE484222325ULL;
};

/// In-memory counterpart of Save/LoadParameters: copies the current
/// values of `parameters` so they can be restored later (last-good
/// checkpointing for NaN-guarded training, see nn/guard.h).
std::vector<Matrix> SnapshotParameters(const std::vector<Variable>& parameters);

/// Restores values captured by SnapshotParameters bit-exactly. The
/// snapshot must hold the same count and shapes as `parameters`
/// (programming error otherwise).
void RestoreParameters(const std::vector<Matrix>& snapshot,
                       std::vector<Variable>& parameters);

}  // namespace after

#endif  // AFTER_NN_SERIALIZE_H_
