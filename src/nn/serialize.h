#ifndef AFTER_NN_SERIALIZE_H_
#define AFTER_NN_SERIALIZE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.h"
#include "tensor/autograd.h"

namespace after {

/// Plain-text parameter persistence: stores the shapes and values of a
/// parameter list so a trained model (POSHGNN, the recurrent baselines,
/// GraFrank) can be saved once and reloaded into a freshly-constructed
/// model with the same architecture.
///
/// Format: first line "after-params <count>", then per parameter a line
/// "rows cols" followed by the row-major values. Returns false on I/O
/// failure.
bool SaveParameters(const std::string& path,
                    const std::vector<Variable>& parameters);

/// Loads values into `parameters` (same count and shapes as saved;
/// returns false on mismatch or I/O failure, leaving parameters
/// untouched).
bool LoadParameters(const std::string& path,
                    std::vector<Variable>& parameters);

/// Stream-level building blocks of the parameter format, shared by
/// Save/LoadParameters and the checksummed model-artifact container
/// (nn/artifact.h). WriteParameterBlock emits exactly the block
/// described above; ReadParameterBlock parses it into freshly allocated
/// matrices (no pre-built shape expectations), returning kInvalidData
/// with a line-level diagnostic on malformed input.
void WriteParameterBlock(std::ostream& out,
                         const std::vector<Matrix>& values);
Status ReadParameterBlock(std::istream& in, std::vector<Matrix>* values);

/// FNV-1a 64-bit hash of a byte string; the checksum primitive of the
/// artifact container (docs/model_artifacts.md). Stable across
/// platforms: the format stores parameter text, not raw doubles.
uint64_t Fnv1a64(const std::string& bytes);

/// In-memory counterpart of Save/LoadParameters: copies the current
/// values of `parameters` so they can be restored later (last-good
/// checkpointing for NaN-guarded training, see nn/guard.h).
std::vector<Matrix> SnapshotParameters(const std::vector<Variable>& parameters);

/// Restores values captured by SnapshotParameters bit-exactly. The
/// snapshot must hold the same count and shapes as `parameters`
/// (programming error otherwise).
void RestoreParameters(const std::vector<Matrix>& snapshot,
                       std::vector<Variable>& parameters);

}  // namespace after

#endif  // AFTER_NN_SERIALIZE_H_
