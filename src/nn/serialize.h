#ifndef AFTER_NN_SERIALIZE_H_
#define AFTER_NN_SERIALIZE_H_

#include <string>
#include <vector>

#include "tensor/autograd.h"

namespace after {

/// Plain-text parameter persistence: stores the shapes and values of a
/// parameter list so a trained model (POSHGNN, the recurrent baselines,
/// GraFrank) can be saved once and reloaded into a freshly-constructed
/// model with the same architecture.
///
/// Format: first line "after-params <count>", then per parameter a line
/// "rows cols" followed by the row-major values. Returns false on I/O
/// failure.
bool SaveParameters(const std::string& path,
                    const std::vector<Variable>& parameters);

/// Loads values into `parameters` (same count and shapes as saved;
/// returns false on mismatch or I/O failure, leaving parameters
/// unspecified).
bool LoadParameters(const std::string& path,
                    std::vector<Variable>& parameters);

/// In-memory counterpart of Save/LoadParameters: copies the current
/// values of `parameters` so they can be restored later (last-good
/// checkpointing for NaN-guarded training, see nn/guard.h).
std::vector<Matrix> SnapshotParameters(const std::vector<Variable>& parameters);

/// Restores values captured by SnapshotParameters bit-exactly. The
/// snapshot must hold the same count and shapes as `parameters`
/// (programming error otherwise).
void RestoreParameters(const std::vector<Matrix>& snapshot,
                       std::vector<Variable>& parameters);

}  // namespace after

#endif  // AFTER_NN_SERIALIZE_H_
