#include "serve/batcher.h"

#include "common/check.h"

namespace after {
namespace serve {

TickBatcher::PerRoom& TickBatcher::StateFor(int room) const {
  AFTER_CHECK_GE(room, 0);
  std::lock_guard<std::mutex> lock(rooms_mutex_);
  return rooms_[room];
}

TickBatcher::Admit TickBatcher::Enqueue(
    int room, Pending pending, const std::function<bool()>& schedule) {
  PerRoom& state = StateFor(room);
  std::lock_guard<std::mutex> lock(state.mutex);
  state.queue.push_back(std::move(pending));
  if (state.drain_scheduled) return Admit::kQueued;
  if (schedule()) {
    state.drain_scheduled = true;
    return Admit::kQueuedAndScheduled;
  }
  // Pool saturated or shut down: un-park so the caller can shed with the
  // exactly-once completion guarantee intact.
  state.queue.pop_back();
  return Admit::kRejected;
}

std::vector<TickBatcher::Pending> TickBatcher::TakeBatch(int room) {
  PerRoom& state = StateFor(room);
  std::lock_guard<std::mutex> lock(state.mutex);
  if (state.queue.empty()) {
    state.drain_scheduled = false;
    return {};
  }
  std::vector<Pending> batch;
  batch.swap(state.queue);
  return batch;
}

int TickBatcher::pending(int room) const {
  const PerRoom& state = StateFor(room);
  std::lock_guard<std::mutex> lock(state.mutex);
  return static_cast<int>(state.queue.size());
}

}  // namespace serve
}  // namespace after
