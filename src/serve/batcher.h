#ifndef AFTER_SERVE_BATCHER_H_
#define AFTER_SERVE_BATCHER_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/timer.h"
#include "serve/server_types.h"

namespace after {
namespace serve {

/// In-tick request coalescing for the RecommendationServer (the
/// GASim-style "batch the graph work per simulation step" optimization):
/// instead of one worker task per request, requests are parked in a
/// per-room queue and a single drain task per room takes the whole
/// queue at once, answering every parked request against one room
/// snapshot — one coalesced inference job per room per batching window,
/// with duplicate targets collapsing into one forward pass.
///
/// Scheduling protocol (leading-edge, no artificial wait):
///  - Enqueue() parks the request; if no drain task currently owns the
///    room, the caller-supplied `schedule` hook is invoked *under the
///    room lock* to submit one, so the "needs a task" decision and the
///    submission cannot race. A request is only admitted if either a
///    drain task already owns the room or the hook succeeds.
///  - The drain task loops TakeBatch() until it comes back empty, which
///    atomically releases ownership — at every instant a non-empty
///    queue has exactly one owning task, and every admitted request is
///    answered by some drain.
///
/// Latency shape: a request never waits for a tick boundary — it waits
/// at most one in-flight batch (the room's current drain), so the
/// batching window adapts to load: idle rooms answer immediately,
/// saturated rooms coalesce harder.
class TickBatcher {
 public:
  /// One parked request: what Submit() knew, frozen at admission.
  struct Pending {
    FriendRequest request;
    Deadline deadline;
    std::shared_ptr<std::function<void(const FriendResponse&)>> done;
  };

  enum class Admit {
    /// Parked; an existing drain task will pick it up.
    kQueued,
    /// Parked, and `schedule` successfully submitted a new drain task.
    kQueuedAndScheduled,
    /// `schedule` failed (pool saturated / shut down); the request was
    /// un-parked and the caller must shed it.
    kRejected,
  };

  /// Rooms are keyed by id and materialize lazily on first Enqueue, so
  /// the batcher follows partitioned ownership churn (rooms assigned or
  /// released at runtime) without pre-sizing.
  TickBatcher() = default;

  /// Parks `pending` on `room`'s queue. `schedule` must arrange for a
  /// drain task that will call TakeBatch(room); it runs under the room
  /// lock and must not re-enter the batcher.
  Admit Enqueue(int room, Pending pending,
                const std::function<bool()>& schedule);

  /// Takes the room's entire queue. An empty result releases drain
  /// ownership: the caller's task must retire and a later Enqueue will
  /// schedule a fresh one.
  std::vector<Pending> TakeBatch(int room);

  /// Requests currently parked for the room (test/introspection only).
  int pending(int room) const;

 private:
  struct PerRoom {
    mutable std::mutex mutex;
    std::vector<Pending> queue;
    /// True while a drain task owns this room's queue.
    bool drain_scheduled = false;
  };

  /// Returns the room's state, creating it on first use. std::map gives
  /// node stability, so the returned reference survives later inserts
  /// (PerRoom holds a mutex and cannot be moved by a rehash).
  PerRoom& StateFor(int room) const;

  mutable std::mutex rooms_mutex_;  // guards map growth only
  mutable std::map<int, PerRoom> rooms_;
};

}  // namespace serve
}  // namespace after

#endif  // AFTER_SERVE_BATCHER_H_
