#include "serve/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "nn/artifact.h"
#include "nn/serialize.h"
#include "serve/server.h"

namespace after {
namespace serve {
namespace {

namespace fs = std::filesystem;

constexpr const char* kCheckpointKind = "room-checkpoint";
constexpr const char* kJournalFileName = "journal.wal";

std::string JournalPathFor(const std::string& dir) {
  return dir + "/" + kJournalFileName;
}

/// fsync by path; needed to make the temp file durable before rename.
Status SyncPath(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0)
    return InternalError("checkpoint: open '" + path +
                         "': " + std::strerror(errno));
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0)
    return InternalError("checkpoint: fsync '" + path +
                         "': " + std::strerror(errno));
  return OkStatus();
}

uint64_t ParseEpoch(const std::string& text) {
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(text.c_str(), &end, 10);
  return (end && *end == '\0') ? static_cast<uint64_t>(parsed) : 0;
}

}  // namespace

std::string CheckpointPath(const std::string& dir, int room) {
  return dir + "/room-" + std::to_string(room) + ".ckpt";
}

Status WriteRoomCheckpoint(const std::string& dir,
                           const RoomCheckpoint& checkpoint) {
  // The blob is nn/serialize parameter text already; parse it into the
  // artifact's matrices so the container's checksum covers the exact
  // bytes ApplyState will see again after load (precision-17 text
  // round-trips doubles bit-exactly).
  ModelArtifact artifact;
  artifact.kind = kCheckpointKind;
  artifact.metadata["room"] = std::to_string(checkpoint.room);
  artifact.metadata["epoch"] = std::to_string(checkpoint.epoch);
  artifact.metadata["primary"] = checkpoint.primary ? "1" : "0";
  artifact.metadata["tick"] = std::to_string(checkpoint.tick);
  std::istringstream blob(checkpoint.state);
  AFTER_RETURN_IF_ERROR(ReadParameterBlock(blob, &artifact.parameters)
                            .Annotate("checkpoint room " +
                                      std::to_string(checkpoint.room)));
  const std::string path = CheckpointPath(dir, checkpoint.room);
  const std::string temp = path + ".tmp";
  AFTER_RETURN_IF_ERROR(artifact.Save(temp));
  AFTER_RETURN_IF_ERROR(SyncPath(temp));
  if (::rename(temp.c_str(), path.c_str()) != 0)
    return InternalError("checkpoint: rename '" + temp +
                         "': " + std::strerror(errno));
  return SyncPath(dir);
}

Result<RoomCheckpoint> LoadRoomCheckpoint(const std::string& path) {
  Result<ModelArtifact> loaded = ModelArtifact::Load(path);
  if (!loaded.ok()) {
    if (loaded.status().code() == StatusCode::kNotFound)
      return loaded.status();
    // Exists but failed checksum / structural validation: that is the
    // definition of durable-state data loss.
    return DataLossError(loaded.status().message());
  }
  const ModelArtifact& artifact = loaded.value();
  if (artifact.kind != kCheckpointKind)
    return DataLossError("checkpoint '" + path + "': foreign kind '" +
                         artifact.kind + "'");
  RoomCheckpoint checkpoint;
  checkpoint.room = artifact.FieldInt("room", -1);
  checkpoint.epoch = ParseEpoch(artifact.Field("epoch"));
  checkpoint.primary = artifact.FieldInt("primary", 0) == 1;
  checkpoint.tick = artifact.FieldInt("tick", -1);
  if (checkpoint.room < 0 || checkpoint.tick < 0)
    return DataLossError("checkpoint '" + path +
                         "': missing room/tick metadata");
  std::ostringstream blob;
  WriteParameterBlock(blob, artifact.parameters);
  checkpoint.state = blob.str();
  return checkpoint;
}

std::vector<int> ListCheckpointRooms(const std::string& dir) {
  std::vector<int> rooms;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("room-", 0) != 0) continue;
    const size_t suffix = name.find(".ckpt");
    if (suffix == std::string::npos || suffix + 5 != name.size()) continue;
    const std::string id = name.substr(5, suffix - 5);
    if (id.empty() ||
        id.find_first_not_of("0123456789") != std::string::npos)
      continue;
    rooms.push_back(std::stoi(id));
  }
  std::sort(rooms.begin(), rooms.end());
  return rooms;
}

DurabilityManager::DurabilityManager(const Options& options,
                                     std::unique_ptr<Journal> journal,
                                     int64_t truncated_bytes,
                                     int orphaned_rooms)
    : options_(options),
      journal_(std::move(journal)),
      truncated_bytes_(truncated_bytes),
      orphaned_rooms_(orphaned_rooms) {}

Result<std::unique_ptr<DurabilityManager>> DurabilityManager::Open(
    const Options& options) {
  AFTER_CHECK(!options.dir.empty());
  AFTER_CHECK_GE(options.checkpoint_every_ticks, 1);
  std::error_code ec;
  fs::create_directories(options.dir, ec);
  if (ec)
    return InternalError("durability: create '" + options.dir +
                         "': " + ec.message());
  const std::string journal_path = JournalPathFor(options.dir);
  // Physically drop any torn tail before the first O_APPEND write, so
  // new records land where replay can reach them.
  int64_t truncated = 0;
  int orphaned = 0;
  Result<int64_t> tail = TruncateTornJournalTail(journal_path);
  if (tail.ok()) {
    truncated = tail.value();
  } else if (tail.status().code() == StatusCode::kDataLoss) {
    // The header itself is gone; nothing in the file can be trusted.
    // Move it aside for post-mortem and start a fresh journal — and
    // quarantine every checkpoint with it: without the ownership ledger
    // a checkpoint alone cannot prove its room was not released or
    // re-granted elsewhere after it was taken, and an orphan left in
    // place would be picked up (and resurrect dead state) on the next
    // restart once the fresh journal reads clean.
    (void)::rename(journal_path.c_str(),
                   (journal_path + ".corrupt").c_str());
    for (const int room : ListCheckpointRooms(options.dir)) {
      const std::string path = CheckpointPath(options.dir, room);
      (void)::rename(path.c_str(), (path + ".orphan").c_str());
      ++orphaned;
    }
  } else {
    return tail.status();
  }
  Result<std::unique_ptr<Journal>> journal =
      Journal::Open(journal_path, options.journal_fsync);
  if (!journal.ok()) return journal.status();
  return std::unique_ptr<DurabilityManager>(new DurabilityManager(
      options, std::move(journal).value(), truncated, orphaned));
}

void DurabilityManager::Attach(RecommendationServer* server) {
  std::lock_guard<std::mutex> lock(mutex_);
  server_ = server;
}

void DurabilityManager::CountCheckpoint() {
  if (server_ != nullptr)
    server_->metrics().checkpoints_written.fetch_add(
        1, std::memory_order_relaxed);
}

Status DurabilityManager::RecordAssign(int room, uint64_t epoch,
                                       bool primary, bool reset) {
  JournalRecord record;
  record.type = JournalRecord::Type::kAssign;
  record.room = room;
  record.epoch = epoch;
  record.primary = primary;
  record.reset = reset;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    roles_[room] = Role{epoch, primary};
    ticks_since_checkpoint_[room] = 0;
  }
  AFTER_RETURN_IF_ERROR(journal_->Append(record));
  if (server_ != nullptr) {
    server_->metrics().journal_records.fetch_add(1,
                                                 std::memory_order_relaxed);
  }
  // Ownership changes are rare and must not evaporate in the page
  // cache: sync the fence even when per-tick fsync is off.
  return journal_->Sync();
}

Status DurabilityManager::RecordRelease(int room, uint64_t epoch) {
  JournalRecord record;
  record.type = JournalRecord::Type::kRelease;
  record.room = room;
  record.epoch = epoch;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    roles_.erase(room);
    ticks_since_checkpoint_.erase(room);
  }
  // Journal + sync the release BEFORE deleting the checkpoint: a crash
  // between the two leaves an orphan checkpoint that the durable
  // release record overrides at recovery. The reverse order could
  // resurrect a room the router already moved elsewhere.
  AFTER_RETURN_IF_ERROR(journal_->Append(record));
  AFTER_RETURN_IF_ERROR(journal_->Sync());
  if (server_ != nullptr)
    server_->metrics().journal_records.fetch_add(1,
                                                 std::memory_order_relaxed);
  std::error_code ec;
  fs::remove(CheckpointPath(options_.dir, room), ec);
  return OkStatus();
}

Status DurabilityManager::CheckpointLocked(const Room& room) {
  auto role = roles_.find(room.id());
  if (role == roles_.end())
    return NotFoundError("room " + std::to_string(room.id()) +
                         " has no durable assignment");
  RoomCheckpoint checkpoint;
  checkpoint.room = room.id();
  checkpoint.epoch = role->second.epoch;
  checkpoint.primary = role->second.primary;
  checkpoint.state = room.ExportState();
  checkpoint.tick = room.tick();
  AFTER_RETURN_IF_ERROR(WriteRoomCheckpoint(options_.dir, checkpoint));
  ticks_since_checkpoint_[room.id()] = 0;
  CountCheckpoint();
  return OkStatus();
}

Status DurabilityManager::CheckpointNow(const Room& room) {
  std::lock_guard<std::mutex> lock(mutex_);
  return CheckpointLocked(room);
}

Status DurabilityManager::RotateLocked() {
  // Every hosted room gets a fresh checkpoint, the checkpoints are made
  // durable by WriteRoomCheckpoint's fsyncs, and only then does the
  // journal truncate — released rooms' checkpoints are already gone, so
  // the truncation cannot resurrect them.
  if (server_ == nullptr) return OkStatus();  // no room registry to sweep
  for (const auto& [room_id, role] : roles_) {
    (void)role;
    const std::shared_ptr<Room> room = server_->FindRoom(room_id);
    if (room == nullptr) continue;
    AFTER_RETURN_IF_ERROR(CheckpointLocked(*room));
  }
  return journal_->Rotate();
}

Status DurabilityManager::RecordTick(const Room& room) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Durability is scoped to assigned rooms: an unassigned room has no
    // durable incarnation to journal against.
    if (roles_.count(room.id()) == 0) return OkStatus();
  }
  Room::TickFrame frame = room.CurrentTickFrame();
  JournalRecord record;
  record.type = JournalRecord::Type::kTick;
  record.room = room.id();
  record.tick = frame.tick;
  record.positions = std::move(frame.positions);
  record.goals = std::move(frame.goals);
  AFTER_RETURN_IF_ERROR(journal_->Append(record));
  if (server_ != nullptr) {
    server_->metrics().journal_records.fetch_add(1,
                                                 std::memory_order_relaxed);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (server_ != nullptr)
    server_->metrics().journal_bytes.store(journal_->bytes(),
                                           std::memory_order_relaxed);
  if (++ticks_since_checkpoint_[room.id()] >=
      options_.checkpoint_every_ticks)
    AFTER_RETURN_IF_ERROR(CheckpointLocked(room));
  if (journal_->bytes() > options_.journal_rotate_bytes)
    AFTER_RETURN_IF_ERROR(RotateLocked());
  return OkStatus();
}

Result<DurabilityManager::RecoveryPlan> DurabilityManager::LoadRecoveryPlan() {
  RecoveryPlan plan;
  plan.journal_truncated_bytes = truncated_bytes_;
  // Checkpoints quarantined at Open() because the journal header was
  // corrupt: their rooms' durable state existed but is unusable.
  plan.data_loss_rooms += orphaned_rooms_;

  // Base states: every readable checkpoint in the directory. Corrupt
  // ones are data loss — counted, skipped, never fatal.
  std::unordered_map<int, RoomCheckpoint> bases;
  for (int room : ListCheckpointRooms(options_.dir)) {
    Result<RoomCheckpoint> loaded =
        LoadRoomCheckpoint(CheckpointPath(options_.dir, room));
    if (!loaded.ok()) {
      ++plan.data_loss_rooms;
      continue;
    }
    bases[room] = std::move(loaded).value();
  }

  // Ownership ledger + replay lists, folded from the journal in append
  // order. The checkpoint is only usable when it was taken under the
  // room's *current* incarnation: an assign that rebuilt or overwrote
  // the room's state (every grant processed as a new build or a
  // migration) resets the incarnation, and a checkpoint from before
  // that reset would resurrect dead state.
  struct Fold {
    bool owned = false;
    uint64_t epoch = 0;
    bool primary = false;
    uint64_t last_reset_epoch = 0;
    std::vector<JournalRecord> ticks;
  };
  std::unordered_map<int, Fold> folds;
  for (const auto& [room, base] : bases) {
    Fold& fold = folds[room];
    fold.owned = true;
    fold.epoch = base.epoch;
    fold.primary = base.primary;
  }
  Result<JournalReplay> replay = ReadJournal(journal_->path());
  if (replay.ok()) {
    for (const JournalRecord& record : replay.value().records) {
      Fold& fold = folds[record.room];
      switch (record.type) {
        case JournalRecord::Type::kAssign:
          if (fold.owned && record.epoch < fold.epoch) break;  // stale
          fold.owned = true;
          fold.epoch = record.epoch;
          fold.primary = record.primary;
          if (record.reset) {
            fold.last_reset_epoch = record.epoch;
            fold.ticks.clear();
          }
          break;
        case JournalRecord::Type::kRelease:
          if (record.epoch < fold.epoch) break;  // stale
          fold.owned = false;
          fold.epoch = record.epoch;
          fold.last_reset_epoch = record.epoch;
          fold.ticks.clear();
          break;
        case JournalRecord::Type::kTick:
          if (fold.owned) fold.ticks.push_back(record);
          break;
      }
    }
  }

  for (auto& [room, fold] : folds) {
    if (!fold.owned) continue;
    RecoveryEntry entry;
    entry.room = room;
    entry.epoch = fold.epoch;
    entry.primary = fold.primary;
    auto base = bases.find(room);
    const bool use_base =
        base != bases.end() &&
        base->second.epoch >= fold.last_reset_epoch;
    if (use_base) {
      entry.checkpoint_state = std::move(base->second.state);
      entry.checkpoint_tick = base->second.tick;
      for (JournalRecord& tick : fold.ticks)
        if (tick.tick > entry.checkpoint_tick)
          entry.ticks.push_back(std::move(tick));
    } else {
      entry.ticks = std::move(fold.ticks);
    }
    plan.entries.push_back(std::move(entry));
  }
  std::sort(plan.entries.begin(), plan.entries.end(),
            [](const RecoveryEntry& a, const RecoveryEntry& b) {
              return a.room < b.room;
            });
  return plan;
}

}  // namespace serve
}  // namespace after
