#ifndef AFTER_SERVE_CHECKPOINT_H_
#define AFTER_SERVE_CHECKPOINT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "serve/journal.h"
#include "serve/room.h"

namespace after {
namespace serve {

class RecommendationServer;

/// One room's durable checkpoint: the ownership coordinates under which
/// it was taken plus the full Room::ExportState() blob (tick, positions,
/// goals, trajectory window). On disk it is a checksummed nn/artifact
/// container of kind "room-checkpoint" whose parameter block is the
/// blob's four matrices and whose metadata records room / epoch /
/// primary / tick — so bit rot is detected at load (kDataLoss) before a
/// single value reaches a live room.
struct RoomCheckpoint {
  int room = 0;
  uint64_t epoch = 0;
  bool primary = false;
  int tick = 0;
  /// Room::ExportState() text, ready for Room::ApplyState().
  std::string state;
};

/// "<dir>/room-<id>.ckpt".
std::string CheckpointPath(const std::string& dir, int room);

/// Writes atomically: temp file + fsync + rename + directory fsync, so a
/// crash mid-checkpoint leaves either the previous checkpoint or the new
/// one, never a torn hybrid.
Status WriteRoomCheckpoint(const std::string& dir,
                           const RoomCheckpoint& checkpoint);

/// kNotFound when absent; kDataLoss when the file exists but fails
/// checksum or structural validation.
Result<RoomCheckpoint> LoadRoomCheckpoint(const std::string& path);

/// Room ids with a checkpoint file in `dir` (stray ".tmp" leftovers of
/// interrupted writes are ignored).
std::vector<int> ListCheckpointRooms(const std::string& dir);

/// Shard-local durability coordinator (docs/durability.md): owns the
/// write-ahead journal plus the checkpoint directory and enforces the
/// ordering discipline between them.
///
///  - Assign is journaled after the grant takes effect; a grant that
///    carried migration state is checkpointed immediately (the handoff
///    blob exists nowhere else durable).
///  - Release is journaled (and synced) BEFORE the room's checkpoint is
///    deleted: a crash between the two leaves an orphan checkpoint that
///    the release record overrides, whereas the reverse order could
///    resurrect a room the router had already moved elsewhere.
///  - Ticks are journaled per publish; every checkpoint_every_ticks of
///    them the room is re-checkpointed, and once the journal outgrows
///    journal_rotate_bytes every hosted room is checkpointed and the
///    journal is atomically rotated to empty.
///
/// Recovery (LoadRecoveryPlan) folds checkpoints and journal back into
/// per-room plans: checkpoints are the base states, assign/release
/// records replay the ownership ledger on top (newest epoch wins), and
/// tick records past each base tick become the replay list. Corrupt
/// checkpoints or a corrupt journal header surface as kDataLoss counts,
/// never crashes — the affected rooms restart fresh when the router
/// re-grants them.
///
/// Thread-safe: control frames arrive on connection reader threads
/// while the tick loop appends.
class DurabilityManager {
 public:
  struct Options {
    /// Directory for the journal + checkpoints; created if absent.
    std::string dir;
    /// Re-checkpoint a room every this many journaled ticks.
    int checkpoint_every_ticks = 256;
    /// Rotate (checkpoint-all + truncate) once the journal exceeds this.
    int64_t journal_rotate_bytes = 8 << 20;
    /// fsync the journal on every append (crash-of-machine durability)
    /// instead of only on release/rotation barriers.
    bool journal_fsync = false;
  };

  /// Creates the directory, truncates any torn journal tail, and opens
  /// the journal for appending. A corrupt-header journal is moved aside
  /// to "<journal>.corrupt" — and every checkpoint is quarantined with
  /// it (to "<checkpoint>.orphan", counted as data loss in the recovery
  /// plan): without the ownership ledger a checkpoint alone cannot prove
  /// its room was not released or moved after it was taken.
  static Result<std::unique_ptr<DurabilityManager>> Open(
      const Options& options);

  /// Optional: lets rotation find hosted rooms and counters find
  /// ServerMetrics. Must be set before tick traffic when used with a
  /// server.
  void Attach(RecommendationServer* server);

  /// `reset` marks a grant that rebuilt or overwrote the room's state
  /// (fresh build or migration blob applied) — i.e. a new durable
  /// incarnation; false for a promotion of an already-hosted room.
  Status RecordAssign(int room, uint64_t epoch, bool primary, bool reset);
  Status RecordRelease(int room, uint64_t epoch);
  /// Journals the room's current tick frame and runs the checkpoint /
  /// rotation budgets.
  Status RecordTick(const Room& room);
  /// Checkpoints the room immediately under its recorded ownership
  /// coordinates (no-op with kNotFound when the room was never assigned).
  Status CheckpointNow(const Room& room);

  /// One room's recovery recipe: base state (a checkpoint blob, or
  /// empty = factory-fresh) plus the tick frames to replay on top.
  struct RecoveryEntry {
    int room = 0;
    uint64_t epoch = 0;
    bool primary = false;
    /// Empty when the room has no usable checkpoint.
    std::string checkpoint_state;
    int checkpoint_tick = 0;
    std::vector<JournalRecord> ticks;
  };
  struct RecoveryPlan {
    std::vector<RecoveryEntry> entries;
    /// Journal bytes dropped at Open() because the tail was torn.
    int64_t journal_truncated_bytes = 0;
    /// Rooms whose durable state existed but was unrecoverable
    /// (corrupt checkpoint, or a corrupt journal header that orphaned
    /// every checkpoint's ledger).
    int data_loss_rooms = 0;
  };
  Result<RecoveryPlan> LoadRecoveryPlan();

  const Options& options() const { return options_; }
  Journal& journal() { return *journal_; }

 private:
  DurabilityManager(const Options& options, std::unique_ptr<Journal> journal,
                    int64_t truncated_bytes, int orphaned_rooms);

  Status CheckpointLocked(const Room& room);
  Status RotateLocked();
  void CountCheckpoint();

  Options options_;
  std::unique_ptr<Journal> journal_;
  RecommendationServer* server_ = nullptr;
  /// Torn-tail bytes dropped when the journal was opened.
  int64_t truncated_bytes_ = 0;
  /// Checkpoints quarantined at Open() because the pre-crash journal's
  /// header was corrupt and the whole ledger was moved aside.
  int orphaned_rooms_ = 0;

  mutable std::mutex mutex_;
  struct Role {
    uint64_t epoch = 0;
    bool primary = false;
  };
  /// Mirror of the shard's ownership ledger, so checkpoints taken from
  /// the tick path know their coordinates without asking ShardControl.
  std::unordered_map<int, Role> roles_;
  std::unordered_map<int, int> ticks_since_checkpoint_;
};

}  // namespace serve
}  // namespace after

#endif  // AFTER_SERVE_CHECKPOINT_H_
