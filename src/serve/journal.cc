#include "serve/journal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "nn/serialize.h"

namespace after {
namespace serve {
namespace {

// Little-endian primitives, byte-for-byte the serve/wire.cc encoding
// (kept local: wire's helpers live in its anonymous namespace).

void PutU8(uint8_t v, std::string* out) {
  out->push_back(static_cast<char>(v));
}

void PutU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i)
    PutU8(static_cast<uint8_t>((v >> (8 * i)) & 0xff), out);
}

void PutU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i)
    PutU8(static_cast<uint8_t>((v >> (8 * i)) & 0xff), out);
}

void PutI32(int32_t v, std::string* out) {
  PutU32(static_cast<uint32_t>(v), out);
}

void PutF64(double v, std::string* out) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits, out);
}

class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

  bool ok() const { return ok_; }
  bool AtEnd() const { return position_ == bytes_.size(); }
  size_t remaining() const { return bytes_.size() - position_; }

  uint8_t TakeU8() {
    if (!Require(1)) return 0;
    return static_cast<uint8_t>(bytes_[position_++]);
  }

  uint32_t TakeU32() {
    if (!Require(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<uint32_t>(static_cast<uint8_t>(bytes_[position_++]))
           << (8 * i);
    return v;
  }

  uint64_t TakeU64() {
    if (!Require(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<uint64_t>(static_cast<uint8_t>(bytes_[position_++]))
           << (8 * i);
    return v;
  }

  int32_t TakeI32() { return static_cast<int32_t>(TakeU32()); }

  double TakeF64() {
    const uint64_t bits = TakeU64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

 private:
  bool Require(size_t count) {
    if (!ok_ || remaining() < count) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::string_view bytes_;
  size_t position_ = 0;
  bool ok_ = true;
};

Status Malformed(const char* what) {
  return InvalidDataError(std::string("journal: ") + what);
}

std::string JournalHeader() {
  std::string header;
  PutU32(kJournalMagic, &header);
  PutU8(kJournalVersion, &header);
  PutU8(0, &header);
  PutU8(0, &header);
  PutU8(0, &header);
  return header;
}

/// One full write() per call; a crash mid-write is the torn-tail case
/// the record checksums are designed for.
Status WriteAll(int fd, const std::string& bytes) {
  size_t offset = 0;
  while (offset < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + offset, bytes.size() - offset);
    if (n < 0) {
      if (errno == EINTR) continue;
      return InternalError(std::string("journal write: ") +
                           std::strerror(errno));
    }
    offset += static_cast<size_t>(n);
  }
  return OkStatus();
}

/// Fsync of the containing directory, making a rename durable. Failure
/// is reported but non-fatal to callers that only lose the durability
/// of the very latest rotation.
Status SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0)
    return InternalError("journal: open dir '" + dir +
                         "': " + std::strerror(errno));
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0)
    return InternalError("journal: fsync dir '" + dir +
                         "': " + std::strerror(errno));
  return OkStatus();
}

}  // namespace

std::string EncodeJournalRecord(const JournalRecord& record) {
  std::string payload;
  PutU8(static_cast<uint8_t>(record.type), &payload);
  PutI32(record.room, &payload);
  switch (record.type) {
    case JournalRecord::Type::kAssign:
      PutU64(record.epoch, &payload);
      PutU8(record.primary ? 1 : 0, &payload);
      PutU8(record.reset ? 1 : 0, &payload);
      break;
    case JournalRecord::Type::kRelease:
      PutU64(record.epoch, &payload);
      break;
    case JournalRecord::Type::kTick: {
      PutI32(record.tick, &payload);
      PutU32(static_cast<uint32_t>(record.positions.size()), &payload);
      for (const Vec2& p : record.positions) {
        PutF64(p.x, &payload);
        PutF64(p.y, &payload);
      }
      // Replay-mode rooms have no goals; pad with zeros so the record
      // shape depends only on n.
      for (size_t u = 0; u < record.positions.size(); ++u) {
        const Vec2 g =
            u < record.goals.size() ? record.goals[u] : Vec2{0.0, 0.0};
        PutF64(g.x, &payload);
        PutF64(g.y, &payload);
      }
      break;
    }
  }
  return payload;
}

Result<JournalRecord> DecodeJournalRecord(std::string_view payload) {
  ByteReader reader(payload);
  JournalRecord out;
  const uint8_t type = reader.TakeU8();
  out.room = reader.TakeI32();
  if (!reader.ok()) return Malformed("truncated record payload");
  switch (type) {
    case static_cast<uint8_t>(JournalRecord::Type::kAssign): {
      out.type = JournalRecord::Type::kAssign;
      out.epoch = reader.TakeU64();
      const uint8_t primary = reader.TakeU8();
      const uint8_t reset = reader.TakeU8();
      if (!reader.ok()) return Malformed("truncated assign record");
      if (primary > 1) return Malformed("non-boolean assign primary flag");
      if (reset > 1) return Malformed("non-boolean assign reset flag");
      out.primary = primary == 1;
      out.reset = reset == 1;
      break;
    }
    case static_cast<uint8_t>(JournalRecord::Type::kRelease):
      out.type = JournalRecord::Type::kRelease;
      out.epoch = reader.TakeU64();
      if (!reader.ok()) return Malformed("truncated release record");
      break;
    case static_cast<uint8_t>(JournalRecord::Type::kTick): {
      out.type = JournalRecord::Type::kTick;
      out.tick = reader.TakeI32();
      const uint32_t n = reader.TakeU32();
      if (!reader.ok()) return Malformed("truncated tick record");
      if (n > reader.remaining() / 32)
        return Malformed("tick record user count exceeds payload");
      out.positions.resize(n);
      for (uint32_t u = 0; u < n; ++u) {
        out.positions[u].x = reader.TakeF64();
        out.positions[u].y = reader.TakeF64();
      }
      out.goals.resize(n);
      for (uint32_t u = 0; u < n; ++u) {
        out.goals[u].x = reader.TakeF64();
        out.goals[u].y = reader.TakeF64();
      }
      if (!reader.ok()) return Malformed("truncated tick record frames");
      break;
    }
    default:
      return Malformed("unknown record type");
  }
  if (!reader.AtEnd()) return Malformed("trailing bytes after record");
  return out;
}

Journal::Journal(int fd, std::string path, bool fsync_each, int64_t bytes)
    : fd_(fd),
      path_(std::move(path)),
      fsync_each_(fsync_each),
      bytes_(bytes) {}

Journal::~Journal() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<Journal>> Journal::Open(const std::string& path,
                                               bool fsync_each) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0)
    return InternalError("journal: open '" + path +
                         "': " + std::strerror(errno));
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return InternalError("journal: stat '" + path +
                         "': " + std::strerror(errno));
  }
  int64_t bytes = st.st_size;
  if (bytes == 0) {
    const Status header = WriteAll(fd, JournalHeader());
    if (!header.ok()) {
      ::close(fd);
      return header;
    }
    bytes = static_cast<int64_t>(kJournalHeaderBytes);
  }
  return std::unique_ptr<Journal>(
      new Journal(fd, path, fsync_each, bytes));
}

Status Journal::Append(const JournalRecord& record) {
  const std::string payload = EncodeJournalRecord(record);
  std::string framed;
  framed.reserve(12 + payload.size());
  PutU32(static_cast<uint32_t>(payload.size()), &framed);
  PutU64(Fnv1a64Stream().Update(payload).Digest(), &framed);
  framed.append(payload);
  std::lock_guard<std::mutex> lock(mutex_);
  AFTER_RETURN_IF_ERROR(WriteAll(fd_, framed));
  bytes_ += static_cast<int64_t>(framed.size());
  if (fsync_each_ && ::fsync(fd_) != 0)
    return InternalError(std::string("journal fsync: ") +
                         std::strerror(errno));
  return OkStatus();
}

Status Journal::Sync() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (::fsync(fd_) != 0)
    return InternalError(std::string("journal fsync: ") +
                         std::strerror(errno));
  return OkStatus();
}

Status Journal::Rotate() {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string temp = path_ + ".tmp";
  const int fd = ::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0)
    return InternalError("journal: open '" + temp +
                         "': " + std::strerror(errno));
  const Status header = WriteAll(fd, JournalHeader());
  if (!header.ok()) {
    ::close(fd);
    return header;
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    return InternalError(std::string("journal rotate fsync: ") +
                         std::strerror(errno));
  }
  if (::rename(temp.c_str(), path_.c_str()) != 0) {
    ::close(fd);
    return InternalError("journal: rename '" + temp +
                         "': " + std::strerror(errno));
  }
  // The rename is done: the fresh file is the journal whether or not the
  // directory fsync below succeeds, so swap fds unconditionally. Appends
  // continue into the fresh file; the old fd points at the unlinked
  // inode and is done.
  const Status dir_sync = SyncParentDir(path_);
  ::close(fd_);
  fd_ = fd;
  bytes_ = static_cast<int64_t>(kJournalHeaderBytes);
  return dir_sync;
}

int64_t Journal::bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

Result<JournalReplay> ReadJournal(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFoundError("journal '" + path + "' does not exist");
  std::ostringstream slurped;
  slurped << in.rdbuf();
  const std::string bytes = slurped.str();

  JournalReplay replay;
  if (bytes.size() < kJournalHeaderBytes) {
    // A crash while the header itself was being written: an empty
    // journal, with whatever partial bytes exist counted as torn tail.
    replay.truncated_bytes = static_cast<int64_t>(bytes.size());
    return replay;
  }
  ByteReader header(std::string_view(bytes).substr(0, kJournalHeaderBytes));
  const uint32_t magic = header.TakeU32();
  const uint8_t version = header.TakeU8();
  if (magic != kJournalMagic)
    return DataLossError("journal '" + path + "': bad magic");
  if (version != kJournalVersion)
    return DataLossError("journal '" + path + "': unsupported version " +
                         std::to_string(version));

  size_t offset = kJournalHeaderBytes;
  while (offset < bytes.size()) {
    const size_t left = bytes.size() - offset;
    if (left < 12) break;  // torn length/checksum prefix
    ByteReader prefix(std::string_view(bytes).substr(offset, 12));
    const uint32_t length = prefix.TakeU32();
    const uint64_t checksum = prefix.TakeU64();
    if (length > kMaxJournalPayloadBytes) break;  // corrupt length
    if (left < 12 + static_cast<size_t>(length)) break;  // torn payload
    const std::string_view payload =
        std::string_view(bytes).substr(offset + 12, length);
    if (Fnv1a64Stream().Update(payload.data(), payload.size()).Digest() !=
        checksum)
      break;  // flipped byte: drop this record and the dependent suffix
    Result<JournalRecord> record = DecodeJournalRecord(payload);
    if (!record.ok()) break;  // checksum passed but structure did not
    replay.records.push_back(std::move(record).value());
    offset += 12 + length;
  }
  replay.truncated_bytes = static_cast<int64_t>(bytes.size() - offset);
  return replay;
}

Result<int64_t> TruncateTornJournalTail(const std::string& path) {
  Result<JournalReplay> replay = ReadJournal(path);
  if (!replay.ok()) {
    if (replay.status().code() == StatusCode::kNotFound)
      return static_cast<int64_t>(0);
    return replay.status();
  }
  const int64_t dropped = replay.value().truncated_bytes;
  if (dropped == 0) return dropped;
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0)
    return InternalError("journal: stat '" + path +
                         "': " + std::strerror(errno));
  const int64_t keep = st.st_size - dropped;
  if (::truncate(path.c_str(), keep < 0 ? 0 : keep) != 0)
    return InternalError("journal: truncate '" + path +
                         "': " + std::strerror(errno));
  return dropped;
}

}  // namespace serve
}  // namespace after
