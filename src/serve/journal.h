#ifndef AFTER_SERVE_JOURNAL_H_
#define AFTER_SERVE_JOURNAL_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/geometry.h"
#include "common/result.h"
#include "common/status.h"

namespace after {
namespace serve {

/// Per-shard write-ahead journal of state-mutating events between room
/// checkpoints (docs/durability.md). Binary append-only file:
///
///   offset  size  field
///   0       4     magic      0x414A4C31 ("AJL1"), little-endian
///   4       1     version    kJournalVersion
///   5       3     reserved   must be zero
///   8...          records
///
/// Each record is length-prefixed and FNV-1a-checksummed:
///
///   u32 payload length | u64 Fnv1a64(payload) | payload
///
/// so a torn tail (the classic crash-mid-append) truncates cleanly at
/// the last intact record instead of poisoning recovery, while a flipped
/// byte inside a record drops that record and everything after it (the
/// suffix may depend on the corrupt prefix). Only a corrupt *header* is
/// unrecoverable (kDataLoss): without the magic the file cannot be
/// trusted to be a journal at all.
///
/// Record payloads (little-endian, serve/wire.cc primitives):
///   kAssign  u8 type | i32 room | u64 epoch | u8 primary | u8 reset
///   kRelease u8 type | i32 room | u64 epoch
///   kTick    u8 type | i32 room | i32 tick | u32 n
///            | n x (f64 x, f64 y) positions | n x (f64 x, f64 y) goals
/// (a replay-mode room journals zero goals; goal count always equals n).
struct JournalRecord {
  enum class Type : uint8_t {
    kAssign = 1,
    kRelease = 2,
    kTick = 3,
  };

  Type type = Type::kTick;
  int32_t room = 0;
  /// kAssign / kRelease: the control frame's epoch fence.
  uint64_t epoch = 0;
  bool primary = false;
  /// kAssign only: the grant rebuilt or overwrote the room's in-memory
  /// state (fresh build, or migration state applied), starting a new
  /// durable incarnation — recovery must not replay older ticks or use
  /// an older checkpoint under it. False for a promotion that merely
  /// re-fences an already-hosted room.
  bool reset = false;
  /// kTick only.
  int32_t tick = 0;
  std::vector<Vec2> positions;
  std::vector<Vec2> goals;
};

inline constexpr uint32_t kJournalMagic = 0x414A4C31u;
inline constexpr uint8_t kJournalVersion = 1;
inline constexpr size_t kJournalHeaderBytes = 8;
/// Upper bound on one record's payload; larger declared lengths are
/// treated as corruption rather than honored with an allocation.
inline constexpr uint32_t kMaxJournalPayloadBytes = 1u << 24;

/// Encodes one record's payload bytes (no length/checksum framing).
std::string EncodeJournalRecord(const JournalRecord& record);

/// All-or-nothing payload decoder, mirroring serve/wire.cc: a fully
/// validated record or kInvalidData with a diagnostic.
Result<JournalRecord> DecodeJournalRecord(std::string_view payload);

/// Append side. Thread-safe; every record hits the kernel with one
/// write() call (so a crashed process loses at most in-kernel data, not
/// buffered user-space data), and `fsync_each` additionally fsyncs per
/// append for crash-of-the-machine durability at a heavy latency cost
/// (measured trade-offs in docs/durability.md).
class Journal {
 public:
  /// Opens (appending) or creates (writing the header) the journal.
  static Result<std::unique_ptr<Journal>> Open(const std::string& path,
                                               bool fsync_each);
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  Status Append(const JournalRecord& record);

  /// Forces everything appended so far to stable storage.
  Status Sync();

  /// Atomically replaces the journal with a fresh header-only file
  /// (write temp + fsync + rename), then continues appending to it.
  /// Called after a full checkpoint sweep makes the old records
  /// redundant; see DurabilityManager.
  Status Rotate();

  /// Bytes in the journal file (header + records appended so far).
  int64_t bytes() const;

  const std::string& path() const { return path_; }

 private:
  Journal(int fd, std::string path, bool fsync_each, int64_t bytes);

  mutable std::mutex mutex_;
  int fd_ = -1;
  std::string path_;
  bool fsync_each_ = false;
  int64_t bytes_ = 0;
};

/// Replay side: every intact record in order, plus how the file ended.
struct JournalReplay {
  std::vector<JournalRecord> records;
  /// Bytes dropped from the tail (torn final append or trailing
  /// corruption); 0 when the file ended exactly on a record boundary.
  int64_t truncated_bytes = 0;
};

/// Reads a journal from disk. kNotFound when the file does not exist,
/// kDataLoss when the header is corrupt; torn or corrupt record tails
/// are not errors — they truncate cleanly into `truncated_bytes`.
Result<JournalReplay> ReadJournal(const std::string& path);

/// Physically truncates a journal's torn tail so subsequent appends land
/// on a record boundary (an O_APPEND write after torn bytes would be
/// unreachable to every future replay). Returns the bytes dropped; 0
/// when the file is clean or absent. kDataLoss when the header is
/// corrupt (nothing to salvage — the caller should move the file aside).
Result<int64_t> TruncateTornJournalTail(const std::string& path);

}  // namespace serve
}  // namespace after

#endif  // AFTER_SERVE_JOURNAL_H_
