#include "serve/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

namespace after {
namespace serve {

int LatencyHistogram::BucketIndex(uint64_t us) {
  constexpr uint64_t kSubMask = (1ull << kSubBits) - 1;
  if (us < (1ull << kSubBits)) return static_cast<int>(us);
  // Octave = position of the highest set bit; the kSubBits bits below it
  // select the linear sub-bucket.
  const int exponent = std::bit_width(us) - 1;
  const int shift = exponent - kSubBits;
  const int sub = static_cast<int>((us >> shift) & kSubMask);
  const int index = ((shift + 1) << kSubBits) + sub;
  return std::min(index, kNumBuckets - 1);
}

double LatencyHistogram::BucketMidpointUs(int index) {
  constexpr int kSubMask = (1 << kSubBits) - 1;
  if (index < (1 << kSubBits)) return index + 0.5;
  const int shift = (index >> kSubBits) - 1;
  const int sub = index & kSubMask;
  const double base =
      static_cast<double>((static_cast<uint64_t>((1 << kSubBits) + sub))
                          << shift);
  const double width = static_cast<double>(1ull << shift);
  return base + width / 2.0;
}

void LatencyHistogram::RecordMs(double ms) {
  const double us = std::max(0.0, ms) * 1000.0;
  const auto value = static_cast<uint64_t>(std::llround(us));
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
}

int64_t LatencyHistogram::count() const {
  int64_t total = 0;
  for (const auto& bucket : buckets_)
    total += bucket.load(std::memory_order_relaxed);
  return total;
}

double LatencyHistogram::PercentileMs(double q) const {
  const int64_t total = count();
  if (total <= 0) return 0.0;
  const double clamped = std::clamp(q, 0.0, 1.0);
  int64_t rank = static_cast<int64_t>(std::ceil(clamped * total));
  rank = std::clamp<int64_t>(rank, 1, total);
  int64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) return BucketMidpointUs(i) / 1000.0;
  }
  return BucketMidpointUs(kNumBuckets - 1) / 1000.0;
}

void LatencyHistogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
}

void ServerMetrics::NoteQueueDepth(int32_t depth) {
  int32_t prev = max_queue_depth.load(std::memory_order_relaxed);
  while (depth > prev &&
         !max_queue_depth.compare_exchange_weak(prev, depth,
                                                std::memory_order_relaxed)) {
  }
}

std::string ServerMetrics::DebugString() const {
  char line[512];
  std::string out;
  std::snprintf(
      line, sizeof(line),
      "serve: %lld submitted | %lld ok | %lld shed | %lld timeout | "
      "%lld fallback (deadline %lld, misbehaved %lld) | %lld errors\n",
      static_cast<long long>(requests_submitted.load()),
      static_cast<long long>(responses_ok.load()),
      static_cast<long long>(shed.load()),
      static_cast<long long>(timeouts.load()),
      static_cast<long long>(total_fallbacks()),
      static_cast<long long>(fallbacks_deadline.load()),
      static_cast<long long>(fallbacks_misbehaved.load()),
      static_cast<long long>(errors.load()));
  out += line;
  std::snprintf(line, sizeof(line),
                "queue: depth %d (max %d) | ticks %lld (%lld delta)\n",
                queue_depth.load(), max_queue_depth.load(),
                static_cast<long long>(ticks.load()),
                static_cast<long long>(delta_ticks.load()));
  out += line;
  if (pruned_requests.load() > 0) {
    std::snprintf(line, sizeof(line), "pruned: %lld requests\n",
                  static_cast<long long>(pruned_requests.load()));
    out += line;
  }
  if (rooms_assigned.load() > 0 || rooms_released.load() > 0) {
    std::snprintf(line, sizeof(line),
                  "partition: %lld assigned (%lld migrated in) | "
                  "%lld released\n",
                  static_cast<long long>(rooms_assigned.load()),
                  static_cast<long long>(migrations_in.load()),
                  static_cast<long long>(rooms_released.load()));
    out += line;
  }
  if (checkpoints_written.load() > 0 || journal_records.load() > 0 ||
      rooms_recovered.load() > 0 || data_loss_rooms.load() > 0) {
    std::snprintf(line, sizeof(line),
                  "durability: %lld checkpoints | %lld journal records "
                  "(%lld bytes) | %lld rooms recovered (%lld records "
                  "replayed) | %lld data-loss rooms\n",
                  static_cast<long long>(checkpoints_written.load()),
                  static_cast<long long>(journal_records.load()),
                  static_cast<long long>(journal_bytes.load()),
                  static_cast<long long>(rooms_recovered.load()),
                  static_cast<long long>(records_replayed.load()),
                  static_cast<long long>(data_loss_rooms.load()));
    out += line;
  }
  if (batches.load() > 0) {
    const long long jobs = static_cast<long long>(batches.load());
    const long long reqs = static_cast<long long>(batched_requests.load());
    std::snprintf(line, sizeof(line),
                  "batch: %lld jobs | %lld requests (%.2f/job) | "
                  "%lld coalesced\n",
                  jobs, reqs, jobs > 0 ? static_cast<double>(reqs) / jobs : 0.0,
                  static_cast<long long>(coalesced.load()));
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "latency ms: p50 %.3f | p95 %.3f | p99 %.3f (n=%lld)\n",
                latency.PercentileMs(0.50), latency.PercentileMs(0.95),
                latency.PercentileMs(0.99),
                static_cast<long long>(latency.count()));
  out += line;
  return out;
}

void ServerMetrics::Reset() {
  requests_submitted.store(0);
  responses_ok.store(0);
  shed.store(0);
  timeouts.store(0);
  fallbacks_deadline.store(0);
  fallbacks_misbehaved.store(0);
  errors.store(0);
  batches.store(0);
  batched_requests.store(0);
  coalesced.store(0);
  ticks.store(0);
  delta_ticks.store(0);
  pruned_requests.store(0);
  rooms_assigned.store(0);
  rooms_released.store(0);
  migrations_in.store(0);
  checkpoints_written.store(0);
  journal_records.store(0);
  journal_bytes.store(0);
  rooms_recovered.store(0);
  records_replayed.store(0);
  data_loss_rooms.store(0);
  queue_depth.store(0);
  max_queue_depth.store(0);
  latency.Reset();
  room_requests.Reset();
}

void NetFrontMetrics::NoteOpenConnections(int32_t open) {
  open_connections.store(open, std::memory_order_relaxed);
  int32_t seen = max_open_connections.load(std::memory_order_relaxed);
  while (open > seen && !max_open_connections.compare_exchange_weak(
                            seen, open, std::memory_order_relaxed)) {
  }
}

std::string NetFrontMetrics::DebugString() const {
  std::string out;
  char line[192];
  std::snprintf(line, sizeof(line),
                "connections: accepted %lld | rejected %lld | open %d "
                "(max %d)\n",
                static_cast<long long>(connections_accepted.load()),
                static_cast<long long>(connections_rejected.load()),
                open_connections.load(), max_open_connections.load());
  out += line;
  std::snprintf(line, sizeof(line),
                "slow peers: idle_closed %lld | backpressure_closed %lld\n",
                static_cast<long long>(idle_closed.load()),
                static_cast<long long>(backpressure_closed.load()));
  out += line;
  std::snprintf(line, sizeof(line),
                "frames: in %lld | rejected %lld | not_owner %lld | "
                "control %lld\n",
                static_cast<long long>(frames_in.load()),
                static_cast<long long>(frames_rejected.load()),
                static_cast<long long>(not_owner_replies.load()),
                static_cast<long long>(control_frames.load()));
  out += line;
  std::snprintf(line, sizeof(line), "bytes: in %lld | out %lld\n",
                static_cast<long long>(bytes_in.load()),
                static_cast<long long>(bytes_out.load()));
  out += line;
  return out;
}

}  // namespace serve
}  // namespace after
