#ifndef AFTER_SERVE_METRICS_H_
#define AFTER_SERVE_METRICS_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

namespace after {
namespace serve {

/// Lock-free log-linear latency histogram in the HDR-histogram style:
/// a value in microseconds is bucketed by (octave of its highest set
/// bit, linear sub-bucket within the octave), bounding relative error
/// at ~1/2^kSubBits (~6%) across [1 us, ~67 s] with a fixed footprint
/// of kNumBuckets counters. Record() is a single relaxed atomic
/// increment, so request threads never contend; percentile reads are
/// racy-but-consistent-enough snapshots, which is the usual contract
/// for serving metrics.
class LatencyHistogram {
 public:
  static constexpr int kSubBits = 4;  // 16 linear sub-buckets per octave
  static constexpr int kOctaves = 26; // covers up to ~67 s in microseconds
  static constexpr int kNumBuckets = (kOctaves + 1) << kSubBits;

  /// Records one latency sample (clamped to >= 0).
  void RecordMs(double ms);

  /// Latency in milliseconds at quantile q in [0, 1]; 0 when empty.
  double PercentileMs(double q) const;

  /// Total samples recorded.
  int64_t count() const;

  void Reset();

 private:
  static int BucketIndex(uint64_t us);
  static double BucketMidpointUs(int index);

  std::atomic<int64_t> buckets_[kNumBuckets] = {};
};

/// Per-room request histogram: how many requests each room id has
/// received since start (or Reset). Unlike the rest of ServerMetrics
/// this is a mutex-guarded map, not a lock-free counter — the room-id
/// space is open-ended (partitioned shards host whatever the router
/// grants), and one short uncontended lock per request is cheap next to
/// a model forward pass. Skew-aware drivers (bench/world_sim) read the
/// snapshot to verify that offered Zipf load actually reached the
/// rooms it targeted.
class PerRoomCounters {
 public:
  void Note(int room) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++counts_[room];
  }

  std::unordered_map<int, int64_t> Snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return counts_;
  }

  int64_t Total() const {
    std::lock_guard<std::mutex> lock(mutex_);
    int64_t total = 0;
    for (const auto& entry : counts_) total += entry.second;
    return total;
  }

  void Reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    counts_.clear();
  }

 private:
  mutable std::mutex mutex_;
  std::unordered_map<int, int64_t> counts_;
};

/// Serving-side counters for the RecommendationServer. All counters are
/// monotonically increasing atomics except queue_depth (a gauge); the
/// struct is intentionally dumb so workers pay one relaxed increment
/// per event.
struct ServerMetrics {
  /// Requests offered to Submit() (including ones later shed).
  std::atomic<int64_t> requests_submitted{0};
  /// Requests answered with OK (including degraded/fallback answers).
  std::atomic<int64_t> responses_ok{0};
  /// Requests rejected at admission because the queue was full.
  std::atomic<int64_t> shed{0};
  /// Requests whose deadline expired while queued (answered kTimeout).
  std::atomic<int64_t> timeouts{0};
  /// OK answers served by the fallback because the primary model missed
  /// the request deadline.
  std::atomic<int64_t> fallbacks_deadline{0};
  /// OK answers served by the fallback because the primary misbehaved
  /// (wrong-size recommendation vector).
  std::atomic<int64_t> fallbacks_misbehaved{0};
  /// Requests answered with kNotFound / kInvalidData (bad room or user).
  std::atomic<int64_t> errors{0};
  /// Batched mode (ServerOptions::batch_requests): coalesced inference
  /// jobs executed (one per room drain) and requests answered through
  /// them.
  std::atomic<int64_t> batches{0};
  std::atomic<int64_t> batched_requests{0};
  /// Requests that shared a forward pass with an earlier request for the
  /// same (room, target) in the same batch — pure saved model work.
  std::atomic<int64_t> coalesced{0};
  /// Room ticks published.
  std::atomic<int64_t> ticks{0};
  /// Delta ticks (docs/ticking.md): ticks whose published snapshot was
  /// delta-built from its predecessor instead of from scratch.
  std::atomic<int64_t> delta_ticks{0};
  /// Requests answered against a temporally pruned candidate set
  /// (ServerOptions::max_candidates).
  std::atomic<int64_t> pruned_requests{0};
  /// Partitioned serving (serve/shard_control.h): ownership grants and
  /// releases processed by this shard, and how many of the grants
  /// carried migrated state (as opposed to fresh-seeded rooms).
  std::atomic<int64_t> rooms_assigned{0};
  std::atomic<int64_t> rooms_released{0};
  std::atomic<int64_t> migrations_in{0};
  /// Durability subsystem (serve/checkpoint.h, serve/journal.h):
  /// checkpoint files written, journal records / bytes appended, and —
  /// on the recovery side — rooms brought back from durable state,
  /// journal records replayed into them, and rooms whose durable state
  /// was unrecoverably corrupt (kDataLoss; the room restarts fresh).
  std::atomic<int64_t> checkpoints_written{0};
  std::atomic<int64_t> journal_records{0};
  std::atomic<int64_t> journal_bytes{0};
  std::atomic<int64_t> rooms_recovered{0};
  std::atomic<int64_t> records_replayed{0};
  std::atomic<int64_t> data_loss_rooms{0};
  /// Requests currently admitted but not yet completed.
  std::atomic<int32_t> queue_depth{0};
  /// High-water mark of queue_depth.
  std::atomic<int32_t> max_queue_depth{0};
  /// End-to-end latency (admission -> response) of non-shed requests.
  LatencyHistogram latency;
  /// Per-room request histogram (see PerRoomCounters).
  PerRoomCounters room_requests;

  int64_t total_fallbacks() const {
    return fallbacks_deadline.load(std::memory_order_relaxed) +
           fallbacks_misbehaved.load(std::memory_order_relaxed);
  }

  /// Records a new depth sample and maintains the high-water mark.
  void NoteQueueDepth(int32_t depth);

  /// Multi-line human-readable dump (counters + p50/p95/p99).
  std::string DebugString() const;

  void Reset();
};

/// Network-front counters for the epoll reactor (serve/net_server.h).
/// Same contract as ServerMetrics: every event is one relaxed atomic
/// increment, gauges are racy-but-monotone snapshots. These are the
/// knob-observability surface for slow-peer handling: a rising
/// `connections_rejected` means max_connections is the bottleneck,
/// `idle_closed` counts reaped dead clients, and
/// `backpressure_closed` counts peers that stopped reading their
/// responses past the write_close_bytes cap.
struct NetFrontMetrics {
  std::atomic<int64_t> connections_accepted{0};
  /// Accepts closed immediately because max_connections was reached
  /// (the network-layer analogue of queue-full shedding).
  std::atomic<int64_t> connections_rejected{0};
  /// Connections reaped by the idle sweep (no bytes in either direction
  /// for idle_timeout_ms).
  std::atomic<int64_t> idle_closed{0};
  /// Slow peers disconnected because their pending output exceeded
  /// write_close_bytes (they stopped draining responses).
  std::atomic<int64_t> backpressure_closed{0};
  /// Malformed frames (framing errors and undecodable payloads).
  std::atomic<int64_t> frames_rejected{0};
  std::atomic<int64_t> not_owner_replies{0};
  std::atomic<int64_t> control_frames{0};
  /// Complete frames dispatched and raw byte counts, both directions.
  std::atomic<int64_t> frames_in{0};
  std::atomic<int64_t> bytes_in{0};
  std::atomic<int64_t> bytes_out{0};
  /// Live-connection gauge and its high-water mark.
  std::atomic<int32_t> open_connections{0};
  std::atomic<int32_t> max_open_connections{0};

  /// Records a new connection-count sample, maintaining the high-water
  /// mark.
  void NoteOpenConnections(int32_t open);

  /// Multi-line human-readable dump.
  std::string DebugString() const;
};

}  // namespace serve
}  // namespace after

#endif  // AFTER_SERVE_METRICS_H_
