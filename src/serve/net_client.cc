#include "serve/net_client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sstream>
#include <unordered_map>

#include "common/timer.h"

namespace after {
namespace serve {

namespace {

Status Transport(const std::string& what, int saved_errno) {
  std::ostringstream oss;
  oss << what;
  if (saved_errno != 0) oss << ": " << std::strerror(saved_errno);
  return UnavailableError(oss.str());
}

}  // namespace

namespace net_detail {

Result<int> DialBlocking(const std::string& host, int port,
                         double connect_timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Transport("socket", errno);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return InvalidArgumentError("bad backend address: " + host);
  }

  // Non-blocking connect so the timeout is enforceable, then back to
  // blocking for the simple send path.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    const int saved = errno;
    ::close(fd);
    std::ostringstream oss;
    oss << "connect " << host << ":" << port;
    return Transport(oss.str(), saved);
  }
  if (rc != 0) {
    // Wait for writability under the remaining budget. A signal can
    // interrupt poll at any time; retry with the budget recomputed so
    // EINTR storms neither extend nor skip the timeout.
    const Deadline deadline = Deadline::ExpiresIn(connect_timeout_ms);
    int ready = 0;
    while (true) {
      const double remaining_ms = deadline.RemainingMs();
      if (remaining_ms <= 0.0) {
        ready = 0;  // timed out
        break;
      }
      pollfd pfd{fd, POLLOUT, 0};
      ready = ::poll(&pfd, 1, 1 + static_cast<int>(remaining_ms));
      if (ready < 0 && errno == EINTR) continue;
      break;
    }
    int soerr = 0;
    socklen_t len = sizeof(soerr);
    if (ready > 0) ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len);
    if (ready <= 0 || soerr != 0) {
      ::close(fd);
      std::ostringstream oss;
      oss << "connect " << host << ":" << port
          << (ready <= 0 ? ": timed out" : "");
      return Transport(oss.str(), ready <= 0 ? 0 : soerr);
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Status SendAllFd(int fd, std::string_view bytes) {
  size_t offset = 0;
  while (offset < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + offset,
                             bytes.size() - offset, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Caller handed us a nonblocking fd with a full socket buffer;
        // wait for writability instead of spinning or failing.
        pollfd pfd{fd, POLLOUT, 0};
        const int ready = ::poll(&pfd, 1, -1);
        if (ready < 0 && errno != EINTR) return Transport("poll", errno);
        continue;
      }
      return Transport("send", errno);
    }
    offset += static_cast<size_t>(n);
  }
  return OkStatus();
}

}  // namespace net_detail

NetClient::NetClient(int fd, std::string host, int port,
                     const NetClientOptions& options)
    : fd_(fd), host_(std::move(host)), port_(port), options_(options) {}

NetClient::~NetClient() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<NetClient>> NetClient::Connect(
    const std::string& host, int port, const NetClientOptions& options) {
  Result<int> fd =
      net_detail::DialBlocking(host, port, options.connect_timeout_ms);
  if (!fd.ok()) return fd.status();
  return std::unique_ptr<NetClient>(
      new NetClient(fd.value(), host, port, options));
}

Status NetClient::SendAll(const std::string& bytes) {
  const Status status = net_detail::SendAllFd(fd_, bytes);
  if (!status.ok()) broken_ = true;
  return status;
}

Status NetClient::ReadFrame(wire::Frame* frame) {
  const Deadline deadline = Deadline::ExpiresIn(options_.io_timeout_ms);
  char chunk[16384];
  while (true) {
    size_t consumed = 0;
    const Status framing = wire::ExtractFrame(buffer_, frame, &consumed);
    if (!framing.ok()) {
      broken_ = true;  // mid-stream garbage is unrecoverable
      return framing;
    }
    if (consumed > 0) {
      buffer_.erase(0, consumed);
      return OkStatus();
    }
    const double remaining_ms = deadline.RemainingMs();
    if (remaining_ms <= 0.0) {
      broken_ = true;
      return Transport("response timed out", 0);
    }
    // Short poll slices so a caller-side deadline never overshoots by
    // more than ~50 ms.
    const int wait_ms =
        1 + static_cast<int>(std::min(remaining_ms, 50.0));
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, wait_ms);
    if (ready < 0 && errno != EINTR) {
      broken_ = true;
      return Transport("poll", errno);
    }
    if (ready <= 0) continue;
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) {
      broken_ = true;
      return Transport("peer closed the connection", 0);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      broken_ = true;
      return Transport("recv", errno);
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

Result<FriendResponse> NetClient::Call(const FriendRequest& request) {
  if (broken_) return Transport("connection already broken", 0);
  const uint64_t id = next_id_++;
  std::string out;
  wire::AppendRequestFrame(id, request, &out);
  AFTER_RETURN_IF_ERROR(SendAll(out));

  // One call in flight at a time, but tolerate stray pongs between
  // frames (a pooled connection may have a health probe's answer queued).
  while (true) {
    wire::Frame frame;
    AFTER_RETURN_IF_ERROR(ReadFrame(&frame));
    if (frame.type == wire::MessageType::kPong) continue;
    if (frame.type == wire::MessageType::kNotOwner) {
      auto not_owner = wire::DecodeNotOwner(frame.payload);
      if (!not_owner.ok()) {
        broken_ = true;
        return not_owner.status();
      }
      if (not_owner.value().id != id) continue;  // stale; skip it
      FriendResponse response;
      std::ostringstream oss;
      oss << "shard does not own room " << not_owner.value().room
          << " (epoch " << not_owner.value().epoch << ")";
      response.status = NotOwnerError(oss.str());
      return response;
    }
    if (frame.type != wire::MessageType::kResponse) {
      broken_ = true;
      return InvalidArgumentError("wire: unexpected frame type from server");
    }
    auto decoded = wire::DecodeResponse(frame.payload);
    if (!decoded.ok()) {
      broken_ = true;
      return decoded.status();
    }
    if (decoded.value().id != id) {
      // A response to a call we gave up on earlier; skip it.
      continue;
    }
    return std::move(decoded).value().response;
  }
}

std::vector<Result<FriendResponse>> NetClient::CallPipelined(
    const std::vector<FriendRequest>& requests) {
  std::vector<Result<FriendResponse>> results;
  results.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i)
    results.emplace_back(Transport("pipelined call unanswered", 0));
  if (requests.empty()) return results;
  if (broken_) return results;

  // Phase 1: one contiguous burst of frames, one send. The server
  // answers in completion order, not arrival order, so no round trip
  // gates the next frame going out.
  std::unordered_map<uint64_t, size_t> slot_for_id;
  slot_for_id.reserve(requests.size());
  std::string burst;
  for (size_t i = 0; i < requests.size(); ++i) {
    const uint64_t id = next_id_++;
    slot_for_id.emplace(id, i);
    wire::AppendRequestFrame(id, requests[i], &burst);
  }
  const Status sent = SendAll(burst);
  if (!sent.ok()) {
    for (auto& result : results) result = sent;
    return results;
  }

  // Phase 2: collect until every slot is answered. ReadFrame enforces
  // the io timeout per read; a transport failure leaves the remaining
  // slots holding the error.
  size_t outstanding = requests.size();
  while (outstanding > 0) {
    wire::Frame frame;
    const Status read = ReadFrame(&frame);
    if (!read.ok()) {
      for (const auto& [id, slot] : slot_for_id) results[slot] = read;
      return results;
    }
    if (frame.type == wire::MessageType::kPong) continue;  // stale probe
    if (frame.type == wire::MessageType::kNotOwner) {
      auto not_owner = wire::DecodeNotOwner(frame.payload);
      if (!not_owner.ok()) {
        broken_ = true;
        continue;
      }
      auto slot = slot_for_id.find(not_owner.value().id);
      if (slot == slot_for_id.end()) continue;  // stale; skip it
      FriendResponse response;
      std::ostringstream oss;
      oss << "shard does not own room " << not_owner.value().room
          << " (epoch " << not_owner.value().epoch << ")";
      response.status = NotOwnerError(oss.str());
      results[slot->second] = response;
      slot_for_id.erase(slot);
      --outstanding;
      continue;
    }
    if (frame.type != wire::MessageType::kResponse) {
      broken_ = true;
      const Status confused =
          InvalidArgumentError("wire: unexpected frame type from server");
      for (auto& [id, slot] : slot_for_id) results[slot] = confused;
      return results;
    }
    auto decoded = wire::DecodeResponse(frame.payload);
    if (!decoded.ok()) {
      broken_ = true;
      for (auto& [id, slot] : slot_for_id) results[slot] = decoded.status();
      return results;
    }
    auto slot = slot_for_id.find(decoded.value().id);
    if (slot == slot_for_id.end()) continue;  // an abandoned earlier call
    results[slot->second] = std::move(decoded).value().response;
    slot_for_id.erase(slot);
    --outstanding;
  }
  return results;
}

Status NetClient::AssignRoom(int room, uint64_t epoch,
                             const std::string& state, bool primary) {
  if (broken_) return Transport("connection already broken", 0);
  const uint64_t id = next_id_++;
  std::string out;
  wire::AppendRoomAssignFrame(id, room, epoch, primary, state, &out);
  AFTER_RETURN_IF_ERROR(SendAll(out));
  while (true) {
    wire::Frame frame;
    AFTER_RETURN_IF_ERROR(ReadFrame(&frame));
    if (frame.type != wire::MessageType::kResponse) continue;  // stale
    auto decoded = wire::DecodeResponse(frame.payload);
    if (!decoded.ok()) {
      broken_ = true;
      return decoded.status();
    }
    if (decoded.value().id != id) continue;
    return decoded.value().response.status;
  }
}

Result<std::string> NetClient::ReleaseRoom(int room, uint64_t epoch) {
  if (broken_) return Transport("connection already broken", 0);
  const uint64_t id = next_id_++;
  std::string out;
  wire::AppendRoomReleaseFrame(id, room, epoch, &out);
  AFTER_RETURN_IF_ERROR(SendAll(out));
  while (true) {
    wire::Frame frame;
    AFTER_RETURN_IF_ERROR(ReadFrame(&frame));
    // Success acks arrive as a kRoomAssign frame carrying the final
    // state; failures come back as a plain response frame.
    if (frame.type == wire::MessageType::kRoomAssign) {
      auto decoded = wire::DecodeRoomAssign(frame.payload);
      if (!decoded.ok()) {
        broken_ = true;
        return decoded.status();
      }
      if (decoded.value().id != id) continue;
      return std::move(decoded).value().state;
    }
    if (frame.type != wire::MessageType::kResponse) continue;  // stale
    auto decoded = wire::DecodeResponse(frame.payload);
    if (!decoded.ok()) {
      broken_ = true;
      return decoded.status();
    }
    if (decoded.value().id != id) continue;
    const Status& status = decoded.value().response.status;
    if (status.ok())
      return InvalidArgumentError("wire: release ack without state");
    return status;
  }
}

Result<std::vector<wire::RecoveredRoom>> NetClient::RecoverRooms() {
  if (broken_) return Transport("connection already broken", 0);
  const uint64_t id = next_id_++;
  std::string out;
  wire::AppendRoomRecoverQueryFrame(id, &out);
  AFTER_RETURN_IF_ERROR(SendAll(out));
  while (true) {
    wire::Frame frame;
    AFTER_RETURN_IF_ERROR(ReadFrame(&frame));
    // Success acks echo a kRoomRecover frame carrying the report;
    // failures come back as a plain response frame.
    if (frame.type == wire::MessageType::kRoomRecover) {
      auto decoded = wire::DecodeRoomRecoverReport(frame.payload);
      if (!decoded.ok()) {
        broken_ = true;
        return decoded.status();
      }
      if (decoded.value().id != id) continue;
      return std::move(decoded).value().rooms;
    }
    if (frame.type != wire::MessageType::kResponse) continue;  // stale
    auto decoded = wire::DecodeResponse(frame.payload);
    if (!decoded.ok()) {
      broken_ = true;
      return decoded.status();
    }
    if (decoded.value().id != id) continue;
    const Status& status = decoded.value().response.status;
    if (status.ok())
      return InvalidArgumentError("wire: recover ack without report");
    return status;
  }
}

Status NetClient::Ping() {
  if (broken_) return Transport("connection already broken", 0);
  const uint64_t id = next_id_++;
  std::string out;
  wire::AppendPingFrame(id, &out);
  AFTER_RETURN_IF_ERROR(SendAll(out));
  while (true) {
    wire::Frame frame;
    AFTER_RETURN_IF_ERROR(ReadFrame(&frame));
    if (frame.type != wire::MessageType::kPong) continue;  // stale response
    auto decoded = wire::DecodePingPong(frame.payload);
    if (!decoded.ok()) {
      broken_ = true;
      return decoded.status();
    }
    if (decoded.value() == id) return OkStatus();
  }
}

}  // namespace serve
}  // namespace after
