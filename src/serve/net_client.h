#ifndef AFTER_SERVE_NET_CLIENT_H_
#define AFTER_SERVE_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "serve/server_types.h"
#include "serve/wire.h"

namespace after {
namespace serve {

struct NetClientOptions {
  /// TCP connect budget.
  double connect_timeout_ms = 2000.0;
  /// Per-call receive budget: how long Call()/Ping() waits for the
  /// response frame before declaring the backend unreachable.
  double io_timeout_ms = 5000.0;
};

/// Synchronous client for the wire protocol (serve/wire.h): one TCP
/// connection, one in-flight call at a time, correlation ids checked on
/// every response. NOT thread-safe — use one client per thread, or pool
/// them (serve/router.h does exactly that).
///
/// Error taxonomy, chosen so the shard router can decide retries:
///  - kUnavailable: transport-level failure (connect/send/recv error,
///    peer hung up, response timed out). The backend may be dead; the
///    call is safe to retry on another shard.
///  - kInvalidArgument: the peer broke the wire protocol. Not retried.
///  - any other code: the backend's own FriendResponse.status, passed
///    through untouched (shed/timeout/fallback semantics intact).
class NetClient {
 public:
  /// Connects (bounded by connect_timeout_ms); kUnavailable on failure.
  static Result<std::unique_ptr<NetClient>> Connect(
      const std::string& host, int port, const NetClientOptions& options = {});

  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  /// Sends one FriendRequest and blocks for the matching response. A
  /// kNotOwner reply (partitioned serving) surfaces as a FriendResponse
  /// whose status is kNotOwner — the shard is healthy, the request just
  /// has to be re-routed to the room's current owner.
  Result<FriendResponse> Call(const FriendRequest& request);

  /// Round-trips a ping frame; OK means the backend is alive and
  /// speaking the protocol.
  Status Ping();

  /// Room-ownership control plane (router side). AssignRoom grants the
  /// shard ownership of `room` at `epoch` in role `primary`, with
  /// `state` either empty (fresh room) or a migration blob; the shard's
  /// ack status is returned. ReleaseRoom revokes ownership and returns
  /// the shard's final state blob for the room.
  Status AssignRoom(int room, uint64_t epoch, const std::string& state,
                    bool primary = false);
  Result<std::string> ReleaseRoom(int room, uint64_t epoch);

  /// Recovery control plane: asks the shard to replay its durable state
  /// (a no-op after the first time) and report what it now hosts from
  /// disk. Empty report = nothing durable on that shard.
  Result<std::vector<wire::RecoveredRoom>> RecoverRooms();

  const std::string& host() const { return host_; }
  int port() const { return port_; }

  /// True once any call failed at the transport level; the connection
  /// is then dead and the client should be discarded.
  bool broken() const { return broken_; }

 private:
  NetClient(int fd, std::string host, int port, const NetClientOptions& opts);

  Status SendAll(const std::string& bytes);
  /// Reads until one complete frame is extracted or the io timeout hits.
  Status ReadFrame(wire::Frame* frame);

  int fd_ = -1;
  std::string host_;
  int port_ = 0;
  NetClientOptions options_;
  uint64_t next_id_ = 1;
  std::string buffer_;  // unconsumed bytes between frames
  bool broken_ = false;
};

}  // namespace serve
}  // namespace after

#endif  // AFTER_SERVE_NET_CLIENT_H_
