#ifndef AFTER_SERVE_NET_CLIENT_H_
#define AFTER_SERVE_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "serve/server_types.h"
#include "serve/wire.h"

namespace after {
namespace serve {

/// Shared socket plumbing for the two wire-protocol clients (NetClient
/// here, MuxLink in serve/net_mux.h). Both helpers are robust against
/// the classic POSIX sharp edges: EINTR at every call site (with the
/// remaining connect budget recomputed, not restarted) and short
/// write()s (send keeps going until every byte is accepted, polling for
/// writability on EAGAIN so it also holds on nonblocking sockets).
namespace net_detail {
/// Dials host:port with a bounded nonblocking connect, then returns a
/// connected *blocking* fd with TCP_NODELAY set. kUnavailable on
/// timeout or refusal, kInvalidArgument on an unparseable address.
Result<int> DialBlocking(const std::string& host, int port,
                         double connect_timeout_ms);
/// Writes all of `bytes` to fd. kUnavailable on a hard transport error.
Status SendAllFd(int fd, std::string_view bytes);
}  // namespace net_detail

struct NetClientOptions {
  /// TCP connect budget.
  double connect_timeout_ms = 2000.0;
  /// Per-call receive budget: how long Call()/Ping() waits for the
  /// response frame before declaring the backend unreachable.
  double io_timeout_ms = 5000.0;
};

/// Synchronous client for the wire protocol (serve/wire.h): one TCP
/// connection, correlation ids checked on every response. Call() keeps
/// one request in flight; CallPipelined() bursts many length-prefixed
/// frames before reading anything back, which is how a closed-loop
/// client exercises the server's pipelining path. NOT thread-safe — use
/// one client per thread, or let ShardRouter multiplex calls over its
/// persistent per-shard links (serve/net_mux.h).
///
/// Error taxonomy, chosen so the shard router can decide retries:
///  - kUnavailable: transport-level failure (connect/send/recv error,
///    peer hung up, response timed out). The backend may be dead; the
///    call is safe to retry on another shard.
///  - kInvalidArgument: the peer broke the wire protocol. Not retried.
///  - any other code: the backend's own FriendResponse.status, passed
///    through untouched (shed/timeout/fallback semantics intact).
class NetClient {
 public:
  /// Connects (bounded by connect_timeout_ms); kUnavailable on failure.
  static Result<std::unique_ptr<NetClient>> Connect(
      const std::string& host, int port, const NetClientOptions& options = {});

  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  /// Sends one FriendRequest and blocks for the matching response. A
  /// kNotOwner reply (partitioned serving) surfaces as a FriendResponse
  /// whose status is kNotOwner — the shard is healthy, the request just
  /// has to be re-routed to the room's current owner.
  Result<FriendResponse> Call(const FriendRequest& request);

  /// Pipelined batch: writes every request frame back-to-back on the
  /// single connection, then collects the responses in whatever order
  /// the server finishes them, matched by correlation id. One network
  /// round trip of latency for the whole burst instead of one per call.
  /// The returned vector is index-aligned with `requests`; a transport
  /// failure mid-collect fails every still-unanswered slot with
  /// kUnavailable (the whole connection is then broken()). The
  /// io_timeout_ms budget covers the entire batch.
  std::vector<Result<FriendResponse>> CallPipelined(
      const std::vector<FriendRequest>& requests);

  /// Round-trips a ping frame; OK means the backend is alive and
  /// speaking the protocol.
  Status Ping();

  /// Room-ownership control plane (router side). AssignRoom grants the
  /// shard ownership of `room` at `epoch` in role `primary`, with
  /// `state` either empty (fresh room) or a migration blob; the shard's
  /// ack status is returned. ReleaseRoom revokes ownership and returns
  /// the shard's final state blob for the room.
  Status AssignRoom(int room, uint64_t epoch, const std::string& state,
                    bool primary = false);
  Result<std::string> ReleaseRoom(int room, uint64_t epoch);

  /// Recovery control plane: asks the shard to replay its durable state
  /// (a no-op after the first time) and report what it now hosts from
  /// disk. Empty report = nothing durable on that shard.
  Result<std::vector<wire::RecoveredRoom>> RecoverRooms();

  const std::string& host() const { return host_; }
  int port() const { return port_; }

  /// True once any call failed at the transport level; the connection
  /// is then dead and the client should be discarded.
  bool broken() const { return broken_; }

 private:
  NetClient(int fd, std::string host, int port, const NetClientOptions& opts);

  Status SendAll(const std::string& bytes);
  /// Reads until one complete frame is extracted or the io timeout hits.
  Status ReadFrame(wire::Frame* frame);

  int fd_ = -1;
  std::string host_;
  int port_ = 0;
  NetClientOptions options_;
  uint64_t next_id_ = 1;
  std::string buffer_;  // unconsumed bytes between frames
  bool broken_ = false;
};

}  // namespace serve
}  // namespace after

#endif  // AFTER_SERVE_NET_CLIENT_H_
