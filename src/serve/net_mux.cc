#include "serve/net_mux.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <utility>

#include "common/timer.h"

namespace after {
namespace serve {

namespace {

Status Transport(const std::string& what, int saved_errno) {
  std::ostringstream oss;
  oss << what;
  if (saved_errno != 0) oss << ": " << std::strerror(saved_errno);
  return UnavailableError(oss.str());
}

}  // namespace

MuxLink::MuxLink(int fd, std::string host, int port,
                 const NetClientOptions& options)
    : fd_(fd), host_(std::move(host)), port_(port), options_(options) {}

Result<std::shared_ptr<MuxLink>> MuxLink::Connect(
    const std::string& host, int port, const NetClientOptions& options) {
  Result<int> fd =
      net_detail::DialBlocking(host, port, options.connect_timeout_ms);
  if (!fd.ok()) return fd.status();
  std::shared_ptr<MuxLink> link(
      new MuxLink(fd.value(), host, port, options));
  link->reader_ = std::thread(&MuxLink::ReaderLoop, link.get());
  return link;
}

MuxLink::~MuxLink() {
  broken_.store(true, std::memory_order_release);
  ::shutdown(fd_, SHUT_RDWR);  // wakes the reader's blocking recv
  if (reader_.joinable()) reader_.join();
  ::close(fd_);
}

int MuxLink::inflight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(waiters_.size());
}

void MuxLink::FailAll(const Status& status) {
  broken_.store(true, std::memory_order_release);
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [id, waiter] : waiters_) {
    if (waiter.done) continue;
    waiter.done = true;
    waiter.status = status;
  }
  cv_.notify_all();
}

void MuxLink::ReaderLoop() {
  std::string buffer;
  char chunk[65536];
  while (true) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) {
      FailAll(Transport("peer closed the connection", 0));
      return;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      FailAll(Transport("recv", errno));
      return;
    }
    buffer.append(chunk, static_cast<size_t>(n));
    while (true) {
      wire::Frame frame;
      size_t consumed = 0;
      const Status framing = wire::ExtractFrame(buffer, &frame, &consumed);
      if (!framing.ok()) {
        // Mid-stream garbage is unrecoverable; the peer broke protocol.
        FailAll(framing);
        return;
      }
      if (consumed == 0) break;  // incomplete; read more
      buffer.erase(0, consumed);
      uint64_t id = 0;
      if (!wire::PeekCorrelationId(frame.payload, &id)) {
        FailAll(
            InvalidArgumentError("wire: response payload too short for id"));
        return;
      }
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = waiters_.find(id);
      if (it == waiters_.end()) continue;  // a caller that timed out
      it->second.done = true;
      it->second.frame = std::move(frame);
      cv_.notify_all();
    }
  }
}

Result<wire::Frame> MuxLink::Roundtrip(const std::string& frame_bytes,
                                       uint64_t id) {
  if (broken())
    return Transport("link to " + host_ + " already broken", 0);

  // Register before sending: the response could race back before this
  // thread ever re-takes the lock.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    waiters_.emplace(id, Waiter{});
  }

  Status sent;
  {
    std::lock_guard<std::mutex> lock(send_mutex_);
    sent = net_detail::SendAllFd(fd_, frame_bytes);
  }
  if (!sent.ok()) {
    // The connection is dead for everyone, not just this call.
    ::shutdown(fd_, SHUT_RDWR);
    FailAll(sent);
    std::lock_guard<std::mutex> lock(mutex_);
    waiters_.erase(id);
    return sent;
  }

  std::unique_lock<std::mutex> lock(mutex_);
  const bool answered = cv_.wait_for(
      lock,
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(options_.io_timeout_ms)),
      [this, id] {
        auto it = waiters_.find(id);
        return it == waiters_.end() || it->second.done;
      });
  auto it = waiters_.find(id);
  if (it == waiters_.end()) {
    // Should not happen (only this thread erases its entry), but treat
    // it as a transport failure rather than a crash.
    return Transport("response lost", 0);
  }
  Waiter waiter = std::move(it->second);
  waiters_.erase(it);
  if (!answered || !waiter.done) {
    lock.unlock();
    // A link that stops answering is indistinguishable from a dead
    // backend; poison it so in-flight peers fail over too, exactly like
    // NetClient's timeout contract.
    ::shutdown(fd_, SHUT_RDWR);
    FailAll(Transport("response timed out", 0));
    return Transport("response timed out", 0);
  }
  if (!waiter.status.ok()) return waiter.status;
  return std::move(waiter.frame);
}

Result<FriendResponse> MuxLink::Call(const FriendRequest& request) {
  const uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  std::string out;
  wire::AppendRequestFrame(id, request, &out);
  Result<wire::Frame> frame = Roundtrip(out, id);
  if (!frame.ok()) return frame.status();
  if (frame.value().type == wire::MessageType::kNotOwner) {
    auto not_owner = wire::DecodeNotOwner(frame.value().payload);
    if (!not_owner.ok()) {
      broken_.store(true, std::memory_order_release);
      return not_owner.status();
    }
    FriendResponse response;
    std::ostringstream oss;
    oss << "shard does not own room " << not_owner.value().room << " (epoch "
        << not_owner.value().epoch << ")";
    response.status = NotOwnerError(oss.str());
    return response;
  }
  if (frame.value().type != wire::MessageType::kResponse) {
    broken_.store(true, std::memory_order_release);
    return InvalidArgumentError("wire: unexpected frame type from server");
  }
  auto decoded = wire::DecodeResponse(frame.value().payload);
  if (!decoded.ok()) {
    broken_.store(true, std::memory_order_release);
    return decoded.status();
  }
  return std::move(decoded).value().response;
}

Status MuxLink::Ping() {
  const uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  std::string out;
  wire::AppendPingFrame(id, &out);
  Result<wire::Frame> frame = Roundtrip(out, id);
  if (!frame.ok()) return frame.status();
  if (frame.value().type != wire::MessageType::kPong) {
    broken_.store(true, std::memory_order_release);
    return InvalidArgumentError("wire: unexpected frame type from server");
  }
  auto decoded = wire::DecodePingPong(frame.value().payload);
  if (!decoded.ok()) {
    broken_.store(true, std::memory_order_release);
    return decoded.status();
  }
  return OkStatus();
}

Status MuxLink::AssignRoom(int room, uint64_t epoch,
                           const std::string& state, bool primary) {
  const uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  std::string out;
  wire::AppendRoomAssignFrame(id, room, epoch, primary, state, &out);
  Result<wire::Frame> frame = Roundtrip(out, id);
  if (!frame.ok()) return frame.status();
  if (frame.value().type != wire::MessageType::kResponse) {
    broken_.store(true, std::memory_order_release);
    return InvalidArgumentError("wire: unexpected frame type from server");
  }
  auto decoded = wire::DecodeResponse(frame.value().payload);
  if (!decoded.ok()) {
    broken_.store(true, std::memory_order_release);
    return decoded.status();
  }
  return decoded.value().response.status;
}

Result<std::string> MuxLink::ReleaseRoom(int room, uint64_t epoch) {
  const uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  std::string out;
  wire::AppendRoomReleaseFrame(id, room, epoch, &out);
  Result<wire::Frame> frame = Roundtrip(out, id);
  if (!frame.ok()) return frame.status();
  // Success acks arrive as a kRoomAssign frame carrying the final
  // state; failures come back as a plain response frame.
  if (frame.value().type == wire::MessageType::kRoomAssign) {
    auto decoded = wire::DecodeRoomAssign(frame.value().payload);
    if (!decoded.ok()) {
      broken_.store(true, std::memory_order_release);
      return decoded.status();
    }
    return std::move(decoded).value().state;
  }
  if (frame.value().type != wire::MessageType::kResponse) {
    broken_.store(true, std::memory_order_release);
    return InvalidArgumentError("wire: unexpected frame type from server");
  }
  auto decoded = wire::DecodeResponse(frame.value().payload);
  if (!decoded.ok()) {
    broken_.store(true, std::memory_order_release);
    return decoded.status();
  }
  const Status& status = decoded.value().response.status;
  if (status.ok())
    return InvalidArgumentError("wire: release ack without state");
  return status;
}

Result<std::vector<wire::RecoveredRoom>> MuxLink::RecoverRooms() {
  const uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  std::string out;
  wire::AppendRoomRecoverQueryFrame(id, &out);
  Result<wire::Frame> frame = Roundtrip(out, id);
  if (!frame.ok()) return frame.status();
  // Success acks echo a kRoomRecover frame carrying the report;
  // failures come back as a plain response frame.
  if (frame.value().type == wire::MessageType::kRoomRecover) {
    auto decoded = wire::DecodeRoomRecoverReport(frame.value().payload);
    if (!decoded.ok()) {
      broken_.store(true, std::memory_order_release);
      return decoded.status();
    }
    return std::move(decoded).value().rooms;
  }
  if (frame.value().type != wire::MessageType::kResponse) {
    broken_.store(true, std::memory_order_release);
    return InvalidArgumentError("wire: unexpected frame type from server");
  }
  auto decoded = wire::DecodeResponse(frame.value().payload);
  if (!decoded.ok()) {
    broken_.store(true, std::memory_order_release);
    return decoded.status();
  }
  const Status& status = decoded.value().response.status;
  if (status.ok())
    return InvalidArgumentError("wire: recover ack without report");
  return status;
}

}  // namespace serve
}  // namespace after
