#ifndef AFTER_SERVE_NET_MUX_H_
#define AFTER_SERVE_NET_MUX_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "serve/net_client.h"
#include "serve/server_types.h"
#include "serve/wire.h"

namespace after {
namespace serve {

/// One persistent, multiplexed wire-protocol channel to a shard: many
/// caller threads share a single TCP connection, with requests
/// correlated to responses by the u64 id that leads every frame payload
/// (wire::PeekCorrelationId). This is the router half of the C10k
/// collapse — thousands of client connections fan into the router, and
/// the router fans them onto a handful of MuxLinks per shard instead of
/// one pooled connection per in-flight request.
///
/// Mechanics: Roundtrip() registers an id -> waiter entry, appends its
/// frame under the send lock (so frames interleave at frame granularity,
/// never mid-frame), and blocks on a condition variable. A dedicated
/// reader thread extracts frames off the connection, peeks each
/// correlation id, and completes the matching waiter; frames for ids
/// nobody waits on (a caller that timed out) are dropped. Any transport
/// failure — EOF, recv error, mid-stream garbage, a send failure, a
/// response timeout — marks the link broken() and fails every in-flight
/// waiter with kUnavailable, which is exactly the signal ShardRouter
/// uses to eject the backend and fail over.
///
/// Same error taxonomy as NetClient: kUnavailable is retryable
/// transport, kInvalidArgument is a protocol break (never retried),
/// anything else is the backend's own answer passed through.
class MuxLink {
 public:
  /// Connects (bounded by options.connect_timeout_ms); kUnavailable on
  /// failure. The returned link is immediately usable from any thread.
  static Result<std::shared_ptr<MuxLink>> Connect(
      const std::string& host, int port, const NetClientOptions& options = {});

  ~MuxLink();

  MuxLink(const MuxLink&) = delete;
  MuxLink& operator=(const MuxLink&) = delete;

  /// Sends one FriendRequest and blocks for the matching response
  /// (bounded by options.io_timeout_ms). A kNotOwner reply surfaces as a
  /// FriendResponse whose status is kNotOwner, mirroring NetClient.
  Result<FriendResponse> Call(const FriendRequest& request);

  /// Round-trips a ping frame; OK means the backend is alive and
  /// speaking the protocol.
  Status Ping();

  /// Room-ownership control plane, same contracts as NetClient:
  /// AssignRoom returns the shard's ack status; ReleaseRoom returns the
  /// shard's final state blob for the room; RecoverRooms returns the
  /// durable-state report. Control calls multiplex over the same link
  /// as data traffic — ordering across calls is enforced by the caller
  /// (ShardRouter's migration steps each block for their ack).
  Status AssignRoom(int room, uint64_t epoch, const std::string& state,
                    bool primary = false);
  Result<std::string> ReleaseRoom(int room, uint64_t epoch);
  Result<std::vector<wire::RecoveredRoom>> RecoverRooms();

  const std::string& host() const { return host_; }
  int port() const { return port_; }

  /// True once any call failed at the transport level; the link is then
  /// dead (every future call fails fast) and should be discarded.
  bool broken() const { return broken_.load(std::memory_order_acquire); }

  /// Calls currently blocked waiting for their response — the router's
  /// cheap congestion signal for deciding when to dial an extra link.
  int inflight() const;

 private:
  struct Waiter {
    bool done = false;
    Status status;  // transport verdict; frame valid only when ok
    wire::Frame frame;
  };

  MuxLink(int fd, std::string host, int port, const NetClientOptions& opts);

  /// Registers a waiter for `id`, sends `frame_bytes`, blocks until the
  /// reader completes the waiter or the io timeout expires. Returns the
  /// raw response frame; the typed wrappers validate its type.
  Result<wire::Frame> Roundtrip(const std::string& frame_bytes, uint64_t id);

  void ReaderLoop();
  /// Marks the link broken and fails every registered waiter. Safe from
  /// any thread.
  void FailAll(const Status& status);

  int fd_ = -1;
  std::string host_;
  int port_ = 0;
  NetClientOptions options_;
  std::atomic<bool> broken_{false};
  std::atomic<uint64_t> next_id_{1};

  /// Serializes frame writes so concurrent calls interleave at frame
  /// granularity on the wire.
  std::mutex send_mutex_;

  /// Waiter table. One condition variable for the whole link: response
  /// completions are cheap broadcasts, and per-waiter cvs would buy
  /// nothing at router fan-in widths.
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::unordered_map<uint64_t, Waiter> waiters_;

  std::thread reader_;
};

}  // namespace serve
}  // namespace after

#endif  // AFTER_SERVE_NET_MUX_H_
