#include "serve/net_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "serve/server.h"
#include "serve/shard_control.h"
#include "serve/wire.h"

namespace after {
namespace serve {

namespace {

/// Bounded read slab shared by every connection on the reactor: one
/// recv lands here, then complete frames are peeled off into the
/// per-connection accumulator. 64 KiB keeps the reactor's working set
/// constant no matter how many connections are open.
constexpr size_t kReadSlabBytes = 64 * 1024;
/// Events drained per epoll_wait call.
constexpr int kMaxEvents = 128;
/// Reactor wakeup latency bound when nothing is happening and no idle
/// sweep is configured (Shutdown() also writes the eventfd, so this is
/// belt-and-braces, not the shutdown path).
constexpr int kIdleWaitMs = 250;
/// Compaction threshold for the consumed prefix of an output buffer.
constexpr size_t kCompactBytes = 64 * 1024;

int64_t SteadyNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

/// The reactor's doorbell, shared (weakly) with every connection:
/// handler completions that could not finish their write push the
/// connection onto `dirty` and ring the eventfd. Owning it by
/// shared_ptr means a completion that races Shutdown() still has a
/// valid object to (no-op) ring.
struct NetServer::Wakeup {
  int fd = -1;  // eventfd
  std::mutex mutex;
  std::vector<std::shared_ptr<Connection>> dirty;

  ~Wakeup() {
    if (fd >= 0) ::close(fd);
  }

  void Wake() {
    uint64_t one = 1;
    // EAGAIN just means a wake is already pending; either way the
    // reactor will run.
    (void)!::write(fd, &one, sizeof(one));
  }
};

/// One accepted client on the reactor. The reactor thread owns the
/// receive side (`inbuf`, `read_paused`, `armed`, `reaped`); the output
/// buffer and `closed` tombstone are guarded by `mutex` because handler
/// completions write from arbitrary threads. Once `closed` is set, late
/// completions become no-ops instead of writing to a dead descriptor.
/// The fd is closed by the destructor, which runs only after the last
/// in-flight completion releases its shared_ptr — so the descriptor can
/// never be reused under a writer.
struct NetServer::Connection {
  int fd = -1;
  std::weak_ptr<Wakeup> wakeup;
  std::shared_ptr<NetFrontMetrics> metrics;
  size_t write_close_bytes = 0;

  // Reactor-thread-only state.
  std::string inbuf;
  bool read_paused = false;
  bool reaped = false;
  uint32_t armed = 0;  // current epoll interest set

  // Cross-thread state.
  std::mutex mutex;
  std::string outbuf;     // guarded by mutex
  size_t out_offset = 0;  // consumed prefix of outbuf; guarded by mutex
  bool closed = false;    // guarded by mutex
  std::atomic<bool> queued{false};  // on the reactor's dirty list
  std::atomic<int64_t> last_activity_ms{0};

  ~Connection() {
    if (fd >= 0) ::close(fd);
  }

  size_t PendingLocked() const { return outbuf.size() - out_offset; }

  /// Sends as much buffered output as the socket accepts right now.
  /// Caller holds `mutex`. A hard send error sets the closed tombstone;
  /// the reactor finishes the cleanup on its next pass.
  void FlushLocked() {
    while (out_offset < outbuf.size()) {
      const ssize_t n = ::send(fd, outbuf.data() + out_offset,
                               outbuf.size() - out_offset, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        closed = true;
        ::shutdown(fd, SHUT_RDWR);
        break;
      }
      out_offset += static_cast<size_t>(n);
      if (metrics)
        metrics->bytes_out.fetch_add(n, std::memory_order_relaxed);
      last_activity_ms.store(SteadyNowMs(), std::memory_order_relaxed);
    }
    if (out_offset == outbuf.size()) {
      outbuf.clear();
      out_offset = 0;
    } else if (out_offset > kCompactBytes) {
      outbuf.erase(0, out_offset);
      out_offset = 0;
    }
  }
};

NetServer::NetServer(RequestHandler handler, const NetServerOptions& options)
    : handler_(std::move(handler)),
      options_(options),
      metrics_(std::make_shared<NetFrontMetrics>()) {
  AFTER_CHECK(handler_ != nullptr);
}

NetServer::~NetServer() { Shutdown(); }

Status NetServer::Start() {
  AFTER_CHECK_EQ(listen_fd_, -1);  // Start() is once-only
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0)
    return UnavailableError(std::string("socket: ") + std::strerror(errno));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return InvalidArgumentError("bad listen address: " + options_.host);
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    std::ostringstream oss;
    oss << "bind " << options_.host << ":" << options_.port << ": "
        << std::strerror(errno);
    ::close(fd);
    return UnavailableError(oss.str());
  }
  if (::listen(fd, options_.backlog) != 0) {
    const Status status =
        UnavailableError(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    const Status status =
        UnavailableError(std::string("getsockname: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  SetNonBlocking(fd);

  const int epfd = ::epoll_create1(0);
  if (epfd < 0) {
    const Status status =
        UnavailableError(std::string("epoll_create1: ") +
                         std::strerror(errno));
    ::close(fd);
    return status;
  }
  auto wakeup = std::make_shared<Wakeup>();
  wakeup->fd = ::eventfd(0, EFD_NONBLOCK);
  if (wakeup->fd < 0) {
    const Status status =
        UnavailableError(std::string("eventfd: ") + std::strerror(errno));
    ::close(epfd);
    ::close(fd);
    return status;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;  // level-triggered for the listener and doorbell
  ev.data.fd = fd;
  ::epoll_ctl(epfd, EPOLL_CTL_ADD, fd, &ev);
  ev.data.fd = wakeup->fd;
  ::epoll_ctl(epfd, EPOLL_CTL_ADD, wakeup->fd, &ev);

  listen_fd_ = fd;
  epoll_fd_ = epfd;
  wakeup_ = std::move(wakeup);
  port_ = ntohs(bound.sin_port);
  read_slab_.resize(kReadSlabBytes);
  last_idle_sweep_ms_ = SteadyNowMs();
  reactor_thread_ = std::thread(&NetServer::ReactorLoop, this);
  return OkStatus();
}

int64_t NetServer::NowMs() const { return SteadyNowMs(); }

void NetServer::ReactorLoop() {
  const bool sweep_idle = options_.idle_timeout_ms > 0.0;
  const int64_t sweep_interval_ms =
      sweep_idle
          ? std::max<int64_t>(
                10, static_cast<int64_t>(options_.idle_timeout_ms / 4.0))
          : kIdleWaitMs;
  epoll_event events[kMaxEvents];
  while (true) {
    const int wait_ms =
        sweep_idle ? static_cast<int>(sweep_interval_ms) : kIdleWaitMs;
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, wait_ms);
    if (n < 0 && errno != EINTR) break;
    for (int i = 0; i < std::max(n, 0); ++i) {
      const uint32_t triggered = events[i].events;
      const int fd = events[i].data.fd;
      if (fd == listen_fd_) {
        AcceptReady();
        continue;
      }
      if (wakeup_ && fd == wakeup_->fd) {
        uint64_t drained = 0;
        while (::read(wakeup_->fd, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      auto it = connections_.find(fd);
      if (it == connections_.end()) continue;  // closed earlier this batch
      std::shared_ptr<Connection> connection = it->second;
      if (triggered & (EPOLLERR | EPOLLHUP)) {
        CloseConnection(connection);
        continue;
      }
      // Flush before reading: draining output first frees backpressure
      // so the read below can resume a paused connection in one pass.
      if (triggered & EPOLLOUT) HandleWritable(connection);
      if (triggered & (EPOLLIN | EPOLLRDHUP)) HandleReadable(connection);
    }
    ProcessDirty();
    if (sweep_idle && NowMs() - last_idle_sweep_ms_ >= sweep_interval_ms)
      SweepIdle();
    // Fds closed this batch were pinned so stale events in the same
    // batch could never hit a recycled descriptor; release them now.
    dying_.clear();
    if (stop_.load(std::memory_order_acquire)) break;
  }
  // Teardown: break every connection (clients see EOF), then drop the
  // reactor's references. Descriptors die with the last shared_ptr, so
  // a late handler completion can never write into a recycled fd.
  for (auto& [fd, connection] : connections_) {
    std::lock_guard<std::mutex> lock(connection->mutex);
    connection->FlushLocked();
    connection->closed = true;
    connection->reaped = true;
    ::shutdown(connection->fd, SHUT_RDWR);
  }
  connections_.clear();
  dying_.clear();
  metrics_->NoteOpenConnections(0);
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
}

void NetServer::AcceptReady() {
  while (true) {
    const int client_fd = ::accept(listen_fd_, nullptr, nullptr);
    if (client_fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (drained) or a transient accept error
    }
    if (static_cast<int>(connections_.size()) >= options_.max_connections) {
      metrics_->connections_rejected.fetch_add(1, std::memory_order_relaxed);
      ::close(client_fd);  // network-layer shed
      continue;
    }
    SetNonBlocking(client_fd);
    const int one = 1;
    ::setsockopt(client_fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto connection = std::make_shared<Connection>();
    connection->fd = client_fd;
    connection->wakeup = wakeup_;
    connection->metrics = metrics_;
    connection->write_close_bytes = options_.write_close_bytes;
    connection->last_activity_ms.store(NowMs(), std::memory_order_relaxed);
    // Count before the connection is armed: a served response must imply
    // the connection is already visible in connections_accepted().
    metrics_->connections_accepted.fetch_add(1, std::memory_order_relaxed);
    connection->armed = EPOLLIN | EPOLLRDHUP | EPOLLET;
    epoll_event ev{};
    ev.events = connection->armed;
    ev.data.fd = client_fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, client_fd, &ev) != 0) {
      continue;  // fd dies with the shared_ptr
    }
    connections_[client_fd] = std::move(connection);
    metrics_->NoteOpenConnections(
        static_cast<int32_t>(connections_.size()));
  }
}

void NetServer::UpdateInterestLocked(
    const std::shared_ptr<Connection>& connection) {
  uint32_t want = EPOLLET;
  if (!connection->read_paused) want |= EPOLLIN | EPOLLRDHUP;
  if (connection->PendingLocked() > 0) want |= EPOLLOUT;
  if (want == connection->armed) return;
  epoll_event ev{};
  ev.events = want;
  ev.data.fd = connection->fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, connection->fd, &ev) == 0)
    connection->armed = want;
}

void NetServer::HandleReadable(
    const std::shared_ptr<Connection>& connection) {
  if (connection->reaped || connection->read_paused) return;
  while (true) {
    const ssize_t n =
        ::recv(connection->fd, read_slab_.data(), read_slab_.size(), 0);
    if (n == 0) {  // peer closed
      CloseConnection(connection);
      return;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;  // drained
      CloseConnection(connection);
      return;
    }
    metrics_->bytes_in.fetch_add(n, std::memory_order_relaxed);
    connection->last_activity_ms.store(NowMs(), std::memory_order_relaxed);
    connection->inbuf.append(read_slab_.data(), static_cast<size_t>(n));
    if (!DrainFrames(connection)) {
      CloseConnection(connection);
      return;
    }
    // Write backpressure: if this batch of requests piled up more
    // output than the peer is draining, stop reading — TCP then pushes
    // back on the peer instead of our buffers growing without bound.
    bool pause = false;
    {
      std::lock_guard<std::mutex> lock(connection->mutex);
      if (connection->closed) {
        // A completion hit a dead socket while we were reading.
        break;
      }
      pause = connection->PendingLocked() >= options_.write_pause_bytes;
      if (pause) {
        connection->read_paused = true;
        UpdateInterestLocked(connection);
      }
    }
    if (pause) return;
  }
  CloseConnection(connection);
}

void NetServer::HandleWritable(
    const std::shared_ptr<Connection>& connection) {
  if (connection->reaped) return;
  bool close = false;
  bool resume = false;
  {
    std::lock_guard<std::mutex> lock(connection->mutex);
    connection->FlushLocked();
    close = connection->closed;
    if (!close) {
      if (connection->read_paused &&
          connection->PendingLocked() <= options_.write_pause_bytes / 2) {
        connection->read_paused = false;
        resume = true;
      }
      UpdateInterestLocked(connection);
    }
  }
  if (close) {
    CloseConnection(connection);
    return;
  }
  // Edge-triggered reads swallowed while paused: drain what buffered.
  if (resume) HandleReadable(connection);
}

void NetServer::ProcessDirty() {
  std::vector<std::shared_ptr<Connection>> batch;
  {
    std::lock_guard<std::mutex> lock(wakeup_->mutex);
    batch.swap(wakeup_->dirty);
  }
  for (const std::shared_ptr<Connection>& connection : batch) {
    // Clear the flag before flushing: an append racing this pass either
    // lands before our flush (and is sent) or re-rings the doorbell.
    connection->queued.store(false, std::memory_order_release);
    if (connection->reaped) continue;
    auto it = connections_.find(connection->fd);
    if (it == connections_.end() || it->second != connection) continue;
    bool close = false;
    bool resume = false;
    {
      std::lock_guard<std::mutex> lock(connection->mutex);
      connection->FlushLocked();
      close = connection->closed;
      if (!close) {
        if (!connection->read_paused &&
            connection->PendingLocked() >= options_.write_pause_bytes) {
          connection->read_paused = true;
        } else if (connection->read_paused &&
                   connection->PendingLocked() <=
                       options_.write_pause_bytes / 2) {
          connection->read_paused = false;
          resume = true;
        }
        UpdateInterestLocked(connection);
      }
    }
    if (close) {
      CloseConnection(connection);
    } else if (resume) {
      HandleReadable(connection);
    }
  }
}

void NetServer::SweepIdle() {
  const int64_t now = NowMs();
  last_idle_sweep_ms_ = now;
  const int64_t cutoff =
      now - static_cast<int64_t>(options_.idle_timeout_ms);
  std::vector<std::shared_ptr<Connection>> idle;
  for (const auto& [fd, connection] : connections_) {
    if (connection->last_activity_ms.load(std::memory_order_relaxed) <
        cutoff)
      idle.push_back(connection);
  }
  for (const std::shared_ptr<Connection>& connection : idle) {
    metrics_->idle_closed.fetch_add(1, std::memory_order_relaxed);
    CloseConnection(connection);
  }
}

void NetServer::CloseConnection(
    const std::shared_ptr<Connection>& connection) {
  if (connection->reaped) return;
  connection->reaped = true;
  {
    std::lock_guard<std::mutex> lock(connection->mutex);
    // Best-effort final flush so responses to earlier pipelined frames
    // still make it out before a later frame's error closes the stream.
    connection->FlushLocked();
    connection->closed = true;
    ::shutdown(connection->fd, SHUT_RDWR);
  }
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, connection->fd, nullptr);
  connections_.erase(connection->fd);
  metrics_->NoteOpenConnections(static_cast<int32_t>(connections_.size()));
  // Pin the fd to the end of this event batch: a stale event already in
  // the drained array must never resolve to a recycled descriptor.
  dying_.push_back(connection);
}

void NetServer::EnqueueOutput(const std::shared_ptr<Connection>& connection,
                              const std::string& bytes) {
  bool wake = false;
  {
    std::lock_guard<std::mutex> lock(connection->mutex);
    if (connection->closed) return;
    connection->outbuf.append(bytes);
    connection->FlushLocked();  // opportunistic: usually completes here
    if (connection->closed) {
      wake = true;  // reactor must reap the tombstoned connection
    } else if (connection->PendingLocked() > 0) {
      wake = true;
      if (connection->PendingLocked() > connection->write_close_bytes) {
        // The peer stopped reading responses entirely; cut it loose
        // rather than buffer without bound.
        if (connection->metrics)
          connection->metrics->backpressure_closed.fetch_add(
              1, std::memory_order_relaxed);
        connection->closed = true;
        ::shutdown(connection->fd, SHUT_RDWR);
      }
    }
    connection->last_activity_ms.store(SteadyNowMs(),
                                       std::memory_order_relaxed);
  }
  if (!wake) return;
  if (connection->queued.exchange(true, std::memory_order_acq_rel)) return;
  std::shared_ptr<Wakeup> wakeup = connection->wakeup.lock();
  if (wakeup == nullptr) {
    connection->queued.store(false, std::memory_order_release);
    return;  // server already gone; the tombstone did its job
  }
  {
    std::lock_guard<std::mutex> lock(wakeup->mutex);
    wakeup->dirty.push_back(connection);
  }
  wakeup->Wake();
}

bool NetServer::DrainFrames(const std::shared_ptr<Connection>& connection) {
  while (true) {
    wire::Frame frame;
    size_t consumed = 0;
    const Status framing =
        wire::ExtractFrame(connection->inbuf, &frame, &consumed);
    if (!framing.ok()) {
      // The stream is unframeable from here on; drop the connection.
      metrics_->frames_rejected.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (consumed == 0) return true;  // incomplete; read more
    connection->inbuf.erase(0, consumed);
    metrics_->frames_in.fetch_add(1, std::memory_order_relaxed);

    switch (frame.type) {
      case wire::MessageType::kPing: {
        auto ping = wire::DecodePingPong(frame.payload);
        if (!ping.ok()) {
          metrics_->frames_rejected.fetch_add(1, std::memory_order_relaxed);
          return false;
        }
        std::string pong;
        wire::AppendPongFrame(ping.value(), &pong);
        EnqueueOutput(connection, pong);
        break;
      }
      case wire::MessageType::kRequest: {
        auto decoded = wire::DecodeRequest(frame.payload);
        if (!decoded.ok()) {
          // Framing was sound, so answer on-protocol: echo the id if
          // the payload got that far, and say what was wrong.
          metrics_->frames_rejected.fetch_add(1, std::memory_order_relaxed);
          uint64_t id = 0;
          wire::PeekCorrelationId(frame.payload, &id);
          FriendResponse response;
          response.status = decoded.status();
          std::string out;
          wire::AppendResponseFrame(id, response, &out);
          EnqueueOutput(connection, out);
          break;
        }
        const uint64_t id = decoded.value().id;
        const int room = decoded.value().request.room;
        if (room_control_.owns && !room_control_.owns(room)) {
          // Partitioned serving: this shard is healthy but not
          // responsible for the room; tell the caller to re-route.
          metrics_->not_owner_replies.fetch_add(1,
                                                std::memory_order_relaxed);
          const uint64_t epoch =
              room_control_.epoch ? room_control_.epoch(room) : 0;
          std::string out;
          wire::AppendNotOwnerFrame(id, room, epoch, &out);
          EnqueueOutput(connection, out);
          break;
        }
        handler_(decoded.value().request,
                 [connection, id](const FriendResponse& response) {
                   std::string out;
                   wire::AppendResponseFrame(id, response, &out);
                   EnqueueOutput(connection, out);
                 });
        break;
      }
      case wire::MessageType::kRoomAssign: {
        if (!room_control_.assign) {
          // No control plane installed: ownership frames are protocol
          // confusion, exactly like a stray response.
          metrics_->frames_rejected.fetch_add(1, std::memory_order_relaxed);
          return false;
        }
        auto decoded = wire::DecodeRoomAssign(frame.payload);
        if (!decoded.ok()) {
          metrics_->frames_rejected.fetch_add(1, std::memory_order_relaxed);
          return false;
        }
        metrics_->control_frames.fetch_add(1, std::memory_order_relaxed);
        const wire::RoomAssignFrame& grant = decoded.value();
        // Synchronous on the reactor thread: control traffic is rare
        // and per-connection ordering is exactly what the router's
        // migration sequencing relies on.
        FriendResponse ack;
        ack.status = room_control_.assign(grant.room, grant.epoch,
                                          grant.state, grant.primary);
        std::string out;
        wire::AppendResponseFrame(grant.id, ack, &out);
        EnqueueOutput(connection, out);
        break;
      }
      case wire::MessageType::kRoomRecover: {
        if (!room_control_.owns && !room_control_.assign) {
          // No control plane at all: recovery frames are protocol
          // confusion, like any other ownership frame.
          metrics_->frames_rejected.fetch_add(1, std::memory_order_relaxed);
          return false;
        }
        auto decoded = wire::DecodeRoomRecoverQuery(frame.payload);
        if (!decoded.ok()) {
          metrics_->frames_rejected.fetch_add(1, std::memory_order_relaxed);
          return false;
        }
        metrics_->control_frames.fetch_add(1, std::memory_order_relaxed);
        const uint64_t query_id = decoded.value();
        // A shard without durability answers an empty report: it hosts
        // nothing from disk, which is true.
        Result<std::vector<wire::RecoveredRoom>> report{
            std::vector<wire::RecoveredRoom>{}};
        if (room_control_.recover) report = room_control_.recover();
        std::string out;
        if (report.ok()) {
          wire::AppendRoomRecoverReportFrame(query_id, report.value(), &out);
        } else {
          FriendResponse nack;
          nack.status = report.status();
          wire::AppendResponseFrame(query_id, nack, &out);
        }
        EnqueueOutput(connection, out);
        break;
      }
      case wire::MessageType::kRoomRelease: {
        if (!room_control_.release) {
          metrics_->frames_rejected.fetch_add(1, std::memory_order_relaxed);
          return false;
        }
        auto decoded = wire::DecodeRoomRelease(frame.payload);
        if (!decoded.ok()) {
          metrics_->frames_rejected.fetch_add(1, std::memory_order_relaxed);
          return false;
        }
        metrics_->control_frames.fetch_add(1, std::memory_order_relaxed);
        const wire::RoomReleaseFrame& revoke = decoded.value();
        Result<std::string> state =
            room_control_.release(revoke.room, revoke.epoch);
        std::string out;
        if (state.ok()) {
          // The release ack is a kRoomAssign frame carrying the final
          // state, so the router can forward it to the new owner (the
          // primary flag is meaningless in this direction: 0).
          wire::AppendRoomAssignFrame(revoke.id, revoke.room, revoke.epoch,
                                      /*primary=*/false, state.value(),
                                      &out);
        } else {
          FriendResponse nack;
          nack.status = state.status();
          wire::AppendResponseFrame(revoke.id, nack, &out);
        }
        EnqueueOutput(connection, out);
        break;
      }
      case wire::MessageType::kResponse:
      case wire::MessageType::kPong:
      case wire::MessageType::kNotOwner:
        // Clients never originate these; treat as protocol confusion.
        metrics_->frames_rejected.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
  }
}

void NetServer::Shutdown() {
  if (stop_.exchange(true)) {
    // Second caller (destructor after explicit Shutdown): nothing left.
    return;
  }
  if (wakeup_) wakeup_->Wake();
  if (reactor_thread_.joinable()) reactor_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // In-flight handler completions may still hold shared_ptrs; their
  // writes hit the `closed` tombstone and the fds die with the last ref.
}

RequestHandler NetServer::HandlerFor(RecommendationServer* server) {
  AFTER_CHECK(server != nullptr);
  return [server](const FriendRequest& request,
                  std::function<void(const FriendResponse&)> done) {
    server->Submit(request, std::move(done));
  };
}

void NetServer::set_room_control(RoomControl control) {
  AFTER_CHECK_EQ(listen_fd_, -1);  // install before Start()
  room_control_ = std::move(control);
}

RoomControl NetServer::ControlFor(ShardControl* control) {
  AFTER_CHECK(control != nullptr);
  RoomControl hooks;
  hooks.owns = [control](int room) { return control->Owns(room); };
  hooks.epoch = [control](int room) { return control->EpochFor(room); };
  hooks.assign = [control](int room, uint64_t epoch,
                           const std::string& state, bool primary) {
    return control->Assign(room, epoch, state, primary);
  };
  hooks.release = [control](int room, uint64_t epoch) {
    return control->Release(room, epoch);
  };
  hooks.recover = [control] { return control->RecoverFromDurable(); };
  return hooks;
}

}  // namespace serve
}  // namespace after
