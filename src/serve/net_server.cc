#include "serve/net_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "serve/server.h"
#include "serve/shard_control.h"
#include "serve/wire.h"

namespace after {
namespace serve {

namespace {
/// Poll granularity for the accept and reader loops: the latency bound
/// on observing a Shutdown() request while a socket is idle.
constexpr int kPollMs = 50;
}  // namespace

/// One accepted client. The reader thread owns the receive side; writes
/// (responses, pongs) can come from any handler-completion thread and
/// are serialized by write_mutex. `closed` is the write-side tombstone:
/// once set, late completions become no-ops instead of writing to a
/// dead or recycled descriptor. The fd is closed by the destructor,
/// which runs only after the last in-flight completion releases its
/// shared_ptr — so the descriptor can never be reused under a writer.
struct NetServer::Connection {
  int fd = -1;
  std::mutex write_mutex;
  bool closed = false;  // guarded by write_mutex
  std::thread reader;
  std::atomic<bool> reader_done{false};

  ~Connection() {
    AFTER_CHECK(!reader.joinable());
    if (fd >= 0) ::close(fd);
  }

  void Write(const std::string& bytes) {
    std::lock_guard<std::mutex> lock(write_mutex);
    if (closed) return;
    size_t offset = 0;
    while (offset < bytes.size()) {
      const ssize_t n = ::send(fd, bytes.data() + offset,
                               bytes.size() - offset, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        closed = true;
        ::shutdown(fd, SHUT_RDWR);
        return;
      }
      offset += static_cast<size_t>(n);
    }
  }

  /// Stops both directions; safe to call from any thread, repeatedly.
  void Close() {
    std::lock_guard<std::mutex> lock(write_mutex);
    if (closed) return;
    closed = true;
    ::shutdown(fd, SHUT_RDWR);
  }
};

NetServer::NetServer(RequestHandler handler, const NetServerOptions& options)
    : handler_(std::move(handler)), options_(options) {
  AFTER_CHECK(handler_ != nullptr);
}

NetServer::~NetServer() { Shutdown(); }

Status NetServer::Start() {
  AFTER_CHECK_EQ(listen_fd_, -1);  // Start() is once-only
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0)
    return UnavailableError(std::string("socket: ") + std::strerror(errno));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return InvalidArgumentError("bad listen address: " + options_.host);
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    std::ostringstream oss;
    oss << "bind " << options_.host << ":" << options_.port << ": "
        << std::strerror(errno);
    ::close(fd);
    return UnavailableError(oss.str());
  }
  if (::listen(fd, options_.backlog) != 0) {
    const Status status =
        UnavailableError(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    const Status status =
        UnavailableError(std::string("getsockname: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  listen_fd_ = fd;
  port_ = ntohs(bound.sin_port);
  accept_thread_ = std::thread(&NetServer::AcceptLoop, this);
  return OkStatus();
}

void NetServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMs);
    if (ready <= 0) continue;
    const int client_fd = ::accept(listen_fd_, nullptr, nullptr);
    if (client_fd < 0) continue;
    ReapFinishedConnections();
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      if (static_cast<int>(connections_.size()) >= options_.max_connections) {
        ::close(client_fd);  // network-layer shed
        continue;
      }
      const int one = 1;
      ::setsockopt(client_fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      auto connection = std::make_shared<Connection>();
      connection->fd = client_fd;
      // Count before the reader exists: a served response must imply the
      // connection is already visible in connections_accepted().
      connections_accepted_.fetch_add(1, std::memory_order_relaxed);
      connection->reader =
          std::thread(&NetServer::ReadLoop, this, connection);
      connections_.push_back(std::move(connection));
    }
  }
}

void NetServer::ReadLoop(std::shared_ptr<Connection> connection) {
  std::string buffer;
  char chunk[16384];
  bool alive = true;
  while (alive && !stop_.load(std::memory_order_acquire)) {
    pollfd pfd{connection->fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMs);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;
    const ssize_t n = ::recv(connection->fd, chunk, sizeof(chunk), 0);
    if (n == 0) break;  // peer closed
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    buffer.append(chunk, static_cast<size_t>(n));

    // Drain every complete frame in the accumulator.
    while (alive) {
      wire::Frame frame;
      size_t consumed = 0;
      const Status framing = wire::ExtractFrame(buffer, &frame, &consumed);
      if (!framing.ok()) {
        // The stream is unframeable from here on; drop the connection.
        frames_rejected_.fetch_add(1, std::memory_order_relaxed);
        alive = false;
        break;
      }
      if (consumed == 0) break;  // incomplete; read more
      buffer.erase(0, consumed);

      switch (frame.type) {
        case wire::MessageType::kPing: {
          auto ping = wire::DecodePingPong(frame.payload);
          if (!ping.ok()) {
            frames_rejected_.fetch_add(1, std::memory_order_relaxed);
            alive = false;
            break;
          }
          std::string pong;
          wire::AppendPongFrame(ping.value(), &pong);
          connection->Write(pong);
          break;
        }
        case wire::MessageType::kRequest: {
          auto decoded = wire::DecodeRequest(frame.payload);
          if (!decoded.ok()) {
            // Framing was sound, so answer on-protocol: echo the id if
            // the payload got that far, and say what was wrong.
            frames_rejected_.fetch_add(1, std::memory_order_relaxed);
            uint64_t id = 0;
            if (frame.payload.size() >= 8)
              for (int i = 0; i < 8; ++i)
                id |= static_cast<uint64_t>(
                          static_cast<uint8_t>(frame.payload[i]))
                      << (8 * i);
            FriendResponse response;
            response.status = decoded.status();
            std::string out;
            wire::AppendResponseFrame(id, response, &out);
            connection->Write(out);
            break;
          }
          const uint64_t id = decoded.value().id;
          const int room = decoded.value().request.room;
          if (room_control_.owns && !room_control_.owns(room)) {
            // Partitioned serving: this shard is healthy but not
            // responsible for the room; tell the caller to re-route.
            not_owner_replies_.fetch_add(1, std::memory_order_relaxed);
            const uint64_t epoch =
                room_control_.epoch ? room_control_.epoch(room) : 0;
            std::string out;
            wire::AppendNotOwnerFrame(id, room, epoch, &out);
            connection->Write(out);
            break;
          }
          handler_(decoded.value().request,
                   [connection, id](const FriendResponse& response) {
                     std::string out;
                     wire::AppendResponseFrame(id, response, &out);
                     connection->Write(out);
                   });
          break;
        }
        case wire::MessageType::kRoomAssign: {
          if (!room_control_.assign) {
            // No control plane installed: ownership frames are protocol
            // confusion, exactly like a stray response.
            frames_rejected_.fetch_add(1, std::memory_order_relaxed);
            alive = false;
            break;
          }
          auto decoded = wire::DecodeRoomAssign(frame.payload);
          if (!decoded.ok()) {
            frames_rejected_.fetch_add(1, std::memory_order_relaxed);
            alive = false;
            break;
          }
          control_frames_.fetch_add(1, std::memory_order_relaxed);
          const wire::RoomAssignFrame& grant = decoded.value();
          // Synchronous on the reader thread: control traffic is rare
          // and per-connection ordering is exactly what the router's
          // migration sequencing relies on.
          FriendResponse ack;
          ack.status = room_control_.assign(grant.room, grant.epoch,
                                            grant.state, grant.primary);
          std::string out;
          wire::AppendResponseFrame(grant.id, ack, &out);
          connection->Write(out);
          break;
        }
        case wire::MessageType::kRoomRecover: {
          if (!room_control_.owns && !room_control_.assign) {
            // No control plane at all: recovery frames are protocol
            // confusion, like any other ownership frame.
            frames_rejected_.fetch_add(1, std::memory_order_relaxed);
            alive = false;
            break;
          }
          auto decoded = wire::DecodeRoomRecoverQuery(frame.payload);
          if (!decoded.ok()) {
            frames_rejected_.fetch_add(1, std::memory_order_relaxed);
            alive = false;
            break;
          }
          control_frames_.fetch_add(1, std::memory_order_relaxed);
          const uint64_t query_id = decoded.value();
          // A shard without durability answers an empty report: it hosts
          // nothing from disk, which is true.
          Result<std::vector<wire::RecoveredRoom>> report{
              std::vector<wire::RecoveredRoom>{}};
          if (room_control_.recover) report = room_control_.recover();
          std::string out;
          if (report.ok()) {
            wire::AppendRoomRecoverReportFrame(query_id, report.value(),
                                               &out);
          } else {
            FriendResponse nack;
            nack.status = report.status();
            wire::AppendResponseFrame(query_id, nack, &out);
          }
          connection->Write(out);
          break;
        }
        case wire::MessageType::kRoomRelease: {
          if (!room_control_.release) {
            frames_rejected_.fetch_add(1, std::memory_order_relaxed);
            alive = false;
            break;
          }
          auto decoded = wire::DecodeRoomRelease(frame.payload);
          if (!decoded.ok()) {
            frames_rejected_.fetch_add(1, std::memory_order_relaxed);
            alive = false;
            break;
          }
          control_frames_.fetch_add(1, std::memory_order_relaxed);
          const wire::RoomReleaseFrame& revoke = decoded.value();
          Result<std::string> state =
              room_control_.release(revoke.room, revoke.epoch);
          std::string out;
          if (state.ok()) {
            // The release ack is a kRoomAssign frame carrying the final
            // state, so the router can forward it to the new owner (the
            // primary flag is meaningless in this direction: 0).
            wire::AppendRoomAssignFrame(revoke.id, revoke.room, revoke.epoch,
                                        /*primary=*/false, state.value(),
                                        &out);
          } else {
            FriendResponse nack;
            nack.status = state.status();
            wire::AppendResponseFrame(revoke.id, nack, &out);
          }
          connection->Write(out);
          break;
        }
        case wire::MessageType::kResponse:
        case wire::MessageType::kPong:
        case wire::MessageType::kNotOwner:
          // Clients never originate these; treat as protocol confusion.
          frames_rejected_.fetch_add(1, std::memory_order_relaxed);
          alive = false;
          break;
      }
    }
  }
  connection->Close();
  connection->reader_done.store(true, std::memory_order_release);
}

void NetServer::ReapFinishedConnections() {
  std::lock_guard<std::mutex> lock(connections_mutex_);
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->reader_done.load(std::memory_order_acquire)) {
      (*it)->reader.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void NetServer::Shutdown() {
  if (stop_.exchange(true)) {
    // Second caller (destructor after explicit Shutdown): nothing left.
    return;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::vector<std::shared_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections.swap(connections_);
  }
  for (auto& connection : connections) {
    connection->Close();  // wakes the reader's poll immediately
    if (connection->reader.joinable()) connection->reader.join();
  }
  // In-flight handler completions may still hold shared_ptrs; their
  // writes hit the `closed` tombstone and the fds die with the last ref.
}

RequestHandler NetServer::HandlerFor(RecommendationServer* server) {
  AFTER_CHECK(server != nullptr);
  return [server](const FriendRequest& request,
                  std::function<void(const FriendResponse&)> done) {
    server->Submit(request, std::move(done));
  };
}

void NetServer::set_room_control(RoomControl control) {
  AFTER_CHECK_EQ(listen_fd_, -1);  // install before Start()
  room_control_ = std::move(control);
}

RoomControl NetServer::ControlFor(ShardControl* control) {
  AFTER_CHECK(control != nullptr);
  RoomControl hooks;
  hooks.owns = [control](int room) { return control->Owns(room); };
  hooks.epoch = [control](int room) { return control->EpochFor(room); };
  hooks.assign = [control](int room, uint64_t epoch,
                           const std::string& state, bool primary) {
    return control->Assign(room, epoch, state, primary);
  };
  hooks.release = [control](int room, uint64_t epoch) {
    return control->Release(room, epoch);
  };
  hooks.recover = [control] { return control->RecoverFromDurable(); };
  return hooks;
}

}  // namespace serve
}  // namespace after
