#ifndef AFTER_SERVE_NET_SERVER_H_
#define AFTER_SERVE_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "serve/server_types.h"
#include "serve/wire.h"

namespace after {
namespace serve {

class RecommendationServer;
class ShardControl;

/// What a NetServer serves: an asynchronous request handler with the
/// same shape as RecommendationServer::Submit. The completion callback
/// may run on any thread and must be invoked exactly once. The two
/// in-repo handlers are a RecommendationServer front (a shard worker,
/// tools/serve_shard) and a ShardRouter front (tools/shard_router).
using RequestHandler = std::function<void(
    const FriendRequest&, std::function<void(const FriendResponse&)>)>;

/// Room-ownership hooks for partitioned serving (serve/shard_control.h).
/// When installed, requests for rooms `owns` rejects are answered with a
/// kNotOwner frame instead of reaching the handler, and kRoomAssign /
/// kRoomRelease control frames are dispatched to `assign` / `release`
/// (synchronously, on the connection's reader thread — control traffic
/// is rare and strictly ordered per connection). Without a RoomControl,
/// control frames are protocol confusion and close the connection, which
/// is exactly the pre-partitioning behavior.
struct RoomControl {
  std::function<bool(int room)> owns;
  /// The shard's latest epoch for a room (0 if never seen); echoed in
  /// kNotOwner replies so routers can order their view.
  std::function<uint64_t(int room)> epoch;
  std::function<Status(int room, uint64_t epoch, const std::string& state,
                       bool primary)>
      assign;
  std::function<Result<std::string>(int room, uint64_t epoch)> release;
  /// kRoomRecover: replay durable state (idempotent) and report what the
  /// shard hosts from disk. Optional — absent means the shard has no
  /// durability and answers an empty report.
  std::function<Result<std::vector<wire::RecoveredRoom>>()> recover;
};

struct NetServerOptions {
  /// Listen address. The default binds loopback only: the fleet is a
  /// localhost topology until there is authn on the wire.
  std::string host = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back via port() after Start().
  int port = 0;
  int backlog = 64;
  /// Accepted connections beyond this are closed immediately (the
  /// network-layer analogue of queue-full shedding).
  int max_connections = 256;
};

/// TCP front for the serving runtime: a plain POSIX-socket accept loop
/// plus one reader thread per connection, speaking the length-prefixed
/// wire protocol (serve/wire.h). Each complete request frame is handed
/// to the RequestHandler; the response frame is written back on the
/// handler's completion thread (writes are serialized per connection).
/// Pings are answered inline with pongs. A malformed frame closes the
/// connection — framing errors are unrecoverable mid-stream — while a
/// well-framed but undecodable request payload is answered with a
/// kInvalidArgument response so the client can tell what it sent.
///
/// The full degradation ladder of the in-process server travels the
/// wire unchanged: shed/timeout/fallback surface as the response's
/// status code + used_fallback flag (docs/serving.md).
class NetServer {
 public:
  NetServer(RequestHandler handler, const NetServerOptions& options);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds, listens, and spawns the accept thread. kUnavailable when the
  /// address cannot be bound.
  Status Start();

  /// The bound port (resolves port 0 to the actual ephemeral port).
  /// Valid after a successful Start().
  int port() const { return port_; }
  const std::string& host() const { return options_.host; }

  /// Stops accepting, closes every connection, joins all threads.
  /// In-flight handler completions are safely dropped. Idempotent.
  void Shutdown();

  int64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }
  int64_t frames_rejected() const {
    return frames_rejected_.load(std::memory_order_relaxed);
  }

  /// Adapter: serve an in-process RecommendationServer (which must
  /// outlive the NetServer).
  static RequestHandler HandlerFor(RecommendationServer* server);

  /// Installs the ownership hooks. Call before Start(); the control
  /// object must outlive the NetServer.
  void set_room_control(RoomControl control);

  /// Adapter: ownership hooks backed by a ShardControl (which must
  /// outlive the NetServer).
  static RoomControl ControlFor(ShardControl* control);

  int64_t not_owner_replies() const {
    return not_owner_replies_.load(std::memory_order_relaxed);
  }
  int64_t control_frames() const {
    return control_frames_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection;

  void AcceptLoop();
  void ReadLoop(std::shared_ptr<Connection> connection);
  void ReapFinishedConnections();

  RequestHandler handler_;
  RoomControl room_control_;  // empty hooks = partitioning disabled
  NetServerOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread accept_thread_;
  std::mutex connections_mutex_;
  std::vector<std::shared_ptr<Connection>> connections_;
  std::atomic<int64_t> connections_accepted_{0};
  std::atomic<int64_t> frames_rejected_{0};
  std::atomic<int64_t> not_owner_replies_{0};
  std::atomic<int64_t> control_frames_{0};
};

}  // namespace serve
}  // namespace after

#endif  // AFTER_SERVE_NET_SERVER_H_
