#ifndef AFTER_SERVE_NET_SERVER_H_
#define AFTER_SERVE_NET_SERVER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "serve/metrics.h"
#include "serve/server_types.h"
#include "serve/wire.h"

namespace after {
namespace serve {

class RecommendationServer;
class ShardControl;

/// What a NetServer serves: an asynchronous request handler with the
/// same shape as RecommendationServer::Submit. The completion callback
/// may run on any thread and must be invoked exactly once. The two
/// in-repo handlers are a RecommendationServer front (a shard worker,
/// tools/serve_shard) and a ShardRouter front (tools/shard_router).
using RequestHandler = std::function<void(
    const FriendRequest&, std::function<void(const FriendResponse&)>)>;

/// Room-ownership hooks for partitioned serving (serve/shard_control.h).
/// When installed, requests for rooms `owns` rejects are answered with a
/// kNotOwner frame instead of reaching the handler, and kRoomAssign /
/// kRoomRelease control frames are dispatched to `assign` / `release`
/// (synchronously, on the reactor thread — control traffic is rare and
/// strictly ordered per connection). Without a RoomControl, control
/// frames are protocol confusion and close the connection, which is
/// exactly the pre-partitioning behavior.
struct RoomControl {
  std::function<bool(int room)> owns;
  /// The shard's latest epoch for a room (0 if never seen); echoed in
  /// kNotOwner replies so routers can order their view.
  std::function<uint64_t(int room)> epoch;
  std::function<Status(int room, uint64_t epoch, const std::string& state,
                       bool primary)>
      assign;
  std::function<Result<std::string>(int room, uint64_t epoch)> release;
  /// kRoomRecover: replay durable state (idempotent) and report what the
  /// shard hosts from disk. Optional — absent means the shard has no
  /// durability and answers an empty report.
  std::function<Result<std::vector<wire::RecoveredRoom>>()> recover;
};

struct NetServerOptions {
  /// Listen address. The default binds loopback only: the fleet is a
  /// localhost topology until there is authn on the wire.
  std::string host = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back via port() after Start().
  int port = 0;
  int backlog = 128;
  /// Accepted connections beyond this are closed immediately (the
  /// network-layer analogue of queue-full shedding). Raise it for C10k
  /// fronts — and raise RLIMIT_NOFILE with it.
  int max_connections = 256;
  /// Connections with no bytes in either direction for this long are
  /// closed by the reactor's idle sweep (slow-loris reaping). 0 = never:
  /// mostly-idle XR clients may legitimately sit quiet between bursts.
  double idle_timeout_ms = 0.0;
  /// Write backpressure, per connection. Above write_pause_bytes of
  /// undelivered output the reactor stops reading that connection (so a
  /// peer that pipelines requests faster than it drains responses is
  /// throttled by TCP instead of ballooning our buffers); above
  /// write_close_bytes the peer has plainly stopped reading and the
  /// connection is closed as a slow peer.
  size_t write_pause_bytes = 1u << 20;
  size_t write_close_bytes = 8u << 20;
};

/// TCP front for the serving runtime: a single-threaded edge-triggered
/// epoll reactor speaking the length-prefixed wire protocol
/// (serve/wire.h). Every socket is nonblocking; the reactor drains
/// readable connections into per-connection input buffers through one
/// bounded, reused read slab, extracts complete frames, and hands each
/// request to the RequestHandler. Responses are correlated by request
/// id, never by arrival order, so one connection can pipeline many
/// requests: handler completions (any thread) append the response frame
/// to the connection's output buffer, flush opportunistically, and wake
/// the reactor through an eventfd when the socket backs up; the reactor
/// finishes the write under EPOLLOUT. Pings are answered inline with
/// pongs.
///
/// Slow peers are handled gracefully instead of by thread exhaustion:
/// per-connection output buffers are bounded (write backpressure pauses
/// reads, then disconnects — see NetServerOptions), idle connections
/// are reaped on a timeout, and the connection count is capped; all of
/// it surfaces in NetFrontMetrics (serve/metrics.h).
///
/// A malformed frame closes the connection — framing errors are
/// unrecoverable mid-stream — while a well-framed but undecodable
/// request payload is answered with a kInvalidArgument response so the
/// client can tell what it sent.
///
/// The full degradation ladder of the in-process server travels the
/// wire unchanged: shed/timeout/fallback surface as the response's
/// status code + used_fallback flag (docs/serving.md).
class NetServer {
 public:
  NetServer(RequestHandler handler, const NetServerOptions& options);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds, listens, and spawns the reactor thread. kUnavailable when
  /// the address cannot be bound.
  Status Start();

  /// The bound port (resolves port 0 to the actual ephemeral port).
  /// Valid after a successful Start().
  int port() const { return port_; }
  const std::string& host() const { return options_.host; }

  /// Stops the reactor, closes every connection, joins the thread.
  /// In-flight handler completions are safely dropped. Idempotent.
  void Shutdown();

  /// Full network-front counters (serve/metrics.h).
  const NetFrontMetrics& metrics() const { return *metrics_; }

  int64_t connections_accepted() const {
    return metrics_->connections_accepted.load(std::memory_order_relaxed);
  }
  int64_t frames_rejected() const {
    return metrics_->frames_rejected.load(std::memory_order_relaxed);
  }
  int64_t not_owner_replies() const {
    return metrics_->not_owner_replies.load(std::memory_order_relaxed);
  }
  int64_t control_frames() const {
    return metrics_->control_frames.load(std::memory_order_relaxed);
  }

  /// Adapter: serve an in-process RecommendationServer (which must
  /// outlive the NetServer).
  static RequestHandler HandlerFor(RecommendationServer* server);

  /// Installs the ownership hooks. Call before Start(); the control
  /// object must outlive the NetServer.
  void set_room_control(RoomControl control);

  /// Adapter: ownership hooks backed by a ShardControl (which must
  /// outlive the NetServer).
  static RoomControl ControlFor(ShardControl* control);

 private:
  struct Connection;
  struct Wakeup;

  void ReactorLoop();
  void AcceptReady();
  void HandleReadable(const std::shared_ptr<Connection>& connection);
  void HandleWritable(const std::shared_ptr<Connection>& connection);
  void ProcessDirty();
  void SweepIdle();
  /// Dispatches every complete frame in the connection's input buffer.
  /// Returns false when the connection must close (framing or protocol
  /// error).
  bool DrainFrames(const std::shared_ptr<Connection>& connection);
  /// Removes the connection from the reactor (epoll + map) and shuts the
  /// socket down; pending output gets one last best-effort flush. Safe
  /// to call twice. Reactor thread only.
  void CloseConnection(const std::shared_ptr<Connection>& connection);
  /// Re-arms the connection's epoll interest set to match its state
  /// (EPOLLOUT while output is pending, EPOLLIN unless reads are
  /// paused). Reactor thread only; caller holds the connection mutex.
  void UpdateInterestLocked(const std::shared_ptr<Connection>& connection);
  /// Appends bytes to the connection's output buffer with an
  /// opportunistic direct send; wakes the reactor when the socket backs
  /// up. Any thread. Static on purpose: handler completions capture
  /// only the connection, so a completion that outlives Shutdown()
  /// cannot dangle on the server.
  static void EnqueueOutput(const std::shared_ptr<Connection>& connection,
                            const std::string& bytes);
  /// Monotonic milliseconds for activity stamps and the idle sweep.
  int64_t NowMs() const;

  RequestHandler handler_;
  RoomControl room_control_;  // empty hooks = partitioning disabled
  NetServerOptions options_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread reactor_thread_;

  /// Reactor-thread state: live connections by fd, the bounded read
  /// slab reused across every connection, and connections closed this
  /// event batch (their shared_ptrs — and so their fds — are held to
  /// the end of the batch so a stale event can never hit a recycled
  /// descriptor).
  std::unordered_map<int, std::shared_ptr<Connection>> connections_;
  std::vector<char> read_slab_;
  std::vector<std::shared_ptr<Connection>> dying_;
  int64_t last_idle_sweep_ms_ = 0;

  /// Shared with every connection (weakly) so handler completions can
  /// wake the reactor even while the server is tearing down.
  std::shared_ptr<Wakeup> wakeup_;
  std::shared_ptr<NetFrontMetrics> metrics_;
};

}  // namespace serve
}  // namespace after

#endif  // AFTER_SERVE_NET_SERVER_H_
