#include "serve/room.h"

#include <cmath>
#include <sstream>
#include <utility>

#include "graph/occlusion_converter.h"
#include "nn/serialize.h"
#include "tensor/matrix.h"

namespace after {
namespace serve {

RoomSnapshot::RoomSnapshot(int tick, std::vector<Vec2> positions,
                           const std::vector<Interface>* interfaces,
                           const Matrix* preference,
                           const Matrix* social_presence, double beta,
                           double body_radius)
    : tick_(tick),
      positions_(std::move(positions)),
      interfaces_(interfaces),
      preference_(preference),
      social_presence_(social_presence),
      beta_(beta),
      body_radius_(body_radius),
      occlusion_(positions_.size()),
      occlusion_once_(new std::once_flag[positions_.size()]) {}

const OcclusionGraph& RoomSnapshot::OcclusionFor(int target) const {
  std::call_once(occlusion_once_[target], [this, target] {
    occlusion_[target] =
        BuildOcclusionGraph(positions_, target, body_radius_);
  });
  return occlusion_[target];
}

StepContext RoomSnapshot::ContextFor(int target) const {
  StepContext context;
  context.t = tick_;
  context.target = target;
  context.positions = &positions_;
  context.occlusion = &OcclusionFor(target);
  context.interfaces = interfaces_;
  context.preference = preference_;
  context.social_presence = social_presence_;
  context.beta = beta_;
  context.body_radius = body_radius_;
  return context;
}

std::vector<StepContext> RoomSnapshot::ContextsFor(
    const std::vector<int>& targets) const {
  std::vector<StepContext> contexts;
  contexts.reserve(targets.size());
  for (int target : targets) contexts.push_back(ContextFor(target));
  return contexts;
}

Room::Room(const Options& options, const Dataset* dataset,
           const XrWorld* world)
    : options_(options),
      dataset_(dataset),
      world_(world),
      num_users_(world->num_users()),
      rng_(options.seed) {}

Result<std::unique_ptr<Room>> Room::Create(const Options& options,
                                           const Dataset* dataset) {
  if (dataset == nullptr)
    return InvalidDataError("room requires a dataset");
  if (dataset->sessions.empty())
    return InvalidDataError("dataset has no sessions to host");
  const int session_index =
      options.session >= 0
          ? options.session
          : static_cast<int>(dataset->sessions.size()) - 1;
  if (session_index >= static_cast<int>(dataset->sessions.size())) {
    std::ostringstream oss;
    oss << "room " << options.id << ": session index " << session_index
        << " out of range [0, " << dataset->sessions.size() << ")";
    return InvalidDataError(oss.str());
  }
  const XrWorld& world = dataset->sessions[session_index];
  const int n = world.num_users();
  if (n <= 0 || world.num_steps() <= 0)
    return InvalidDataError("room session has no users or steps");
  if (dataset->preference.rows() < n || dataset->preference.cols() < n ||
      dataset->social_presence.rows() < n ||
      dataset->social_presence.cols() < n) {
    std::ostringstream oss;
    oss << "room " << options.id << ": utility matrices do not cover the "
        << n << " session users";
    return InvalidDataError(oss.str());
  }

  std::unique_ptr<Room> room(new Room(options, dataset, &world));
  if (options.mode == Mode::kLive) {
    room->sim_ = std::make_unique<CrowdSimulator>(/*time_step=*/0.5);
    CrowdSimulator::AgentParams params;
    params.radius = world.body_radius();
    params.max_speed = options.max_speed;
    for (int u = 0; u < n; ++u) {
      room->sim_->AddAgent(world.PositionsAt(0)[u], params);
      room->sim_->SetGoal(u, room->RandomWaypoint());
    }
  }
  room->Publish(world.PositionsAt(0), /*tick=*/0);
  return room;
}

Vec2 Room::RandomWaypoint() {
  return Vec2{rng_.Uniform(0.0, options_.room_side),
              rng_.Uniform(0.0, options_.room_side)};
}

Status Room::Tick() {
  std::lock_guard<std::mutex> lock(tick_mutex_);
  const int next = tick_.load(std::memory_order_relaxed) + 1;
  if (options_.mode == Mode::kReplay) {
    if (next >= world_->num_steps()) {
      std::ostringstream oss;
      oss << "room " << options_.id << ": replay session exhausted at tick "
          << (next - 1);
      return ResourceExhaustedError(oss.str());
    }
    Publish(world_->PositionsAt(next), next);
    return OkStatus();
  }
  // Live mode: re-aim agents that arrived, advance ORCA one step, and
  // publish the fresh positions.
  for (int u = 0; u < num_users_; ++u)
    if (sim_->ReachedGoal(u, /*tolerance=*/0.2))
      sim_->SetGoal(u, RandomWaypoint());
  sim_->Step();
  std::vector<Vec2> positions(num_users_);
  for (int u = 0; u < num_users_; ++u) positions[u] = sim_->Position(u);
  Publish(std::move(positions), next);
  return OkStatus();
}

void Room::Publish(std::vector<Vec2> positions, int tick) {
  window_.push_back(positions);
  while (static_cast<int>(window_.size()) > kTrajectoryWindowFrames)
    window_.pop_front();
  auto snapshot = std::make_shared<const RoomSnapshot>(
      tick, std::move(positions), &world_->interfaces(),
      &dataset_->preference, &dataset_->social_presence, options_.beta,
      world_->body_radius());
  {
    std::lock_guard<std::mutex> lock(snapshot_mutex_);
    snapshot_ = std::move(snapshot);
  }
  tick_.store(tick, std::memory_order_release);
}

std::shared_ptr<const RoomSnapshot> Room::snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return snapshot_;
}

namespace {

/// Packs a list of position frames into one (frames*n) x 2 matrix,
/// oldest frame first — the migration blob's trajectory-window block.
Matrix PackFrames(const std::deque<std::vector<Vec2>>& frames, int n) {
  Matrix out(static_cast<int>(frames.size()) * n, 2);
  int row = 0;
  for (const auto& frame : frames) {
    for (int u = 0; u < n; ++u, ++row) {
      out.At(row, 0) = frame[u].x;
      out.At(row, 1) = frame[u].y;
    }
  }
  return out;
}

}  // namespace

std::string Room::ExportState() const {
  std::lock_guard<std::mutex> lock(tick_mutex_);
  const int n = num_users_;
  // Block 0: meta row [tick, num_users, window_frames, mode].
  Matrix meta(1, 4);
  meta.At(0, 0) = tick_.load(std::memory_order_relaxed);
  meta.At(0, 1) = n;
  meta.At(0, 2) = static_cast<int>(window_.size());
  meta.At(0, 3) = options_.mode == Mode::kLive ? 1 : 0;
  // Block 1: current positions (the last published frame).
  Matrix positions(n, 2);
  const std::vector<Vec2>& current = window_.back();
  for (int u = 0; u < n; ++u) {
    positions.At(u, 0) = current[u].x;
    positions.At(u, 1) = current[u].y;
  }
  // Block 2: live-mode waypoint goals (zeros in replay mode, where the
  // recorded session is the only trajectory source).
  Matrix goals(n, 2);
  if (options_.mode == Mode::kLive) {
    for (int u = 0; u < n; ++u) {
      goals.At(u, 0) = sim_->Goal(u).x;
      goals.At(u, 1) = sim_->Goal(u).y;
    }
  }
  // Block 3: the trajectory window, oldest frame first.
  std::ostringstream out;
  WriteParameterBlock(out, {meta, positions, goals, PackFrames(window_, n)});
  return out.str();
}

Status Room::ApplyState(const std::string& blob) {
  std::istringstream in(blob);
  std::vector<Matrix> blocks;
  AFTER_RETURN_IF_ERROR(
      ReadParameterBlock(in, &blocks)
          .Annotate("room " + std::to_string(options_.id) +
                    ": migration state"));
  // Validate everything before touching any room state (all-or-nothing).
  const auto fail = [this](const std::string& what) {
    return InvalidDataError("room " + std::to_string(options_.id) +
                            ": migration state " + what);
  };
  if (blocks.size() != 4) return fail("does not have 4 blocks");
  const Matrix& meta = blocks[0];
  if (meta.rows() != 1 || meta.cols() != 4) return fail("meta is not 1x4");
  const int tick = static_cast<int>(meta.At(0, 0));
  const int n = static_cast<int>(meta.At(0, 1));
  const int frames = static_cast<int>(meta.At(0, 2));
  const int mode = static_cast<int>(meta.At(0, 3));
  if (tick < 0) return fail("has a negative tick");
  if (n != num_users_) return fail("user count mismatch");
  if (frames < 1 || frames > kTrajectoryWindowFrames)
    return fail("has an out-of-range window length");
  if (mode != (options_.mode == Mode::kLive ? 1 : 0))
    return fail("mode mismatch");
  if (options_.mode == Mode::kReplay && tick >= world_->num_steps())
    return fail("tick beyond the replay session");
  const Matrix& positions = blocks[1];
  const Matrix& goals = blocks[2];
  const Matrix& window = blocks[3];
  if (positions.rows() != n || positions.cols() != 2)
    return fail("positions block is not n x 2");
  if (goals.rows() != n || goals.cols() != 2)
    return fail("goals block is not n x 2");
  if (window.rows() != frames * n || window.cols() != 2)
    return fail("window block does not match its declared length");

  std::lock_guard<std::mutex> lock(tick_mutex_);
  std::vector<Vec2> current(n);
  for (int u = 0; u < n; ++u)
    current[u] = Vec2{positions.At(u, 0), positions.At(u, 1)};
  if (options_.mode == Mode::kLive) {
    for (int u = 0; u < n; ++u) {
      sim_->TeleportAgent(u, current[u]);
      sim_->SetGoal(u, Vec2{goals.At(u, 0), goals.At(u, 1)});
    }
  }
  window_.clear();
  for (int f = 0; f < frames; ++f) {
    std::vector<Vec2> frame(n);
    for (int u = 0; u < n; ++u)
      frame[u] = Vec2{window.At(f * n + u, 0), window.At(f * n + u, 1)};
    window_.push_back(std::move(frame));
  }
  // Publish() re-appends the current frame, so drop the last window
  // entry (it is the same frame by construction).
  window_.pop_back();
  Publish(std::move(current), tick);
  return OkStatus();
}

std::vector<std::vector<Vec2>> Room::trajectory_window() const {
  std::lock_guard<std::mutex> lock(tick_mutex_);
  return std::vector<std::vector<Vec2>>(window_.begin(), window_.end());
}

Room::TickFrame Room::CurrentTickFrame() const {
  std::lock_guard<std::mutex> lock(tick_mutex_);
  TickFrame frame;
  frame.tick = tick_.load(std::memory_order_relaxed);
  frame.positions = window_.back();
  if (options_.mode == Mode::kLive) {
    frame.goals.resize(num_users_);
    for (int u = 0; u < num_users_; ++u) frame.goals[u] = sim_->Goal(u);
  }
  return frame;
}

Status Room::ApplyTickFrame(const TickFrame& frame) {
  const auto fail = [this](const std::string& what) {
    return InvalidDataError("room " + std::to_string(options_.id) +
                            ": tick frame " + what);
  };
  if (static_cast<int>(frame.positions.size()) != num_users_)
    return fail("user count mismatch");
  const bool live = options_.mode == Mode::kLive;
  if (live && static_cast<int>(frame.goals.size()) != num_users_)
    return fail("goal count mismatch");
  if (!live && frame.tick >= world_->num_steps())
    return fail("tick beyond the replay session");
  std::lock_guard<std::mutex> lock(tick_mutex_);
  if (frame.tick <= tick_.load(std::memory_order_relaxed))
    return fail("does not advance the tick");
  if (live) {
    for (int u = 0; u < num_users_; ++u) {
      sim_->TeleportAgent(u, frame.positions[u]);
      sim_->SetGoal(u, frame.goals[u]);
    }
  }
  Publish(frame.positions, frame.tick);
  return OkStatus();
}

}  // namespace serve
}  // namespace after
