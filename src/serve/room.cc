#include "serve/room.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "graph/occlusion_converter.h"
#include "nn/serialize.h"
#include "tensor/matrix.h"

namespace after {
namespace serve {
namespace {

/// Live-mode arrival tolerance: a walker within this distance of its
/// waypoint counts as arrived (re-aims, or parks under walker-swap).
constexpr double kGoalTolerance = 0.2;

}  // namespace

RoomSnapshot::RoomSnapshot(int tick, std::vector<Vec2> positions,
                           const std::vector<Interface>* interfaces,
                           const Matrix* preference,
                           const Matrix* social_presence, double beta,
                           double body_radius,
                           std::shared_ptr<const TemporalView> temporal)
    : tick_(tick),
      positions_(std::move(positions)),
      interfaces_(interfaces),
      preference_(preference),
      social_presence_(social_presence),
      beta_(beta),
      body_radius_(body_radius),
      occlusion_(positions_.size()),
      arcs_(positions_.size()),
      occlusion_once_(new std::once_flag[positions_.size()]),
      occlusion_built_(new std::atomic<bool>[positions_.size()]),
      temporal_(std::move(temporal)) {
  for (size_t i = 0; i < positions_.size(); ++i)
    occlusion_built_[i].store(false, std::memory_order_relaxed);
}

RoomSnapshot::RoomSnapshot(int tick, std::vector<Vec2> positions,
                           const RoomSnapshot& previous,
                           std::vector<int> moved,
                           std::shared_ptr<const TemporalView> temporal)
    : tick_(tick),
      positions_(std::move(positions)),
      interfaces_(previous.interfaces_),
      preference_(previous.preference_),
      social_presence_(previous.social_presence_),
      beta_(previous.beta_),
      body_radius_(previous.body_radius_),
      occlusion_(positions_.size()),
      arcs_(positions_.size()),
      occlusion_once_(new std::once_flag[positions_.size()]),
      occlusion_built_(new std::atomic<bool>[positions_.size()]),
      temporal_(std::move(temporal)),
      built_by_delta_(true),
      num_moved_(static_cast<int>(moved.size())) {
  const int n = num_users();
  AFTER_CHECK_EQ(previous.num_users(), n);
  for (int i = 0; i < n; ++i)
    occlusion_built_[i].store(false, std::memory_order_relaxed);
  std::vector<bool> is_moved(n, false);
  for (int m : moved) is_moved[m] = true;
  // Carry the predecessor's hot set forward: every target it had built
  // whose own position is unchanged gets a cheap delta update now, so
  // the request streams that made it hot stay cheap this tick too.
  // Moved targets are left lazy — their whole arc set changed, so they
  // cost a full rebuild either way, and only if someone actually asks.
  for (int u = 0; u < n; ++u) {
    if (is_moved[u]) continue;
    if (!previous.occlusion_built_[u].load(std::memory_order_acquire))
      continue;
    arcs_[u] = previous.arcs_[u];
    UpdateViewArcs(positions_, u, body_radius_, moved, &arcs_[u]);
    occlusion_[u] =
        UpdateOcclusionGraph(previous.occlusion_[u], arcs_[u], moved,
                             is_moved);
    occlusion_built_[u].store(true, std::memory_order_relaxed);
    ++delta_carried_;
  }
}

const OcclusionGraph& RoomSnapshot::OcclusionFor(int target) const {
  if (!occlusion_built_[target].load(std::memory_order_acquire)) {
    std::call_once(occlusion_once_[target], [this, target] {
      arcs_[target] = ComputeViewArcs(positions_, target, body_radius_);
      occlusion_[target] = BuildOcclusionGraphFromArcs(arcs_[target]);
      occlusion_built_[target].store(true, std::memory_order_release);
    });
  }
  return occlusion_[target];
}

bool RoomSnapshot::PruneCandidates(int target, int max_candidates,
                                   std::vector<bool>* mask) const {
  if (temporal_ == nullptr || max_candidates <= 0) return false;
  if (max_candidates >= num_users() - 1) return false;
  temporal_->FillPruneMask(target, max_candidates, mask);
  return true;
}

StepContext RoomSnapshot::ContextFor(int target) const {
  StepContext context;
  context.t = tick_;
  context.target = target;
  context.positions = &positions_;
  context.occlusion = &OcclusionFor(target);
  context.interfaces = interfaces_;
  context.preference = preference_;
  context.social_presence = social_presence_;
  context.beta = beta_;
  context.body_radius = body_radius_;
  return context;
}

std::vector<StepContext> RoomSnapshot::ContextsFor(
    const std::vector<int>& targets) const {
  std::vector<StepContext> contexts;
  contexts.reserve(targets.size());
  for (int target : targets) contexts.push_back(ContextFor(target));
  return contexts;
}

Room::Room(const Options& options, const Dataset* dataset,
           const XrWorld* world)
    : options_(options),
      dataset_(dataset),
      world_(world),
      num_users_(world->num_users()),
      rng_(options.seed) {}

Result<std::unique_ptr<Room>> Room::Create(const Options& options,
                                           const Dataset* dataset) {
  if (dataset == nullptr)
    return InvalidDataError("room requires a dataset");
  if (dataset->sessions.empty())
    return InvalidDataError("dataset has no sessions to host");
  const int session_index =
      options.session >= 0
          ? options.session
          : static_cast<int>(dataset->sessions.size()) - 1;
  if (session_index >= static_cast<int>(dataset->sessions.size())) {
    std::ostringstream oss;
    oss << "room " << options.id << ": session index " << session_index
        << " out of range [0, " << dataset->sessions.size() << ")";
    return InvalidDataError(oss.str());
  }
  const XrWorld& world = dataset->sessions[session_index];
  const int n = world.num_users();
  if (n <= 0 || world.num_steps() <= 0)
    return InvalidDataError("room session has no users or steps");
  if (dataset->preference.rows() < n || dataset->preference.cols() < n ||
      dataset->social_presence.rows() < n ||
      dataset->social_presence.cols() < n) {
    std::ostringstream oss;
    oss << "room " << options.id << ": utility matrices do not cover the "
        << n << " session users";
    return InvalidDataError(oss.str());
  }

  std::unique_ptr<Room> room(new Room(options, dataset, &world));
  if (options.mode == Mode::kLive) {
    room->sim_ = std::make_unique<CrowdSimulator>(/*time_step=*/0.5);
    CrowdSimulator::AgentParams params;
    params.radius = world.body_radius();
    params.max_speed = options.max_speed;
    for (int u = 0; u < n; ++u)
      room->sim_->AddAgent(world.PositionsAt(0)[u], params);
    if (options.move_fraction >= 1.0) {
      // Historical behavior: everybody walks (same RNG draw order as
      // before partial motion existed, so replayed seeds stay stable).
      for (int u = 0; u < n; ++u)
        room->sim_->SetGoal(u, room->RandomWaypoint());
    } else {
      room->walking_.assign(n, false);
      const int k = std::clamp(
          static_cast<int>(std::lround(options.move_fraction * n)), 0, n);
      for (int u = 0; u < n; ++u) room->sim_->SetHold(u, true);
      for (int u : room->rng_.SampleWithoutReplacement(n, k)) {
        room->sim_->SetHold(u, false);
        room->sim_->SetGoal(u, room->RandomWaypoint());
        room->walking_[u] = true;
      }
    }
  }
  if (options.temporal_index) {
    TemporalIndex::Options topt;
    topt.co_presence_radius = options.co_presence_radius;
    room->temporal_ = std::make_unique<TemporalIndex>(topt);
  }
  room->Publish(world.PositionsAt(0), /*tick=*/0);
  return room;
}

Vec2 Room::RandomWaypoint() {
  return Vec2{rng_.Uniform(0.0, options_.room_side),
              rng_.Uniform(0.0, options_.room_side)};
}

Status Room::Tick() {
  std::lock_guard<std::mutex> lock(tick_mutex_);
  const int next = tick_.load(std::memory_order_relaxed) + 1;
  if (options_.mode == Mode::kReplay) {
    if (next >= world_->num_steps()) {
      std::ostringstream oss;
      oss << "room " << options_.id << ": replay session exhausted at tick "
          << (next - 1);
      return ResourceExhaustedError(oss.str());
    }
    PublishTick(world_->PositionsAt(next), next);
    return OkStatus();
  }
  StepLive();
  std::vector<Vec2> positions(num_users_);
  for (int u = 0; u < num_users_; ++u) positions[u] = sim_->Position(u);
  PublishTick(std::move(positions), next);
  return OkStatus();
}

void Room::StepLive() {
  if (options_.move_fraction >= 1.0) {
    // Historical behavior: re-aim everyone who arrived, step ORCA.
    for (int u = 0; u < num_users_; ++u)
      if (sim_->ReachedGoal(u, kGoalTolerance))
        sim_->SetGoal(u, RandomWaypoint());
    sim_->Step();
    return;
  }
  // Walker-swap partial motion: an arriving walker parks (held, so its
  // position is bit-exactly frozen) and a random parked agent wakes —
  // possibly the same one, which just re-aims it. The walking count is
  // invariant, so the per-tick moved set stays ~move_fraction * n.
  for (int u = 0; u < num_users_; ++u) {
    if (!walking_[u] || !sim_->AgentActive(u)) continue;
    if (!sim_->ReachedGoal(u, kGoalTolerance)) continue;
    sim_->SetHold(u, true);
    walking_[u] = false;
    std::vector<int> parked;
    parked.reserve(num_users_);
    for (int p = 0; p < num_users_; ++p)
      if (!walking_[p] && sim_->AgentActive(p)) parked.push_back(p);
    if (parked.empty()) continue;
    const int wake = parked[rng_.UniformInt(static_cast<int>(parked.size()))];
    sim_->SetHold(wake, false);
    sim_->SetGoal(wake, RandomWaypoint());
    walking_[wake] = true;
  }
  sim_->Step();
}

void Room::RederiveWalkers() {
  if (options_.mode != Mode::kLive || options_.move_fraction >= 1.0) return;
  // After a wholesale teleport (migration / recovery) the donor's
  // held set is unknown — like the waypoint RNG, it is deliberately
  // not part of the migrated state. Re-derive it: agents with an
  // outstanding waypoint walk, the rest park.
  for (int u = 0; u < num_users_; ++u) {
    const bool walks =
        Distance(sim_->Position(u), sim_->Goal(u)) > kGoalTolerance;
    walking_[u] = walks;
    sim_->SetHold(u, !walks);
  }
}

Status Room::TeleportUser(int user, const Vec2& position) {
  if (options_.mode != Mode::kLive)
    return InvalidArgumentError(
        "room " + std::to_string(options_.id) +
        ": TeleportUser requires live mode (replay rooms follow the "
        "recording)");
  if (user < 0 || user >= num_users_)
    return InvalidArgumentError("room " + std::to_string(options_.id) +
                                ": TeleportUser user out of range");
  std::lock_guard<std::mutex> lock(tick_mutex_);
  sim_->TeleportAgent(user, position);
  dirty_.push_back(user);
  return OkStatus();
}

Status Room::SetUserActive(int user, bool active) {
  if (options_.mode != Mode::kLive)
    return InvalidArgumentError(
        "room " + std::to_string(options_.id) +
        ": SetUserActive requires live mode (replay rooms follow the "
        "recording)");
  if (user < 0 || user >= num_users_)
    return InvalidArgumentError("room " + std::to_string(options_.id) +
                                ": SetUserActive user out of range");
  std::lock_guard<std::mutex> lock(tick_mutex_);
  sim_->SetAgentActive(user, active);
  dirty_.push_back(user);
  return OkStatus();
}

void Room::Publish(std::vector<Vec2> positions, int tick) {
  dirty_.clear();
  std::shared_ptr<const TemporalView> view;
  if (temporal_ != nullptr) {
    // Non-tick publishes (create / migration / recovery) rebuild the
    // index from scratch: inherited recency history may describe a
    // different lineage, and recovered rooms must never trust caches
    // they did not build (the stale-cache drill's contract).
    temporal_->Rebuild(positions, tick);
    view = temporal_->PublishView();
  }
  window_.push_back(positions);
  while (static_cast<int>(window_.size()) > kTrajectoryWindowFrames)
    window_.pop_front();
  auto snapshot = std::make_shared<const RoomSnapshot>(
      tick, std::move(positions), &world_->interfaces(),
      &dataset_->preference, &dataset_->social_presence, options_.beta,
      world_->body_radius(), std::move(view));
  {
    std::lock_guard<std::mutex> lock(snapshot_mutex_);
    snapshot_ = std::move(snapshot);
  }
  tick_.store(tick, std::memory_order_release);
}

void Room::PublishTick(std::vector<Vec2> positions, int tick) {
  // Moved set: bitwise position diff against the previous published
  // frame, plus users churned since the last publish (teleports and
  // active flips count as moved even when the position bits agree).
  std::vector<int> moved;
  std::vector<bool> seen(num_users_, false);
  const std::vector<Vec2>& prev = window_.back();
  for (int u = 0; u < num_users_; ++u) {
    if (positions[u].x != prev[u].x || positions[u].y != prev[u].y) {
      moved.push_back(u);
      seen[u] = true;
    }
  }
  for (int u : dirty_) {
    if (!seen[u]) {
      moved.push_back(u);
      seen[u] = true;
    }
  }
  std::sort(moved.begin(), moved.end());
  dirty_.clear();

  std::shared_ptr<const TemporalView> view;
  if (temporal_ != nullptr) {
    // The incremental update is exact for this moved set regardless of
    // which snapshot kind gets published below.
    temporal_->Update(positions, moved, tick);
    view = temporal_->PublishView();
  }

  const bool use_delta =
      options_.delta_snapshots &&
      static_cast<double>(moved.size()) <=
          options_.delta_rebuild_fraction * num_users_;
  std::shared_ptr<const RoomSnapshot> previous;
  {
    std::lock_guard<std::mutex> lock(snapshot_mutex_);
    previous = snapshot_;
  }

  window_.push_back(positions);
  while (static_cast<int>(window_.size()) > kTrajectoryWindowFrames)
    window_.pop_front();

  std::shared_ptr<const RoomSnapshot> snapshot;
  if (use_delta && previous != nullptr) {
    snapshot = std::make_shared<const RoomSnapshot>(
        tick, std::move(positions), *previous, std::move(moved),
        std::move(view));
    delta_ticks_.fetch_add(1, std::memory_order_relaxed);
  } else {
    snapshot = std::make_shared<const RoomSnapshot>(
        tick, std::move(positions), &world_->interfaces(),
        &dataset_->preference, &dataset_->social_presence, options_.beta,
        world_->body_radius(), std::move(view));
    scratch_ticks_.fetch_add(1, std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lock(snapshot_mutex_);
    snapshot_ = std::move(snapshot);
  }
  tick_.store(tick, std::memory_order_release);
}

std::shared_ptr<const RoomSnapshot> Room::snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return snapshot_;
}

namespace {

/// Packs a list of position frames into one (frames*n) x 2 matrix,
/// oldest frame first — the migration blob's trajectory-window block.
Matrix PackFrames(const std::deque<std::vector<Vec2>>& frames, int n) {
  Matrix out(static_cast<int>(frames.size()) * n, 2);
  int row = 0;
  for (const auto& frame : frames) {
    for (int u = 0; u < n; ++u, ++row) {
      out.At(row, 0) = frame[u].x;
      out.At(row, 1) = frame[u].y;
    }
  }
  return out;
}

}  // namespace

std::string Room::ExportState() const {
  std::lock_guard<std::mutex> lock(tick_mutex_);
  const int n = num_users_;
  // Block 0: meta row [tick, num_users, window_frames, mode].
  Matrix meta(1, 4);
  meta.At(0, 0) = tick_.load(std::memory_order_relaxed);
  meta.At(0, 1) = n;
  meta.At(0, 2) = static_cast<int>(window_.size());
  meta.At(0, 3) = options_.mode == Mode::kLive ? 1 : 0;
  // Block 1: current positions (the last published frame).
  Matrix positions(n, 2);
  const std::vector<Vec2>& current = window_.back();
  for (int u = 0; u < n; ++u) {
    positions.At(u, 0) = current[u].x;
    positions.At(u, 1) = current[u].y;
  }
  // Block 2: live-mode waypoint goals (zeros in replay mode, where the
  // recorded session is the only trajectory source).
  Matrix goals(n, 2);
  if (options_.mode == Mode::kLive) {
    for (int u = 0; u < n; ++u) {
      goals.At(u, 0) = sim_->Goal(u).x;
      goals.At(u, 1) = sim_->Goal(u).y;
    }
  }
  // Block 3: the trajectory window, oldest frame first.
  std::ostringstream out;
  WriteParameterBlock(out, {meta, positions, goals, PackFrames(window_, n)});
  return out.str();
}

Status Room::ApplyState(const std::string& blob) {
  std::istringstream in(blob);
  std::vector<Matrix> blocks;
  AFTER_RETURN_IF_ERROR(
      ReadParameterBlock(in, &blocks)
          .Annotate("room " + std::to_string(options_.id) +
                    ": migration state"));
  // Validate everything before touching any room state (all-or-nothing).
  const auto fail = [this](const std::string& what) {
    return InvalidDataError("room " + std::to_string(options_.id) +
                            ": migration state " + what);
  };
  if (blocks.size() != 4) return fail("does not have 4 blocks");
  const Matrix& meta = blocks[0];
  if (meta.rows() != 1 || meta.cols() != 4) return fail("meta is not 1x4");
  const int tick = static_cast<int>(meta.At(0, 0));
  const int n = static_cast<int>(meta.At(0, 1));
  const int frames = static_cast<int>(meta.At(0, 2));
  const int mode = static_cast<int>(meta.At(0, 3));
  if (tick < 0) return fail("has a negative tick");
  if (n != num_users_) return fail("user count mismatch");
  if (frames < 1 || frames > kTrajectoryWindowFrames)
    return fail("has an out-of-range window length");
  if (mode != (options_.mode == Mode::kLive ? 1 : 0))
    return fail("mode mismatch");
  if (options_.mode == Mode::kReplay && tick >= world_->num_steps())
    return fail("tick beyond the replay session");
  const Matrix& positions = blocks[1];
  const Matrix& goals = blocks[2];
  const Matrix& window = blocks[3];
  if (positions.rows() != n || positions.cols() != 2)
    return fail("positions block is not n x 2");
  if (goals.rows() != n || goals.cols() != 2)
    return fail("goals block is not n x 2");
  if (window.rows() != frames * n || window.cols() != 2)
    return fail("window block does not match its declared length");

  std::lock_guard<std::mutex> lock(tick_mutex_);
  std::vector<Vec2> current(n);
  for (int u = 0; u < n; ++u)
    current[u] = Vec2{positions.At(u, 0), positions.At(u, 1)};
  if (options_.mode == Mode::kLive) {
    for (int u = 0; u < n; ++u) {
      sim_->TeleportAgent(u, current[u]);
      sim_->SetGoal(u, Vec2{goals.At(u, 0), goals.At(u, 1)});
    }
    RederiveWalkers();
  }
  window_.clear();
  for (int f = 0; f < frames; ++f) {
    std::vector<Vec2> frame(n);
    for (int u = 0; u < n; ++u)
      frame[u] = Vec2{window.At(f * n + u, 0), window.At(f * n + u, 1)};
    window_.push_back(std::move(frame));
  }
  // Publish() re-appends the current frame, so drop the last window
  // entry (it is the same frame by construction).
  window_.pop_back();
  Publish(std::move(current), tick);
  return OkStatus();
}

std::vector<std::vector<Vec2>> Room::trajectory_window() const {
  std::lock_guard<std::mutex> lock(tick_mutex_);
  return std::vector<std::vector<Vec2>>(window_.begin(), window_.end());
}

Room::TickFrame Room::CurrentTickFrame() const {
  std::lock_guard<std::mutex> lock(tick_mutex_);
  TickFrame frame;
  frame.tick = tick_.load(std::memory_order_relaxed);
  frame.positions = window_.back();
  if (options_.mode == Mode::kLive) {
    frame.goals.resize(num_users_);
    for (int u = 0; u < num_users_; ++u) frame.goals[u] = sim_->Goal(u);
  }
  return frame;
}

Status Room::ApplyTickFrame(const TickFrame& frame) {
  const auto fail = [this](const std::string& what) {
    return InvalidDataError("room " + std::to_string(options_.id) +
                            ": tick frame " + what);
  };
  if (static_cast<int>(frame.positions.size()) != num_users_)
    return fail("user count mismatch");
  const bool live = options_.mode == Mode::kLive;
  if (live && static_cast<int>(frame.goals.size()) != num_users_)
    return fail("goal count mismatch");
  if (!live && frame.tick >= world_->num_steps())
    return fail("tick beyond the replay session");
  std::lock_guard<std::mutex> lock(tick_mutex_);
  if (frame.tick <= tick_.load(std::memory_order_relaxed))
    return fail("does not advance the tick");
  if (live) {
    for (int u = 0; u < num_users_; ++u) {
      sim_->TeleportAgent(u, frame.positions[u]);
      sim_->SetGoal(u, frame.goals[u]);
    }
    RederiveWalkers();
  }
  Publish(frame.positions, frame.tick);
  return OkStatus();
}

}  // namespace serve
}  // namespace after
