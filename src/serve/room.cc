#include "serve/room.h"

#include <cmath>
#include <sstream>
#include <utility>

#include "graph/occlusion_converter.h"

namespace after {
namespace serve {

RoomSnapshot::RoomSnapshot(int tick, std::vector<Vec2> positions,
                           const std::vector<Interface>* interfaces,
                           const Matrix* preference,
                           const Matrix* social_presence, double beta,
                           double body_radius)
    : tick_(tick),
      positions_(std::move(positions)),
      interfaces_(interfaces),
      preference_(preference),
      social_presence_(social_presence),
      beta_(beta),
      body_radius_(body_radius),
      occlusion_(positions_.size()),
      occlusion_once_(new std::once_flag[positions_.size()]) {}

const OcclusionGraph& RoomSnapshot::OcclusionFor(int target) const {
  std::call_once(occlusion_once_[target], [this, target] {
    occlusion_[target] =
        BuildOcclusionGraph(positions_, target, body_radius_);
  });
  return occlusion_[target];
}

StepContext RoomSnapshot::ContextFor(int target) const {
  StepContext context;
  context.t = tick_;
  context.target = target;
  context.positions = &positions_;
  context.occlusion = &OcclusionFor(target);
  context.interfaces = interfaces_;
  context.preference = preference_;
  context.social_presence = social_presence_;
  context.beta = beta_;
  context.body_radius = body_radius_;
  return context;
}

std::vector<StepContext> RoomSnapshot::ContextsFor(
    const std::vector<int>& targets) const {
  std::vector<StepContext> contexts;
  contexts.reserve(targets.size());
  for (int target : targets) contexts.push_back(ContextFor(target));
  return contexts;
}

Room::Room(const Options& options, const Dataset* dataset,
           const XrWorld* world)
    : options_(options),
      dataset_(dataset),
      world_(world),
      num_users_(world->num_users()),
      rng_(options.seed) {}

Result<std::unique_ptr<Room>> Room::Create(const Options& options,
                                           const Dataset* dataset) {
  if (dataset == nullptr)
    return InvalidDataError("room requires a dataset");
  if (dataset->sessions.empty())
    return InvalidDataError("dataset has no sessions to host");
  const int session_index =
      options.session >= 0
          ? options.session
          : static_cast<int>(dataset->sessions.size()) - 1;
  if (session_index >= static_cast<int>(dataset->sessions.size())) {
    std::ostringstream oss;
    oss << "room " << options.id << ": session index " << session_index
        << " out of range [0, " << dataset->sessions.size() << ")";
    return InvalidDataError(oss.str());
  }
  const XrWorld& world = dataset->sessions[session_index];
  const int n = world.num_users();
  if (n <= 0 || world.num_steps() <= 0)
    return InvalidDataError("room session has no users or steps");
  if (dataset->preference.rows() < n || dataset->preference.cols() < n ||
      dataset->social_presence.rows() < n ||
      dataset->social_presence.cols() < n) {
    std::ostringstream oss;
    oss << "room " << options.id << ": utility matrices do not cover the "
        << n << " session users";
    return InvalidDataError(oss.str());
  }

  std::unique_ptr<Room> room(new Room(options, dataset, &world));
  if (options.mode == Mode::kLive) {
    room->sim_ = std::make_unique<CrowdSimulator>(/*time_step=*/0.5);
    CrowdSimulator::AgentParams params;
    params.radius = world.body_radius();
    params.max_speed = options.max_speed;
    for (int u = 0; u < n; ++u) {
      room->sim_->AddAgent(world.PositionsAt(0)[u], params);
      room->sim_->SetGoal(u, room->RandomWaypoint());
    }
  }
  room->Publish(world.PositionsAt(0), /*tick=*/0);
  return room;
}

Vec2 Room::RandomWaypoint() {
  return Vec2{rng_.Uniform(0.0, options_.room_side),
              rng_.Uniform(0.0, options_.room_side)};
}

Status Room::Tick() {
  std::lock_guard<std::mutex> lock(tick_mutex_);
  const int next = tick_.load(std::memory_order_relaxed) + 1;
  if (options_.mode == Mode::kReplay) {
    if (next >= world_->num_steps()) {
      std::ostringstream oss;
      oss << "room " << options_.id << ": replay session exhausted at tick "
          << (next - 1);
      return ResourceExhaustedError(oss.str());
    }
    Publish(world_->PositionsAt(next), next);
    return OkStatus();
  }
  // Live mode: re-aim agents that arrived, advance ORCA one step, and
  // publish the fresh positions.
  for (int u = 0; u < num_users_; ++u)
    if (sim_->ReachedGoal(u, /*tolerance=*/0.2))
      sim_->SetGoal(u, RandomWaypoint());
  sim_->Step();
  std::vector<Vec2> positions(num_users_);
  for (int u = 0; u < num_users_; ++u) positions[u] = sim_->Position(u);
  Publish(std::move(positions), next);
  return OkStatus();
}

void Room::Publish(std::vector<Vec2> positions, int tick) {
  auto snapshot = std::make_shared<const RoomSnapshot>(
      tick, std::move(positions), &world_->interfaces(),
      &dataset_->preference, &dataset_->social_presence, options_.beta,
      world_->body_radius());
  {
    std::lock_guard<std::mutex> lock(snapshot_mutex_);
    snapshot_ = std::move(snapshot);
  }
  tick_.store(tick, std::memory_order_release);
}

std::shared_ptr<const RoomSnapshot> Room::snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return snapshot_;
}

}  // namespace serve
}  // namespace after
