#ifndef AFTER_SERVE_ROOM_H_
#define AFTER_SERVE_ROOM_H_

#include <atomic>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/geometry.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/recommender.h"
#include "data/dataset.h"
#include "graph/occlusion_converter.h"
#include "graph/occlusion_graph.h"
#include "graph/temporal_index.h"
#include "sim/crowd_simulator.h"
#include "sim/xr_world.h"

namespace after {
namespace serve {

/// Immutable view of one room at one tick, shared (via shared_ptr) by
/// every request answered during that tick. This replaces the offline
/// evaluator's per-request StepContext reconstruction: positions,
/// interfaces and utility matrices are fixed once when the tick is
/// published; each target's static occlusion graph (Definition 4) is
/// built lazily on first demand (std::call_once) and then reused by all
/// concurrent requests for that target.
///
/// Snapshots are persistent structures updated by deltas
/// (docs/ticking.md): the delta constructor carries the predecessor's
/// built occlusion state forward, re-testing only arc pairs that touch
/// a moved agent, and the result is bit-identical to a from-scratch
/// build — including edge order — so order-sensitive consumers (MIA
/// tie-breaks, POSHGNN aggregation) cannot tell the difference.
class RoomSnapshot {
 public:
  RoomSnapshot(int tick, std::vector<Vec2> positions,
               const std::vector<Interface>* interfaces,
               const Matrix* preference, const Matrix* social_presence,
               double beta, double body_radius,
               std::shared_ptr<const TemporalView> temporal = nullptr);

  /// Delta constructor: `moved` (sorted ascending) lists every user
  /// whose position/goal/active state changed since `previous` was
  /// published. Targets the predecessor had built and that did not
  /// themselves move get their occlusion graph delta-updated eagerly
  /// (cost O(E + |moved| * n) each); moved or never-built targets stay
  /// lazy. The predecessor is only read during construction — no
  /// reference is retained, so snapshots never chain.
  RoomSnapshot(int tick, std::vector<Vec2> positions,
               const RoomSnapshot& previous, std::vector<int> moved,
               std::shared_ptr<const TemporalView> temporal);

  int tick() const { return tick_; }
  int num_users() const { return static_cast<int>(positions_.size()); }
  const std::vector<Vec2>& positions() const { return positions_; }
  double beta() const { return beta_; }
  double body_radius() const { return body_radius_; }

  /// The target's static occlusion graph at this tick. Thread-safe:
  /// concurrent first calls for the same target build it exactly once.
  const OcclusionGraph& OcclusionFor(int target) const;

  /// A StepContext viewing this snapshot (valid while the snapshot
  /// lives). Field-for-field identical to what core/evaluator builds for
  /// the same scene, which is what makes a 1-thread server reproduce the
  /// offline replay bit-exactly (tests/serve/determinism_test.cc).
  StepContext ContextFor(int target) const;

  /// Batch counterpart used by the in-tick batcher (serve/batcher.h):
  /// one context per target, all viewing this same snapshot, occlusion
  /// graphs built (once) for every requested target up front.
  std::vector<StepContext> ContextsFor(const std::vector<int>& targets) const;

  /// Temporal recency view attached at publish (null when the room's
  /// temporal index is off).
  const std::shared_ptr<const TemporalView>& temporal_view() const {
    return temporal_;
  }

  /// Fills `mask` as a StepContext::blocklist keeping only the target's
  /// top-`max_candidates` candidates by temporal recency. Returns false
  /// (mask untouched) when there is no temporal view or nothing would
  /// be pruned (max_candidates <= 0 or >= n-1). Ranking among surviving
  /// candidates is exactly the unpruned ranking restricted to them.
  bool PruneCandidates(int target, int max_candidates,
                       std::vector<bool>* mask) const;

  /// Introspection for tests, metrics, and the stale-cache drill.
  bool built_by_delta() const { return built_by_delta_; }
  /// Size of the moved set this snapshot was delta-built from; -1 for
  /// from-scratch snapshots.
  int num_moved() const { return num_moved_; }
  /// Number of targets whose occlusion state was carried forward from
  /// the predecessor by the delta constructor.
  int delta_carried() const { return delta_carried_; }
  /// Whether `target`'s occlusion graph is materialized right now.
  bool occlusion_built(int target) const {
    return occlusion_built_[target].load(std::memory_order_acquire);
  }

 private:
  int tick_;
  std::vector<Vec2> positions_;
  const std::vector<Interface>* interfaces_;
  const Matrix* preference_;
  const Matrix* social_presence_;
  double beta_;
  double body_radius_;
  mutable std::vector<OcclusionGraph> occlusion_;
  /// Per-target view arcs cached alongside the graph so successor
  /// snapshots can delta-update instead of recomputing O(n) trig.
  mutable std::vector<std::vector<ViewArc>> arcs_;
  std::unique_ptr<std::once_flag[]> occlusion_once_;
  /// True once occlusion_[t]/arcs_[t] are fully built (release store;
  /// readers acquire). Lets the delta constructor read the
  /// predecessor's hot set without touching its once_flags.
  std::unique_ptr<std::atomic<bool>[]> occlusion_built_;
  std::shared_ptr<const TemporalView> temporal_;
  bool built_by_delta_ = false;
  int num_moved_ = -1;
  int delta_carried_ = 0;
};

/// Published frames retained for migration handoff: the room keeps the
/// last kTrajectoryWindowFrames position frames (including the current
/// one) so a migrated room resumes with the same short-term trajectory
/// history the temporal models were fed on the old owner.
inline constexpr int kTrajectoryWindowFrames = 8;

/// One sharded conference room: the live scene state plus the currently
/// published snapshot. Two modes:
///  - kReplay walks a recorded session tick-by-tick (deterministic;
///    used to cross-check the server against the offline evaluator);
///  - kLive owns a CrowdSimulator seeded from the session's first frame
///    and advances it forever (the load-bench workload).
/// Tick() mutates simulator state under the room mutex and publishes a
/// fresh immutable snapshot; request threads only ever touch snapshots,
/// so recommendation never blocks simulation and vice versa.
class Room {
 public:
  enum class Mode { kReplay, kLive };

  struct Options {
    int id = 0;
    Mode mode = Mode::kReplay;
    /// Session index into Dataset::sessions; -1 = last.
    int session = -1;
    /// Preference / social-presence trade-off passed to recommenders.
    double beta = 0.5;
    /// Live mode: waypoint RNG seed, walking speed, and the square side
    /// length agents wander within.
    uint64_t seed = 99;
    double max_speed = 1.2;
    double room_side = 10.0;
    /// Delta ticks (docs/ticking.md): Tick() diffs the new frame
    /// against the previous one and publishes a snapshot that carries
    /// the predecessor's occlusion state forward for unchanged targets.
    /// Off = every tick publishes a from-scratch snapshot.
    bool delta_snapshots = true;
    /// Full-rebuild fallback: when more than this fraction of users
    /// moved in one tick, a delta would re-test nearly everything, so
    /// Tick() publishes a from-scratch snapshot instead.
    double delta_rebuild_fraction = 0.35;
    /// Live mode: fraction of agents walking at any moment. 1.0 keeps
    /// the historical everybody-walks behavior; below 1.0 the room uses
    /// a walker-swap model — exactly round(move_fraction * n) agents
    /// walk, the rest are held bit-exactly stationary (SetHold), and an
    /// arriving walker parks and wakes a random parked agent.
    double move_fraction = 1.0;
    /// Maintain the temporal recency index (graph/temporal_index.h) and
    /// attach a view to every published snapshot so the server can cap
    /// POSHGNN's candidate set (ServerOptions::max_candidates).
    bool temporal_index = false;
    /// Co-presence distance for the temporal index.
    double co_presence_radius = 2.0;
  };

  /// Validates the dataset/session (mirroring the evaluator's checks)
  /// and publishes the tick-0 snapshot. `dataset` is borrowed and must
  /// outlive the room.
  static Result<std::unique_ptr<Room>> Create(const Options& options,
                                              const Dataset* dataset);

  int id() const { return options_.id; }
  int num_users() const { return num_users_; }
  Mode mode() const { return options_.mode; }

  /// Tick of the currently published snapshot.
  int tick() const { return tick_.load(std::memory_order_acquire); }

  /// Advances the room one step and publishes a fresh snapshot. Replay
  /// rooms return kResourceExhausted once the recorded session is
  /// exhausted (the last snapshot stays published); live rooms never
  /// exhaust. Thread-safe (serialized on the room mutex).
  Status Tick();

  /// The current snapshot; never null after Create().
  std::shared_ptr<const RoomSnapshot> snapshot() const;

  /// Churn hooks (live mode; kFailedPrecondition in replay, whose only
  /// trajectory source is the recording). Both mark the user dirty so
  /// the next Tick()'s moved set includes them even when the position
  /// is bitwise unchanged; the published snapshot changes at that tick.
  Status TeleportUser(int user, const Vec2& position);
  Status SetUserActive(int user, bool active);

  /// Snapshot-kind counters: ticks published via the delta constructor
  /// vs from-scratch (includes fallback rebuilds, excludes the
  /// non-Tick publishes from Create/ApplyState/ApplyTickFrame).
  uint64_t delta_ticks() const {
    return delta_ticks_.load(std::memory_order_relaxed);
  }
  uint64_t scratch_ticks() const {
    return scratch_ticks_.load(std::memory_order_relaxed);
  }

  /// Serializes the room's migratable state — tick, current positions,
  /// live-mode goals, and the trajectory window — as an nn/serialize
  /// parameter-block text blob (precision 17, so doubles round-trip
  /// bit-exactly). The receiving shard passes the blob to ApplyState().
  /// Waypoint RNG internals are deliberately not migrated: the new owner
  /// continues with its own stream, which only perturbs *future* random
  /// waypoints, never already-committed positions/goals.
  std::string ExportState() const;

  /// Applies a blob produced by ExportState() on a room created from the
  /// same dataset/session (same user count and mode). All-or-nothing:
  /// the blob is fully validated before any mutation, and a non-OK
  /// return leaves the room exactly as it was. On success the migrated
  /// tick is published and serving resumes from the donor's state.
  Status ApplyState(const std::string& blob);

  /// Copy of the retained frames, oldest first; the last entry is always
  /// the currently published positions. Test hook for bit-exactness.
  std::vector<std::vector<Vec2>> trajectory_window() const;

  /// One published tick as the durability journal records it: the tick
  /// number, the published positions, and the live-mode waypoint goals
  /// (empty in replay mode, where the recorded session is the only
  /// trajectory source). Captured under the tick mutex, so the three
  /// fields are from the same publish.
  struct TickFrame {
    int tick = 0;
    std::vector<Vec2> positions;
    std::vector<Vec2> goals;
  };
  TickFrame CurrentTickFrame() const;

  /// Replays one journaled tick: teleports live-mode agents to the
  /// recorded positions, restores their goals, and publishes the frame —
  /// the exact state evolution Tick() + Publish() produced originally,
  /// without re-running the simulator (whose waypoint RNG stream is
  /// deliberately not persisted). The frame must advance the tick and
  /// match the room's user count; kInvalidData otherwise, with the room
  /// untouched (all-or-nothing, like ApplyState).
  Status ApplyTickFrame(const TickFrame& frame);

 private:
  Room(const Options& options, const Dataset* dataset, const XrWorld* world);

  /// From-scratch publish (Create / ApplyState / ApplyTickFrame): drops
  /// dirty state, rebuilds the temporal index (recovered and migrated
  /// rooms must never trust inherited caches), publishes a scratch
  /// snapshot.
  void Publish(std::vector<Vec2> positions, int tick);
  /// Tick-path publish: computes the moved set against the previous
  /// frame (bitwise position diff + churn-dirtied users), incrementally
  /// updates the temporal index, and publishes a delta snapshot unless
  /// the moved fraction crosses delta_rebuild_fraction (or deltas are
  /// off). Caller holds tick_mutex_.
  void PublishTick(std::vector<Vec2> positions, int tick);
  /// Live partial motion: held/walking bookkeeping around sim_->Step().
  void StepLive();
  /// Re-derives the walker set from goal distances after a state
  /// teleport (migration / recovery) when move_fraction < 1.
  void RederiveWalkers();
  Vec2 RandomWaypoint();

  Options options_;
  const Dataset* dataset_;
  const XrWorld* world_;
  int num_users_ = 0;

  /// Live-mode state, all guarded by tick_mutex_.
  std::unique_ptr<CrowdSimulator> sim_;
  Rng rng_;
  /// Walker-swap bookkeeping (move_fraction < 1): walking_[u] iff u is
  /// currently un-held and navigating to a waypoint.
  std::vector<bool> walking_;
  /// Users churned (teleported / [de]activated) since the last publish;
  /// folded into the next moved set. Guarded by tick_mutex_.
  std::vector<int> dirty_;
  /// Temporal recency index (present iff options_.temporal_index);
  /// mutated under tick_mutex_, published views are immutable.
  std::unique_ptr<TemporalIndex> temporal_;

  mutable std::mutex tick_mutex_;
  /// Last <= kTrajectoryWindowFrames published frames, oldest first;
  /// appended by Publish(), guarded by tick_mutex_.
  std::deque<std::vector<Vec2>> window_;
  mutable std::mutex snapshot_mutex_;
  std::shared_ptr<const RoomSnapshot> snapshot_;
  std::atomic<int> tick_{0};
  std::atomic<uint64_t> delta_ticks_{0};
  std::atomic<uint64_t> scratch_ticks_{0};
};

}  // namespace serve
}  // namespace after

#endif  // AFTER_SERVE_ROOM_H_
