#include "serve/router.h"

#include <algorithm>
#include <limits>
#include <sstream>
#include <tuple>
#include <utility>

#include "common/check.h"
#include "nn/serialize.h"

namespace after {
namespace serve {

std::string BackendAddress::ToString() const {
  std::ostringstream oss;
  oss << host << ":" << port;
  return oss.str();
}

namespace {

/// 64-bit avalanche finalizer (MurmurHash3 fmix64) applied on top of
/// Fnv1a64. FNV alone has weak high-bit avalanche on short sequential
/// keys ("room-0", "room-1", ...): hashes differing only in the last
/// byte land within ~255 * prime of each other, so ring points and room
/// keys cluster into narrow bands and backends end up owning wildly
/// uneven arcs (measured: 48% vs 3% of the ring for equal vnode
/// counts). The mixer restores a uniform spread.
uint64_t MixHash(uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

uint64_t RoomHash(int room) {
  std::ostringstream oss;
  oss << "room-" << room;
  return MixHash(Fnv1a64(oss.str()));
}

bool Contains(const std::vector<int>& values, int needle) {
  return std::find(values.begin(), values.end(), needle) != values.end();
}

}  // namespace

ShardRouter::ShardRouter(std::vector<BackendAddress> backends,
                         const RouterOptions& options)
    : options_(options) {
  AFTER_CHECK(!backends.empty());
  AFTER_CHECK_GE(options_.virtual_nodes, 1);
  AFTER_CHECK_GE(options_.max_attempts, 1);
  backends_.reserve(backends.size());
  for (auto& address : backends) {
    auto backend = std::make_unique<Backend>();
    backend->address = std::move(address);
    backends_.push_back(std::move(backend));
  }
  RebuildRingLocked();  // construction is single-threaded; no lock yet
  if (options_.health_check_interval_ms > 0.0) {
    prober_ = std::thread([this] {
      const auto interval = std::chrono::duration<double, std::milli>(
          options_.health_check_interval_ms);
      while (!stop_.load(std::memory_order_acquire)) {
        ProbeAll();
        // Dead backends just got ejected; move their rooms while the
        // standbys are still covering.
        RepairPartition();
        // Sleep in small slices so Shutdown() is prompt.
        auto remaining = interval;
        while (remaining.count() > 0.0 &&
               !stop_.load(std::memory_order_acquire)) {
          const auto slice = std::min(
              remaining, std::chrono::duration<double, std::milli>(20.0));
          std::this_thread::sleep_for(slice);
          remaining -= slice;
        }
      }
    });
  }
}

void ShardRouter::RebuildRingLocked() {
  // virtual_nodes points per backend, keyed by the backend's address so
  // the mapping is a pure function of the fleet layout (two routers over
  // the same fleet route identically).
  ring_.clear();
  ring_.reserve(backends_.size() * options_.virtual_nodes);
  for (int b = 0; b < static_cast<int>(backends_.size()); ++b) {
    const std::string base = backends_[b]->address.ToString();
    for (int v = 0; v < options_.virtual_nodes; ++v) {
      std::ostringstream oss;
      oss << base << "#" << v;
      ring_.emplace_back(MixHash(Fnv1a64(oss.str())), b);
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

ShardRouter::~ShardRouter() { Shutdown(); }

void ShardRouter::Shutdown() {
  if (stop_.exchange(true)) return;
  if (prober_.joinable()) prober_.join();
  std::shared_lock<std::shared_mutex> topology(topology_mutex_);
  for (auto& backend : backends_) {
    std::lock_guard<std::mutex> lock(backend->mutex);
    backend->links.clear();
    backend->next_link = 0;
  }
}

int ShardRouter::ShardFor(int room) const {
  std::shared_lock<std::shared_mutex> lock(topology_mutex_);
  const uint64_t h = RoomHash(room);
  auto it = std::upper_bound(
      ring_.begin(), ring_.end(),
      std::make_pair(h, std::numeric_limits<int>::max()));
  if (it == ring_.end()) it = ring_.begin();  // wrap around
  return it->second;
}

std::vector<int> ShardRouter::RingOrder(int room) const {
  std::shared_lock<std::shared_mutex> lock(topology_mutex_);
  return RingOrderLocked(room);
}

std::vector<int> ShardRouter::RingOrderLocked(int room) const {
  const uint64_t h = RoomHash(room);
  auto start = std::upper_bound(
      ring_.begin(), ring_.end(),
      std::make_pair(h, std::numeric_limits<int>::max()));
  std::vector<int> order;
  order.reserve(backends_.size());
  for (size_t step = 0; step < ring_.size() &&
                        order.size() < backends_.size();
       ++step) {
    auto it = start + static_cast<long>(step);
    if (it >= ring_.end()) it -= static_cast<long>(ring_.size());
    const int b = it->second;
    if (std::find(order.begin(), order.end(), b) == order.end())
      order.push_back(b);
  }
  return order;
}

int ShardRouter::num_backends() const {
  std::shared_lock<std::shared_mutex> lock(topology_mutex_);
  return static_cast<int>(backends_.size());
}

BackendAddress ShardRouter::backend(int index) const {
  std::shared_lock<std::shared_mutex> lock(topology_mutex_);
  return backends_[index]->address;
}

bool ShardRouter::Ejected(Backend& backend) const {
  std::lock_guard<std::mutex> lock(backend.mutex);
  return Clock::now() < backend.ejected_until;
}

void ShardRouter::Eject(Backend& backend) {
  metrics_.ejections.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(backend.mutex);
  backend.ejected_until =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double, std::milli>(
                             options_.ejection_ms));
  backend.links.clear();  // links to a dead peer are useless
  backend.next_link = 0;
}

bool ShardRouter::backend_healthy(int index) const {
  Backend* backend = nullptr;
  {
    std::shared_lock<std::shared_mutex> lock(topology_mutex_);
    backend = backends_[index].get();
  }
  return !Ejected(*backend);
}

std::shared_ptr<MuxLink> ShardRouter::AcquireLink(Backend& backend,
                                                  bool* reused) {
  *reused = false;
  {
    std::lock_guard<std::mutex> lock(backend.mutex);
    auto& links = backend.links;
    links.erase(
        std::remove_if(links.begin(), links.end(),
                       [](const std::shared_ptr<MuxLink>& link) {
                         return link->broken();
                       }),
        links.end());
    if (!links.empty()) {
      if (backend.next_link >= links.size()) backend.next_link = 0;
      std::shared_ptr<MuxLink> link = links[backend.next_link++];
      // Multiplex onto the chosen link unless it already has calls in
      // flight and the per-backend cap leaves room for one more — the
      // only case worth paying a fresh dial for.
      if (link->inflight() == 0 ||
          static_cast<int>(links.size()) >= options_.mux_links) {
        *reused = true;
        return link;
      }
    }
  }
  auto connected = MuxLink::Connect(backend.address.host,
                                    backend.address.port, options_.client);
  if (!connected.ok()) return nullptr;
  metrics_.connects.fetch_add(1, std::memory_order_relaxed);
  std::shared_ptr<MuxLink> link = std::move(connected).value();
  std::lock_guard<std::mutex> lock(backend.mutex);
  // Re-check the cap under the lock (a racing dial may have filled it);
  // an over-cap link still serves this one call, then dies with its
  // last reference.
  if (static_cast<int>(backend.links.size()) < options_.mux_links)
    backend.links.push_back(link);
  return link;
}

FriendResponse ShardRouter::Route(const FriendRequest& request) {
  metrics_.routed.fetch_add(1, std::memory_order_relaxed);
  // Partitioned rooms whose every owner answered kNotOwner are mid-
  // migration: the table is about to settle, so re-read it briefly
  // instead of failing the request.
  constexpr int kOwnerRounds = 40;
  constexpr auto kOwnerRetrySleep = std::chrono::milliseconds(5);

  Status last_error;
  int tried = 0;
  for (int round = 0; round < kOwnerRounds; ++round) {
    // Candidate set: the room's owner list (partitioned) or the full
    // ring order (replicated).
    bool partitioned_room = false;
    std::vector<int> order;
    {
      std::lock_guard<std::mutex> lock(partition_mutex_);
      if (partitioned_ && request.room >= 0 &&
          request.room < partition_rooms_) {
        partitioned_room = true;
        auto it = assignment_.find(request.room);
        if (it != assignment_.end()) order = it->second.copies;
      }
    }
    if (!partitioned_room) order = RingOrder(request.room);
    std::vector<Backend*> candidates;
    {
      std::shared_lock<std::shared_mutex> lock(topology_mutex_);
      candidates.reserve(order.size());
      for (int b : order)
        if (b >= 0 && b < static_cast<int>(backends_.size()))
          candidates.push_back(backends_[b].get());
    }
    // Partitioned mode must be allowed to reach every owner — capping
    // below the copy count would turn a standby into dead weight.
    const int attempts =
        partitioned_room
            ? static_cast<int>(candidates.size())
            : std::min(options_.max_attempts,
                       static_cast<int>(candidates.size()));

    bool saw_not_owner = false;
    // Two passes: first skip ejected backends, then — if every candidate
    // was ejected — try them anyway rather than blackout the room.
    int tried_this_round = 0;
    for (const bool include_ejected : {false, true}) {
      for (Backend* candidate : candidates) {
        if (tried_this_round >= attempts) break;
        Backend& backend = *candidate;
        if (!include_ejected && Ejected(backend)) continue;
        if (include_ejected && !Ejected(backend)) continue;  // pass 1 did it
        if (tried > 0)
          metrics_.retried.fetch_add(1, std::memory_order_relaxed);
        ++tried;
        ++tried_this_round;
        bool reused = false;
        std::shared_ptr<MuxLink> link = AcquireLink(backend, &reused);
        if (link == nullptr) {
          last_error = UnavailableError(
              "connect to " + backend.address.ToString() + " failed");
          Eject(backend);
          continue;
        }
        auto result = link->Call(request);
        if (result.ok()) {
          const StatusCode code = result.value().status.code();
          // kNotFound on a partitioned room is the drain-side twin of
          // kNotOwner: the request passed the ownership check but the
          // room was released before its batch ran. Every partitioned
          // room has an owner, so both mean "ask the current owner".
          if (code == StatusCode::kNotOwner ||
              (partitioned_room && code == StatusCode::kNotFound)) {
            // The shard is healthy but no longer responsible (a racing
            // migration): move on to the next owner, no ejection.
            metrics_.not_owner.fetch_add(1, std::memory_order_relaxed);
            saw_not_owner = true;
            last_error =
                result.value().status.Annotate(backend.address.ToString());
            continue;
          }
          if (reused)
            metrics_.link_reuse.fetch_add(1, std::memory_order_relaxed);
          return std::move(result).value();
        }
        // Transport failure: the backend may be dead. Anything else (a
        // protocol error) is not retryable — report it as-is.
        last_error = result.status().Annotate(backend.address.ToString());
        if (result.status().code() != StatusCode::kUnavailable) {
          FriendResponse response;
          response.status = last_error;
          return response;
        }
        Eject(backend);
      }
      if (tried_this_round >= attempts) break;
    }
    if (!partitioned_room || !saw_not_owner) break;
    std::this_thread::sleep_for(kOwnerRetrySleep);
  }

  metrics_.exhausted.fetch_add(1, std::memory_order_relaxed);
  FriendResponse response;
  std::ostringstream oss;
  oss << "all " << tried << " attempted shard(s) unavailable for room "
      << request.room;
  response.status =
      UnavailableError(oss.str() + (last_error.ok()
                                        ? ""
                                        : " (last: " + last_error.ToString() +
                                              ")"));
  return response;
}

void ShardRouter::ProbeAll() {
  std::vector<Backend*> snapshot;
  {
    std::shared_lock<std::shared_mutex> lock(topology_mutex_);
    snapshot.reserve(backends_.size());
    for (auto& backend_ptr : backends_) snapshot.push_back(backend_ptr.get());
  }
  for (Backend* backend_ptr : snapshot) {
    Backend& backend = *backend_ptr;
    bool reused = false;
    std::shared_ptr<MuxLink> link = AcquireLink(backend, &reused);
    if (link == nullptr) {
      Eject(backend);
      continue;
    }
    if (link->Ping().ok()) {
      // Lift any ejection early: the backend answered a full round trip.
      std::lock_guard<std::mutex> lock(backend.mutex);
      backend.ejected_until = Clock::time_point::min();
    } else {
      Eject(backend);  // also drops the broken link
    }
  }
}

bool ShardRouter::partitioned() const {
  std::lock_guard<std::mutex> lock(partition_mutex_);
  return partitioned_;
}

std::unordered_map<int, ShardRouter::RoomAssignment>
ShardRouter::AssignmentSnapshot() const {
  std::lock_guard<std::mutex> lock(partition_mutex_);
  return assignment_;
}

std::vector<int> ShardRouter::ActiveBackends() const {
  std::vector<Backend*> snapshot;
  {
    std::shared_lock<std::shared_mutex> lock(topology_mutex_);
    snapshot.reserve(backends_.size());
    for (auto& backend : backends_) snapshot.push_back(backend.get());
  }
  std::vector<int> active;
  for (int b = 0; b < static_cast<int>(snapshot.size()); ++b)
    if (!Ejected(*snapshot[b])) active.push_back(b);
  if (active.empty()) {
    // Everyone looks dead: assigning to possibly-dead backends beats
    // assigning to nobody (the two-pass Route tries ejected ones too).
    for (int b = 0; b < static_cast<int>(snapshot.size()); ++b)
      active.push_back(b);
  }
  return active;
}

std::unordered_map<int, std::vector<int>> ShardRouter::ComputeAssignment(
    const std::vector<int>& active, int num_rooms) const {
  AFTER_CHECK(!active.empty());
  const int n = static_cast<int>(active.size());
  const int copies_per_room =
      1 + std::max(0, std::min(options_.replication_factor, n - 1));
  // Load caps turn pure hash affinity into a balanced placement: walking
  // rooms in ascending id, each room takes the first ring-order backend
  // still under its cap, so the primary spread stays within one room of
  // even while most rooms keep their hash-preferred shard.
  const int primary_cap = (num_rooms + n - 1) / n;
  const int total_cap = (num_rooms * copies_per_room + n - 1) / n;
  std::unordered_map<int, int> primary_count;
  std::unordered_map<int, int> total_count;
  std::unordered_map<int, std::vector<int>> out;
  for (int room = 0; room < num_rooms; ++room) {
    std::vector<int> order;
    for (int b : RingOrderLocked(room))
      if (Contains(active, b)) order.push_back(b);
    AFTER_CHECK(!order.empty());
    std::vector<int> copies;
    int primary = -1;
    for (int b : order)
      if (primary_count[b] < primary_cap) {
        primary = b;
        break;
      }
    if (primary < 0) primary = order.front();
    copies.push_back(primary);
    ++primary_count[primary];
    ++total_count[primary];
    // Standbys: ring order under the total cap, relaxed on a second
    // pass so replication never silently drops below the request.
    for (int pass = 0;
         pass < 2 && static_cast<int>(copies.size()) < copies_per_room;
         ++pass) {
      for (int b : order) {
        if (static_cast<int>(copies.size()) >= copies_per_room) break;
        if (Contains(copies, b)) continue;
        if (pass == 0 && total_count[b] >= total_cap) continue;
        copies.push_back(b);
        ++total_count[b];
      }
    }
    out[room] = std::move(copies);
  }
  return out;
}

Status ShardRouter::SendAssign(int backend, int room, uint64_t epoch,
                               const std::string& state, bool primary) {
  Backend* target = nullptr;
  {
    std::shared_lock<std::shared_mutex> lock(topology_mutex_);
    target = backends_[backend].get();
  }
  bool reused = false;
  std::shared_ptr<MuxLink> link = AcquireLink(*target, &reused);
  if (link == nullptr)
    return UnavailableError("connect to " + target->address.ToString() +
                            " failed");
  const Status status = link->AssignRoom(room, epoch, state, primary);
  return status.Annotate("assign room " + std::to_string(room) + " to " +
                         target->address.ToString());
}

Result<std::vector<wire::RecoveredRoom>> ShardRouter::SendRecover(
    int backend) {
  Backend* target = nullptr;
  {
    std::shared_lock<std::shared_mutex> lock(topology_mutex_);
    target = backends_[backend].get();
  }
  bool reused = false;
  std::shared_ptr<MuxLink> link = AcquireLink(*target, &reused);
  if (link == nullptr)
    return UnavailableError("connect to " + target->address.ToString() +
                            " failed");
  Result<std::vector<wire::RecoveredRoom>> report = link->RecoverRooms();
  if (!report.ok())
    return report.status().Annotate("recover query to " +
                                    target->address.ToString());
  return report;
}

Result<std::string> ShardRouter::SendRelease(int backend, int room,
                                             uint64_t epoch) {
  Backend* target = nullptr;
  {
    std::shared_lock<std::shared_mutex> lock(topology_mutex_);
    target = backends_[backend].get();
  }
  bool reused = false;
  std::shared_ptr<MuxLink> link = AcquireLink(*target, &reused);
  if (link == nullptr)
    return UnavailableError("connect to " + target->address.ToString() +
                            " failed");
  Result<std::string> state = link->ReleaseRoom(room, epoch);
  if (!state.ok())
    return state.status().Annotate("release room " + std::to_string(room) +
                                   " from " + target->address.ToString());
  return state;
}

int ShardRouter::ApplyAssignment(
    const std::unordered_map<int, std::vector<int>>& target,
    Status* first_error) {
  // Ascending room order: deterministic control traffic, and epochs that
  // read naturally in logs.
  std::vector<int> rooms;
  rooms.reserve(target.size());
  for (const auto& [room, copies] : target) rooms.push_back(room);
  std::sort(rooms.begin(), rooms.end());

  int changed = 0;
  for (int room : rooms) {
    const std::vector<int>& want = target.at(room);
    AFTER_CHECK(!want.empty());
    std::vector<int> have;
    uint64_t epoch = 0;
    {
      std::lock_guard<std::mutex> lock(partition_mutex_);
      auto it = assignment_.find(room);
      if (it != assignment_.end()) have = it->second.copies;
      if (have == want) continue;
      epoch = ++next_epoch_;
    }
    // Release the losers first. The old primary's ack carries the
    // room's final state; standby releases are acknowledged but their
    // state is redundant. A primary merely *demoted* to standby is
    // released too — its exact state must follow the primary role — and
    // re-granted fresh below. A dead backend cannot ack — that is
    // exactly the repair case, and its standby keeps serving meanwhile.
    std::string state;
    const bool primary_moved = !have.empty() && have[0] != want[0];
    const bool demote_old_primary =
        primary_moved && Contains(want, have[0]);
    for (int b : have) {
      const bool is_old_primary = b == have[0];
      if (Contains(want, b) && !(demote_old_primary && is_old_primary))
        continue;
      Result<std::string> released = SendRelease(b, room, epoch);
      if (released.ok() && is_old_primary)
        state = std::move(released).value();
    }
    // Grant the gainers. The moved primary inherits the released state
    // (the migration handoff) — even if it already hosts a standby
    // replica, which the grant overwrites with the exact state. A
    // standby promoted with no state to inherit (the old primary died)
    // is still re-granted, empty, at the fresh epoch: the shard keeps
    // its live replica untouched but its durable ledger learns the
    // primary role. New standbys (including the demoted old primary,
    // which needs a newer epoch than its own release) start from a
    // fresh-seeded room, the same contract as full replication.
    uint64_t final_epoch = epoch;
    for (int b : want) {
      const bool inherits = primary_moved && b == want[0] && !state.empty();
      const bool promote = primary_moved && b == want[0];
      const bool regrant = demote_old_primary && b == have[0];
      if (Contains(have, b) && !inherits && !promote && !regrant) continue;
      uint64_t grant_epoch = epoch;
      if (regrant) {
        std::lock_guard<std::mutex> lock(partition_mutex_);
        grant_epoch = final_epoch = ++next_epoch_;
      }
      const Status granted =
          SendAssign(b, room, grant_epoch, inherits ? state : std::string(),
                     /*primary=*/b == want[0]);
      if (granted.ok() && inherits)
        metrics_.migrations.fetch_add(1, std::memory_order_relaxed);
      if (!granted.ok() && first_error != nullptr && first_error->ok())
        *first_error = granted;
    }
    {
      std::lock_guard<std::mutex> lock(partition_mutex_);
      RoomAssignment& entry = assignment_[room];
      entry.copies = want;
      entry.epoch = final_epoch;
    }
    ++changed;
  }
  return changed;
}

Status ShardRouter::EnablePartition(int num_rooms) {
  AFTER_CHECK_GT(num_rooms, 0);
  const std::vector<int> active = ActiveBackends();
  std::unordered_map<int, std::vector<int>> target;
  {
    std::shared_lock<std::shared_mutex> lock(topology_mutex_);
    target = ComputeAssignment(active, num_rooms);
  }
  {
    std::lock_guard<std::mutex> lock(partition_mutex_);
    AFTER_CHECK(!partitioned_);  // EnablePartition is once-only
    partitioned_ = true;
    partition_rooms_ = num_rooms;
  }
  Status first_error;
  ApplyAssignment(target, &first_error);
  return first_error;
}

Status ShardRouter::RecoverPartition(int num_rooms) {
  AFTER_CHECK_GT(num_rooms, 0);
  {
    std::lock_guard<std::mutex> lock(partition_mutex_);
    AFTER_CHECK(!partitioned_);  // recovery precedes partitioned serving
  }
  // Phase 1: every backend replays its durable state and reports what it
  // hosts. An unreachable backend simply recovers nothing — its rooms
  // are won by another replica or rebuilt fresh.
  struct Replica {
    int backend = 0;
    wire::RecoveredRoom info;
  };
  std::vector<Replica> replicas;
  uint64_t max_epoch = 0;
  const int backends = num_backends();
  for (int b = 0; b < backends; ++b) {
    Result<std::vector<wire::RecoveredRoom>> report = SendRecover(b);
    if (!report.ok()) continue;
    for (const wire::RecoveredRoom& info : report.value()) {
      if (info.room < 0 || info.room >= num_rooms) continue;
      replicas.push_back(Replica{b, info});
      max_epoch = std::max(max_epoch, info.epoch);
    }
  }
  // Phase 2: reconcile. Per room the newest replica wins — primary role
  // outranks standby, then higher epoch, then higher tick (a deeper
  // journal replay), then the lowest backend index for determinism.
  std::unordered_map<int, Replica> winners;
  for (const Replica& replica : replicas) {
    auto it = winners.find(replica.info.room);
    if (it == winners.end()) {
      winners.emplace(replica.info.room, replica);
      continue;
    }
    const auto rank = [](const Replica& r) {
      return std::make_tuple(r.info.primary ? 1 : 0, r.info.epoch,
                             static_cast<int64_t>(r.info.tick),
                             -r.backend);
    };
    if (rank(replica) > rank(it->second)) it->second = replica;
  }
  // Epochs resume above everything any replica ever saw, so no durable
  // pre-crash grant can fence out what the router does from here on.
  {
    std::lock_guard<std::mutex> lock(partition_mutex_);
    next_epoch_ = std::max(next_epoch_, max_epoch);
  }
  // Phase 3: release the stale replicas, discarding their state — the
  // winner's is strictly newer. A failed release leaves the loser
  // hosting a room no request will route to; a later grant at a newer
  // epoch overwrites it.
  int64_t discarded = 0;
  for (const Replica& replica : replicas) {
    auto winner = winners.find(replica.info.room);
    if (winner != winners.end() && winner->second.backend == replica.backend)
      continue;
    uint64_t release_epoch = 0;
    {
      std::lock_guard<std::mutex> lock(partition_mutex_);
      release_epoch = ++next_epoch_;
    }
    (void)SendRelease(replica.backend, replica.info.room, release_epoch);
    ++discarded;
  }
  metrics_.discarded_replicas.fetch_add(discarded,
                                        std::memory_order_relaxed);
  metrics_.recovered_rooms.fetch_add(static_cast<int64_t>(winners.size()),
                                     std::memory_order_relaxed);
  // Phase 4: seed the ownership table with the winners and rebalance
  // onto the current fleet. ApplyAssignment migrates a recovered room
  // whose primary belongs elsewhere with the usual release -> state ->
  // assign handoff, and grants never-recovered rooms fresh.
  {
    std::lock_guard<std::mutex> lock(partition_mutex_);
    partitioned_ = true;
    partition_rooms_ = num_rooms;
    for (const auto& [room, replica] : winners) {
      RoomAssignment& entry = assignment_[room];
      entry.copies = {replica.backend};
      entry.epoch = replica.info.epoch;
    }
  }
  const std::vector<int> active = ActiveBackends();
  std::unordered_map<int, std::vector<int>> target;
  {
    std::shared_lock<std::shared_mutex> lock(topology_mutex_);
    target = ComputeAssignment(active, num_rooms);
  }
  Status first_error;
  ApplyAssignment(target, &first_error);
  return first_error;
}

Result<int> ShardRouter::AddBackendLive(const BackendAddress& address) {
  int index = -1;
  {
    std::unique_lock<std::shared_mutex> lock(topology_mutex_);
    auto backend = std::make_unique<Backend>();
    backend->address = address;
    backends_.push_back(std::move(backend));
    index = static_cast<int>(backends_.size()) - 1;
    RebuildRingLocked();
  }
  int rooms = 0;
  {
    std::lock_guard<std::mutex> lock(partition_mutex_);
    if (!partitioned_) return index;
    rooms = partition_rooms_;
  }
  // Rebalance: the new backend takes its hash-fair share; rooms whose
  // primary moves are migrated with a full state handoff.
  const std::vector<int> active = ActiveBackends();
  std::unordered_map<int, std::vector<int>> target;
  {
    std::shared_lock<std::shared_mutex> lock(topology_mutex_);
    target = ComputeAssignment(active, rooms);
  }
  Status first_error;
  ApplyAssignment(target, &first_error);
  if (!first_error.ok()) return first_error;
  return index;
}

int ShardRouter::RepairPartition() {
  {
    std::lock_guard<std::mutex> lock(partition_mutex_);
    if (!partitioned_) return 0;
  }
  const std::vector<int> active = ActiveBackends();
  // Patch, don't recompute: surviving copies keep the room (a promoted
  // standby serves its live state bit-exactly), and only the dead
  // copies are replaced, following ring order over healthy backends.
  std::unordered_map<int, std::vector<int>> current;
  {
    std::lock_guard<std::mutex> lock(partition_mutex_);
    for (const auto& [room, entry] : assignment_)
      current[room] = entry.copies;
  }
  std::unordered_map<int, std::vector<int>> target;
  for (const auto& [room, copies] : current) {
    std::vector<int> live;
    for (int b : copies)
      if (Contains(active, b)) live.push_back(b);
    if (live == copies) continue;  // all owners healthy
    const int need =
        1 + std::max(0, std::min(options_.replication_factor,
                                 static_cast<int>(active.size()) - 1));
    if (static_cast<int>(live.size()) < need) {
      std::shared_lock<std::shared_mutex> lock(topology_mutex_);
      for (int b : RingOrderLocked(room)) {
        if (static_cast<int>(live.size()) >= need) break;
        if (!Contains(active, b) || Contains(live, b)) continue;
        live.push_back(b);
      }
    }
    if (live.empty()) continue;  // nothing healthy to grant to
    target[room] = std::move(live);
  }
  if (target.empty()) return 0;
  Status first_error;
  const int repaired = ApplyAssignment(target, &first_error);
  metrics_.repairs.fetch_add(repaired, std::memory_order_relaxed);
  return repaired;
}

}  // namespace serve
}  // namespace after
