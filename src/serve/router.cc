#include "serve/router.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "nn/serialize.h"

namespace after {
namespace serve {

std::string BackendAddress::ToString() const {
  std::ostringstream oss;
  oss << host << ":" << port;
  return oss.str();
}

namespace {

/// 64-bit avalanche finalizer (MurmurHash3 fmix64) applied on top of
/// Fnv1a64. FNV alone has weak high-bit avalanche on short sequential
/// keys ("room-0", "room-1", ...): hashes differing only in the last
/// byte land within ~255 * prime of each other, so ring points and room
/// keys cluster into narrow bands and backends end up owning wildly
/// uneven arcs (measured: 48% vs 3% of the ring for equal vnode
/// counts). The mixer restores a uniform spread.
uint64_t MixHash(uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

uint64_t RoomHash(int room) {
  std::ostringstream oss;
  oss << "room-" << room;
  return MixHash(Fnv1a64(oss.str()));
}

}  // namespace

ShardRouter::ShardRouter(std::vector<BackendAddress> backends,
                         const RouterOptions& options)
    : options_(options) {
  AFTER_CHECK(!backends.empty());
  AFTER_CHECK_GE(options_.virtual_nodes, 1);
  AFTER_CHECK_GE(options_.max_attempts, 1);
  backends_.reserve(backends.size());
  for (auto& address : backends) {
    auto backend = std::make_unique<Backend>();
    backend->address = std::move(address);
    backends_.push_back(std::move(backend));
  }
  // Build the ring: virtual_nodes points per backend, keyed by the
  // backend's address so the mapping is a pure function of the fleet
  // layout (two routers over the same fleet route identically).
  ring_.reserve(backends_.size() * options_.virtual_nodes);
  for (int b = 0; b < num_backends(); ++b) {
    const std::string base = backends_[b]->address.ToString();
    for (int v = 0; v < options_.virtual_nodes; ++v) {
      std::ostringstream oss;
      oss << base << "#" << v;
      ring_.emplace_back(MixHash(Fnv1a64(oss.str())), b);
    }
  }
  std::sort(ring_.begin(), ring_.end());
  if (options_.health_check_interval_ms > 0.0) {
    prober_ = std::thread([this] {
      const auto interval = std::chrono::duration<double, std::milli>(
          options_.health_check_interval_ms);
      while (!stop_.load(std::memory_order_acquire)) {
        ProbeAll();
        // Sleep in small slices so Shutdown() is prompt.
        auto remaining = interval;
        while (remaining.count() > 0.0 &&
               !stop_.load(std::memory_order_acquire)) {
          const auto slice = std::min(
              remaining, std::chrono::duration<double, std::milli>(20.0));
          std::this_thread::sleep_for(slice);
          remaining -= slice;
        }
      }
    });
  }
}

ShardRouter::~ShardRouter() { Shutdown(); }

void ShardRouter::Shutdown() {
  if (stop_.exchange(true)) return;
  if (prober_.joinable()) prober_.join();
  for (auto& backend : backends_) {
    std::lock_guard<std::mutex> lock(backend->mutex);
    backend->idle.clear();
  }
}

int ShardRouter::ShardFor(int room) const {
  const uint64_t h = RoomHash(room);
  auto it = std::upper_bound(ring_.begin(), ring_.end(),
                             std::make_pair(h, num_backends()));
  if (it == ring_.end()) it = ring_.begin();  // wrap around
  return it->second;
}

std::vector<int> ShardRouter::RingOrder(int room) const {
  const uint64_t h = RoomHash(room);
  auto start = std::upper_bound(ring_.begin(), ring_.end(),
                                std::make_pair(h, num_backends()));
  std::vector<int> order;
  order.reserve(backends_.size());
  for (size_t step = 0; step < ring_.size() &&
                        order.size() < backends_.size();
       ++step) {
    auto it = start + static_cast<long>(step);
    if (it >= ring_.end()) it -= static_cast<long>(ring_.size());
    const int b = it->second;
    if (std::find(order.begin(), order.end(), b) == order.end())
      order.push_back(b);
  }
  return order;
}

bool ShardRouter::Ejected(Backend& backend) const {
  std::lock_guard<std::mutex> lock(backend.mutex);
  return Clock::now() < backend.ejected_until;
}

void ShardRouter::Eject(Backend& backend) {
  metrics_.ejections.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(backend.mutex);
  backend.ejected_until =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double, std::milli>(
                             options_.ejection_ms));
  backend.idle.clear();  // pooled connections to a dead peer are useless
}

bool ShardRouter::backend_healthy(int index) const {
  return !Ejected(*backends_[index]);
}

std::unique_ptr<NetClient> ShardRouter::Acquire(Backend& backend,
                                                bool* pooled) {
  {
    std::lock_guard<std::mutex> lock(backend.mutex);
    while (!backend.idle.empty()) {
      std::unique_ptr<NetClient> client = std::move(backend.idle.back());
      backend.idle.pop_back();
      if (client->broken()) continue;
      *pooled = true;
      return client;
    }
  }
  *pooled = false;
  auto connected = NetClient::Connect(backend.address.host,
                                      backend.address.port, options_.client);
  if (!connected.ok()) return nullptr;
  metrics_.connects.fetch_add(1, std::memory_order_relaxed);
  return std::move(connected).value();
}

void ShardRouter::Release(Backend& backend,
                          std::unique_ptr<NetClient> client) {
  if (client == nullptr || client->broken()) return;
  std::lock_guard<std::mutex> lock(backend.mutex);
  if (static_cast<int>(backend.idle.size()) < options_.pool_capacity)
    backend.idle.push_back(std::move(client));
}

FriendResponse ShardRouter::Route(const FriendRequest& request) {
  metrics_.routed.fetch_add(1, std::memory_order_relaxed);
  const std::vector<int> order = RingOrder(request.room);
  const int attempts =
      std::min(options_.max_attempts, static_cast<int>(order.size()));

  Status last_error;
  int tried = 0;
  // Two passes: first skip ejected backends, then — if every candidate
  // was ejected — try them anyway rather than blackout the room.
  for (const bool include_ejected : {false, true}) {
    for (int i = 0; i < static_cast<int>(order.size()); ++i) {
      if (tried >= attempts) break;
      Backend& backend = *backends_[order[i]];
      if (!include_ejected && Ejected(backend)) continue;
      if (include_ejected && !Ejected(backend)) continue;  // pass 1 did it
      if (tried > 0) metrics_.retried.fetch_add(1, std::memory_order_relaxed);
      ++tried;
      bool pooled = false;
      std::unique_ptr<NetClient> client = Acquire(backend, &pooled);
      if (client == nullptr) {
        last_error = UnavailableError("connect to " +
                                      backend.address.ToString() + " failed");
        Eject(backend);
        continue;
      }
      auto result = client->Call(request);
      if (result.ok()) {
        if (pooled)
          metrics_.pooled_reuse.fetch_add(1, std::memory_order_relaxed);
        Release(backend, std::move(client));
        return std::move(result).value();
      }
      // Transport failure: the backend may be dead. Anything else (a
      // protocol error) is not retryable — report it as-is.
      last_error = result.status().Annotate(backend.address.ToString());
      if (result.status().code() != StatusCode::kUnavailable) {
        FriendResponse response;
        response.status = last_error;
        return response;
      }
      Eject(backend);
    }
    if (tried >= attempts) break;
  }

  metrics_.exhausted.fetch_add(1, std::memory_order_relaxed);
  FriendResponse response;
  std::ostringstream oss;
  oss << "all " << tried << " attempted shard(s) unavailable for room "
      << request.room;
  response.status =
      UnavailableError(oss.str() + (last_error.ok()
                                        ? ""
                                        : " (last: " + last_error.ToString() +
                                              ")"));
  return response;
}

void ShardRouter::ProbeAll() {
  for (auto& backend_ptr : backends_) {
    Backend& backend = *backend_ptr;
    bool pooled = false;
    std::unique_ptr<NetClient> client = Acquire(backend, &pooled);
    if (client == nullptr) {
      Eject(backend);
      continue;
    }
    if (client->Ping().ok()) {
      // Lift any ejection early: the backend answered a full round trip.
      std::lock_guard<std::mutex> lock(backend.mutex);
      backend.ejected_until = Clock::time_point::min();
    } else {
      Eject(backend);
      continue;  // drop the broken client
    }
    Release(backend, std::move(client));
  }
}

}  // namespace serve
}  // namespace after
