#ifndef AFTER_SERVE_ROUTER_H_
#define AFTER_SERVE_ROUTER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "serve/net_client.h"
#include "serve/server_types.h"

namespace after {
namespace serve {

struct BackendAddress {
  std::string host = "127.0.0.1";
  int port = 0;
  std::string ToString() const;
};

struct RouterOptions {
  /// Ring points per backend. More points = smoother key spread and
  /// smaller movement when the backend set changes.
  int virtual_nodes = 64;
  /// Distinct backends tried per request before giving up with
  /// kUnavailable. 1 disables failover.
  int max_attempts = 3;
  /// Idle connections kept per backend; extra connections are closed on
  /// release rather than pooled.
  int pool_capacity = 8;
  /// How long a backend stays ejected (skipped by routing) after a
  /// transport failure. Passive recovery: once the cooldown lapses the
  /// next request tries it again.
  double ejection_ms = 1000.0;
  /// > 0 starts a background prober that pings every backend at this
  /// interval, lifting ejections early when a backend comes back and
  /// ejecting quietly-dead ones before a request has to find out.
  double health_check_interval_ms = 0.0;
  NetClientOptions client;
};

/// Routes FriendRequests across a fleet of shard workers
/// (tools/serve_shard) by consistent hashing on the room id: each room
/// maps to one backend on a hash ring (stable as backends join/leave —
/// only ~1/N of rooms move), so a room's simulation state and snapshot
/// cache stay hot on one shard. Every shard instantiates the full room
/// set, which is what makes failover safe: when a backend dies
/// mid-request (kUnavailable from the transport), the router ejects it
/// and retries the *next* backend on the ring, so the client sees a
/// served answer instead of a lost request. Server-side statuses
/// (shed / timeout / fallback) pass through untouched — the router only
/// retries transport failures, never degradation decisions.
///
/// Thread-safe: Route() may be called from many connection threads;
/// each backend keeps a mutex-guarded connection pool and health state.
class ShardRouter {
 public:
  ShardRouter(std::vector<BackendAddress> backends,
              const RouterOptions& options);
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// The ring's pick for a room (ignoring health) — stable across
  /// router instances with the same backend list.
  int ShardFor(int room) const;

  /// Routes one request: home shard first, then ring-order failover on
  /// kUnavailable, up to max_attempts distinct backends. Always returns
  /// a response; total failure yields status kUnavailable.
  FriendResponse Route(const FriendRequest& request);

  /// Pings every backend once (pooled connection or a fresh one),
  /// updating health state. The background prober calls this on its
  /// interval; tests and tools may call it directly.
  void ProbeAll();

  int num_backends() const { return static_cast<int>(backends_.size()); }
  const BackendAddress& backend(int index) const {
    return backends_[index]->address;
  }
  bool backend_healthy(int index) const;

  /// Monotonic counters, one relaxed add per event (serve/metrics.h
  /// style).
  struct Metrics {
    std::atomic<int64_t> routed{0};        // requests entering Route()
    std::atomic<int64_t> retried{0};       // attempts beyond the first
    std::atomic<int64_t> ejections{0};     // backend marked unhealthy
    std::atomic<int64_t> exhausted{0};     // all attempts kUnavailable
    std::atomic<int64_t> pooled_reuse{0};  // calls served by a pooled conn
    std::atomic<int64_t> connects{0};      // fresh connections dialed
  };
  const Metrics& metrics() const { return metrics_; }

  /// Stops the health prober and closes every pooled connection.
  void Shutdown();

 private:
  using Clock = std::chrono::steady_clock;

  struct Backend {
    BackendAddress address;
    std::mutex mutex;
    std::vector<std::unique_ptr<NetClient>> idle;  // pooled connections
    Clock::time_point ejected_until = Clock::time_point::min();
  };

  /// Backends in ring order starting at the room's home shard,
  /// deduplicated; the retry sequence for that room.
  std::vector<int> RingOrder(int room) const;

  std::unique_ptr<NetClient> Acquire(Backend& backend, bool* pooled);
  void Release(Backend& backend, std::unique_ptr<NetClient> client);
  void Eject(Backend& backend);
  bool Ejected(Backend& backend) const;

  RouterOptions options_;
  std::vector<std::unique_ptr<Backend>> backends_;
  /// Sorted (hash point, backend index) ring; immutable after build.
  std::vector<std::pair<uint64_t, int>> ring_;
  Metrics metrics_;
  std::atomic<bool> stop_{false};
  std::thread prober_;
};

}  // namespace serve
}  // namespace after

#endif  // AFTER_SERVE_ROUTER_H_
