#ifndef AFTER_SERVE_ROUTER_H_
#define AFTER_SERVE_ROUTER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "serve/net_client.h"
#include "serve/net_mux.h"
#include "serve/server_types.h"

namespace after {
namespace serve {

struct BackendAddress {
  std::string host = "127.0.0.1";
  int port = 0;
  std::string ToString() const;
};

struct RouterOptions {
  /// Ring points per backend. More points = smoother key spread and
  /// smaller movement when the backend set changes.
  int virtual_nodes = 64;
  /// Distinct backends tried per request before giving up with
  /// kUnavailable. 1 disables failover.
  int max_attempts = 3;
  /// Persistent multiplexed links kept per backend (serve/net_mux.h).
  /// All in-flight calls to a shard share these links, correlated by
  /// request id — C10k client fan-in collapses onto
  /// backends x mux_links shard-side sockets. The first link is dialed
  /// on demand; extras are added only when the chosen link already has
  /// calls in flight.
  int mux_links = 2;
  /// How long a backend stays ejected (skipped by routing) after a
  /// transport failure. Passive recovery: once the cooldown lapses the
  /// next request tries it again.
  double ejection_ms = 1000.0;
  /// > 0 starts a background prober that pings every backend at this
  /// interval, lifting ejections early when a backend comes back and
  /// ejecting quietly-dead ones before a request has to find out.
  double health_check_interval_ms = 0.0;
  /// Partitioned serving (EnablePartition): warm standby copies per room
  /// beyond the primary. 0 = primary only (cheapest, but a room's state
  /// dies with its shard); 1 = one standby, so a killed shard fails over
  /// with no request loss while RepairPartition rebuilds headroom.
  /// (The issue sketched this knob on ServerOptions; it lives here
  /// because replication is a fleet-layout decision the router owns.)
  int replication_factor = 0;
  NetClientOptions client;
};

/// Routes FriendRequests across a fleet of shard workers
/// (tools/serve_shard) by consistent hashing on the room id: each room
/// maps to one backend on a hash ring (stable as backends join/leave —
/// only ~1/N of rooms move), so a room's simulation state and snapshot
/// cache stay hot on one shard. Two fleet layouts:
///
///  - Full replication (default): every shard hosts every room, the
///    ring only provides affinity, and when a backend dies mid-request
///    (kUnavailable from the transport) the router ejects it and retries
///    the *next* backend on the ring.
///  - Partitioned (EnablePartition, docs/serving.md): each shard owns
///    only the rooms granted to it, so per-process memory and tick cost
///    scale with its share of the fleet, not the whole conference. The
///    router is the ownership authority: it grants rooms with
///    kRoomAssign, revokes with kRoomRelease (the ack carries the room's
///    final state, forwarded to the new owner), keeps
///    replication_factor warm standbys per room, and repairs the
///    assignment when backends join or die.
///
/// In both layouts server-side statuses (shed / timeout / fallback)
/// pass through untouched — the router only retries transport failures
/// and ownership misses, never degradation decisions.
///
/// Thread-safe: Route() may be called from many connection threads;
/// calls to one backend multiplex over a few persistent MuxLinks
/// (request-id correlation, serve/net_mux.h) behind a per-backend
/// mutex that guards only link selection and health state — never the
/// wire I/O itself.
class ShardRouter {
 public:
  ShardRouter(std::vector<BackendAddress> backends,
              const RouterOptions& options);
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// The ring's pick for a room (ignoring health) — stable across
  /// router instances with the same backend list.
  int ShardFor(int room) const;

  /// Routes one request: home shard first, then ring-order failover on
  /// kUnavailable, up to max_attempts distinct backends. Always returns
  /// a response; total failure yields status kUnavailable. In
  /// partitioned mode the candidate set is the room's current owner list
  /// instead of the full ring, and a kNotOwner answer (a racing
  /// migration) moves on to the next owner without ejecting anyone,
  /// briefly retrying the refreshed table before giving up.
  FriendResponse Route(const FriendRequest& request);

  /// Switches to partitioned serving over rooms [0, num_rooms): computes
  /// a balanced, hash-affine assignment of every room to 1 +
  /// replication_factor distinct backends and pushes kRoomAssign grants
  /// (empty state: shards build fresh rooms) to each owner. Every
  /// backend must be running with shard control enabled
  /// (tools/serve_shard --partitioned). Fails fast on the first grant a
  /// backend rejects.
  Status EnablePartition(int num_rooms);

  /// Adds a backend to the live fleet: extends the hash ring, and in
  /// partitioned mode rebalances — rooms whose primary moves are
  /// migrated with a release -> state -> assign handoff so the new owner
  /// resumes from the old owner's exact snapshot + trajectory window.
  /// Returns the new backend's index.
  Result<int> AddBackendLive(const BackendAddress& address);

  /// Re-derives the assignment over currently-healthy backends: rooms
  /// with copies on ejected backends get standbys promoted and fresh
  /// copies granted elsewhere (a room whose every copy died is rebuilt
  /// from scratch — state is lost, which replication_factor >= 1
  /// prevents). Returns the number of rooms whose owner set changed.
  /// The background prober calls this after each probe sweep.
  int RepairPartition();

  /// Cold-restart recovery (docs/durability.md): instead of granting
  /// fresh rooms like EnablePartition, first asks every backend to
  /// replay its durable state (kRoomRecover) and reconciles the reports
  /// — per room the newest replica wins (primary role, then epoch, then
  /// tick; lowest backend index breaks exact ties deterministically),
  /// stale replicas are released with their state discarded — then seeds
  /// the ownership table with the winners and rebalances onto the
  /// current fleet. Rooms in [0, num_rooms) that no backend recovered
  /// (first boot, or data loss) are granted fresh. Epochs resume above
  /// the highest recovered epoch, so pre-crash grants can never fence
  /// out post-recovery ones. Once-only, like EnablePartition.
  Status RecoverPartition(int num_rooms);

  /// One room's owner set: `copies` in priority order (primary first)
  /// and the epoch of its latest grant.
  struct RoomAssignment {
    std::vector<int> copies;
    uint64_t epoch = 0;
  };
  bool partitioned() const;
  std::unordered_map<int, RoomAssignment> AssignmentSnapshot() const;

  /// Pings every backend once (over an existing mux link or a fresh
  /// one), updating health state. The background prober calls this on
  /// its interval; tests and tools may call it directly.
  void ProbeAll();

  int num_backends() const;
  BackendAddress backend(int index) const;
  bool backend_healthy(int index) const;

  /// Monotonic counters, one relaxed add per event (serve/metrics.h
  /// style).
  struct Metrics {
    std::atomic<int64_t> routed{0};        // requests entering Route()
    std::atomic<int64_t> retried{0};       // attempts beyond the first
    std::atomic<int64_t> ejections{0};     // backend marked unhealthy
    std::atomic<int64_t> exhausted{0};     // all attempts kUnavailable
    std::atomic<int64_t> link_reuse{0};    // calls served by a live mux link
    std::atomic<int64_t> connects{0};      // fresh links dialed
    std::atomic<int64_t> not_owner{0};     // kNotOwner answers re-routed
    std::atomic<int64_t> migrations{0};    // rooms moved with state handoff
    std::atomic<int64_t> repairs{0};       // rooms re-owned by repair
    std::atomic<int64_t> recovered_rooms{0};     // rooms won at recovery
    std::atomic<int64_t> discarded_replicas{0};  // stale replicas released
  };
  const Metrics& metrics() const { return metrics_; }

  /// Stops the health prober and drops every mux link.
  void Shutdown();

 private:
  using Clock = std::chrono::steady_clock;

  struct Backend {
    BackendAddress address;
    std::mutex mutex;
    /// Persistent multiplexed links, round-robined across calls; broken
    /// links are pruned on the next acquire. Grows on demand up to
    /// options.mux_links.
    std::vector<std::shared_ptr<MuxLink>> links;
    size_t next_link = 0;
    Clock::time_point ejected_until = Clock::time_point::min();
  };

  /// Backends in ring order starting at the room's home shard,
  /// deduplicated; the retry sequence for that room.
  std::vector<int> RingOrder(int room) const;
  std::vector<int> RingOrderLocked(int room) const;
  void RebuildRingLocked();

  /// Picks a live link for the backend (pruning broken ones), dialing a
  /// fresh link when none exist or the round-robin choice is busy and
  /// the per-backend cap has headroom. `*reused` reports whether an
  /// existing link served the call (feeds metrics.link_reuse). Null on
  /// connect failure.
  std::shared_ptr<MuxLink> AcquireLink(Backend& backend, bool* reused);
  void Eject(Backend& backend);
  bool Ejected(Backend& backend) const;

  /// Balanced, hash-affine owner sets for every room over `active`
  /// backend indices: each room's copies follow its ring order, subject
  /// to per-backend load caps (ceil-based) that keep the primary spread
  /// within one room of even. Pure function of the current ring.
  std::unordered_map<int, std::vector<int>> ComputeAssignment(
      const std::vector<int>& active, int num_rooms) const;

  /// Control-plane sends, multiplexed over the backend's links like data
  /// traffic (each blocks for its ack, so migration steps stay ordered).
  /// Held locks: none — callers must not hold partition_mutex_.
  Status SendAssign(int backend, int room, uint64_t epoch,
                    const std::string& state, bool primary);
  Result<std::string> SendRelease(int backend, int room, uint64_t epoch);
  Result<std::vector<wire::RecoveredRoom>> SendRecover(int backend);

  /// Diffs `target` against the current table and drives the
  /// release -> state -> assign migration per changed room. Returns the
  /// number of rooms whose owner set changed.
  int ApplyAssignment(const std::unordered_map<int, std::vector<int>>& target,
                      Status* first_error);

  std::vector<int> ActiveBackends() const;

  RouterOptions options_;
  /// Guards backends_ growth and ring_ rebuilds (AddBackendLive);
  /// routing takes it shared. Backend objects themselves are stable
  /// (owned by unique_ptr, never erased) so Backend* survives unlock.
  mutable std::shared_mutex topology_mutex_;
  std::vector<std::unique_ptr<Backend>> backends_;
  /// Sorted (hash point, backend index) ring; rebuilt under
  /// topology_mutex_ when the fleet grows.
  std::vector<std::pair<uint64_t, int>> ring_;

  /// Partitioned-mode ownership table; guarded by partition_mutex_.
  /// Control-plane I/O never runs under this mutex, so routing reads
  /// stay wait-free during migrations.
  mutable std::mutex partition_mutex_;
  bool partitioned_ = false;
  int partition_rooms_ = 0;
  uint64_t next_epoch_ = 0;
  std::unordered_map<int, RoomAssignment> assignment_;

  Metrics metrics_;
  std::atomic<bool> stop_{false};
  std::thread prober_;
};

}  // namespace serve
}  // namespace after

#endif  // AFTER_SERVE_ROUTER_H_
