#include "serve/server.h"

#include <condition_variable>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "serve/checkpoint.h"

namespace after {
namespace serve {

RecommendationServer::RecommendationServer(
    std::vector<std::unique_ptr<Room>> rooms, RecommenderFactory factory,
    const ServerOptions& options)
    : options_(options), factory_(std::move(factory)),
      fallback_(options.fallback_k) {
  AFTER_CHECK(factory_ != nullptr);
  for (auto& room : rooms) {
    AFTER_CHECK(room != nullptr);
    const int id = room->id();
    AFTER_CHECK(rooms_.emplace(id, std::move(room)).second);
  }
  // Probe the primary's capabilities once. A thread-safe model is shared
  // lock-free by every worker; a stateful one keeps the probe unused and
  // instances are built per (room, user) stream on demand.
  std::unique_ptr<Recommender> probe = factory_();
  AFTER_CHECK(probe != nullptr);
  if (probe->thread_safe()) primary_shared_ = std::move(probe);
  pool_ = std::make_unique<ThreadPool>(options_.num_threads,
                                       options_.queue_capacity);
  if (options_.batch_requests) {
    // The pool queue carries at most one drain task per room (admission
    // control moves to the explicit queue_depth gate in SubmitBatched),
    // so the starting room count must fit.
    AFTER_CHECK_GE(options_.queue_capacity,
                   static_cast<int>(rooms_.size()));
    batcher_ = std::make_unique<TickBatcher>();
  }
}

RecommendationServer::~RecommendationServer() { Shutdown(); }

void RecommendationServer::Shutdown() {
  if (pool_) pool_->Shutdown();
}

void RecommendationServer::Submit(
    const FriendRequest& request,
    std::function<void(const FriendResponse&)> done) {
  metrics_.requests_submitted.fetch_add(1, std::memory_order_relaxed);
  metrics_.room_requests.Note(request.room);
  const double budget_ms = request.deadline_ms == 0.0
                               ? options_.default_deadline_ms
                               : request.deadline_ms;
  const Deadline deadline =
      budget_ms > 0.0 ? Deadline::ExpiresIn(budget_ms) : Deadline::Infinite();

  const int32_t depth =
      metrics_.queue_depth.fetch_add(1, std::memory_order_relaxed) + 1;
  metrics_.NoteQueueDepth(depth);
  // The callback lives in a shared holder so it survives the rejected-
  // admission path (a closure capture by move would leave `done` empty
  // when TrySubmit declines the task).
  auto done_ptr =
      std::make_shared<std::function<void(const FriendResponse&)>>(
          std::move(done));
  if (batcher_ != nullptr) {
    SubmitBatched(request, deadline, std::move(done_ptr));
    return;
  }
  const bool admitted =
      pool_->TrySubmit([this, request, deadline, done_ptr] {
        const FriendResponse response = Process(request, deadline);
        metrics_.queue_depth.fetch_sub(1, std::memory_order_relaxed);
        (*done_ptr)(response);
      });
  if (!admitted) {
    metrics_.queue_depth.fetch_sub(1, std::memory_order_relaxed);
    metrics_.shed.fetch_add(1, std::memory_order_relaxed);
    FriendResponse response;
    std::ostringstream oss;
    oss << "request queue full (capacity " << options_.queue_capacity
        << "); load shed";
    response.status = ResourceExhaustedError(oss.str());
    (*done_ptr)(response);
  }
}

FriendResponse RecommendationServer::Handle(const FriendRequest& request) {
  std::mutex mutex;
  std::condition_variable cv;
  bool ready = false;
  FriendResponse out;
  Submit(request, [&](const FriendResponse& response) {
    // Notify while holding the lock: the waiter owns cv on its stack, so
    // signalling after unlock would race with cv's destruction once the
    // waiter observes ready and returns.
    std::lock_guard<std::mutex> lock(mutex);
    out = response;
    ready = true;
    cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(mutex);
  cv.wait(lock, [&] { return ready; });
  return out;
}

Status RecommendationServer::TickRoom(int room) {
  const std::shared_ptr<Room> hosted = FindRoom(room);
  if (hosted == nullptr) return NotFoundError("no such room");
  const Status status = hosted->Tick();
  if (status.ok()) {
    metrics_.ticks.fetch_add(1, std::memory_order_relaxed);
    const std::shared_ptr<const RoomSnapshot> published = hosted->snapshot();
    if (published != nullptr && published->built_by_delta())
      metrics_.delta_ticks.fetch_add(1, std::memory_order_relaxed);
    // Journal the published frame (and run the checkpoint budgets). A
    // durability failure degrades recoverability, not serving: count it
    // and keep ticking.
    if (durability_ != nullptr && !durability_->RecordTick(*hosted).ok())
      metrics_.errors.fetch_add(1, std::memory_order_relaxed);
  }
  return status;
}

void RecommendationServer::TickAll() {
  for (int id : RoomIds()) (void)TickRoom(id);
}

Status RecommendationServer::AddRoom(std::unique_ptr<Room> room) {
  AFTER_CHECK(room != nullptr);
  const int id = room->id();
  std::lock_guard<std::mutex> lock(rooms_mutex_);
  if (!rooms_.emplace(id, std::move(room)).second)
    return InvalidArgumentError("room " + std::to_string(id) +
                                " is already hosted");
  return OkStatus();
}

std::shared_ptr<Room> RecommendationServer::RemoveRoom(int id) {
  std::shared_ptr<Room> removed;
  {
    std::lock_guard<std::mutex> lock(rooms_mutex_);
    auto it = rooms_.find(id);
    if (it == rooms_.end()) return nullptr;
    removed = std::move(it->second);
    rooms_.erase(it);
  }
  // Drop the room's recurrent streams: if the room ever comes back it
  // starts fresh, exactly like a never-before-seen room on a new shard.
  {
    std::lock_guard<std::mutex> lock(stream_models_mutex_);
    stream_models_.erase(id);
  }
  return removed;
}

std::shared_ptr<Room> RecommendationServer::FindRoom(int id) const {
  std::lock_guard<std::mutex> lock(rooms_mutex_);
  auto it = rooms_.find(id);
  return it == rooms_.end() ? nullptr : it->second;
}

bool RecommendationServer::HasRoom(int id) const {
  return FindRoom(id) != nullptr;
}

std::vector<int> RecommendationServer::RoomIds() const {
  std::lock_guard<std::mutex> lock(rooms_mutex_);
  std::vector<int> ids;
  ids.reserve(rooms_.size());
  for (const auto& [id, room] : rooms_) ids.push_back(id);
  return ids;
}

int RecommendationServer::num_rooms() const {
  std::lock_guard<std::mutex> lock(rooms_mutex_);
  return static_cast<int>(rooms_.size());
}

void RecommendationServer::SubmitBatched(
    const FriendRequest& request, const Deadline& deadline,
    std::shared_ptr<std::function<void(const FriendResponse&)>> done) {
  auto answer_inline = [&](FriendResponse response) {
    metrics_.queue_depth.fetch_sub(1, std::memory_order_relaxed);
    (*done)(response);
  };

  // The batcher parks per room, so a nonexistent room is answered here
  // (the per-request path reports it from Process instead).
  if (request.room < 0 || !HasRoom(request.room)) {
    metrics_.errors.fetch_add(1, std::memory_order_relaxed);
    FriendResponse response;
    std::ostringstream oss;
    oss << "room " << request.room << " does not exist";
    response.status = NotFoundError(oss.str());
    response.latency_ms = deadline.ElapsedMs();
    metrics_.latency.RecordMs(response.latency_ms);
    answer_inline(std::move(response));
    return;
  }

  // Admission control: the pool queue only carries drain tasks in this
  // mode, so the request bound is enforced on the live depth gauge.
  if (metrics_.queue_depth.load(std::memory_order_relaxed) >
      options_.queue_capacity) {
    metrics_.shed.fetch_add(1, std::memory_order_relaxed);
    FriendResponse response;
    std::ostringstream oss;
    oss << "request queue full (capacity " << options_.queue_capacity
        << "); load shed";
    response.status = ResourceExhaustedError(oss.str());
    answer_inline(std::move(response));
    return;
  }

  TickBatcher::Pending pending;
  pending.request = request;
  pending.deadline = deadline;
  pending.done = done;  // keep `done` alive for the rejection path
  const int room = request.room;
  const TickBatcher::Admit admitted = batcher_->Enqueue(
      room, std::move(pending), [this, room] {
        return pool_->TrySubmit([this, room] { DrainRoom(room); });
      });
  if (admitted == TickBatcher::Admit::kRejected) {
    metrics_.shed.fetch_add(1, std::memory_order_relaxed);
    FriendResponse response;
    response.status = ResourceExhaustedError(
        "worker pool rejected the drain task; load shed");
    answer_inline(std::move(response));
  }
}

void RecommendationServer::DrainRoom(int room) {
  // Loop until the queue is observed empty: TakeBatch's empty return is
  // what releases drain ownership, so no admitted request is stranded.
  while (true) {
    std::vector<TickBatcher::Pending> batch = batcher_->TakeBatch(room);
    if (batch.empty()) return;
    ProcessBatch(room, std::move(batch));
  }
}

void RecommendationServer::ProcessBatch(
    int room, std::vector<TickBatcher::Pending> batch) {
  const std::shared_ptr<Room> hosted = FindRoom(room);
  if (hosted == nullptr) {
    // The room was removed (migrated away) after these requests were
    // admitted; answer each one rather than stranding its callback.
    for (const TickBatcher::Pending& pending : batch) {
      metrics_.errors.fetch_add(1, std::memory_order_relaxed);
      FriendResponse response;
      response.status =
          NotFoundError("room " + std::to_string(room) +
                        " was removed while the batch was queued");
      response.latency_ms = pending.deadline.ElapsedMs();
      metrics_.latency.RecordMs(response.latency_ms);
      metrics_.queue_depth.fetch_sub(1, std::memory_order_relaxed);
      (*pending.done)(response);
    }
    return;
  }
  Room& room_ref = *hosted;
  const int n = room_ref.num_users();
  const std::shared_ptr<const RoomSnapshot> snapshot = room_ref.snapshot();
  metrics_.batches.fetch_add(1, std::memory_order_relaxed);
  metrics_.batched_requests.fetch_add(static_cast<int64_t>(batch.size()),
                                      std::memory_order_relaxed);

  auto respond = [this](const TickBatcher::Pending& pending,
                        FriendResponse response) {
    response.latency_ms = pending.deadline.ElapsedMs();
    metrics_.latency.RecordMs(response.latency_ms);
    if (response.status.ok())
      metrics_.responses_ok.fetch_add(1, std::memory_order_relaxed);
    metrics_.queue_depth.fetch_sub(1, std::memory_order_relaxed);
    (*pending.done)(response);
  };

  // Ladder steps 1-2 and validation happen per request before any model
  // work; survivors coalesce by target so duplicate requests for one
  // user share a single forward pass.
  struct Group {
    int user = 0;
    std::vector<size_t> members;  // indices into `batch`
  };
  std::vector<Group> groups;
  std::unordered_map<int, size_t> group_of_user;
  for (size_t i = 0; i < batch.size(); ++i) {
    const TickBatcher::Pending& pending = batch[i];
    if (pending.deadline.Expired()) {
      metrics_.timeouts.fetch_add(1, std::memory_order_relaxed);
      FriendResponse response;
      std::ostringstream oss;
      oss << "deadline expired after " << pending.deadline.ElapsedMs()
          << " ms in batch queue";
      response.status = TimeoutError(oss.str());
      respond(pending, std::move(response));
      continue;
    }
    const int user = pending.request.user;
    if (user < 0 || user >= n) {
      metrics_.errors.fetch_add(1, std::memory_order_relaxed);
      FriendResponse response;
      std::ostringstream oss;
      oss << "user " << user << " out of range [0, " << n << ") in room "
          << room;
      response.status = InvalidDataError(oss.str());
      respond(pending, std::move(response));
      continue;
    }
    auto [it, inserted] = group_of_user.emplace(user, groups.size());
    if (inserted) groups.push_back(Group{user, {}});
    groups[it->second].members.push_back(i);
  }
  if (groups.empty()) return;

  std::vector<int> targets;
  targets.reserve(groups.size());
  for (const Group& group : groups) targets.push_back(group.user);
  std::vector<StepContext> contexts = snapshot->ContextsFor(targets);
  // Temporal candidate pruning, batch edition: one mask per distinct
  // target. Sized up front so the addresses stored in the contexts stay
  // stable, and kept alive past every model call below.
  std::vector<std::vector<bool>> prune_masks(groups.size());
  if (options_.max_candidates > 0) {
    for (size_t g = 0; g < groups.size(); ++g) {
      if (snapshot->PruneCandidates(targets[g], options_.max_candidates,
                                    &prune_masks[g])) {
        contexts[g].blocklist = &prune_masks[g];
        metrics_.pruned_requests.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  // One coalesced inference job for the whole batch. A shared primary
  // answers every distinct target in one RecommendBatch call; per-stream
  // primaries still benefit from coalescing (one Recommend per distinct
  // target instead of one per request).
  std::vector<std::vector<bool>> answers;
  if (primary_shared_ != nullptr) {
    answers = primary_shared_->RecommendBatch(contexts);
  } else {
    answers.reserve(groups.size());
    for (size_t g = 0; g < groups.size(); ++g) {
      const std::shared_ptr<StreamModel> stream =
          StreamFor(room_ref, groups[g].user);
      std::lock_guard<std::mutex> lock(stream->mutex);
      answers.push_back(stream->model->Recommend(contexts[g]));
    }
  }
  AFTER_CHECK_EQ(answers.size(), groups.size());

  for (size_t g = 0; g < groups.size(); ++g) {
    const Group& group = groups[g];
    const std::vector<bool>& primary_answer = answers[g];
    const bool misbehaved = static_cast<int>(primary_answer.size()) != n;
    metrics_.coalesced.fetch_add(
        static_cast<int64_t>(group.members.size()) - 1,
        std::memory_order_relaxed);
    // Built lazily: most groups never need the fallback.
    std::vector<bool> fallback_answer;
    for (size_t index : group.members) {
      const TickBatcher::Pending& pending = batch[index];
      FriendResponse response;
      response.tick = snapshot->tick();
      const bool missed_deadline = pending.deadline.Expired();
      std::vector<bool> recommended;
      if (misbehaved || missed_deadline) {
        // Ladder step 3, batch edition: answer from the cheap spatial
        // fallback instead of failing the request.
        if (fallback_answer.empty())
          fallback_answer = fallback_.Recommend(contexts[g]);
        recommended = fallback_answer;
        response.used_fallback = true;
        if (misbehaved)
          metrics_.fallbacks_misbehaved.fetch_add(1,
                                                  std::memory_order_relaxed);
        else
          metrics_.fallbacks_deadline.fetch_add(1, std::memory_order_relaxed);
      } else {
        recommended = primary_answer;
      }
      if (static_cast<int>(recommended.size()) != n) {
        metrics_.errors.fetch_add(1, std::memory_order_relaxed);
        response.status =
            InternalError("fallback produced a wrong-size answer");
        respond(pending, std::move(response));
        continue;
      }
      recommended[pending.request.user] = false;
      response.recommended = std::move(recommended);
      response.status = OkStatus();
      respond(pending, std::move(response));
    }
  }
}

std::shared_ptr<RecommendationServer::StreamModel>
RecommendationServer::StreamFor(const Room& room, int user) {
  std::unique_lock<std::mutex> lock(stream_models_mutex_);
  auto& per_room = stream_models_[room.id()];
  auto it = per_room.find(user);
  if (it != per_room.end()) return it->second;
  auto inserted =
      per_room.emplace(user, std::make_shared<StreamModel>()).first;
  const std::shared_ptr<StreamModel> stream = inserted->second;
  // Build the instance outside the registry lock so slow model
  // construction does not serialize unrelated streams; the stream's own
  // mutex keeps its first request exclusive. The shared_ptr keeps the
  // stream alive even if RemoveRoom drops the registry entry meanwhile.
  std::lock_guard<std::mutex> stream_lock(stream->mutex);
  lock.unlock();
  stream->model = factory_();
  AFTER_CHECK(stream->model != nullptr);
  stream->model->BeginSession(room.num_users(), user);
  return stream;
}

FriendResponse RecommendationServer::Process(const FriendRequest& request,
                                             const Deadline& deadline) {
  FriendResponse response;
  auto finish = [&](Status status) {
    response.status = std::move(status);
    response.latency_ms = deadline.ElapsedMs();
    metrics_.latency.RecordMs(response.latency_ms);
    if (response.status.ok())
      metrics_.responses_ok.fetch_add(1, std::memory_order_relaxed);
    return response;
  };

  if (deadline.Expired()) {
    metrics_.timeouts.fetch_add(1, std::memory_order_relaxed);
    std::ostringstream oss;
    oss << "deadline expired after " << deadline.ElapsedMs()
        << " ms in queue";
    return finish(TimeoutError(oss.str()));
  }
  const std::shared_ptr<Room> hosted =
      request.room < 0 ? nullptr : FindRoom(request.room);
  if (hosted == nullptr) {
    metrics_.errors.fetch_add(1, std::memory_order_relaxed);
    std::ostringstream oss;
    oss << "room " << request.room << " does not exist";
    return finish(NotFoundError(oss.str()));
  }
  Room& room = *hosted;
  const int n = room.num_users();
  if (request.user < 0 || request.user >= n) {
    metrics_.errors.fetch_add(1, std::memory_order_relaxed);
    std::ostringstream oss;
    oss << "user " << request.user << " out of range [0, " << n << ") in room "
        << request.room;
    return finish(InvalidDataError(oss.str()));
  }

  const std::shared_ptr<const RoomSnapshot> snapshot = room.snapshot();
  response.tick = snapshot->tick();
  StepContext context = snapshot->ContextFor(request.user);
  // Temporal candidate pruning: cap the candidate set to the target's
  // most-recently co-present users. The mask must outlive the model
  // calls below (fallback included), hence the local here.
  std::vector<bool> prune_mask;
  if (snapshot->PruneCandidates(request.user, options_.max_candidates,
                                &prune_mask)) {
    context.blocklist = &prune_mask;
    metrics_.pruned_requests.fetch_add(1, std::memory_order_relaxed);
  }

  std::vector<bool> recommended;
  if (primary_shared_ != nullptr) {
    recommended = primary_shared_->Recommend(context);
  } else {
    const std::shared_ptr<StreamModel> stream = StreamFor(room, request.user);
    std::lock_guard<std::mutex> lock(stream->mutex);
    recommended = stream->model->Recommend(context);
  }

  const bool misbehaved = static_cast<int>(recommended.size()) != n;
  const bool missed_deadline = deadline.Expired();
  if (misbehaved || missed_deadline) {
    // Degradation ladder step 3: the primary's answer is unusable (wrong
    // shape) or too late to be worth rendering; serve the cheap spatial
    // fallback instead of failing the request.
    recommended = fallback_.Recommend(context);
    response.used_fallback = true;
    if (misbehaved)
      metrics_.fallbacks_misbehaved.fetch_add(1, std::memory_order_relaxed);
    else
      metrics_.fallbacks_deadline.fetch_add(1, std::memory_order_relaxed);
  }
  if (static_cast<int>(recommended.size()) != n) {
    metrics_.errors.fetch_add(1, std::memory_order_relaxed);
    return finish(InternalError("fallback produced a wrong-size answer"));
  }
  recommended[request.user] = false;
  response.recommended = std::move(recommended);
  return finish(OkStatus());
}

}  // namespace serve
}  // namespace after
