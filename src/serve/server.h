#ifndef AFTER_SERVE_SERVER_H_
#define AFTER_SERVE_SERVER_H_

#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "baselines/nearest_recommender.h"
#include "common/status.h"
#include "common/timer.h"
#include "core/recommender.h"
#include "serve/batcher.h"
#include "serve/metrics.h"
#include "serve/room.h"
#include "serve/server_types.h"
#include "serve/thread_pool.h"

namespace after {
namespace serve {

class DurabilityManager;

struct ServerOptions {
  int num_threads = 4;
  /// Bound of the request queue; admissions beyond it are shed with
  /// kResourceExhausted.
  int queue_capacity = 1024;
  /// Deadline applied when FriendRequest::deadline_ms == 0; <= 0 means
  /// no default deadline.
  double default_deadline_ms = 50.0;
  /// Display budget of the NearestRecommender degradation fallback.
  int fallback_k = 10;
  /// In-tick request batching (serve/batcher.h): park requests per room
  /// and answer each room's whole queue in one coalesced inference job
  /// against a single snapshot, with duplicate targets sharing one
  /// forward pass. Deadlines are still honored per request (expired
  /// entries are answered kTimeout before model work, and entries whose
  /// deadline passes during the batch get the fallback answer). Off by
  /// default: the per-request path remains the latency-optimal choice
  /// for idle rooms; batching is the throughput choice under load.
  bool batch_requests = false;
  /// Temporal candidate pruning (docs/ticking.md): when > 0 and the
  /// room maintains a temporal index (Room::Options::temporal_index),
  /// each request's StepContext carries a blocklist keeping only the
  /// target's `max_candidates` most-recently co-present candidates, so
  /// the primary ranks a capped set in large rooms. 0 = off. Accuracy
  /// contract: ranking among the surviving candidates is exactly the
  /// unpruned ranking restricted to them — pruning changes who is
  /// considered, never how the considered are ordered.
  int max_candidates = 0;
};

/// In-process online serving runtime: shards N conference rooms across a
/// bounded worker pool and answers FriendRequests against each room's
/// current snapshot.
///
/// Degradation ladder (docs/serving.md):
///  1. queue full at admission            -> shed, kResourceExhausted
///  2. deadline expired while queued      -> kTimeout, no work done
///  3. primary misses deadline/misbehaves -> NearestRecommender answer,
///                                           OK with used_fallback=true
///  4. otherwise                          -> primary answer, OK
///
/// Model placement honors Recommender::thread_safe(): a thread-safe
/// primary is built once and shared lock-free by every room and worker;
/// a stateful primary (POSHGNN, the recurrent baselines, COMURNet) is
/// instantiated lazily per (room, user) stream — preserving its
/// per-session recurrent state exactly as the offline evaluator would —
/// and its calls are serialized per instance.
class RecommendationServer {
 public:
  /// Rooms are keyed by Room::id(); ids need not be contiguous, and the
  /// initial set may be empty (a partitioned shard starts bare and is
  /// granted rooms by the router, serve/shard_control.h).
  RecommendationServer(std::vector<std::unique_ptr<Room>> rooms,
                       RecommenderFactory primary_factory,
                       const ServerOptions& options);
  ~RecommendationServer();

  RecommendationServer(const RecommendationServer&) = delete;
  RecommendationServer& operator=(const RecommendationServer&) = delete;

  /// Asynchronous path: admits the request (or sheds it) and invokes
  /// `done` exactly once — on a worker thread on completion, or inline
  /// when shed.
  void Submit(const FriendRequest& request,
              std::function<void(const FriendResponse&)> done);

  /// Synchronous convenience wrapper: Submit + wait.
  FriendResponse Handle(const FriendRequest& request);

  /// Advances one room / every room one tick (simulation or replay).
  Status TickRoom(int room);
  void TickAll();

  /// Room registry (thread-safe; rooms churn under partitioned serving).
  /// AddRoom fails with kInvalidArgument if the id is already hosted.
  /// RemoveRoom unhosts the room and returns it (so a migration can
  /// still ExportState after removal) or nullptr when absent; in-flight
  /// requests that already resolved the room finish against their
  /// shared_ptr and drain normally. FindRoom returns nullptr when the
  /// room is not hosted here.
  Status AddRoom(std::unique_ptr<Room> room);
  std::shared_ptr<Room> RemoveRoom(int id);
  std::shared_ptr<Room> FindRoom(int id) const;
  bool HasRoom(int id) const;
  std::vector<int> RoomIds() const;
  int num_rooms() const;

  ServerMetrics& metrics() { return metrics_; }

  /// Attaches the shard's durability subsystem (serve/checkpoint.h):
  /// every successful TickRoom journals the published frame and runs the
  /// checkpoint / rotation budgets. Null detaches. The manager is
  /// borrowed and must outlive tick traffic; set it before the ticker
  /// starts.
  void set_durability(DurabilityManager* durability) {
    durability_ = durability;
  }
  DurabilityManager* durability() const { return durability_; }

  /// True when the probed primary is shared across threads (thread-safe)
  /// rather than instantiated per (room, user).
  bool primary_is_shared() const { return primary_shared_ != nullptr; }

  /// Stops admissions, drains in-flight requests, joins workers.
  /// Idempotent; also run by the destructor.
  void Shutdown();

 private:
  /// A stateful primary instance bound to one (room, user) stream.
  struct StreamModel {
    std::unique_ptr<Recommender> model;
    std::mutex mutex;
  };

  FriendResponse Process(const FriendRequest& request,
                         const Deadline& deadline);
  std::shared_ptr<StreamModel> StreamFor(const Room& room, int user);

  /// Batched path (options_.batch_requests): Submit parks the request in
  /// the TickBatcher; DrainRoom loops ProcessBatch over whatever queued.
  void SubmitBatched(
      const FriendRequest& request, const Deadline& deadline,
      std::shared_ptr<std::function<void(const FriendResponse&)>> done);
  void DrainRoom(int room);
  void ProcessBatch(int room, std::vector<TickBatcher::Pending> batch);

  ServerOptions options_;
  /// Hosted rooms keyed by id. shared_ptr so RemoveRoom can unhost while
  /// requests already processing against the room drain safely.
  std::unordered_map<int, std::shared_ptr<Room>> rooms_;
  mutable std::mutex rooms_mutex_;
  RecommenderFactory factory_;
  /// Set when the probed primary reports thread_safe(): one instance
  /// serves everything with no locking.
  std::unique_ptr<Recommender> primary_shared_;
  /// Lazily grown per-(room id, user) instances otherwise; a room's
  /// streams are dropped when the room is removed (a re-hosted room
  /// starts its recurrent state fresh, like any new shard would).
  std::unordered_map<int, std::unordered_map<int, std::shared_ptr<StreamModel>>>
      stream_models_;
  std::mutex stream_models_mutex_;
  NearestRecommender fallback_;
  ServerMetrics metrics_;
  DurabilityManager* durability_ = nullptr;
  std::unique_ptr<ThreadPool> pool_;
  /// Present iff options_.batch_requests.
  std::unique_ptr<TickBatcher> batcher_;
};

}  // namespace serve
}  // namespace after

#endif  // AFTER_SERVE_SERVER_H_
