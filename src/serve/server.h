#ifndef AFTER_SERVE_SERVER_H_
#define AFTER_SERVE_SERVER_H_

#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "baselines/nearest_recommender.h"
#include "common/status.h"
#include "common/timer.h"
#include "core/recommender.h"
#include "serve/metrics.h"
#include "serve/room.h"
#include "serve/thread_pool.h"

namespace after {
namespace serve {

/// One online friend-discovery query: "which users should be rendered
/// for `user` in `room` right now?" (Definition 1 at the current tick).
struct FriendRequest {
  int room = 0;
  int user = 0;
  /// Latency budget in milliseconds, measured from admission (so queue
  /// wait counts). 0 = use the server default; < 0 = no deadline.
  double deadline_ms = 0.0;
};

struct FriendResponse {
  /// OK (possibly degraded, see used_fallback), kTimeout (deadline
  /// expired while queued), kResourceExhausted (shed at admission),
  /// kNotFound / kInvalidData (bad room / user).
  Status status;
  /// recommended[w] == true => render w for the requesting user. The
  /// requesting user's own slot is always false. Empty on error.
  std::vector<bool> recommended;
  /// True when the answer came from the degradation fallback because the
  /// primary model missed the deadline or misbehaved.
  bool used_fallback = false;
  /// Tick of the room snapshot the answer was computed against.
  int tick = -1;
  /// End-to-end latency (admission -> response), milliseconds.
  double latency_ms = 0.0;
};

/// Creates primary-model instances. Called once at server construction
/// to probe capabilities, then (for models whose thread_safe() is false)
/// once per (room, user) stream on first request.
using RecommenderFactory = std::function<std::unique_ptr<Recommender>()>;

struct ServerOptions {
  int num_threads = 4;
  /// Bound of the request queue; admissions beyond it are shed with
  /// kResourceExhausted.
  int queue_capacity = 1024;
  /// Deadline applied when FriendRequest::deadline_ms == 0; <= 0 means
  /// no default deadline.
  double default_deadline_ms = 50.0;
  /// Display budget of the NearestRecommender degradation fallback.
  int fallback_k = 10;
};

/// In-process online serving runtime: shards N conference rooms across a
/// bounded worker pool and answers FriendRequests against each room's
/// current snapshot.
///
/// Degradation ladder (docs/serving.md):
///  1. queue full at admission            -> shed, kResourceExhausted
///  2. deadline expired while queued      -> kTimeout, no work done
///  3. primary misses deadline/misbehaves -> NearestRecommender answer,
///                                           OK with used_fallback=true
///  4. otherwise                          -> primary answer, OK
///
/// Model placement honors Recommender::thread_safe(): a thread-safe
/// primary is built once and shared lock-free by every room and worker;
/// a stateful primary (POSHGNN, the recurrent baselines, COMURNet) is
/// instantiated lazily per (room, user) stream — preserving its
/// per-session recurrent state exactly as the offline evaluator would —
/// and its calls are serialized per instance.
class RecommendationServer {
 public:
  RecommendationServer(std::vector<std::unique_ptr<Room>> rooms,
                       RecommenderFactory primary_factory,
                       const ServerOptions& options);
  ~RecommendationServer();

  RecommendationServer(const RecommendationServer&) = delete;
  RecommendationServer& operator=(const RecommendationServer&) = delete;

  /// Asynchronous path: admits the request (or sheds it) and invokes
  /// `done` exactly once — on a worker thread on completion, or inline
  /// when shed.
  void Submit(const FriendRequest& request,
              std::function<void(const FriendResponse&)> done);

  /// Synchronous convenience wrapper: Submit + wait.
  FriendResponse Handle(const FriendRequest& request);

  /// Advances one room / every room one tick (simulation or replay).
  Status TickRoom(int room);
  void TickAll();

  int num_rooms() const { return static_cast<int>(rooms_.size()); }
  Room& room(int index) { return *rooms_[index]; }

  ServerMetrics& metrics() { return metrics_; }

  /// True when the probed primary is shared across threads (thread-safe)
  /// rather than instantiated per (room, user).
  bool primary_is_shared() const { return primary_shared_ != nullptr; }

  /// Stops admissions, drains in-flight requests, joins workers.
  /// Idempotent; also run by the destructor.
  void Shutdown();

 private:
  /// A stateful primary instance bound to one (room, user) stream.
  struct StreamModel {
    std::unique_ptr<Recommender> model;
    std::mutex mutex;
  };

  FriendResponse Process(const FriendRequest& request,
                         const Deadline& deadline);
  StreamModel& StreamFor(int room, int user);

  ServerOptions options_;
  std::vector<std::unique_ptr<Room>> rooms_;
  RecommenderFactory factory_;
  /// Set when the probed primary reports thread_safe(): one instance
  /// serves everything with no locking.
  std::unique_ptr<Recommender> primary_shared_;
  /// Lazily grown per-(room, user) instances otherwise.
  std::vector<std::unordered_map<int, std::unique_ptr<StreamModel>>>
      stream_models_;
  std::mutex stream_models_mutex_;
  NearestRecommender fallback_;
  ServerMetrics metrics_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace serve
}  // namespace after

#endif  // AFTER_SERVE_SERVER_H_
