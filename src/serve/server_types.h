#ifndef AFTER_SERVE_SERVER_TYPES_H_
#define AFTER_SERVE_SERVER_TYPES_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/status.h"
#include "core/recommender.h"

namespace after {
namespace serve {

/// One online friend-discovery query: "which users should be rendered
/// for `user` in `room` right now?" (Definition 1 at the current tick).
struct FriendRequest {
  int room = 0;
  int user = 0;
  /// Latency budget in milliseconds, measured from admission (so queue
  /// wait counts). 0 = use the server default; < 0 = no deadline.
  double deadline_ms = 0.0;
};

struct FriendResponse {
  /// OK (possibly degraded, see used_fallback), kTimeout (deadline
  /// expired while queued), kResourceExhausted (shed at admission),
  /// kNotFound / kInvalidData (bad room / user).
  Status status;
  /// recommended[w] == true => render w for the requesting user. The
  /// requesting user's own slot is always false. Empty on error.
  std::vector<bool> recommended;
  /// True when the answer came from the degradation fallback because the
  /// primary model missed the deadline or misbehaved.
  bool used_fallback = false;
  /// Tick of the room snapshot the answer was computed against.
  int tick = -1;
  /// End-to-end latency (admission -> response), milliseconds.
  double latency_ms = 0.0;
};

/// Creates primary-model instances. Called once at server construction
/// to probe capabilities, then (for models whose thread_safe() is false)
/// once per (room, user) stream on first request.
using RecommenderFactory = std::function<std::unique_ptr<Recommender>()>;

}  // namespace serve
}  // namespace after

#endif  // AFTER_SERVE_SERVER_TYPES_H_
