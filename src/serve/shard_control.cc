#include "serve/shard_control.h"

#include <utility>

#include "common/check.h"

namespace after {
namespace serve {

ShardControl::ShardControl(RecommendationServer* server, RoomFactory factory)
    : server_(server), factory_(std::move(factory)) {
  AFTER_CHECK(server_ != nullptr);
  AFTER_CHECK(factory_ != nullptr);
}

bool ShardControl::Owns(int room) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return owned_.count(room) > 0;
}

std::vector<int> ShardControl::OwnedRooms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<int> rooms;
  rooms.reserve(owned_.size());
  for (const auto& [room, epoch] : owned_) rooms.push_back(room);
  return rooms;
}

uint64_t ShardControl::EpochFor(int room) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = last_epoch_.find(room);
  return it == last_epoch_.end() ? 0 : it->second;
}

void ShardControl::set_durability(DurabilityManager* durability) {
  durability_ = durability;
}

void ShardControl::NoteDurabilityFailure(const Status& status) {
  (void)status;
  // The grant/release itself took effect; only its durable trace is
  // degraded. Recovery after a crash in this window re-grants the room
  // fresh, which partitioned serving already survives.
  server_->metrics().errors.fetch_add(1, std::memory_order_relaxed);
}

Status ShardControl::Assign(int room, uint64_t epoch,
                            const std::string& state, bool primary) {
  bool already_hosting = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto last = last_epoch_.find(room);
    if (last != last_epoch_.end() && epoch <= last->second)
      return InvalidArgumentError(
          "stale assign for room " + std::to_string(room) + " (epoch " +
          std::to_string(epoch) + " <= " + std::to_string(last->second) + ")");
    last_epoch_[room] = epoch;
    auto held = owned_.find(room);
    if (held != owned_.end()) {
      held->second = epoch;
      already_hosting = true;
    }
  }
  if (already_hosting) {
    server_->metrics().rooms_assigned.fetch_add(1, std::memory_order_relaxed);
    // Standby promotion: the grant only advances the epoch, the room
    // keeps serving untouched. Journaled without the reset flag — the
    // room's durable incarnation continues.
    if (state.empty()) {
      if (durability_ != nullptr) {
        const Status durable =
            durability_->RecordAssign(room, epoch, primary, /*reset=*/false);
        if (!durable.ok()) NoteDurabilityFailure(durable);
      }
      return OkStatus();
    }
    // Migration onto a shard that already hosts the room (an existing
    // standby becoming primary): overwrite the local replica with the
    // old primary's exact state. ApplyState is all-or-nothing, so a bad
    // blob leaves the replica serving as before.
    const std::shared_ptr<Room> hosted = server_->FindRoom(room);
    if (hosted == nullptr)
      return InternalError("owned room " + std::to_string(room) +
                           " was not hosted");
    AFTER_RETURN_IF_ERROR(hosted->ApplyState(state).Annotate(
        "assign room " + std::to_string(room)));
    server_->metrics().migrations_in.fetch_add(1, std::memory_order_relaxed);
    if (durability_ != nullptr) {
      // The blob overwrote local state: new incarnation, and the handoff
      // state exists nowhere else durable — checkpoint it immediately.
      Status durable =
          durability_->RecordAssign(room, epoch, primary, /*reset=*/true);
      if (durable.ok()) durable = durability_->CheckpointNow(*hosted);
      if (!durable.ok()) NoteDurabilityFailure(durable);
    }
    return OkStatus();
  }
  // Build outside the lock: factory + ApplyState can be slow (dataset
  // validation, state parsing) and must not block Owns() checks on the
  // request path. All-or-nothing: nothing is hosted until every step
  // below succeeded.
  Result<std::unique_ptr<Room>> built = factory_(room);
  if (!built.ok())
    return built.status().Annotate("assign room " + std::to_string(room));
  std::unique_ptr<Room> hosted = std::move(built).value();
  if (!state.empty())
    AFTER_RETURN_IF_ERROR(hosted->ApplyState(state).Annotate(
        "assign room " + std::to_string(room)));
  AFTER_RETURN_IF_ERROR(server_->AddRoom(std::move(hosted)));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    owned_[room] = epoch;
  }
  server_->metrics().rooms_assigned.fetch_add(1, std::memory_order_relaxed);
  if (!state.empty())
    server_->metrics().migrations_in.fetch_add(1, std::memory_order_relaxed);
  if (durability_ != nullptr) {
    // Every new build is a fresh durable incarnation (reset); a grant
    // that carried migration state gets an immediate checkpoint, since
    // the blob exists nowhere else durable.
    Status durable =
        durability_->RecordAssign(room, epoch, primary, /*reset=*/true);
    if (durable.ok() && !state.empty()) {
      const std::shared_ptr<Room> applied = server_->FindRoom(room);
      if (applied != nullptr) durable = durability_->CheckpointNow(*applied);
    }
    if (!durable.ok()) NoteDurabilityFailure(durable);
  }
  return OkStatus();
}

Result<std::string> ShardControl::Release(int room, uint64_t epoch) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto held = owned_.find(room);
    if (held == owned_.end())
      return NotOwnerError("room " + std::to_string(room) +
                           " is not owned by this shard");
    if (epoch < held->second)
      return InvalidArgumentError(
          "stale release for room " + std::to_string(room) + " (epoch " +
          std::to_string(epoch) + " < " + std::to_string(held->second) + ")");
    // Un-own first: from this instant new requests answer kNotOwner and
    // the router re-routes them, while requests already dispatched into
    // the server drain against the room's shared_ptr.
    owned_.erase(held);
    auto last = last_epoch_.find(room);
    if (last == last_epoch_.end() || epoch > last->second)
      last_epoch_[room] = epoch;
  }
  const std::shared_ptr<Room> removed = server_->RemoveRoom(room);
  if (removed == nullptr)
    return InternalError("owned room " + std::to_string(room) +
                         " was not hosted");
  server_->metrics().rooms_released.fetch_add(1, std::memory_order_relaxed);
  if (durability_ != nullptr) {
    const Status durable = durability_->RecordRelease(room, epoch);
    if (!durable.ok()) NoteDurabilityFailure(durable);
  }
  // Removed from the registry, so no ticker advances it anymore: the
  // exported state is the final word on this room from this shard.
  return removed->ExportState();
}

Result<std::vector<wire::RecoveredRoom>> ShardControl::RecoverFromDurable() {
  std::lock_guard<std::mutex> recover_lock(recover_mutex_);
  if (recovered_) return report_;
  recovered_ = true;
  if (durability_ == nullptr) return report_;
  Result<DurabilityManager::RecoveryPlan> plan =
      durability_->LoadRecoveryPlan();
  if (!plan.ok()) return plan.status();
  int data_loss = plan.value().data_loss_rooms;
  int64_t replayed = 0;
  for (const DurabilityManager::RecoveryEntry& entry : plan.value().entries) {
    Result<std::unique_ptr<Room>> built = factory_(entry.room);
    if (!built.ok()) {
      ++data_loss;
      continue;
    }
    std::unique_ptr<Room> room = std::move(built).value();
    if (!entry.checkpoint_state.empty() &&
        !room->ApplyState(entry.checkpoint_state).ok()) {
      // ApplyState is all-or-nothing and the checkpoint already passed
      // its container checksum, so a failure here means the blob does
      // not fit this dataset/session anymore: data loss, not a crash.
      ++data_loss;
      continue;
    }
    for (const JournalRecord& record : entry.ticks) {
      if (record.tick <= room->tick()) continue;
      Room::TickFrame frame;
      frame.tick = record.tick;
      frame.positions = record.positions;
      frame.goals = record.goals;
      // A frame that no longer applies ends the replay; the room keeps
      // everything replayed so far (strictly better than discarding).
      if (!room->ApplyTickFrame(frame).ok()) break;
      ++replayed;
    }
    const int tick = room->tick();
    if (!server_->AddRoom(std::move(room)).ok()) {
      ++data_loss;
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      owned_[entry.room] = entry.epoch;
      auto last = last_epoch_.find(entry.room);
      if (last == last_epoch_.end() || entry.epoch > last->second)
        last_epoch_[entry.room] = entry.epoch;
    }
    // Re-fence the ownership in the (possibly truncated) journal —
    // non-reset, the prior records still describe this incarnation —
    // and re-checkpoint at the recovered tick so the next recovery
    // starts from here instead of replaying the same frames again.
    Status durable = durability_->RecordAssign(entry.room, entry.epoch,
                                               entry.primary,
                                               /*reset=*/false);
    if (durable.ok()) {
      const std::shared_ptr<Room> hosted = server_->FindRoom(entry.room);
      if (hosted != nullptr) durable = durability_->CheckpointNow(*hosted);
    }
    if (!durable.ok()) NoteDurabilityFailure(durable);
    wire::RecoveredRoom recovered;
    recovered.room = entry.room;
    recovered.epoch = entry.epoch;
    recovered.primary = entry.primary;
    recovered.tick = tick;
    report_.push_back(recovered);
  }
  server_->metrics().rooms_recovered.fetch_add(
      static_cast<int64_t>(report_.size()), std::memory_order_relaxed);
  server_->metrics().records_replayed.fetch_add(replayed,
                                                std::memory_order_relaxed);
  if (data_loss > 0)
    server_->metrics().data_loss_rooms.fetch_add(data_loss,
                                                 std::memory_order_relaxed);
  return report_;
}

std::vector<wire::RecoveredRoom> ShardControl::RecoverReport() const {
  std::lock_guard<std::mutex> recover_lock(recover_mutex_);
  return report_;
}

}  // namespace serve
}  // namespace after
