#include "serve/shard_control.h"

#include <utility>

#include "common/check.h"

namespace after {
namespace serve {

ShardControl::ShardControl(RecommendationServer* server, RoomFactory factory)
    : server_(server), factory_(std::move(factory)) {
  AFTER_CHECK(server_ != nullptr);
  AFTER_CHECK(factory_ != nullptr);
}

bool ShardControl::Owns(int room) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return owned_.count(room) > 0;
}

std::vector<int> ShardControl::OwnedRooms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<int> rooms;
  rooms.reserve(owned_.size());
  for (const auto& [room, epoch] : owned_) rooms.push_back(room);
  return rooms;
}

uint64_t ShardControl::EpochFor(int room) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = last_epoch_.find(room);
  return it == last_epoch_.end() ? 0 : it->second;
}

Status ShardControl::Assign(int room, uint64_t epoch,
                            const std::string& state) {
  bool already_hosting = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto last = last_epoch_.find(room);
    if (last != last_epoch_.end() && epoch <= last->second)
      return InvalidArgumentError(
          "stale assign for room " + std::to_string(room) + " (epoch " +
          std::to_string(epoch) + " <= " + std::to_string(last->second) + ")");
    last_epoch_[room] = epoch;
    auto held = owned_.find(room);
    if (held != owned_.end()) {
      held->second = epoch;
      already_hosting = true;
    }
  }
  if (already_hosting) {
    server_->metrics().rooms_assigned.fetch_add(1, std::memory_order_relaxed);
    // Standby promotion: the grant only advances the epoch, the room
    // keeps serving untouched.
    if (state.empty()) return OkStatus();
    // Migration onto a shard that already hosts the room (an existing
    // standby becoming primary): overwrite the local replica with the
    // old primary's exact state. ApplyState is all-or-nothing, so a bad
    // blob leaves the replica serving as before.
    const std::shared_ptr<Room> hosted = server_->FindRoom(room);
    if (hosted == nullptr)
      return InternalError("owned room " + std::to_string(room) +
                           " was not hosted");
    AFTER_RETURN_IF_ERROR(hosted->ApplyState(state).Annotate(
        "assign room " + std::to_string(room)));
    server_->metrics().migrations_in.fetch_add(1, std::memory_order_relaxed);
    return OkStatus();
  }
  // Build outside the lock: factory + ApplyState can be slow (dataset
  // validation, state parsing) and must not block Owns() checks on the
  // request path. All-or-nothing: nothing is hosted until every step
  // below succeeded.
  Result<std::unique_ptr<Room>> built = factory_(room);
  if (!built.ok())
    return built.status().Annotate("assign room " + std::to_string(room));
  std::unique_ptr<Room> hosted = std::move(built).value();
  if (!state.empty())
    AFTER_RETURN_IF_ERROR(hosted->ApplyState(state).Annotate(
        "assign room " + std::to_string(room)));
  AFTER_RETURN_IF_ERROR(server_->AddRoom(std::move(hosted)));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    owned_[room] = epoch;
  }
  server_->metrics().rooms_assigned.fetch_add(1, std::memory_order_relaxed);
  if (!state.empty())
    server_->metrics().migrations_in.fetch_add(1, std::memory_order_relaxed);
  return OkStatus();
}

Result<std::string> ShardControl::Release(int room, uint64_t epoch) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto held = owned_.find(room);
    if (held == owned_.end())
      return NotOwnerError("room " + std::to_string(room) +
                           " is not owned by this shard");
    if (epoch < held->second)
      return InvalidArgumentError(
          "stale release for room " + std::to_string(room) + " (epoch " +
          std::to_string(epoch) + " < " + std::to_string(held->second) + ")");
    // Un-own first: from this instant new requests answer kNotOwner and
    // the router re-routes them, while requests already dispatched into
    // the server drain against the room's shared_ptr.
    owned_.erase(held);
    auto last = last_epoch_.find(room);
    if (last == last_epoch_.end() || epoch > last->second)
      last_epoch_[room] = epoch;
  }
  const std::shared_ptr<Room> removed = server_->RemoveRoom(room);
  if (removed == nullptr)
    return InternalError("owned room " + std::to_string(room) +
                         " was not hosted");
  server_->metrics().rooms_released.fetch_add(1, std::memory_order_relaxed);
  // Removed from the registry, so no ticker advances it anymore: the
  // exported state is the final word on this room from this shard.
  return removed->ExportState();
}

}  // namespace serve
}  // namespace after
