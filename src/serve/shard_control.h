#ifndef AFTER_SERVE_SHARD_CONTROL_H_
#define AFTER_SERVE_SHARD_CONTROL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "serve/checkpoint.h"
#include "serve/room.h"
#include "serve/server.h"
#include "serve/wire.h"

namespace after {
namespace serve {

/// Builds a fresh (state-less) room for an id, from the shard's own
/// dataset and a deterministic per-room seed. Invoked when the router
/// grants a room this shard has never hosted.
using RoomFactory = std::function<Result<std::unique_ptr<Room>>(int room)>;

/// The shard-side half of partitioned room ownership (docs/serving.md).
/// A shard starts owning nothing; the router grants and revokes rooms
/// with kRoomAssign / kRoomRelease control frames, and ShardControl
/// keeps the authoritative owned-set in lockstep with the rooms hosted
/// by the RecommendationServer:
///
///  - Assign: build the room (fresh via the factory, or restored from a
///    migration blob via Room::ApplyState — all-or-nothing, so a corrupt
///    blob leaves the shard unchanged) and only then host it. Epochs are
///    the staleness fence: a grant older than what we last saw for the
///    room is rejected, so reordered control frames cannot resurrect
///    ownership the router already moved elsewhere.
///  - Release: un-own FIRST (new requests answer kNotOwner immediately),
///    then unhost and export the room's final state for the router to
///    forward to the new owner. Requests already processing against the
///    room hold its shared_ptr and drain normally.
///
/// Thread-safe: control frames arrive on connection reader threads while
/// request threads call Owns().
class ShardControl {
 public:
  ShardControl(RecommendationServer* server, RoomFactory factory);

  bool Owns(int room) const;
  std::vector<int> OwnedRooms() const;
  /// Latest epoch observed for the room in any grant or release; 0 when
  /// the shard has never heard of it (the kNotOwner frame's epoch field).
  uint64_t EpochFor(int room) const;

  /// Attaches the shard's durability subsystem (serve/checkpoint.h):
  /// grants and releases are journaled, migration blobs are checkpointed
  /// on arrival, and RecoverFromDurable() becomes able to rebuild the
  /// owned-set after a restart. Borrowed; set before control traffic.
  void set_durability(DurabilityManager* durability);

  /// Handles a kRoomAssign grant. `state` empty -> fresh room from the
  /// factory; non-empty -> migration handoff (factory room + ApplyState
  /// before hosting). Re-granting an owned room at a newer epoch just
  /// advances the epoch (standby promotion needs no rebuild); a grant at
  /// an older-or-equal epoch than one already processed for the room is
  /// rejected with kInvalidArgument. `primary` is the role the router
  /// granted — recorded in the durable ledger so recovery reports it.
  Status Assign(int room, uint64_t epoch, const std::string& state,
                bool primary = false);

  /// Handles a kRoomRelease revocation: stops owning the room and
  /// returns its final ExportState() blob. kNotOwner when the room is
  /// not owned here; kInvalidArgument when the epoch is stale.
  Result<std::string> Release(int room, uint64_t epoch);

  /// Cold-restart recovery (docs/durability.md): folds the durability
  /// subsystem's checkpoints + journal into rooms, replays each room's
  /// post-checkpoint tick frames, hosts the results, and re-owns them at
  /// their journaled epochs. Idempotent — the first call does the work,
  /// every later call (e.g. a router's kRoomRecover query) returns the
  /// same report. Unrecoverable rooms (corrupt checkpoint, factory or
  /// apply failure) are counted as data loss and omitted from the
  /// report, never fatal. Empty report when no durability is attached or
  /// nothing durable exists.
  Result<std::vector<wire::RecoveredRoom>> RecoverFromDurable();

  /// The report of the recovery that already ran (empty before/without
  /// one) — what a kRoomRecover query answers with.
  std::vector<wire::RecoveredRoom> RecoverReport() const;

 private:
  /// Count a non-fatal durable-ledger failure: serving continues, only
  /// recoverability degraded.
  void NoteDurabilityFailure(const Status& status);

  RecommendationServer* server_;
  RoomFactory factory_;
  DurabilityManager* durability_ = nullptr;
  mutable std::mutex mutex_;
  /// room -> epoch of the active grant.
  std::unordered_map<int, uint64_t> owned_;
  /// room -> newest epoch seen in any control frame (survives release,
  /// fencing late reordered grants).
  std::unordered_map<int, uint64_t> last_epoch_;
  /// Recovery runs once; serialized separately from mutex_ so the slow
  /// rebuild never blocks Owns() on the request path.
  mutable std::mutex recover_mutex_;
  bool recovered_ = false;
  std::vector<wire::RecoveredRoom> report_;
};

}  // namespace serve
}  // namespace after

#endif  // AFTER_SERVE_SHARD_CONTROL_H_
