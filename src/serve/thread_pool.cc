#include "serve/thread_pool.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace after {
namespace serve {

ThreadPool::ThreadPool(int num_threads, int queue_capacity)
    : capacity_(std::max(1, queue_capacity)) {
  AFTER_CHECK(num_threads > 0);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i)
    workers_.emplace_back([this] { WorkerLoop(); });
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::TrySubmit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_ || static_cast<int>(queue_.size()) >= capacity_)
      return false;
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return true;
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) {
      // Idempotent: a second call (destructor after explicit Shutdown)
      // must not re-join already-joined threads.
      if (workers_.empty()) return;
    }
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_)
    if (worker.joinable()) worker.join();
  workers_.clear();
}

int ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(queue_.size());
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown_ && drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace serve
}  // namespace after
