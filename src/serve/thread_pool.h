#ifndef AFTER_SERVE_THREAD_POOL_H_
#define AFTER_SERVE_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace after {
namespace serve {

/// Fixed-size worker pool over a bounded FIFO task queue. The bound is
/// the serving runtime's admission-control surface: TrySubmit never
/// blocks and simply reports failure when the queue is at capacity, so
/// callers can shed load instead of building an unbounded backlog.
///
/// Guarantees:
///  - Tasks submitted from one thread run in FIFO order relative to each
///    other (a single worker therefore executes them strictly in order).
///  - Shutdown() stops admissions, drains every already-admitted task,
///    and joins the workers; it is idempotent and runs in the destructor.
class ThreadPool {
 public:
  ThreadPool(int num_threads, int queue_capacity);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` without blocking. Returns false when the queue is
  /// at capacity or the pool is shut down; the task is then dropped.
  bool TrySubmit(std::function<void()> task);

  /// Stops accepting work, runs every queued task, joins all workers.
  void Shutdown();

  int num_threads() const { return static_cast<int>(workers_.size()); }
  int queue_capacity() const { return capacity_; }

  /// Tasks admitted but not yet picked up by a worker.
  int queue_depth() const;

 private:
  void WorkerLoop();

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int capacity_;
  bool shutdown_ = false;
};

}  // namespace serve
}  // namespace after

#endif  // AFTER_SERVE_THREAD_POOL_H_
