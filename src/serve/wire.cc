#include "serve/wire.h"

#include <cstring>
#include <sstream>

namespace after {
namespace serve {
namespace wire {
namespace {

// ---- little-endian primitives ------------------------------------------

void PutU8(uint8_t v, std::string* out) {
  out->push_back(static_cast<char>(v));
}

void PutU16(uint16_t v, std::string* out) {
  PutU8(static_cast<uint8_t>(v & 0xff), out);
  PutU8(static_cast<uint8_t>(v >> 8), out);
}

void PutU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i)
    PutU8(static_cast<uint8_t>((v >> (8 * i)) & 0xff), out);
}

void PutU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i)
    PutU8(static_cast<uint8_t>((v >> (8 * i)) & 0xff), out);
}

void PutI32(int32_t v, std::string* out) {
  PutU32(static_cast<uint32_t>(v), out);
}

void PutF64(double v, std::string* out) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits, out);
}

/// Sequential all-or-nothing payload reader: every Take* either yields
/// the next field or trips the failure latch, and decoders check
/// ok() && AtEnd() once at the close — mirroring how nn/artifact reads
/// its header lines.
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

  bool ok() const { return ok_; }
  bool AtEnd() const { return position_ == bytes_.size(); }
  size_t remaining() const { return bytes_.size() - position_; }

  uint8_t TakeU8() {
    if (!Require(1)) return 0;
    return static_cast<uint8_t>(bytes_[position_++]);
  }

  uint16_t TakeU16() {
    if (!Require(2)) return 0;
    uint16_t v = 0;
    for (int i = 0; i < 2; ++i)
      v |= static_cast<uint16_t>(static_cast<uint8_t>(bytes_[position_++]))
           << (8 * i);
    return v;
  }

  uint32_t TakeU32() {
    if (!Require(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<uint32_t>(static_cast<uint8_t>(bytes_[position_++]))
           << (8 * i);
    return v;
  }

  uint64_t TakeU64() {
    if (!Require(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<uint64_t>(static_cast<uint8_t>(bytes_[position_++]))
           << (8 * i);
    return v;
  }

  int32_t TakeI32() { return static_cast<int32_t>(TakeU32()); }

  double TakeF64() {
    const uint64_t bits = TakeU64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::string_view TakeBytes(size_t count) {
    if (!Require(count)) return {};
    std::string_view view = bytes_.substr(position_, count);
    position_ += count;
    return view;
  }

 private:
  bool Require(size_t count) {
    if (!ok_ || remaining() < count) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::string_view bytes_;
  size_t position_ = 0;
  bool ok_ = true;
};

void AppendHeader(MessageType type, uint32_t payload_len, std::string* out) {
  PutU32(kMagic, out);
  PutU8(kProtocolVersion, out);
  PutU8(static_cast<uint8_t>(type), out);
  PutU16(0, out);  // reserved
  PutU32(payload_len, out);
}

void AppendFramed(MessageType type, const std::string& payload,
                  std::string* out) {
  AppendHeader(type, static_cast<uint32_t>(payload.size()), out);
  out->append(payload);
}

Status Malformed(const char* what) {
  return InvalidArgumentError(std::string("wire: ") + what);
}

constexpr uint8_t kMaxStatusCode =
    static_cast<uint8_t>(StatusCode::kDataLoss);

/// Bytes per entry of a kRoomRecover report (room + epoch + primary +
/// tick); bounds the declared entry count against the payload size.
constexpr size_t kRecoveredRoomBytes = 4 + 8 + 1 + 4;

}  // namespace

void AppendRequestFrame(uint64_t id, const FriendRequest& request,
                        std::string* out) {
  std::string payload;
  payload.reserve(24);
  PutU64(id, &payload);
  PutI32(request.room, &payload);
  PutI32(request.user, &payload);
  PutF64(request.deadline_ms, &payload);
  AppendFramed(MessageType::kRequest, payload, out);
}

void AppendResponseFrame(uint64_t id, const FriendResponse& response,
                         std::string* out) {
  std::string payload;
  PutU64(id, &payload);
  PutU8(static_cast<uint8_t>(response.status.code()), &payload);
  PutU8(response.used_fallback ? 1 : 0, &payload);
  PutU16(0, &payload);  // reserved
  PutI32(response.tick, &payload);
  PutF64(response.latency_ms, &payload);
  const std::string& message = response.status.message();
  PutU32(static_cast<uint32_t>(message.size()), &payload);
  payload.append(message);
  const uint32_t bits = static_cast<uint32_t>(response.recommended.size());
  PutU32(bits, &payload);
  for (uint32_t byte = 0; byte * 8 < bits; ++byte) {
    uint8_t packed = 0;
    for (uint32_t bit = 0; bit < 8 && byte * 8 + bit < bits; ++bit)
      if (response.recommended[byte * 8 + bit]) packed |= (1u << bit);
    PutU8(packed, &payload);
  }
  AppendFramed(MessageType::kResponse, payload, out);
}

void AppendPingFrame(uint64_t id, std::string* out) {
  std::string payload;
  PutU64(id, &payload);
  AppendFramed(MessageType::kPing, payload, out);
}

void AppendPongFrame(uint64_t id, std::string* out) {
  std::string payload;
  PutU64(id, &payload);
  AppendFramed(MessageType::kPong, payload, out);
}

void AppendRoomAssignFrame(uint64_t id, int32_t room, uint64_t epoch,
                           bool primary, const std::string& state,
                           std::string* out) {
  std::string payload;
  payload.reserve(25 + state.size());
  PutU64(id, &payload);
  PutI32(room, &payload);
  PutU64(epoch, &payload);
  PutU8(primary ? 1 : 0, &payload);
  PutU32(static_cast<uint32_t>(state.size()), &payload);
  payload.append(state);
  AppendFramed(MessageType::kRoomAssign, payload, out);
}

void AppendRoomReleaseFrame(uint64_t id, int32_t room, uint64_t epoch,
                            std::string* out) {
  std::string payload;
  payload.reserve(20);
  PutU64(id, &payload);
  PutI32(room, &payload);
  PutU64(epoch, &payload);
  AppendFramed(MessageType::kRoomRelease, payload, out);
}

void AppendNotOwnerFrame(uint64_t id, int32_t room, uint64_t epoch,
                         std::string* out) {
  std::string payload;
  payload.reserve(20);
  PutU64(id, &payload);
  PutI32(room, &payload);
  PutU64(epoch, &payload);
  AppendFramed(MessageType::kNotOwner, payload, out);
}

bool PeekCorrelationId(std::string_view payload, uint64_t* id) {
  if (payload.size() < 8) return false;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<uint64_t>(static_cast<uint8_t>(payload[i])) << (8 * i);
  *id = v;
  return true;
}

Status ExtractFrame(std::string_view buffer, Frame* frame, size_t* consumed) {
  *consumed = 0;
  if (buffer.size() < kHeaderBytes) return OkStatus();  // incomplete
  ByteReader reader(buffer);
  const uint32_t magic = reader.TakeU32();
  if (magic != kMagic) return Malformed("bad magic");
  const uint8_t version = reader.TakeU8();
  if (version != kProtocolVersion) {
    std::ostringstream oss;
    oss << "wire: unsupported protocol version "
        << static_cast<int>(version) << " (speaking "
        << static_cast<int>(kProtocolVersion) << ")";
    return InvalidArgumentError(oss.str());
  }
  const uint8_t type = reader.TakeU8();
  if (type < static_cast<uint8_t>(MessageType::kRequest) ||
      type > static_cast<uint8_t>(MessageType::kRoomRecover))
    return Malformed("unknown message type");
  if (reader.TakeU16() != 0) return Malformed("nonzero reserved field");
  const uint32_t payload_len = reader.TakeU32();
  if (payload_len > kMaxPayloadBytes) {
    std::ostringstream oss;
    oss << "wire: oversized payload (" << payload_len << " bytes > "
        << kMaxPayloadBytes << " max)";
    return InvalidArgumentError(oss.str());
  }
  if (buffer.size() < kHeaderBytes + payload_len)
    return OkStatus();  // incomplete
  frame->type = static_cast<MessageType>(type);
  frame->payload.assign(buffer.data() + kHeaderBytes, payload_len);
  *consumed = kHeaderBytes + payload_len;
  return OkStatus();
}

Result<RequestFrame> DecodeRequest(std::string_view payload) {
  ByteReader reader(payload);
  RequestFrame out;
  out.id = reader.TakeU64();
  out.request.room = reader.TakeI32();
  out.request.user = reader.TakeI32();
  out.request.deadline_ms = reader.TakeF64();
  if (!reader.ok()) return Malformed("truncated request payload");
  if (!reader.AtEnd()) return Malformed("trailing bytes after request");
  return out;
}

Result<ResponseFrame> DecodeResponse(std::string_view payload) {
  ByteReader reader(payload);
  ResponseFrame out;
  out.id = reader.TakeU64();
  const uint8_t code = reader.TakeU8();
  const uint8_t used_fallback = reader.TakeU8();
  if (reader.TakeU16() != 0 && reader.ok())
    return Malformed("nonzero reserved field in response");
  out.response.tick = reader.TakeI32();
  out.response.latency_ms = reader.TakeF64();
  const uint32_t message_len = reader.TakeU32();
  if (!reader.ok()) return Malformed("truncated response payload");
  if (message_len > reader.remaining())
    return Malformed("response message length exceeds payload");
  const std::string_view message = reader.TakeBytes(message_len);
  const uint32_t bits = reader.TakeU32();
  if (!reader.ok()) return Malformed("truncated response payload");
  if (bits > kMaxRecommendedBits)
    return Malformed("oversized recommendation bitmap");
  const size_t packed_bytes = (bits + 7) / 8;
  const std::string_view packed = reader.TakeBytes(packed_bytes);
  if (!reader.ok()) return Malformed("truncated recommendation bitmap");
  if (!reader.AtEnd()) return Malformed("trailing bytes after response");
  if (code > kMaxStatusCode) return Malformed("unknown status code");
  if (used_fallback > 1) return Malformed("non-boolean used_fallback");
  out.response.status =
      Status(static_cast<StatusCode>(code), std::string(message));
  out.response.used_fallback = used_fallback == 1;
  out.response.recommended.resize(bits);
  for (uint32_t bit = 0; bit < bits; ++bit)
    out.response.recommended[bit] =
        (static_cast<uint8_t>(packed[bit / 8]) >> (bit % 8)) & 1;
  return out;
}

Result<uint64_t> DecodePingPong(std::string_view payload) {
  ByteReader reader(payload);
  const uint64_t id = reader.TakeU64();
  if (!reader.ok()) return Malformed("truncated ping payload");
  if (!reader.AtEnd()) return Malformed("trailing bytes after ping");
  return id;
}

Result<RoomAssignFrame> DecodeRoomAssign(std::string_view payload) {
  ByteReader reader(payload);
  RoomAssignFrame out;
  out.id = reader.TakeU64();
  out.room = reader.TakeI32();
  out.epoch = reader.TakeU64();
  const uint8_t primary = reader.TakeU8();
  const uint32_t state_len = reader.TakeU32();
  if (!reader.ok()) return Malformed("truncated room-assign payload");
  if (primary > 1) return Malformed("non-boolean room-assign primary flag");
  if (state_len > reader.remaining())
    return Malformed("room-assign state length exceeds payload");
  out.primary = primary == 1;
  out.state.assign(reader.TakeBytes(state_len));
  if (!reader.ok() || !reader.AtEnd())
    return Malformed("trailing bytes after room-assign");
  return out;
}

Result<RoomReleaseFrame> DecodeRoomRelease(std::string_view payload) {
  ByteReader reader(payload);
  RoomReleaseFrame out;
  out.id = reader.TakeU64();
  out.room = reader.TakeI32();
  out.epoch = reader.TakeU64();
  if (!reader.ok()) return Malformed("truncated room-release payload");
  if (!reader.AtEnd()) return Malformed("trailing bytes after room-release");
  return out;
}

Result<NotOwnerFrame> DecodeNotOwner(std::string_view payload) {
  ByteReader reader(payload);
  NotOwnerFrame out;
  out.id = reader.TakeU64();
  out.room = reader.TakeI32();
  out.epoch = reader.TakeU64();
  if (!reader.ok()) return Malformed("truncated not-owner payload");
  if (!reader.AtEnd()) return Malformed("trailing bytes after not-owner");
  return out;
}

void AppendRoomRecoverQueryFrame(uint64_t id, std::string* out) {
  std::string payload;
  PutU64(id, &payload);
  AppendFramed(MessageType::kRoomRecover, payload, out);
}

void AppendRoomRecoverReportFrame(uint64_t id,
                                  const std::vector<RecoveredRoom>& rooms,
                                  std::string* out) {
  std::string payload;
  payload.reserve(12 + rooms.size() * kRecoveredRoomBytes);
  PutU64(id, &payload);
  PutU32(static_cast<uint32_t>(rooms.size()), &payload);
  for (const RecoveredRoom& room : rooms) {
    PutI32(room.room, &payload);
    PutU64(room.epoch, &payload);
    PutU8(room.primary ? 1 : 0, &payload);
    PutI32(room.tick, &payload);
  }
  AppendFramed(MessageType::kRoomRecover, payload, out);
}

Result<uint64_t> DecodeRoomRecoverQuery(std::string_view payload) {
  ByteReader reader(payload);
  const uint64_t id = reader.TakeU64();
  if (!reader.ok()) return Malformed("truncated room-recover query");
  if (!reader.AtEnd())
    return Malformed("trailing bytes after room-recover query");
  return id;
}

Result<RoomRecoverFrame> DecodeRoomRecoverReport(std::string_view payload) {
  ByteReader reader(payload);
  RoomRecoverFrame out;
  out.id = reader.TakeU64();
  const uint32_t count = reader.TakeU32();
  if (!reader.ok()) return Malformed("truncated room-recover report");
  if (count > reader.remaining() / kRecoveredRoomBytes)
    return Malformed("room-recover entry count exceeds payload");
  out.rooms.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    RecoveredRoom room;
    room.room = reader.TakeI32();
    room.epoch = reader.TakeU64();
    const uint8_t primary = reader.TakeU8();
    room.tick = reader.TakeI32();
    if (!reader.ok()) return Malformed("truncated room-recover entry");
    if (primary > 1)
      return Malformed("non-boolean room-recover primary flag");
    room.primary = primary == 1;
    out.rooms.push_back(room);
  }
  if (!reader.AtEnd())
    return Malformed("trailing bytes after room-recover report");
  return out;
}

}  // namespace wire
}  // namespace serve
}  // namespace after
