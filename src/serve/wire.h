#ifndef AFTER_SERVE_WIRE_H_
#define AFTER_SERVE_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "serve/server_types.h"

namespace after {
namespace serve {
namespace wire {

/// Compact length-prefixed binary wire protocol in front of the serving
/// runtime (docs/serving.md has the byte-level spec). Every message is
/// one frame:
///
///   offset  size  field
///   0       4     magic      0x41465731 ("AFW1"), little-endian
///   4       1     version    kProtocolVersion
///   5       1     type       MessageType
///   6       2     reserved   must be zero
///   8       4     payload length in bytes (<= kMaxPayloadBytes)
///   12      N     payload    (per-type encoding below)
///
/// All multi-byte integers are little-endian with explicit byte
/// (de)serialization, so frames are byte-identical across platforms.
/// Parsing is all-or-nothing in the style of nn/artifact: a decoder
/// either returns a fully validated message or kInvalidArgument with a
/// diagnostic, and never reads past the declared payload. Truncated
/// buffers are not an error at the framing layer — ExtractFrame reports
/// "no complete frame yet" so stream readers can keep accumulating.
inline constexpr uint32_t kMagic = 0x41465731u;  // "1WFA" on the wire
inline constexpr uint8_t kProtocolVersion = 1;
inline constexpr size_t kHeaderBytes = 12;
/// Upper bound on a frame payload; anything larger is a malformed or
/// hostile frame and fails fast instead of allocating unboundedly.
inline constexpr uint32_t kMaxPayloadBytes = 1u << 20;
/// Upper bound on users per room carried in a response bitmap.
inline constexpr uint32_t kMaxRecommendedBits = 1u << 20;

enum class MessageType : uint8_t {
  kRequest = 1,      // client -> server: one FriendRequest
  kResponse = 2,     // server -> client: the matching FriendResponse
  kPing = 3,         // health probe (router -> shard)
  kPong = 4,         // health probe answer
  // Room-ownership control plane (partitioned serving, docs/serving.md).
  kRoomAssign = 5,   // router -> shard: own this room (state optional);
                     // also shard -> router: the reply to kRoomRelease,
                     // carrying the room's final migration state
  kRoomRelease = 6,  // router -> shard: stop owning this room
  kNotOwner = 7,     // shard -> client: reply to a kRequest for a room
                     // this shard does not own; re-route and retry
  kRoomRecover = 8,  // router -> shard: report the rooms you recovered
                     // from durable state; also shard -> router: the
                     // report (room/epoch/primary/tick per entry)
};

/// One decoded frame: the type byte plus the raw payload bytes.
struct Frame {
  MessageType type = MessageType::kRequest;
  std::string payload;
};

/// A FriendRequest tagged with the caller's correlation id; responses
/// echo the id so a connection can have many requests in flight.
struct RequestFrame {
  uint64_t id = 0;
  FriendRequest request;
};

struct ResponseFrame {
  uint64_t id = 0;
  FriendResponse response;
};

/// Room-ownership grant. `state` is empty for a fresh assignment (the
/// shard builds the room from its own dataset/seed) and non-empty for a
/// migration handoff: an opaque Room::ExportState() blob (nn/serialize
/// parameter-block text) the receiving shard applies all-or-nothing.
/// `primary` records the granted role (primary vs warm standby) so the
/// shard's durable ledger can tell an authoritative copy from a replica
/// during cold-restart reconciliation (serve/checkpoint.h). The same
/// frame doubles as the reply to kRoomRelease, carrying the releasing
/// shard's final state so the router can forward it onward (`primary`
/// is meaningless there and sent as 0).
struct RoomAssignFrame {
  uint64_t id = 0;
  int32_t room = 0;
  uint64_t epoch = 0;
  bool primary = false;
  std::string state;
};

struct RoomReleaseFrame {
  uint64_t id = 0;
  int32_t room = 0;
  uint64_t epoch = 0;
};

/// Reply to a kRequest for a room the shard does not own. `epoch` is the
/// shard's latest observed assignment epoch (0 when it never owned the
/// room), so routers can tell a stale table from a racing migration.
struct NotOwnerFrame {
  uint64_t id = 0;
  int32_t room = 0;
  uint64_t epoch = 0;
};

/// One room a shard brought back from its durable directory: the grant
/// epoch and role it held when the journal went quiet, plus the tick it
/// replayed up to. The router's recovery phase (ShardRouter::
/// RecoverPartition) reconciles these reports — newest epoch wins,
/// primaries outrank standbys, stale replicas are released.
struct RecoveredRoom {
  int32_t room = 0;
  uint64_t epoch = 0;
  bool primary = false;
  int32_t tick = 0;
};

/// Shard -> router reply to a kRoomRecover query.
struct RoomRecoverFrame {
  uint64_t id = 0;
  std::vector<RecoveredRoom> rooms;
};

/// Encoders append one complete frame (header + payload) to *out.
void AppendRequestFrame(uint64_t id, const FriendRequest& request,
                        std::string* out);
void AppendResponseFrame(uint64_t id, const FriendResponse& response,
                         std::string* out);
void AppendPingFrame(uint64_t id, std::string* out);
void AppendPongFrame(uint64_t id, std::string* out);
void AppendRoomAssignFrame(uint64_t id, int32_t room, uint64_t epoch,
                           bool primary, const std::string& state,
                           std::string* out);
void AppendRoomReleaseFrame(uint64_t id, int32_t room, uint64_t epoch,
                            std::string* out);
void AppendNotOwnerFrame(uint64_t id, int32_t room, uint64_t epoch,
                         std::string* out);
/// The recovery query carries only the correlation id; the report lists
/// every room the shard recovered (possibly none).
void AppendRoomRecoverQueryFrame(uint64_t id, std::string* out);
void AppendRoomRecoverReportFrame(uint64_t id,
                                  const std::vector<RecoveredRoom>& rooms,
                                  std::string* out);

/// Every payload begins with the u64 correlation id, by construction of
/// the encoders above. PeekCorrelationId reads it without decoding the
/// rest of the payload — the multiplexing fast path (serve/net_mux.h):
/// a reader thread matches a response to its waiter by id alone, and
/// only the waiting caller pays for the full type-checked decode.
/// Returns false when the payload is too short to carry an id.
bool PeekCorrelationId(std::string_view payload, uint64_t* id);

/// Pulls the first frame off the front of `buffer` (a connection's read
/// accumulator):
///  - complete frame:  OK, *frame filled, *consumed = bytes to drop;
///  - incomplete:      OK, *consumed == 0 (read more and call again);
///  - malformed header (bad magic/version/reserved, oversized payload):
///    kInvalidArgument — the connection is beyond recovery, close it.
Status ExtractFrame(std::string_view buffer, Frame* frame, size_t* consumed);

/// Payload decoders. All-or-nothing: kInvalidArgument on truncated or
/// oversized payloads, trailing bytes, out-of-range enum values.
Result<RequestFrame> DecodeRequest(std::string_view payload);
Result<ResponseFrame> DecodeResponse(std::string_view payload);
/// Ping and pong payloads are both just the correlation id.
Result<uint64_t> DecodePingPong(std::string_view payload);
Result<RoomAssignFrame> DecodeRoomAssign(std::string_view payload);
Result<RoomReleaseFrame> DecodeRoomRelease(std::string_view payload);
Result<NotOwnerFrame> DecodeNotOwner(std::string_view payload);
/// kRoomRecover is direction-dependent: the router's query is just the
/// id, the shard's report is the id plus the recovered-room list.
Result<uint64_t> DecodeRoomRecoverQuery(std::string_view payload);
Result<RoomRecoverFrame> DecodeRoomRecoverReport(std::string_view payload);

}  // namespace wire
}  // namespace serve
}  // namespace after

#endif  // AFTER_SERVE_WIRE_H_
