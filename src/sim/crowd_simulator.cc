#include "sim/crowd_simulator.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace after {
namespace {

constexpr double kEpsilon = 1e-9;

double Det(const Vec2& a, const Vec2& b) { return a.Cross(b); }

}  // namespace

CrowdSimulator::CrowdSimulator(double time_step) : time_step_(time_step) {
  AFTER_CHECK_GT(time_step, 0.0);
}

int CrowdSimulator::AddAgent(const Vec2& position) {
  return AddAgent(position, AgentParams());
}

int CrowdSimulator::AddAgent(const Vec2& position, const AgentParams& params) {
  Agent agent;
  agent.position = position;
  agent.goal = position;
  agent.params = params;
  agents_.push_back(agent);
  return static_cast<int>(agents_.size()) - 1;
}

void CrowdSimulator::SetGoal(int agent, const Vec2& goal) {
  agents_[agent].goal = goal;
  agents_[agent].has_explicit_pref = false;
}

void CrowdSimulator::SetPreferredVelocity(int agent, const Vec2& velocity) {
  agents_[agent].preferred_velocity = velocity;
  agents_[agent].has_explicit_pref = true;
}

void CrowdSimulator::TeleportAgent(int agent, const Vec2& position) {
  agents_[agent].position = position;
  agents_[agent].velocity = Vec2(0.0, 0.0);
  agents_[agent].has_explicit_pref = false;
}

void CrowdSimulator::SetAgentActive(int agent, bool active) {
  agents_[agent].active = active;
  if (!active) agents_[agent].velocity = Vec2(0.0, 0.0);
}

bool CrowdSimulator::AgentActive(int agent) const {
  return agents_[agent].active;
}

void CrowdSimulator::SetHold(int agent, bool hold) {
  agents_[agent].held = hold;
  if (hold) agents_[agent].velocity = Vec2(0.0, 0.0);
}

bool CrowdSimulator::Held(int agent) const { return agents_[agent].held; }

const Vec2& CrowdSimulator::Position(int agent) const {
  return agents_[agent].position;
}

const Vec2& CrowdSimulator::Velocity(int agent) const {
  return agents_[agent].velocity;
}

const Vec2& CrowdSimulator::Goal(int agent) const {
  return agents_[agent].goal;
}

bool CrowdSimulator::ReachedGoal(int agent, double tolerance) const {
  return Distance(agents_[agent].position, agents_[agent].goal) <= tolerance;
}

void CrowdSimulator::ComputePreferredVelocity(Agent& agent) const {
  if (agent.has_explicit_pref) return;
  const Vec2 to_goal = agent.goal - agent.position;
  const double dist = to_goal.Norm();
  if (dist < kEpsilon) {
    agent.preferred_velocity = Vec2(0.0, 0.0);
    return;
  }
  // Slow down close to the goal to avoid overshoot oscillation.
  const double speed = std::min(agent.params.max_speed, dist / time_step_);
  agent.preferred_velocity = to_goal.Normalized() * speed;
}

void CrowdSimulator::Step() {
  for (size_t i = 0; i < agents_.size(); ++i) {
    Agent& agent = agents_[i];
    if (!agent.active || agent.held) continue;
    ComputePreferredVelocity(agent);
    if (agent.params.right_of_way_bias != 0.0 && !agent.has_explicit_pref) {
      // Apply the bias only under congestion (a neighbor within 4 body
      // diameters) so open-field paths stay straight.
      bool congested = false;
      const double range = 8.0 * agent.params.radius;
      for (size_t j = 0; j < agents_.size() && !congested; ++j) {
        if (j == i || !agents_[j].active) continue;
        if ((agents_[j].position - agent.position).NormSq() < range * range)
          congested = true;
      }
      if (congested) {
        const double c = std::cos(-agent.params.right_of_way_bias);
        const double s = std::sin(-agent.params.right_of_way_bias);
        const Vec2 v = agent.preferred_velocity;
        agent.preferred_velocity = Vec2(c * v.x - s * v.y,
                                        s * v.x + c * v.y);
      }
    }
  }

  std::vector<Vec2> new_velocities(agents_.size());
  for (int i = 0; i < num_agents(); ++i)
    new_velocities[i] = agents_[i].active && !agents_[i].held
                            ? ComputeNewVelocity(i)
                            : Vec2(0.0, 0.0);

  for (int i = 0; i < num_agents(); ++i) {
    if (!agents_[i].active || agents_[i].held) continue;
    agents_[i].velocity = new_velocities[i];
    agents_[i].position += agents_[i].velocity * time_step_;
    agents_[i].has_explicit_pref = false;
  }
}

Vec2 CrowdSimulator::ComputeNewVelocity(int index) const {
  const Agent& self = agents_[index];
  std::vector<Line> lines;

  const double inv_time_horizon = 1.0 / self.params.time_horizon;
  const double neighbor_range_sq =
      self.params.neighbor_dist * self.params.neighbor_dist;

  for (int j = 0; j < num_agents(); ++j) {
    if (j == index || !agents_[j].active) continue;
    const Agent& other = agents_[j];
    const Vec2 relative_position = other.position - self.position;
    if (relative_position.NormSq() > neighbor_range_sq) continue;

    const Vec2 relative_velocity = self.velocity - other.velocity;
    const double dist_sq = relative_position.NormSq();
    const double combined_radius = self.params.radius + other.params.radius;
    const double combined_radius_sq = combined_radius * combined_radius;

    Line line;
    Vec2 u;

    if (dist_sq > combined_radius_sq) {
      // No current collision.
      const Vec2 w =
          relative_velocity - inv_time_horizon * relative_position;
      const double w_length_sq = w.NormSq();
      const double dot1 = w.Dot(relative_position);

      if (dot1 < 0.0 && dot1 * dot1 > combined_radius_sq * w_length_sq) {
        // Project on cut-off circle.
        const double w_length = std::sqrt(w_length_sq);
        const Vec2 unit_w = w * (1.0 / std::max(w_length, kEpsilon));
        line.direction = Vec2(unit_w.y, -unit_w.x);
        u = (combined_radius * inv_time_horizon - w_length) * unit_w;
      } else {
        // Project on legs.
        const double leg = std::sqrt(std::max(0.0, dist_sq - combined_radius_sq));
        if (Det(relative_position, w) > 0.0) {
          // Left leg.
          line.direction =
              Vec2(relative_position.x * leg -
                       relative_position.y * combined_radius,
                   relative_position.x * combined_radius +
                       relative_position.y * leg) *
              (1.0 / dist_sq);
        } else {
          // Right leg.
          line.direction =
              Vec2(relative_position.x * leg +
                       relative_position.y * combined_radius,
                   -relative_position.x * combined_radius +
                       relative_position.y * leg) *
              (-1.0 / dist_sq);
        }
        const double dot2 = relative_velocity.Dot(line.direction);
        u = dot2 * line.direction - relative_velocity;
      }
    } else {
      // Already colliding: resolve within one time step.
      const double inv_time_step = 1.0 / time_step_;
      const Vec2 w = relative_velocity - inv_time_step * relative_position;
      const double w_length = w.Norm();
      const Vec2 unit_w = w * (1.0 / std::max(w_length, kEpsilon));
      line.direction = Vec2(unit_w.y, -unit_w.x);
      u = (combined_radius * inv_time_step - w_length) * unit_w;
    }

    // Reciprocity: each agent takes half the responsibility.
    line.point = self.velocity + 0.5 * u;
    lines.push_back(line);
  }

  Vec2 result;
  const int fail_line =
      LinearProgram2(lines, self.params.max_speed, self.preferred_velocity,
                     /*direction_opt=*/false, result);
  if (fail_line < static_cast<int>(lines.size())) {
    LinearProgram3(lines, 0, fail_line, self.params.max_speed, result);
  }
  return result;
}

bool CrowdSimulator::LinearProgram1(const std::vector<Line>& lines,
                                    int line_index, double radius,
                                    const Vec2& opt_velocity,
                                    bool direction_opt, Vec2& result) {
  const Line& line = lines[line_index];
  const double dot = line.point.Dot(line.direction);
  const double discriminant =
      dot * dot + radius * radius - line.point.NormSq();
  if (discriminant < 0.0) return false;  // max-speed circle misses the line

  const double sqrt_disc = std::sqrt(discriminant);
  double t_left = -dot - sqrt_disc;
  double t_right = -dot + sqrt_disc;

  for (int i = 0; i < line_index; ++i) {
    const double denominator = Det(line.direction, lines[i].direction);
    const double numerator =
        Det(lines[i].direction, line.point - lines[i].point);
    if (std::abs(denominator) <= kEpsilon) {
      if (numerator < 0.0) return false;  // parallel and fully infeasible
      continue;
    }
    const double t = numerator / denominator;
    if (denominator >= 0.0) {
      t_right = std::min(t_right, t);
    } else {
      t_left = std::max(t_left, t);
    }
    if (t_left > t_right) return false;
  }

  if (direction_opt) {
    if (opt_velocity.Dot(line.direction) > 0.0) {
      result = line.point + t_right * line.direction;
    } else {
      result = line.point + t_left * line.direction;
    }
  } else {
    const double t = line.direction.Dot(opt_velocity - line.point);
    if (t < t_left) {
      result = line.point + t_left * line.direction;
    } else if (t > t_right) {
      result = line.point + t_right * line.direction;
    } else {
      result = line.point + t * line.direction;
    }
  }
  return true;
}

int CrowdSimulator::LinearProgram2(const std::vector<Line>& lines,
                                   double radius, const Vec2& opt_velocity,
                                   bool direction_opt, Vec2& result) {
  if (direction_opt) {
    result = opt_velocity * radius;  // opt_velocity is a unit direction
  } else if (opt_velocity.NormSq() > radius * radius) {
    result = opt_velocity.Normalized() * radius;
  } else {
    result = opt_velocity;
  }

  for (int i = 0; i < static_cast<int>(lines.size()); ++i) {
    if (Det(lines[i].direction, lines[i].point - result) > 0.0) {
      // result violates constraint i; re-optimize on that line.
      const Vec2 saved = result;
      if (!LinearProgram1(lines, i, radius, opt_velocity, direction_opt,
                          result)) {
        result = saved;
        return i;
      }
    }
  }
  return static_cast<int>(lines.size());
}

void CrowdSimulator::LinearProgram3(const std::vector<Line>& lines,
                                    int num_obst, int begin_line,
                                    double radius, Vec2& result) {
  double distance = 0.0;
  for (int i = begin_line; i < static_cast<int>(lines.size()); ++i) {
    if (Det(lines[i].direction, lines[i].point - result) <= distance)
      continue;
    // result violates constraint i beyond current penetration distance.
    std::vector<Line> projected(lines.begin(), lines.begin() + num_obst);
    for (int j = num_obst; j < i; ++j) {
      Line line;
      const double determinant = Det(lines[i].direction, lines[j].direction);
      if (std::abs(determinant) <= kEpsilon) {
        if (lines[i].direction.Dot(lines[j].direction) > 0.0) continue;
        line.point = 0.5 * (lines[i].point + lines[j].point);
      } else {
        line.point =
            lines[i].point +
            (Det(lines[j].direction, lines[i].point - lines[j].point) /
             determinant) *
                lines[i].direction;
      }
      line.direction = (lines[j].direction - lines[i].direction).Normalized();
      projected.push_back(line);
    }

    const Vec2 saved = result;
    if (LinearProgram2(projected, radius,
                       Vec2(-lines[i].direction.y, lines[i].direction.x),
                       /*direction_opt=*/true,
                       result) < static_cast<int>(projected.size())) {
      result = saved;
    }
    distance = Det(lines[i].direction, lines[i].point - result);
  }
}

}  // namespace after
