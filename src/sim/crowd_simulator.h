#ifndef AFTER_SIM_CROWD_SIMULATOR_H_
#define AFTER_SIM_CROWD_SIMULATOR_H_

#include <vector>

#include "common/geometry.h"

namespace after {

/// Reciprocal-velocity-obstacle crowd simulator (ORCA; van den Berg et
/// al.), written from scratch as the stand-in for the RVO2 library the
/// paper uses to synthesize Timik/SMM trajectories. Each step every agent
/// computes the optimal collision-free velocity closest to its preferred
/// velocity subject to the ORCA half-plane constraints induced by its
/// neighbors, then integrates.
class CrowdSimulator {
 public:
  struct AgentParams {
    double radius = 0.25;        // body radius in meters
    double max_speed = 1.4;      // comfortable walking speed
    double time_horizon = 2.0;   // seconds of collision anticipation
    double neighbor_dist = 5.0;  // interaction range
    /// Small clockwise rotation (radians) applied to the preferred
    /// velocity when other agents are nearby. Breaks the symmetric
    /// deadlocks reciprocal avoidance is prone to (agents implicitly
    /// agree to pass on one side), mirroring the perturbation used by
    /// RVO2's examples.
    double right_of_way_bias = 0.08;
  };

  explicit CrowdSimulator(double time_step);

  /// Adds an agent at `position`; returns its index.
  int AddAgent(const Vec2& position);
  int AddAgent(const Vec2& position, const AgentParams& params);

  int num_agents() const { return static_cast<int>(agents_.size()); }

  /// Sets the agent's navigation goal; the preferred velocity each step
  /// points at the goal with at most max_speed.
  void SetGoal(int agent, const Vec2& goal);

  /// Directly sets the preferred velocity (overrides the goal this step).
  void SetPreferredVelocity(int agent, const Vec2& velocity);

  /// Instantly relocates an agent (fault injection: a user re-spawning or
  /// a tracking glitch). Velocity is reset so the next step re-plans from
  /// rest.
  void TeleportAgent(int agent, const Vec2& position);

  /// Deactivates / reactivates an agent. Inactive agents model users who
  /// dropped mid-session: they hold their position, impose no ORCA
  /// constraints on others, and are ignored when computing congestion.
  void SetAgentActive(int agent, bool active);
  bool AgentActive(int agent) const;

  /// Holds / releases an agent in place. A held agent stands still
  /// (zero velocity, its own planning skipped, position bit-identical
  /// across steps) but — unlike an inactive agent — remains a physical
  /// obstacle that constrains everyone else's ORCA solution. This is
  /// how partial-motion rooms (Room::Options::move_fraction) keep
  /// parked agents exactly stationary so delta ticks see a small moved
  /// set.
  void SetHold(int agent, bool hold);
  bool Held(int agent) const;

  /// Advances the simulation by one time step.
  void Step();

  const Vec2& Position(int agent) const;
  const Vec2& Velocity(int agent) const;
  const Vec2& Goal(int agent) const;

  /// True when the agent is within `tolerance` of its goal.
  bool ReachedGoal(int agent, double tolerance = 0.1) const;

  double time_step() const { return time_step_; }

 private:
  struct Agent {
    Vec2 position;
    Vec2 velocity;
    Vec2 goal;
    Vec2 preferred_velocity;
    bool has_explicit_pref = false;
    bool active = true;
    bool held = false;
    AgentParams params;
  };

  /// Directed line for ORCA half-plane constraints: permitted velocities
  /// lie to the LEFT of the line through `point` with direction
  /// `direction`.
  struct Line {
    Vec2 point;
    Vec2 direction;
  };

  void ComputePreferredVelocity(Agent& agent) const;
  Vec2 ComputeNewVelocity(int index) const;

  // 2D linear programs from the ORCA paper.
  static bool LinearProgram1(const std::vector<Line>& lines, int line_index,
                             double radius, const Vec2& opt_velocity,
                             bool direction_opt, Vec2& result);
  static int LinearProgram2(const std::vector<Line>& lines, double radius,
                            const Vec2& opt_velocity, bool direction_opt,
                            Vec2& result);
  static void LinearProgram3(const std::vector<Line>& lines, int num_obst,
                             int begin_line, double radius, Vec2& result);

  double time_step_;
  std::vector<Agent> agents_;
};

}  // namespace after

#endif  // AFTER_SIM_CROWD_SIMULATOR_H_
